#!/usr/bin/env python3
"""Model your own machine and explore SRUMMA's sensitivity to it.

Defines a hypothetical modern-ish cluster (8-way nodes, fast fat-tree
fabric), runs SRUMMA and pdgemm on it, then sweeps one knob at a time —
network bandwidth, latency, zero-copy support — to see which the algorithm
actually cares about.

    python examples/custom_machine.py
"""

from repro.bench import format_table, run_matmul
from repro.machines import CpuSpec, MachineSpec, MemorySpec, NetworkSpec

GB = 1e9
MB = 1e6

MY_CLUSTER = MachineSpec(
    name="my-cluster",
    description="hypothetical: 8-way nodes, 10 GB/s fabric, zero-copy RDMA",
    cpus_per_node=8,
    cpu=CpuSpec(flops=20 * GB, peak_efficiency=0.85, small_block_knee=32),
    network=NetworkSpec(
        latency=2e-6,
        bandwidth=10 * GB,
        rma_latency=3e-6,
        zero_copy=True,
        eager_threshold=16 * 1024,
        mpi_overhead=1e-6,
    ),
    memory=MemorySpec(copy_bandwidth=8 * GB, node_bandwidth=40 * GB),
    shared_memory_scope="node",
)


def headline() -> None:
    rows = []
    for n in (1000, 4000, 8000):
        sr = run_matmul("srumma", MY_CLUSTER, 64, n)
        pd = run_matmul("pdgemm", MY_CLUSTER, 64, n)
        rows.append((n, sr.gflops, pd.gflops, sr.gflops / pd.gflops))
    print(format_table(
        ["N", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
        rows, title=f"{MY_CLUSTER.name}: {MY_CLUSTER.description}"))


def knob_sweep() -> None:
    n, nranks = 4000, 64
    base = run_matmul("srumma", MY_CLUSTER, nranks, n).gflops
    rows = [("baseline", base, 1.0)]
    for label, spec in [
        ("bandwidth / 4", MY_CLUSTER.with_network(bandwidth=2.5 * GB)),
        ("latency x 10", MY_CLUSTER.with_network(latency=20e-6,
                                                 rma_latency=30e-6)),
        ("no zero-copy", MY_CLUSTER.with_network(zero_copy=False,
                                                 host_copy_bandwidth=4 * GB)),
        ("2-way nodes", MY_CLUSTER.with_overrides(cpus_per_node=2)),
        ("slower dgemm /2", MY_CLUSTER.with_cpu(flops=10 * GB)),
    ]:
        g = run_matmul("srumma", spec, nranks, n).gflops
        rows.append((label, g, g / base))
    print(format_table(
        ["knob", "SRUMMA GF/s", "vs baseline"],
        rows, title=f"one-knob sensitivity at N={n}, {nranks} CPUs"))
    print("Reading: with a fast fabric the kernel speed dominates; degrade")
    print("the network enough and the overlap machinery starts to matter.")


if __name__ == "__main__":
    headline()
    knob_sweep()
