#!/usr/bin/env python3
"""SRUMMA on an irregular (non-uniform) block distribution.

The paper calls the algorithm "more general" than the shift-based
classics: one-sided gets need no matching send schedule, so nothing breaks
when blocks have unequal sizes.  That matters in practice — Global Arrays
applications like NWChem distribute matrices along basis-function shell
boundaries, not even cuts.  Cannon's algorithm structurally cannot do this
(its shifts require every block to have the same shape).

This example multiplies matrices cut at deliberately uneven boundaries,
verifies the result, and reports the per-rank work imbalance the
distribution created.

    python examples/irregular_distribution.py
"""

import numpy as np

from repro.comm import run_parallel
from repro.core.srumma import srumma_rank
from repro.distarray import GlobalArray, IrregularBlock2D
from repro.machines import LINUX_MYRINET

N = 240
# Uneven cuts mimicking shell-block structure: a few big blocks, many small.
ROW_EDGES = (0, 90, 130, 150, 240)
COL_EDGES = (0, 60, 180, 210, 240)


def main() -> None:
    rng = np.random.default_rng(0)
    a_ref = rng.standard_normal((N, N))
    b_ref = rng.standard_normal((N, N))
    dist = IrregularBlock2D(N, N, ROW_EDGES, COL_EDGES)
    holder = {}

    def prog(ctx):
        ga_a = GlobalArray.create(ctx, "A", N, N, dist=dist)
        ga_b = GlobalArray.create(ctx, "B", N, N, dist=dist)
        ga_c = GlobalArray.create(ctx, "C", N, N, dist=dist)
        ga_a.load(a_ref)
        ga_b.load(b_ref)
        holder["dist"] = ga_c.dist
        yield from ctx.mpi.barrier()
        stats = yield from srumma_rank(ctx, ga_a, ga_b, ga_c, beta=0.0)
        return stats

    run = run_parallel(LINUX_MYRINET, dist.nranks, prog)
    c = GlobalArray.assemble(run.armci, "C", holder["dist"])
    err = float(np.max(np.abs(c - a_ref @ b_ref)))

    print(f"irregular SRUMMA: N={N} on a {dist.p}x{dist.q} grid, "
          f"{dist.nranks} CPUs ({LINUX_MYRINET.name})")
    print(f"row cuts {ROW_EDGES}, col cuts {COL_EDGES}")
    print(f"max |C - numpy| = {err:.2e} (verified)\n")

    print("per-rank block shapes and work:")
    flops = [s.flops for s in run.results]
    for rank, s in enumerate(run.results):
        pi, pj = dist.coords_of(rank)
        shape = dist.block_shape(pi, pj)
        bar = "#" * int(40 * s.flops / max(flops))
        print(f"  rank {rank:2d} C block {shape[0]:3d}x{shape[1]:3d} "
              f"{s.flops / 1e6:7.2f} Mflop |{bar}")
    imbalance = max(flops) / (sum(flops) / len(flops))
    print(f"\nload imbalance (max/mean): {imbalance:.2f}x — the owner-computes")
    print("rule inherits whatever imbalance the distribution carries, but")
    print("correctness and the one-sided pipeline are unaffected; Cannon's")
    print("shift pattern could not run on these unequal blocks at all.")


if __name__ == "__main__":
    main()
