#!/usr/bin/env python3
"""Watch SRUMMA's double-buffered pipeline in action (paper Fig. 3).

Runs a small multiply on one rank-pair-heavy configuration with event
tracing enabled, then prints a text timeline for one rank: when each
nonblocking get was issued, when the rank blocked waiting, and when each
dgemm ran.  The point to see: get ``t+1`` is in flight while dgemm ``t``
computes, so wait times collapse after the pipeline fills.

    python examples/pipeline_trace.py
"""

import numpy as np

from repro.comm import run_parallel
from repro.core import SrummaOptions, srumma_rank
from repro.distarray import GlobalArray
from repro.machines import LINUX_MYRINET
from repro.sim import Machine, Tracer

N = 384
P = 8
WATCH_RANK = 0


def main() -> None:
    rng = np.random.default_rng(0)
    a_ref = rng.standard_normal((N, N))
    b_ref = rng.standard_normal((N, N))

    tracer = Tracer(record_events=False)
    machine = Machine(LINUX_MYRINET, P, tracer=tracer)
    timeline: list[tuple[float, float, str]] = []

    def prog(ctx):
        ga_a = GlobalArray.create(ctx, "A", N, N)
        ga_b = GlobalArray.create(ctx, "B", N, N)
        ga_c = GlobalArray.create(ctx, "C", N, N)
        ga_a.load(a_ref)
        ga_b.load(b_ref)
        yield from ctx.mpi.barrier()

        if ctx.rank != WATCH_RANK:
            yield from srumma_rank(ctx, ga_a, ga_b, ga_c)
            return

        # Shadow the watched rank with wrapped context methods that log.
        orig_wait_all = ctx.wait_all
        orig_dgemm = ctx.dgemm

        def wait_all(reqs):
            t0 = ctx.now
            yield from orig_wait_all(reqs)
            timeline.append((t0, ctx.now, f"wait ({len(reqs)} gets)"))

        def dgemm(a, b, c, **kw):
            t0 = ctx.now
            yield from orig_dgemm(a, b, c, **kw)
            timeline.append((t0, ctx.now, f"dgemm {a.shape}x{b.shape}"))

        ctx.wait_all = wait_all
        ctx.dgemm = dgemm
        yield from srumma_rank(ctx, ga_a, ga_b, ga_c,
                               options=SrummaOptions())

    run_parallel(machine, None, prog)

    print(f"rank {WATCH_RANK} timeline (N={N}, {P} CPUs, "
          f"{machine.spec.name}):\n")
    t_end = max(t1 for _, t1, _ in timeline)
    width = 60
    for t0, t1, what in timeline:
        a = int(width * t0 / t_end)
        b = max(a + 1, int(width * t1 / t_end))
        bar = " " * a + "#" * (b - a)
        print(f"  {t0 * 1e3:7.3f}-{t1 * 1e3:7.3f} ms |{bar:<{width}}| {what}")

    waits = sum(t1 - t0 for t0, t1, w in timeline if w.startswith("wait"))
    comp = sum(t1 - t0 for t0, t1, w in timeline if w.startswith("dgemm"))
    print(f"\n  compute {comp * 1e3:.3f} ms, wait {waits * 1e3:.3f} ms "
          f"({100 * waits / (waits + comp):.1f}% blocked)")
    print("  Note the long first wait (pipeline fill) and the short ones")
    print("  after it: each get overlapped the previous dgemm.")


if __name__ == "__main__":
    main()
