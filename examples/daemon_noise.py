#!/usr/bin/env python3
"""Why asynchrony matters on commodity clusters (paper §2).

The paper argues SRUMMA suits machines where "computational threads share
a CPU with other processes and system daemons ... because synchronization
amplifies performance degradations".  This example injects per-CPU daemon
bursts on the simulated Linux cluster and compares how SRUMMA (one-sided,
no coordination) and Cannon (lock-step shifts) degrade.

    python examples/daemon_noise.py
"""

from repro.bench import format_table, run_matmul
from repro.machines import LINUX_MYRINET
from repro.sim import InterferencePattern

N = 2000
P = 64
LOADS = (0.0, 0.01, 0.02, 0.05)


def main() -> None:
    base = {}
    rows = []
    for load in LOADS:
        pattern = (InterferencePattern(load=load, mean_burst=5e-3, seed=3)
                   if load else None)
        row = [f"{load:.0%}"]
        for alg in ("srumma", "cannon"):
            t = run_matmul(alg, LINUX_MYRINET, P, N,
                           interference=pattern).elapsed
            if load == 0.0:
                base[alg] = t
            row.extend([t * 1e3, t / base[alg]])
        rows.append(row)

    print(format_table(
        ["daemon load", "srumma ms", "slowdown", "cannon ms", "slowdown"],
        rows,
        title=f"daemon interference, N={N}, {P} CPUs, linux-myrinet"))
    print("Reading: every burst steals the same CPU share from both")
    print("algorithms, but Cannon's synchronized shift rounds each wait for")
    print("that round's unluckiest rank — variance, not mean, sets its")
    print("critical path.  SRUMMA's one-sided pipeline only absorbs each")
    print("rank's own share.")


if __name__ == "__main__":
    main()
