#!/usr/bin/env python3
"""Transpose and rectangular cases (§4.2 of the paper).

SRUMMA handles C = A^T B, C = A B^T, C = A^T B^T and rectangular shapes by
fetching the same blocks through its one-sided task list, so its transpose
penalty is small; pdgemm pays an explicit pdtran redistribution first.  This
example verifies all variants numerically and compares the performance hit.

    python examples/transpose_and_rectangular.py
"""

from repro.bench import format_table, run_matmul
from repro.core import srumma_multiply
from repro.machines import SGI_ALTIX

VARIANTS = [("NN", False, False), ("TN", True, False),
            ("NT", False, True), ("TT", True, True)]


def verify_all_variants() -> None:
    rows = []
    for name, ta, tb in VARIANTS:
        res = srumma_multiply(SGI_ALTIX, 16, 96, 80, 112,
                              transa=ta, transb=tb)
        rows.append((name, "96x80x112", f"{res.max_error:.2e}", "ok"))
    print(format_table(
        ["variant", "m x n x k", "max error", "verified"],
        rows, title="numerical verification, rectangular + all transposes"))


def transpose_penalty() -> None:
    rows = []
    for name, ta, tb in VARIANTS:
        sr = run_matmul("srumma", SGI_ALTIX, 64, 2000,
                        transa=ta, transb=tb).gflops
        pd = run_matmul("pdgemm", SGI_ALTIX, 64, 2000,
                        transa=ta, transb=tb).gflops
        rows.append((name, sr, pd, sr / pd))
    print(format_table(
        ["variant", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
        rows, title="transpose penalty at N=2000, 64 CPUs (SGI Altix): "
                     "pdgemm pays pdtran, SRUMMA barely moves"))


def rectangular_cases() -> None:
    rows = []
    for m, n, k in [(4000, 4000, 1000), (1000, 1000, 2000), (8000, 500, 500)]:
        sr = run_matmul("srumma", SGI_ALTIX, 64, m, n, k).gflops
        pd = run_matmul("pdgemm", SGI_ALTIX, 64, m, n, k).gflops
        rows.append((f"{m}x{n}x{k}", sr, pd, sr / pd))
    print(format_table(
        ["m x n x k", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
        rows, title="rectangular shapes (Table 1's rectangular rows)"))


if __name__ == "__main__":
    verify_all_variants()
    transpose_penalty()
    rectangular_cases()
