#!/usr/bin/env python3
"""SRUMMA vs pdgemm across the paper's four platforms (a mini Fig. 10).

Sweeps square matrix sizes on simulated models of the Linux/Myrinet
cluster, IBM SP, Cray X1, and SGI Altix, comparing SRUMMA against the
ScaLAPACK pdgemm stand-in.  Uses synthetic payload (identical schedule, no
real data) so the larger sizes run fast.

    python examples/platform_comparison.py
"""

from repro.bench import format_table, run_matmul
from repro.machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX

SIZES = (600, 1000, 2000, 4000)
NRANKS = 64


def main() -> None:
    for spec in (LINUX_MYRINET, IBM_SP, CRAY_X1, SGI_ALTIX):
        rows = []
        for n in SIZES:
            sr = run_matmul("srumma", spec, NRANKS, n)
            pd = run_matmul("pdgemm", spec, NRANKS, n)
            rows.append((n, sr.gflops, pd.gflops, sr.gflops / pd.gflops))
        print(format_table(
            ["N", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
            rows,
            title=f"{spec.name} ({NRANKS} CPUs) — {spec.description}",
        ))

    print("Shape to notice (paper §4): SRUMMA wins everywhere; the gap is")
    print("largest on the shared-memory machines and at small matrix sizes,")
    print("where pdgemm's per-message MPI costs dominate.")


if __name__ == "__main__":
    main()
