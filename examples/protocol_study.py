#!/usr/bin/env python3
"""Communication protocol study (the paper's §4.1 in miniature).

Three experiments on the simulated machines:

1. bandwidth vs message size — ARMCI get vs MPI send/recv on the Linux
   cluster and the IBM SP (Fig. 8's story);
2. the nonblocking-overlap cliff — ARMCI stays ~100% overlapped while MPI
   collapses at the 16 KB rendezvous switch (Fig. 7's story);
3. what zero-copy buys SRUMMA end-to-end (Fig. 9's story).

    python examples/protocol_study.py
"""

from repro.bench import (
    fmt_bytes,
    format_table,
    measure_bandwidth,
    measure_overlap,
    run_matmul,
)
from repro.core import SrummaOptions
from repro.machines import IBM_SP, LINUX_MYRINET

SIZES = tuple(1 << s for s in range(10, 23, 2))


def bandwidth_study() -> None:
    rows = []
    for s in SIZES:
        rows.append((
            fmt_bytes(s),
            measure_bandwidth(LINUX_MYRINET, "armci_get", s) / 1e6,
            measure_bandwidth(LINUX_MYRINET, "mpi", s) / 1e6,
            measure_bandwidth(IBM_SP, "armci_get", s) / 1e6,
            measure_bandwidth(IBM_SP, "mpi", s) / 1e6,
        ))
    print(format_table(
        ["size", "myri get", "myri mpi", "SP get", "SP mpi"],
        rows, title="1. bandwidth (MB/s): one-sided get vs MPI send/recv"))


def overlap_study() -> None:
    rows = []
    for s in SIZES:
        rows.append((
            fmt_bytes(s),
            measure_overlap(LINUX_MYRINET, "armci_get", s),
            measure_overlap(LINUX_MYRINET, "mpi", s),
        ))
    print(format_table(
        ["size", "armci overlap", "mpi overlap"],
        rows, title="2. fraction of communication hidden behind compute "
                     "(note the MPI cliff past 16KB)"))


def zero_copy_study() -> None:
    rows = []
    for n in (1000, 2000, 4000):
        zc = run_matmul("srumma", LINUX_MYRINET, 16, n,
                        options=SrummaOptions(flavor="cluster")).gflops
        no_zc = run_matmul(
            "srumma", LINUX_MYRINET.with_network(zero_copy=False), 16, n,
            options=SrummaOptions(flavor="cluster")).gflops
        rows.append((n, zc, no_zc, zc / no_zc))
    print(format_table(
        ["N", "zero-copy GF/s", "host-copy GF/s", "gain"],
        rows, title="3. SRUMMA with the zero-copy protocol on vs off "
                     "(host-copy steals remote CPUs)"))


if __name__ == "__main__":
    bandwidth_study()
    overlap_study()
    zero_copy_study()
