#!/usr/bin/env python3
"""A Global Arrays-style application: subspace power iteration.

SRUMMA shipped as the ``ga_dgemm`` of the Global Arrays toolkit; this
example writes the kind of code GA users write — a block power iteration
computing the dominant invariant subspace of a symmetric matrix, where the
heavy lifting is repeated distributed matrix multiplication:

    V <- normalize(M @ V)     until the Rayleigh quotient settles.

Everything runs on the simulated 64-CPU SGI Altix: ga_dgemm (SRUMMA inside),
ga_dot / ga_norm_inf reductions, ga_scale, ga_copy.

    python examples/ga_application.py
"""

import numpy as np

from repro.comm import run_parallel
from repro.distarray import (
    GlobalArray,
    ga_copy,
    ga_dgemm,
    ga_dot,
    ga_scale,
)
from repro.machines import SGI_ALTIX

N = 256          # matrix order
BLOCK = 16       # subspace width
ITERATIONS = 8
NRANKS = 64


def main() -> None:
    rng = np.random.default_rng(0)
    # Symmetric matrix with a known dominant eigenvalue.
    q, _ = np.linalg.qr(rng.standard_normal((N, N)))
    eigs = np.linspace(1.0, 10.0, N)
    eigs[-1] = 20.0  # a well-separated dominant eigenvalue
    m_ref = (q * eigs) @ q.T
    v_ref = rng.standard_normal((N, BLOCK))

    rayleigh_history = []

    def prog(ctx):
        m = GlobalArray.create(ctx, "M", N, N)
        v = GlobalArray.create(ctx, "V", N, BLOCK)
        w = GlobalArray.create(ctx, "W", N, BLOCK)
        m.load(m_ref)
        v.load(v_ref)
        yield from ctx.mpi.barrier()

        for it in range(ITERATIONS):
            # W = M @ V   (ga_dgemm -> SRUMMA)
            yield from ga_dgemm(ctx, False, False, 1.0, m, v, 0.0, w)
            yield from ctx.mpi.barrier()
            # Rayleigh estimate <V, W> / <V, V> and normalisation by |W|.
            vw = yield from ga_dot(ctx, v, w)
            vv = yield from ga_dot(ctx, v, v)
            ww = yield from ga_dot(ctx, w, w)
            yield from ga_scale(ctx, w, 1.0 / np.sqrt(ww))
            yield from ctx.mpi.barrier()
            yield from ga_copy(ctx, w, v)
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                rayleigh_history.append(vw / vv)
        return ctx.now

    run_parallel(SGI_ALTIX, NRANKS, prog)

    print(f"block power iteration, N={N}, subspace={BLOCK}, "
          f"{NRANKS} CPUs on sgi-altix\n")
    print("iter   Rayleigh quotient estimate")
    for i, r in enumerate(rayleigh_history):
        print(f"  {i:2d}   {r:12.6f}")
    dominant = eigs[-1]
    print(f"\ntrue dominant eigenvalue : {dominant:.6f}")
    print(f"final estimate           : {rayleigh_history[-1]:.6f}")
    err = abs(rayleigh_history[-1] - dominant) / dominant
    print(f"relative error           : {err:.2%} "
          f"(subspace iteration converges toward the top eigenvalue)")
    assert rayleigh_history[-1] > eigs[-2], "should exceed the 2nd eigenvalue"


if __name__ == "__main__":
    main()
