#!/usr/bin/env python3
"""Quickstart: multiply two distributed matrices with SRUMMA.

Runs C = A @ B on a simulated 16-CPU Linux/Myrinet cluster (8 dual-CPU
nodes), verifies the result against numpy, and shows where the virtual time
went.

    python examples/quickstart.py
"""

from repro import SrummaOptions, srumma_multiply
from repro.machines import LINUX_MYRINET


def main() -> None:
    print("SRUMMA quickstart: C = A @ B, N=512, 16 CPUs on", LINUX_MYRINET.name)
    print(f"  ({LINUX_MYRINET.description})\n")

    res = srumma_multiply(
        LINUX_MYRINET,
        nranks=16,
        m=512, n=512, k=512,
        options=SrummaOptions(),  # the paper's defaults: nonblocking pipeline,
                                  # diagonal shift, local-first ordering
    )

    print(f"process grid      : {res.grid[0]} x {res.grid[1]}")
    print(f"virtual elapsed   : {res.elapsed * 1e3:.3f} ms")
    print(f"aggregate rate    : {res.gflops:.1f} GFLOP/s")
    print(f"max |C - numpy|   : {res.max_error:.2e}  (verified)")

    tasks = sum(s.tasks for s in res.stats)
    local = sum(s.local_tasks for s in res.stats)
    gets = sum(s.remote_gets for s in res.stats)
    mb = sum(s.bytes_fetched for s in res.stats) / 1e6
    print(f"\nblock tasks       : {tasks} total, {local} inside shared-memory "
          f"domains (no network)")
    print(f"remote RMA gets   : {gets} nonblocking gets moving {mb:.1f} MB")

    tr = res.run.tracer
    compute = tr.total("compute")
    wait = tr.total("comm_wait")
    print(f"\ntime accounting (all ranks):")
    print(f"  compute         : {compute * 1e3:9.3f} ms")
    print(f"  comm wait       : {wait * 1e3:9.3f} ms "
          f"({100 * wait / max(compute, 1e-12):.1f}% of compute — the "
          f"nonblocking pipeline hides the rest)")


if __name__ == "__main__":
    main()
