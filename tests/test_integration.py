"""Cross-module integration tests: whole-system behaviours.

These exercise paths that unit tests cannot: contention effects that only
appear with many ranks, tracer accounting across layers, and end-to-end
properties tying the algorithm, protocols, and machine models together.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import pdgemm_multiply
from repro.core import ScheduleOptions, SrummaOptions, srumma_multiply
from repro.machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX


@st.composite
def _shapes(draw):
    m = draw(st.integers(min_value=2, max_value=40))
    n = draw(st.integers(min_value=2, max_value=40))
    k = draw(st.integers(min_value=2, max_value=40))
    nranks = draw(st.sampled_from([1, 2, 4, 6]))
    transa = draw(st.booleans())
    transb = draw(st.booleans())
    return m, n, k, nranks, transa, transb


@given(_shapes())
@settings(max_examples=25, deadline=None)
def test_srumma_always_matches_numpy(cfg):
    """Property: any shape, grid, transpose combo verifies against numpy."""
    m, n, k, nranks, transa, transb = cfg
    res = srumma_multiply(LINUX_MYRINET, nranks, m, n, k,
                          transa=transa, transb=transb)
    assert res.max_error < 1e-9 * max(1, k)


@given(_shapes())
@settings(max_examples=12, deadline=None)
def test_pdgemm_always_matches_numpy(cfg):
    m, n, k, nranks, transa, transb = cfg
    res = pdgemm_multiply(LINUX_MYRINET, nranks, m, n, k, nb=7,
                          transa=transa, transb=transb)
    assert res.max_error < 1e-9 * max(1, k)


def test_more_cpus_is_faster_at_fixed_size():
    """Strong scaling: elapsed drops with rank count (N large enough)."""
    times = [srumma_multiply(LINUX_MYRINET, p, 1500, 1500, 1500,
                             payload="synthetic").elapsed
             for p in (4, 16, 64)]
    assert times[0] > times[1] > times[2]


def test_speedup_is_sublinear_but_substantial():
    t1 = srumma_multiply(LINUX_MYRINET, 1, 1024, 1024, 1024,
                         payload="synthetic").elapsed
    t16 = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                          payload="synthetic").elapsed
    speedup = t1 / t16
    assert 8 < speedup <= 16.01


def test_srumma_beats_pdgemm_on_every_platform_small_case():
    for spec in (LINUX_MYRINET, IBM_SP, CRAY_X1, SGI_ALTIX):
        sr = srumma_multiply(spec, 16, 800, 800, 800, payload="synthetic")
        pd = pdgemm_multiply(spec, 16, 800, 800, 800, payload="synthetic")
        assert sr.elapsed < pd.elapsed, spec.name


def test_tracer_accounts_compute_consistently():
    """Total accounted compute equals the kernel-model time of all tasks."""
    res = srumma_multiply(LINUX_MYRINET, 4, 64, 64, 64)
    tracer = res.run.tracer
    total_compute = tracer.total("compute")
    # All tasks run the same kernel model; recompute from stats.
    machine = res.run.machine
    expected = sum(
        machine.dgemm_time(32, 32, kk)
        for _rank in range(4) for kk in (32, 32)  # 2 tasks of k=32 each
    )
    assert total_compute == pytest.approx(expected, rel=1e-9)


def test_armci_counters_match_stats():
    res = srumma_multiply(LINUX_MYRINET, 8, 64, 64, 64)
    gets_from_stats = sum(s.remote_gets for s in res.stats)
    assert res.run.tracer.counters["armci_get"] == gets_from_stats


def test_nic_traffic_only_for_cross_node_operands():
    """On one node (2 ranks) no NIC bytes move at all."""
    res = srumma_multiply(LINUX_MYRINET, 2, 32, 32, 32)
    machine = res.run.machine
    assert all(n.nic_out.bytes_carried == 0 for n in machine.nodes)
    assert machine.nodes[0].mem.bytes_carried >= 0


def test_cross_node_bytes_match_remote_get_volume():
    res = srumma_multiply(LINUX_MYRINET, 8, 64, 64, 64)
    machine = res.run.machine
    nic_bytes = sum(n.nic_in.bytes_carried for n in machine.nodes)
    fetched = sum(s.bytes_fetched for s in res.stats)
    # All fetched bytes cross a NIC exactly once (same-node operands use
    # direct views); the handful of extra bytes are the setup barrier's
    # one-byte tokens.
    assert fetched <= nic_bytes <= fetched + 1000


def test_x1_copy_flavor_beats_direct_flavor_end_to_end():
    d = srumma_multiply(CRAY_X1, 16, 1024, 1024, 1024, payload="synthetic",
                        options=SrummaOptions(flavor="direct")).elapsed
    c = srumma_multiply(CRAY_X1, 16, 1024, 1024, 1024, payload="synthetic",
                        options=SrummaOptions(flavor="copy")).elapsed
    assert c < d


def test_disabling_zero_copy_slows_the_cluster_run():
    base = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                           payload="synthetic").elapsed
    no_zc = srumma_multiply(LINUX_MYRINET.with_network(zero_copy=False),
                            16, 1024, 1024, 1024,
                            payload="synthetic").elapsed
    assert no_zc > base


def test_elapsed_independent_of_payload_mode_across_options():
    for opts in (SrummaOptions(),
                 SrummaOptions(nonblocking=False),
                 SrummaOptions(schedule=ScheduleOptions(diagonal_shift=False))):
        real = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48, options=opts)
        synth = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48, options=opts,
                                payload="synthetic")
        assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)


def test_full_machine_128_ranks_altix_headline_case():
    """The paper's headline configuration runs end-to-end and SRUMMA wins."""
    sr = srumma_multiply(SGI_ALTIX, 128, 1000, 1000, 1000, payload="synthetic")
    pd = pdgemm_multiply(SGI_ALTIX, 128, 1000, 1000, 1000, payload="synthetic")
    assert sr.elapsed < pd.elapsed
    assert sr.gflops / pd.gflops > 1.5
