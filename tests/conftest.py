"""Shared test fixtures.

Every test gets an isolated result-cache directory: the CLI's
``sweep``/``reproduce`` cache by default, and tests must neither pollute
the developer's real ``~/.cache/repro-srumma`` nor observe entries left by
previous test runs.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
