"""Tests for multi-owner region get/put (GA_Get / GA_Put semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_parallel
from repro.distarray import GlobalArray
from repro.machines import LINUX_MYRINET


def _ref(m, n, seed=0):
    return np.random.default_rng(seed).standard_normal((m, n))


def test_get_region_spanning_all_blocks():
    ref = _ref(12, 12)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 12, 12, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((8, 8))
            yield from ga.get_region((2, 10), (2, 10), out)
            assert np.allclose(out, ref[2:10, 2:10])

    run_parallel(LINUX_MYRINET, 4, prog)


def test_get_region_whole_matrix():
    ref = _ref(10, 14, seed=1)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 10, 14, p=2, q=3)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 5:
            out = np.zeros((10, 14))
            yield from ga.get_region((0, 10), (0, 14), out)
            assert np.allclose(out, ref)

    run_parallel(LINUX_MYRINET, 6, prog)


def test_get_region_single_block_fast_path():
    ref = _ref(8, 8, seed=2)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((2, 2))
            yield from ga.get_region((5, 7), (5, 7), out)
            assert np.allclose(out, ref[5:7, 5:7])

    run_parallel(LINUX_MYRINET, 4, prog)


def test_put_region_spanning_blocks():
    holder = {}

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 12, 12, p=2, q=2)
        holder["dist"] = ga.dist
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ga.put_region((3, 9), (3, 9), np.full((6, 6), 4.0))
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    full = GlobalArray.assemble(run.armci, "A", holder["dist"])
    assert np.all(full[3:9, 3:9] == 4.0)
    assert full.sum() == 36 * 4.0


def test_region_shape_mismatch_raises():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(ValueError, match="out shape"):
                yield from ga.get_region((0, 4), (0, 4), np.zeros((3, 3)))
            with pytest.raises(ValueError, match="data shape"):
                yield from ga.put_region((0, 4), (0, 4), np.zeros((5, 5)))

    run_parallel(LINUX_MYRINET, 4, prog)


def test_region_out_of_bounds_raises():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(IndexError):
                yield from ga.get_region((0, 9), (0, 4), np.zeros((9, 4)))

    run_parallel(LINUX_MYRINET, 4, prog)


@given(
    m=st.integers(min_value=2, max_value=30),
    n=st.integers(min_value=2, max_value=30),
    p=st.integers(min_value=1, max_value=3),
    q=st.integers(min_value=1, max_value=3),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_get_region_roundtrip_property(m, n, p, q, data):
    """Any in-bounds rectangle reads back exactly."""
    r0 = data.draw(st.integers(min_value=0, max_value=m - 1))
    r1 = data.draw(st.integers(min_value=r0 + 1, max_value=m))
    c0 = data.draw(st.integers(min_value=0, max_value=n - 1))
    c1 = data.draw(st.integers(min_value=c0 + 1, max_value=n))
    ref = _ref(m, n, seed=m * 31 + n)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", m, n, p=p, q=q)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((r1 - r0, c1 - c0))
            yield from ga.get_region((r0, r1), (c0, c1), out)
            assert np.allclose(out, ref[r0:r1, c0:c1])

    run_parallel(LINUX_MYRINET, p * q, prog)
