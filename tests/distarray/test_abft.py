"""ABFT checksum layer: detection primitives and end-to-end repair.

Unit level: :func:`panel_checksums` / :func:`checksums_match` detect any
single bit flip in a panel and tolerate the round-off a legitimate
transfer can introduce (none — transfers are bit-exact — but the match is
scale-relative so near-zero panels don't false-positive).

End to end: with ``FaultPlan.corruption_rate > 0`` every injected flip is
caught on arrival, re-fetched, and the product still verifies — the
absorbing regime the resilience experiment relies on:
``corruptions_injected == corruptions_detected == corruptions_repaired``
and zero corrupted values reach a dgemm.
"""

import numpy as np
import pytest

from repro.core.api import srumma_multiply
from repro.core.srumma import SrummaOptions
from repro.distarray import checksums_match, panel_checksums, verify_cost
from repro.machines import LINUX_MYRINET
from repro.sim.faults import FaultPlan

N, P = 96, 4


class TestChecksumPrimitives:
    def test_intact_panel_matches_itself(self):
        rng = np.random.default_rng(0)
        panel = rng.standard_normal((16, 12))
        assert checksums_match(panel, panel_checksums(panel))

    def test_significant_bit_flips_are_detected(self):
        # The checksum match is scale-relative at 1e-9: flips in the low
        # mantissa (relative change ~2^-52) are invisible to it, but they
        # are equally invisible to the result verification — *significant*
        # flips, including the injector's bit 52, must always be caught.
        rng = np.random.default_rng(1)
        panel = rng.standard_normal((8, 8))
        ref = panel_checksums(panel)
        for flat in (0, 17, 63):  # corners and an interior element
            for bit in (31, 52, 53):  # mantissa mid, exponent low bits
                bad = panel.copy()
                raw = bad.view(np.uint64).reshape(-1)
                raw[flat] ^= np.uint64(1) << np.uint64(bit)
                assert not checksums_match(bad, ref), (flat, bit)

    def test_noncontiguous_panel_views_work(self):
        rng = np.random.default_rng(2)
        big = rng.standard_normal((20, 20))
        view = big[::2, 1:11]
        assert checksums_match(view, panel_checksums(view))

    def test_near_zero_panels_do_not_false_positive(self):
        panel = np.full((4, 4), 1e-300)
        assert checksums_match(panel, panel_checksums(panel))

    def test_verify_cost_scales_linearly(self):
        flops = 4.8e9
        assert verify_cost(1000, flops) == pytest.approx(2000 / flops)
        assert verify_cost(0, flops) == 0.0


class TestEndToEndRepair:
    def _run(self, rate, **kw):
        kw.setdefault("payload", "real")
        kw.setdefault("verify", True)
        kw.setdefault("options", SrummaOptions(dynamic=True))
        plan = FaultPlan(corruption_rate=rate, seed=7) if rate else None
        return srumma_multiply(LINUX_MYRINET, P, N, N, N, faults=plan, **kw)

    def test_every_injected_corruption_is_detected_and_repaired(self):
        res = self._run(0.5)
        assert res.max_error is not None and res.max_error < 1e-10
        health = res.run.tracer.health()
        assert health["corruption_injected"] > 0
        # Absorbing regime: nothing slips through, nothing stays broken.
        assert health["corruption_detected"] == health["corruption_injected"]
        assert health["corruption_repaired"] == health["corruption_detected"]
        detected = sum(s.corruptions_detected for s in res.stats)
        repaired = sum(s.corruptions_repaired for s in res.stats)
        assert detected == health["corruption_detected"]
        assert repaired == detected

    def test_verification_costs_simulated_time(self):
        healthy = self._run(0.0)
        # rate ~0 still verifies every arriving panel; the checksum walk
        # itself must show up as simulated compute time.
        verified = self._run(1e-12)
        assert verified.elapsed > healthy.elapsed
        assert verified.max_error is not None and verified.max_error < 1e-10

    def test_synthetic_payload_counts_match_real(self):
        real = self._run(0.5)
        synth = self._run(0.5, payload="synthetic", verify=False)
        # Identical schedule + identical draw streams: the synthetic run
        # detects and repairs exactly the same corruption set.
        assert (synth.run.tracer.health()["corruption_detected"]
                == real.run.tracer.health()["corruption_detected"])
        assert synth.elapsed == real.elapsed

    def test_corruption_with_crash_still_verifies(self):
        from repro.sim.faults import NodeCrash

        healthy = self._run(0.0)
        plan = FaultPlan(corruption_rate=0.3, seed=3,
                         crashes=(NodeCrash(node=1,
                                            t_fail=0.5 * healthy.elapsed),),
                         checkpoint_interval=1)
        res = srumma_multiply(LINUX_MYRINET, P, N, N, N, faults=plan,
                              options=SrummaOptions(dynamic=True))
        assert res.max_error is not None and res.max_error < 1e-10
        # A corrupt transfer swept by the crash never delivers (injected
        # but not detected); every corruption that *arrives* is absorbed.
        health = res.run.tracer.health()
        assert (health.get("corruption_repaired", 0)
                == health.get("corruption_detected", 0))

    def test_determinism(self):
        a = self._run(0.4)
        b = self._run(0.4)
        assert a.elapsed == b.elapsed
        assert (a.run.tracer.health()["corruption_injected"]
                == b.run.tracer.health()["corruption_injected"])
