"""Tests for Global Arrays-style collective operations."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.distarray import (
    GlobalArray,
    ga_add,
    ga_copy,
    ga_dgemm,
    ga_dot,
    ga_fill,
    ga_norm_inf,
    ga_scale,
    ga_transpose,
)
from repro.machines import LINUX_MYRINET, SGI_ALTIX


def _ref(m, n, seed):
    return np.random.default_rng(seed).standard_normal((m, n))


def _assemble(run, name, dist):
    return GlobalArray.assemble(run.armci, name, dist)


def test_ga_fill():
    holder = {}

    def prog(ctx):
        ga = GlobalArray.create(ctx, "X", 10, 10)
        holder["dist"] = ga.dist
        yield from ga_fill(ctx, ga, 3.5)
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    assert np.all(_assemble(run, "X", holder["dist"]) == 3.5)


def test_ga_scale():
    ref = _ref(8, 8, 0)
    holder = {}

    def prog(ctx):
        ga = GlobalArray.create(ctx, "X", 8, 8)
        ga.load(ref)
        holder["dist"] = ga.dist
        yield from ga_scale(ctx, ga, -2.0)
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    assert np.allclose(_assemble(run, "X", holder["dist"]), -2.0 * ref)


def test_ga_copy():
    ref = _ref(9, 7, 1)
    holder = {}

    def prog(ctx):
        src = GlobalArray.create(ctx, "S", 9, 7)
        dst = GlobalArray.create(ctx, "D", 9, 7)
        src.load(ref)
        holder["dist"] = dst.dist
        yield from ga_copy(ctx, src, dst)
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    assert np.array_equal(_assemble(run, "D", holder["dist"]), ref)


def test_ga_copy_dist_mismatch_raises():
    def prog(ctx):
        src = GlobalArray.create(ctx, "S", 8, 8, p=2, q=2)
        dst = GlobalArray.create(ctx, "D", 8, 8, p=4, q=1)
        with pytest.raises(CommError, match="identically distributed"):
            yield from ga_copy(ctx, src, dst)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_ga_add():
    a_ref, b_ref = _ref(8, 8, 2), _ref(8, 8, 3)
    holder = {}

    def prog(ctx):
        a = GlobalArray.create(ctx, "A", 8, 8)
        b = GlobalArray.create(ctx, "B", 8, 8)
        c = GlobalArray.create(ctx, "C", 8, 8)
        a.load(a_ref)
        b.load(b_ref)
        holder["dist"] = c.dist
        yield from ga_add(ctx, 2.0, a, -1.5, b, c)
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    assert np.allclose(_assemble(run, "C", holder["dist"]),
                       2.0 * a_ref - 1.5 * b_ref)


def test_ga_dot_all_ranks_agree():
    a_ref, b_ref = _ref(10, 10, 4), _ref(10, 10, 5)
    values = {}

    def prog(ctx):
        a = GlobalArray.create(ctx, "A", 10, 10)
        b = GlobalArray.create(ctx, "B", 10, 10)
        a.load(a_ref)
        b.load(b_ref)
        yield from ctx.mpi.barrier()
        values[ctx.rank] = (yield from ga_dot(ctx, a, b))

    run_parallel(LINUX_MYRINET, 6, prog)
    expected = float(np.sum(a_ref * b_ref))
    for v in values.values():
        assert v == pytest.approx(expected)


def test_ga_norm_inf():
    ref = _ref(12, 5, 6)
    values = {}

    def prog(ctx):
        a = GlobalArray.create(ctx, "A", 12, 5)
        a.load(ref)
        yield from ctx.mpi.barrier()
        values[ctx.rank] = (yield from ga_norm_inf(ctx, a))

    run_parallel(LINUX_MYRINET, 4, prog)
    for v in values.values():
        assert v == pytest.approx(np.max(np.abs(ref)))


@pytest.mark.parametrize("m,n,p,q", [(8, 8, 2, 2), (10, 6, 3, 2), (7, 11, 2, 3)])
def test_ga_transpose(m, n, p, q):
    ref = _ref(m, n, 7)
    holder = {}

    def prog(ctx):
        src = GlobalArray.create(ctx, "S", m, n, p=p, q=q)
        dst = GlobalArray.create(ctx, "T", n, m, p=p, q=q)
        src.load(ref)
        holder["dist"] = dst.dist
        yield from ctx.mpi.barrier()
        yield from ga_transpose(ctx, src, dst)
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, p * q, prog)
    assert np.allclose(_assemble(run, "T", holder["dist"]), ref.T)


def test_ga_transpose_shape_mismatch_raises():
    def prog(ctx):
        src = GlobalArray.create(ctx, "S", 8, 6)
        dst = GlobalArray.create(ctx, "T", 8, 6)  # should be 6x8
        with pytest.raises(CommError, match="ga_transpose"):
            yield from ga_transpose(ctx, src, dst)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_ga_dgemm_end_to_end():
    """The GA front door: C = alpha*A@B + beta*C via SRUMMA."""
    a_ref, b_ref = _ref(16, 12, 8), _ref(12, 14, 9)
    holder = {}

    def prog(ctx):
        a = GlobalArray.create(ctx, "A", 16, 12)
        b = GlobalArray.create(ctx, "B", 12, 14)
        c = GlobalArray.create(ctx, "C", 16, 14)
        a.load(a_ref)
        b.load(b_ref)
        holder["dist"] = c.dist
        yield from ctx.mpi.barrier()
        yield from ga_fill(ctx, c, 1.0)
        yield from ctx.mpi.barrier()
        stats = yield from ga_dgemm(ctx, False, False, 2.0, a, b, 0.5, c)
        yield from ctx.mpi.barrier()
        return stats

    run = run_parallel(SGI_ALTIX, 4, prog)
    expected = 2.0 * (a_ref @ b_ref) + 0.5
    assert np.allclose(_assemble(run, "C", holder["dist"]), expected)
    assert sum(s.flops for s in run.results) == 2 * 16 * 14 * 12
