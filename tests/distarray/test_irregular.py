"""Tests for irregular (non-uniform) block distributions, incl. SRUMMA."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_parallel
from repro.core.srumma import srumma_rank
from repro.core.tasks import build_tasks
from repro.distarray import GlobalArray, IrregularBlock2D
from repro.machines import LINUX_MYRINET, SGI_ALTIX


class TestGeometry:
    def test_basic_construction(self):
        d = IrregularBlock2D(10, 10, (0, 3, 10), (0, 7, 10))
        assert (d.p, d.q) == (2, 2)
        assert d.block_shape(0, 0) == (3, 7)
        assert d.block_shape(1, 1) == (7, 3)

    def test_edges_must_span(self):
        with pytest.raises(ValueError, match="must run from 0"):
            IrregularBlock2D(10, 10, (0, 5, 9), (0, 10))
        with pytest.raises(ValueError, match="must run from 0"):
            IrregularBlock2D(10, 10, (1, 10), (0, 10))

    def test_edges_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            IrregularBlock2D(10, 10, (0, 7, 5, 10), (0, 10))

    def test_empty_blocks_allowed(self):
        d = IrregularBlock2D(10, 10, (0, 5, 5, 10), (0, 10))
        assert d.block_shape(1, 0) == (0, 10)

    def test_owner_of_row_with_empty_block(self):
        d = IrregularBlock2D(10, 10, (0, 5, 5, 10), (0, 10))
        assert d.owner_of_row(4) == 0
        assert d.owner_of_row(5) == 2  # the empty grid row 1 owns nothing

    def test_patch_owner_and_local_index(self):
        d = IrregularBlock2D(12, 12, (0, 4, 12), (0, 6, 12))
        owner = d.patch_owner((5, 9), (7, 11))
        assert d.coords_of(owner) == (1, 1)
        li = d.local_index(owner, (5, 9), (7, 11))
        assert li == (slice(1, 5), slice(1, 5))

    def test_patch_spanning_raises(self):
        d = IrregularBlock2D(12, 12, (0, 4, 12), (0, 6, 12))
        with pytest.raises(ValueError, match="spans"):
            d.patch_owner((2, 6), (0, 3))

    @given(
        m=st.integers(min_value=1, max_value=60),
        cuts=st.lists(st.integers(min_value=0, max_value=60),
                      min_size=0, max_size=4),
    )
    @settings(max_examples=100)
    def test_blocks_partition_rows(self, m, cuts):
        edges = tuple(sorted({0, m} | {c for c in cuts if c <= m}))
        d = IrregularBlock2D(m, m, edges, (0, m))
        covered = []
        for pi in range(d.p):
            lo, hi = d.row_range(pi)
            covered.extend(range(lo, hi))
        assert covered == list(range(m))
        for i in range(m):
            pi = d.owner_of_row(i)
            lo, hi = d.row_range(pi)
            assert lo <= i < hi


class TestTasksOnIrregular:
    def test_tasks_tile_correctly(self):
        da = IrregularBlock2D(12, 12, (0, 5, 12), (0, 3, 12))
        db = IrregularBlock2D(12, 12, (0, 5, 12), (0, 3, 12))
        dc = IrregularBlock2D(12, 12, (0, 5, 12), (0, 3, 12))
        for pi in range(2):
            for pj in range(2):
                tasks = build_tasks(da, db, dc, coords=(pi, pj))
                r0, r1 = dc.row_range(pi)
                c0, c1 = dc.col_range(pj)
                total = sum(t.flops for t in tasks)
                assert total == 2 * (r1 - r0) * (c1 - c0) * 12


class TestSrummaOnIrregular:
    def _run(self, spec, edges_r, edges_c, n=12):
        rng = np.random.default_rng(0)
        a_ref = rng.standard_normal((n, n))
        b_ref = rng.standard_normal((n, n))
        dist = IrregularBlock2D(n, n, edges_r, edges_c)
        holder = {}

        def prog(ctx):
            ga_a = GlobalArray.create(ctx, "A", n, n, dist=dist)
            ga_b = GlobalArray.create(ctx, "B", n, n, dist=dist)
            ga_c = GlobalArray.create(ctx, "C", n, n, dist=dist)
            ga_a.load(a_ref)
            ga_b.load(b_ref)
            holder["dist"] = ga_c.dist
            yield from ctx.mpi.barrier()
            stats = yield from srumma_rank(ctx, ga_a, ga_b, ga_c, beta=0.0)
            yield from ctx.mpi.barrier()
            return stats

        run = run_parallel(spec, dist.nranks, prog)
        c = GlobalArray.assemble(run.armci, "C", holder["dist"])
        assert np.allclose(c, a_ref @ b_ref), "irregular SRUMMA wrong"
        return run

    def test_on_cluster(self):
        self._run(LINUX_MYRINET, (0, 5, 12), (0, 3, 12))

    def test_on_shared_memory(self):
        self._run(SGI_ALTIX, (0, 2, 7, 12), (0, 4, 8, 12))

    def test_skewed_distribution(self):
        """One rank owns most of the matrix — still correct."""
        self._run(LINUX_MYRINET, (0, 10, 12), (0, 10, 12))

    def test_with_empty_block_row(self):
        self._run(LINUX_MYRINET, (0, 6, 6, 12), (0, 6, 12))

    def test_create_with_mismatched_dims_raises(self):
        dist = IrregularBlock2D(8, 8, (0, 8), (0, 8))

        def prog(ctx):
            with pytest.raises(ValueError, match="dist is"):
                GlobalArray.create(ctx, "A", 9, 9, dist=dist)
            yield ctx.engine.timeout(0.0)

        run_parallel(LINUX_MYRINET, 1, prog)
