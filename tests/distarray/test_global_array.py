"""Tests for the GlobalArray distributed matrix."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.distarray import Block2D, GlobalArray
from repro.machines import LINUX_MYRINET, SGI_ALTIX


def _ref(m, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n))


def test_create_and_assemble_roundtrip():
    ref = _ref(12, 12)
    dist_holder = {}

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 12, 12, p=2, q=2)
        ga.load(ref)
        dist_holder["dist"] = ga.dist
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    out = GlobalArray.assemble(run.armci, "A", dist_holder["dist"])
    assert np.array_equal(out, ref)


def test_create_uses_most_square_default_grid():
    grids = {}

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8)
        grids[ctx.rank] = ga.grid
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 6, prog)
    assert all(g == (3, 2) for g in grids.values())


def test_local_block_geometry():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 10, 10, p=2, q=2)
        pi, pj = ga.my_coords()
        assert ga.local().shape == ga.dist.block_shape(pi, pj)
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_get_patch_across_nodes():
    ref = _ref(8, 8, seed=1)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((2, 2))
            # patch inside block (1,1) -> rank 3, other node on 2-way nodes
            yield from ga.get_patch((5, 7), (4, 6), out)
            assert np.allclose(out, ref[5:7, 4:6])

    run_parallel(LINUX_MYRINET, 4, prog)


def test_nb_get_patch_returns_request():
    ref = _ref(8, 8, seed=2)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((4, 4))
            req = ga.nb_get_patch((4, 8), (4, 8), out)
            assert not req.test()
            yield from ctx.wait(req)
            assert req.test()
            assert np.allclose(out, ref[4:8, 4:8])

    run_parallel(LINUX_MYRINET, 4, prog)


def test_patch_spanning_blocks_raises():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(ValueError, match="spans"):
                ga.patch_owner((2, 6), (0, 2))

    run_parallel(LINUX_MYRINET, 4, prog)


def test_patch_out_of_range_raises():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        yield ctx.engine.timeout(0.0)
        with pytest.raises(IndexError):
            ga.patch_owner((0, 9), (0, 1))
        with pytest.raises(IndexError):
            ga.patch_owner((2, 2), (0, 1))  # empty patch

    run_parallel(LINUX_MYRINET, 4, prog)


def test_view_patch_same_domain():
    ref = _ref(8, 8, seed=3)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            # rank 1 = grid (0,1), same node as rank 0 on 2-way nodes.
            assert ga.can_view_patch((0, 4), (4, 8))
            v = ga.view_patch((1, 3), (5, 7))
            assert np.allclose(v, ref[1:3, 5:7])

    run_parallel(LINUX_MYRINET, 4, prog)


def test_view_patch_cross_domain_raises_on_cluster():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            assert not ga.can_view_patch((4, 8), (0, 4))
            with pytest.raises(CommError):
                ga.view_patch((4, 8), (0, 4))

    run_parallel(LINUX_MYRINET, 4, prog)


def test_view_patch_everywhere_on_altix():
    ref = _ref(8, 8, seed=4)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 8, 8, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        v = ga.view_patch((4, 8), (0, 4))
        assert np.allclose(v, ref[4:8, 0:4])

    run_parallel(SGI_ALTIX, 4, prog)


def test_put_patch():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "C", 8, 8, p=2, q=2)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ga.put_patch((4, 6), (6, 8), np.full((2, 2), 5.0))
        yield from ctx.mpi.barrier()
        return ga.dist

    run = run_parallel(LINUX_MYRINET, 4, prog)
    full = GlobalArray.assemble(run.armci, "C", run.results[0])
    assert np.all(full[4:6, 6:8] == 5.0)
    assert np.count_nonzero(full) == 4


def test_uneven_distribution_roundtrip():
    ref = _ref(11, 7, seed=5)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "U", 11, 7, p=3, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        return ga.dist

    run = run_parallel(LINUX_MYRINET, 6, prog)
    out = GlobalArray.assemble(run.armci, "U", run.results[0])
    assert np.array_equal(out, ref)


def test_more_ranks_than_grid_positions():
    """Ranks beyond the grid hold empty blocks and can still participate."""
    ref = _ref(6, 6, seed=6)

    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 6, 6, p=2, q=2)
        ga.load(ref)
        yield from ctx.mpi.barrier()
        if ctx.rank == 5:
            assert ga.my_coords() is None
            out = np.zeros((3, 3))
            yield from ga.get_patch((0, 3), (3, 6), out)
            assert np.allclose(out, ref[0:3, 3:6])

    run_parallel(LINUX_MYRINET, 6, prog)


def test_load_shape_mismatch_raises():
    def prog(ctx):
        ga = GlobalArray.create(ctx, "A", 6, 6, p=1, q=1)
        with pytest.raises(ValueError, match="shape"):
            ga.load(np.zeros((5, 5)))
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 1, prog)


def test_distribution_larger_than_machine_raises():
    def prog(ctx):
        with pytest.raises(ValueError, match="ranks"):
            GlobalArray.create(ctx, "A", 8, 8, p=4, q=4)
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 2, prog)
