"""Tests for 2D block and block-cyclic distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distarray import Block2D, BlockCyclic2D, choose_grid


class TestChooseGrid:
    @pytest.mark.parametrize("nranks,expected", [
        (1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)), (8, (4, 2)),
        (16, (4, 4)), (64, (8, 8)), (128, (16, 8)), (7, (7, 1)), (12, (4, 3)),
    ])
    def test_known_factorisations(self, nranks, expected):
        assert choose_grid(nranks) == expected

    @given(st.integers(min_value=1, max_value=2048))
    def test_grid_always_factors(self, nranks):
        p, q = choose_grid(nranks)
        assert p * q == nranks
        assert p >= q >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            choose_grid(0)


class TestBlock2D:
    def test_even_split(self):
        d = Block2D(8, 8, 2, 2)
        assert d.block_shape(0, 0) == (4, 4)
        assert d.block_slices(1, 1) == (slice(4, 8), slice(4, 8))

    def test_uneven_split_last_block_smaller(self):
        d = Block2D(10, 10, 3, 3)
        # ceil(10/3) = 4: blocks of 4, 4, 2.
        assert d.block_shape(0, 0) == (4, 4)
        assert d.block_shape(2, 2) == (2, 2)

    def test_degenerate_empty_blocks(self):
        # ceil(4/3)=2: rows 0-2, 2-4, empty.
        d = Block2D(4, 4, 3, 1)
        assert d.block_shape(0, 0) == (2, 4)
        assert d.block_shape(1, 0) == (2, 4)
        assert d.block_shape(2, 0) == (0, 4)

    def test_rank_coord_roundtrip(self):
        d = Block2D(8, 8, 3, 4)
        for pi in range(3):
            for pj in range(4):
                r = d.rank_of(pi, pj)
                assert d.coords_of(r) == (pi, pj)

    def test_rank_numbering_row_major(self):
        d = Block2D(8, 8, 2, 3)
        assert d.rank_of(0, 0) == 0
        assert d.rank_of(0, 2) == 2
        assert d.rank_of(1, 0) == 3

    def test_owner_of_element(self):
        d = Block2D(10, 10, 3, 3)
        assert d.owner_of(0, 0) == d.rank_of(0, 0)
        assert d.owner_of(9, 9) == d.rank_of(2, 2)
        assert d.owner_of(4, 3) == d.rank_of(1, 0)

    def test_out_of_range_raises(self):
        d = Block2D(4, 4, 2, 2)
        with pytest.raises(IndexError):
            d.owner_of(4, 0)
        with pytest.raises(IndexError):
            d.rank_of(2, 0)
        with pytest.raises(IndexError):
            d.coords_of(4)

    def test_breakpoints_cover_matrix(self):
        d = Block2D(10, 7, 3, 2)
        rb = d.row_breakpoints()
        cb = d.col_breakpoints()
        assert rb[0] == 0 and rb[-1] == 10
        assert cb[0] == 0 and cb[-1] == 7
        assert rb == sorted(set(rb))

    @given(
        m=st.integers(min_value=0, max_value=200),
        n=st.integers(min_value=0, max_value=200),
        p=st.integers(min_value=1, max_value=8),
        q=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200)
    def test_blocks_partition_matrix_exactly(self, m, n, p, q):
        """Every element belongs to exactly one block."""
        d = Block2D(m, n, p, q)
        cover = np.zeros((m, n), dtype=int)
        for pi, pj in d.iter_blocks():
            rs, cs = d.block_slices(pi, pj)
            cover[rs, cs] += 1
        assert np.all(cover == 1)

    @given(
        m=st.integers(min_value=1, max_value=200),
        p=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100)
    def test_row_owner_consistent_with_ranges(self, m, p):
        d = Block2D(m, m, p, 1)
        for i in range(m):
            pi = d.owner_of_row(i)
            lo, hi = d.row_range(pi)
            assert lo <= i < hi


class TestBlockCyclic2D:
    def test_tile_owner_cycles(self):
        d = BlockCyclic2D(8, 8, 2, 2, 2, 2)
        assert d.tile_owner(0, 0) == (0, 0)
        assert d.tile_owner(1, 0) == (1, 0)
        assert d.tile_owner(2, 0) == (0, 0)
        assert d.tile_owner(3, 3) == (1, 1)

    def test_edge_tiles_are_smaller(self):
        d = BlockCyclic2D(7, 5, 3, 2, 2, 2)
        assert d.tile_shape(0, 0) == (3, 2)
        assert d.tile_shape(2, 2) == (1, 1)

    def test_local_shape_sums_tiles(self):
        d = BlockCyclic2D(10, 10, 3, 3, 2, 2)
        # tiles_m = 4 (3,3,3,1); grid row 0 gets tiles 0,2 -> 3+3=6 rows;
        # grid row 1 gets tiles 1,3 -> 3+1=4 rows.
        assert d.local_rows(0) == 6
        assert d.local_rows(1) == 4
        assert d.local_shape(0) == (6, 6)
        assert d.local_shape(3) == (4, 4)

    @given(
        m=st.integers(min_value=0, max_value=120),
        n=st.integers(min_value=0, max_value=120),
        mb=st.integers(min_value=1, max_value=9),
        nb=st.integers(min_value=1, max_value=9),
        p=st.integers(min_value=1, max_value=4),
        q=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=150)
    def test_local_shapes_partition_total(self, m, n, mb, nb, p, q):
        d = BlockCyclic2D(m, n, mb, nb, p, q)
        total_rows = sum(d.local_rows(pi) for pi in range(p))
        total_cols = sum(d.local_cols(pj) for pj in range(q))
        assert total_rows == m
        assert total_cols == n

    @given(
        m=st.integers(min_value=1, max_value=60),
        mb=st.integers(min_value=1, max_value=7),
        p=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100)
    def test_global_rows_partition(self, m, mb, p):
        d = BlockCyclic2D(m, m, mb, mb, p, 1)
        seen = []
        for pi in range(p):
            seen.extend(d.global_rows_of(pi))
        assert sorted(seen) == list(range(m))

    def test_global_rows_in_packed_order(self):
        d = BlockCyclic2D(10, 10, 3, 3, 2, 1)
        # grid row 0 owns tiles 0 (rows 0-2) and 2 (rows 6-8).
        assert d.global_rows_of(0) == [0, 1, 2, 6, 7, 8]
        assert d.global_rows_of(1) == [3, 4, 5, 9]

    def test_invalid_tile_dims(self):
        with pytest.raises(ValueError):
            BlockCyclic2D(4, 4, 0, 1, 1, 1)
