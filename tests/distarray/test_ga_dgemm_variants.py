"""ga_dgemm through the GA layer: transposes, rectangles, accumulate chains."""

import numpy as np
import pytest

from repro.comm import run_parallel
from repro.distarray import GlobalArray, ga_dgemm, ga_fill
from repro.machines import LINUX_MYRINET, SGI_ALTIX


def _run_ga_dgemm(spec, nranks, m, n, k, transa, transb, alpha, beta, seed=0):
    rng = np.random.default_rng(seed)
    a_ref = rng.standard_normal((k, m) if transa else (m, k))
    b_ref = rng.standard_normal((n, k) if transb else (k, n))
    c0 = rng.standard_normal((m, n))
    holder = {}

    def prog(ctx):
        ga_a = GlobalArray.create(ctx, "A", *a_ref.shape)
        ga_b = GlobalArray.create(ctx, "B", *b_ref.shape)
        ga_c = GlobalArray.create(ctx, "C", m, n)
        ga_a.load(a_ref)
        ga_b.load(b_ref)
        ga_c.load(c0)
        holder["dist"] = ga_c.dist
        yield from ctx.mpi.barrier()
        yield from ga_dgemm(ctx, transa, transb, alpha, ga_a, ga_b, beta, ga_c)
        yield from ctx.mpi.barrier()

    run = run_parallel(spec, nranks, prog)
    got = GlobalArray.assemble(run.armci, "C", holder["dist"])
    opa = a_ref.T if transa else a_ref
    opb = b_ref.T if transb else b_ref
    expected = alpha * (opa @ opb) + beta * c0
    assert np.allclose(got, expected), (m, n, k, transa, transb, alpha, beta)


@pytest.mark.parametrize("transa,transb", [
    (False, False), (True, False), (False, True), (True, True),
])
def test_ga_dgemm_transposes(transa, transb):
    _run_ga_dgemm(LINUX_MYRINET, 4, 20, 20, 20, transa, transb, 1.0, 0.0)


@pytest.mark.parametrize("alpha,beta", [(1.0, 1.0), (2.0, -0.5), (0.0, 2.0)])
def test_ga_dgemm_alpha_beta(alpha, beta):
    _run_ga_dgemm(SGI_ALTIX, 4, 16, 16, 16, False, False, alpha, beta)


def test_ga_dgemm_rectangular_nonsquare_grid():
    _run_ga_dgemm(LINUX_MYRINET, 6, 21, 13, 17, True, False, 1.5, 0.5)


def test_ga_dgemm_chain():
    """Two chained ga_dgemm calls: D = A@B then E = D@A + E."""
    rng = np.random.default_rng(3)
    n = 16
    a_ref = rng.standard_normal((n, n))
    b_ref = rng.standard_normal((n, n))
    holder = {}

    def prog(ctx):
        ga_a = GlobalArray.create(ctx, "A", n, n)
        ga_b = GlobalArray.create(ctx, "B", n, n)
        ga_d = GlobalArray.create(ctx, "D", n, n)
        ga_e = GlobalArray.create(ctx, "E", n, n)
        ga_a.load(a_ref)
        ga_b.load(b_ref)
        holder["dist"] = ga_e.dist
        yield from ctx.mpi.barrier()
        yield from ga_fill(ctx, ga_e, 1.0)
        yield from ctx.mpi.barrier()
        yield from ga_dgemm(ctx, False, False, 1.0, ga_a, ga_b, 0.0, ga_d)
        yield from ctx.mpi.barrier()
        yield from ga_dgemm(ctx, False, False, 1.0, ga_d, ga_a, 1.0, ga_e)
        yield from ctx.mpi.barrier()

    run = run_parallel(LINUX_MYRINET, 4, prog)
    got = GlobalArray.assemble(run.armci, "E", holder["dist"])
    expected = (a_ref @ b_ref) @ a_ref + 1.0
    assert np.allclose(got, expected)
