"""Property tests for patch addressing on Block2D (owner + local index)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distarray import Block2D


@st.composite
def _dist_and_patch(draw):
    m = draw(st.integers(min_value=1, max_value=80))
    n = draw(st.integers(min_value=1, max_value=80))
    p = draw(st.integers(min_value=1, max_value=5))
    q = draw(st.integers(min_value=1, max_value=5))
    d = Block2D(m, n, p, q)
    # Pick a random non-empty block, then a random patch inside it.
    pi = draw(st.integers(min_value=0, max_value=p - 1))
    pj = draw(st.integers(min_value=0, max_value=q - 1))
    r0, r1 = d.row_range(pi)
    c0, c1 = d.col_range(pj)
    if r0 == r1 or c0 == c1:
        return None  # empty block; skipped by the test
    pr0 = draw(st.integers(min_value=r0, max_value=r1 - 1))
    pr1 = draw(st.integers(min_value=pr0 + 1, max_value=r1))
    pc0 = draw(st.integers(min_value=c0, max_value=c1 - 1))
    pc1 = draw(st.integers(min_value=pc0 + 1, max_value=c1))
    return d, (pi, pj), (pr0, pr1), (pc0, pc1)


@given(_dist_and_patch())
@settings(max_examples=200)
def test_patch_owner_matches_block(case):
    if case is None:
        return
    d, (pi, pj), rows, cols = case
    assert d.patch_owner(rows, cols) == d.rank_of(pi, pj)


@given(_dist_and_patch())
@settings(max_examples=200)
def test_local_index_roundtrip(case):
    """Reading the owner's block with local_index equals the global slice."""
    if case is None:
        return
    d, _, rows, cols = case
    owner = d.patch_owner(rows, cols)
    pi, pj = d.coords_of(owner)
    full = np.arange(d.m * d.n, dtype=float).reshape(d.m, d.n)
    block = full[d.block_slices(pi, pj)]
    li = d.local_index(owner, rows, cols)
    assert np.array_equal(block[li],
                          full[rows[0]:rows[1], cols[0]:cols[1]])


@given(_dist_and_patch())
@settings(max_examples=100)
def test_every_element_of_patch_has_same_owner(case):
    if case is None:
        return
    d, _, rows, cols = case
    owner = d.patch_owner(rows, cols)
    for i in (rows[0], rows[1] - 1):
        for j in (cols[0], cols[1] - 1):
            assert d.owner_of(i, j) == owner


def test_spanning_patch_detected_exactly_at_boundary():
    d = Block2D(10, 10, 2, 2)
    # Block boundary at row 5: [4,6) spans.
    with pytest.raises(ValueError, match="spans"):
        d.patch_owner((4, 6), (0, 2))
    # [4,5) and [5,6) each stay inside one block.
    assert d.patch_owner((4, 5), (0, 2)) == 0
    assert d.patch_owner((5, 6), (0, 2)) == d.rank_of(1, 0)
