"""Two-level hierarchical SRUMMA: correctness and scaling behaviour."""

import numpy as np
import pytest

from repro.core.hierarchical import (default_kb_nodes, hierarchical_multiply)
from repro.machines import LINUX_MYRINET, SGI_ALTIX


def _expected(m, n, k, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    return a @ b


class TestCorrectness:
    def test_single_domain_splits_rows(self):
        # One node, two ranks: the inter-node tier is trivial and the
        # result is produced entirely by the intra-node row split.
        res = hierarchical_multiply(LINUX_MYRINET, nranks=2,
                                    m=64, n=48, k=56)
        assert res.node_grid == (1, 1)
        assert res.max_error is not None and res.max_error < 1e-10
        np.testing.assert_allclose(res.c, _expected(64, 48, 56), atol=1e-10)

    @pytest.mark.parametrize("nranks,mnk", [
        (8, (96, 80, 72)),      # 2x2 domain grid
        (16, (192, 160, 224)),  # 4x2, rectangular everything
    ])
    def test_cluster_grids(self, nranks, mnk):
        m, n, k = mnk
        res = hierarchical_multiply(LINUX_MYRINET, nranks=nranks, m=m, n=n, k=k)
        assert res.max_error < 1e-8 * k
        np.testing.assert_allclose(res.c, _expected(m, n, k), atol=1e-8)

    def test_shared_memory_platform(self):
        # sgi-altix has large shared-memory domains: the inter-node tier
        # collapses and every rank works through load/store.
        res = hierarchical_multiply(SGI_ALTIX, nranks=8, m=160, n=128, k=144)
        assert res.max_error < 1e-8 * 144

    def test_uneven_dimensions(self):
        # Dimensions that do not divide the domain grid exercise the
        # ragged-edge block shapes and the owner-aligned panel cuts.
        res = hierarchical_multiply(LINUX_MYRINET, nranks=8,
                                    m=107, n=93, k=131)
        assert res.max_error < 1e-8 * 131

    def test_explicit_kb(self):
        res = hierarchical_multiply(LINUX_MYRINET, nranks=8,
                                    m=96, n=96, k=96, kb=16)
        assert res.kb == 16
        assert res.max_error < 1e-8 * 96

    def test_bad_payload_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            hierarchical_multiply(LINUX_MYRINET, nranks=4, m=32, n=32, k=32,
                                  payload="imaginary")

    def test_bad_kb_rejected(self):
        with pytest.raises(ValueError, match="kb"):
            hierarchical_multiply(LINUX_MYRINET, nranks=4, m=32, n=32, k=32,
                                  kb=0)


class TestSyntheticSchedule:
    def test_synthetic_matches_real_timing(self):
        # The synthetic payload must run the identical schedule: same
        # virtual elapsed, no numpy data.
        real = hierarchical_multiply(LINUX_MYRINET, nranks=8,
                                     m=96, n=80, k=72)
        synth = hierarchical_multiply(LINUX_MYRINET, nranks=8,
                                      m=96, n=80, k=72, payload="synthetic")
        assert synth.elapsed == real.elapsed
        assert synth.c is None and synth.max_error is None

    def test_engine_modes_do_not_change_virtual_time(self):
        on = hierarchical_multiply(LINUX_MYRINET, nranks=16, m=256, n=256,
                                   k=256, payload="synthetic")
        off = hierarchical_multiply(
            LINUX_MYRINET, nranks=16, m=256, n=256, k=256,
            payload="synthetic",
            tuning=dict(batched_dispatch=False, fast_forward=False,
                        aggregation=False))
        assert on.elapsed == off.elapsed  # bitwise, no tolerance


class TestScaling:
    def test_leaders_only_touch_the_network(self):
        # The entire point of the hierarchy: non-leader ranks never put a
        # byte on a NIC.  All network volume must equal what the leader
        # SUMMA tier moves, and grow with the domain grid, not nranks.
        res = hierarchical_multiply(LINUX_MYRINET, nranks=16, m=128, n=128,
                                    k=128, payload="synthetic")
        machine = res.run.machine
        nic = sum(node.nic_out.bytes_carried for node in machine.nodes)
        # Flat SRUMMA at the same size for comparison.
        from repro.core.api import srumma_multiply
        flat = srumma_multiply(LINUX_MYRINET, 16, 128, 128, 128,
                               payload="synthetic", verify=False)
        flat_nic = sum(node.nic_out.bytes_carried
                       for node in flat.run.machine.nodes)
        assert nic < flat_nic

    def test_default_kb_nodes(self):
        assert default_kb_nodes(224, 8) == 56
        assert default_kb_nodes(10_000, 64) == 256   # capped
        assert default_kb_nodes(40, 1024) == 32      # floored at 32
        assert default_kb_nodes(8, 4) == 8
