"""White-box tests of SRUMMA's pipelining and flavour behaviour."""

import numpy as np
import pytest

from repro.core import ScheduleOptions, SrummaOptions, srumma_multiply
from repro.machines import CRAY_X1, LINUX_MYRINET, SGI_ALTIX


def _wait_fraction(res):
    tr = res.run.tracer
    compute = tr.total("compute")
    return tr.total("comm_wait") / compute if compute else 0.0


def test_pipeline_hides_most_waiting():
    """Nonblocking run: comm_wait is a small fraction of compute."""
    nb = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                         payload="synthetic",
                         options=SrummaOptions(flavor="cluster"))
    blk = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster",
                                                nonblocking=False))
    assert _wait_fraction(nb) < 0.5 * _wait_fraction(blk)


def test_blocking_mode_waits_for_every_get():
    res = srumma_multiply(LINUX_MYRINET, 8, 256, 256, 256,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster",
                                                nonblocking=False))
    # Every remote get is waited on from issue to completion.
    assert res.run.tracer.total("comm_wait") > 0


def test_direct_flavor_spends_nothing_on_comm():
    res = srumma_multiply(SGI_ALTIX, 8, 256, 256, 256, payload="synthetic",
                          options=SrummaOptions(flavor="direct"))
    tr = res.run.tracer
    # No gets, no copies; waiting only from the setup barrier.
    assert tr.counters.get("armci_get", 0) == 0
    assert tr.counters.get("shmem_copy", 0) == 0


def test_copy_flavor_charges_copy_bucket():
    res = srumma_multiply(CRAY_X1, 8, 256, 256, 256, payload="synthetic",
                          options=SrummaOptions(flavor="copy"))
    tr = res.run.tracer
    assert tr.counters["shmem_copy"] > 0
    assert tr.total("copy") > 0


def test_get_count_matches_the_model():
    """§2.1: on a square p x p grid each process gets q A-blocks and p
    B-blocks, minus the domain-local ones; with the reuse cache each
    distinct remote patch is fetched exactly once."""
    res = srumma_multiply(LINUX_MYRINET, 16, 256, 256, 256,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster"))
    # 4x4 grid on 2-way nodes: each rank needs 4 A-patches (2 on-node) and
    # 4 B-patches (1 on-node) -> 5 remote gets.  A task is *domain-local*
    # only when both operands are on-node, which happens for the diagonal
    # pairing on some ranks only.
    for s in res.stats:
        assert s.remote_gets == 5
        assert s.tasks == 4
    assert sum(s.local_tasks for s in res.stats) > 0


def test_bytes_fetched_match_patch_sizes():
    res = srumma_multiply(LINUX_MYRINET, 16, 256, 256, 256,
                          payload="synthetic")
    per_patch = 64 * 64 * 8
    for s in res.stats:
        assert s.bytes_fetched == s.remote_gets * per_patch


def test_peak_buffers_bounded():
    res = srumma_multiply(LINUX_MYRINET, 16, 512, 512, 512,
                          payload="synthetic")
    per_patch = 128 * 128 * 8
    for s in res.stats:
        assert s.peak_buffer_bytes <= 4 * per_patch


def test_first_remote_get_overlaps_local_work():
    """Local-first + prefetch-at-start: by the time the first remote task
    runs, its get has been in flight for the whole local phase."""
    res = srumma_multiply(LINUX_MYRINET, 16, 2048, 2048, 2048,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster"))
    # With big blocks, local dgemms take far longer than the transfers, so
    # waits collapse to a small residue (NIC contention at the tail).
    assert _wait_fraction(res) < 0.10


def test_dynamic_filler_reduces_wait_under_skew():
    """On fat nodes (many local fillers) the dynamic executor absorbs the
    contention skew a missing diagonal shift causes."""
    from repro.machines import IBM_SP

    nodiag = ScheduleOptions(diagonal_shift=False)
    static = srumma_multiply(IBM_SP, 64, 1024, 1024, 1024,
                             payload="synthetic",
                             options=SrummaOptions(flavor="cluster",
                                                   schedule=nodiag))
    dynamic = srumma_multiply(IBM_SP, 64, 1024, 1024, 1024,
                              payload="synthetic",
                              options=SrummaOptions(flavor="cluster",
                                                    dynamic=True,
                                                    schedule=nodiag))
    assert dynamic.elapsed < static.elapsed


def test_all_flavors_identical_numerics():
    results = []
    for flavor in ("cluster", "direct", "copy"):
        res = srumma_multiply(SGI_ALTIX, 8, 96, 80, 64, seed=5,
                              options=SrummaOptions(flavor=flavor))
        results.append(res.c)
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])
