"""Tests for the SRUMMA fetched-patch reuse cache (paper §3.1 step 2).

``srumma_rank`` keeps a small LRU of fetched operand patches so adjacent
tasks sharing a patch pay each transfer once.  These tests pin down the
three contracts the cache makes:

- capacity stays bounded at ``_CACHE_SLOTS = max(4, 2*pipeline_depth)``
  buffers (the paper's memory-efficiency claim);
- a cache hit *skips* the duplicate ``nb_get`` issue entirely;
- ``stats.peak_buffer_bytes`` accounts live buffer bytes exactly.

The exactness tests replay each rank's operand plan through a reference
LRU of the same capacity and compare miss counts and byte high-water
marks field-for-field with the run's :class:`RankStats`.
"""

from repro.core import srumma as srumma_mod
from repro.core.api import srumma_multiply
from repro.core.schedule import ScheduleOptions
from repro.core.srumma import SrummaOptions
from repro.distarray.distribution import Block2D, choose_grid
from repro.machines import LINUX_MYRINET

ITEMSIZE = 8  # synthetic runs charge float64 bytes


def _rank_plans(res, nranks, m, n, k, transa, transb,
                schedule=ScheduleOptions()):
    """Reconstruct each rank's ordered operand plan for a synthetic run."""
    p, q = choose_grid(nranks)
    dist_a = Block2D(k if transa else m, m if transa else k, p, q)
    dist_b = Block2D(n if transb else k, k if transb else n, p, q)
    dist_c = Block2D(m, n, p, q)
    machine = res.run.machine
    for rank in range(nranks):
        coords = dist_c.coords_of(rank)
        _, plans, _, _ = srumma_mod._build_plan(
            machine, rank, coords, dist_a, dist_b, dist_c,
            transa, transb, "cluster", schedule)
        yield rank, plans


def _get_keys(plans):
    """(slot, owner, section) cache keys of every get operand, plan order."""
    return [(slot, op.owner, op.index[0].start, op.index[0].stop,
             op.index[1].start, op.index[1].stop)
            for pair in plans for slot, op in enumerate(pair)
            if op.mode == "get"]


def _replay_lru(plans, slots):
    """Reference LRU replay: (miss count, peak live buffer bytes)."""
    cache: dict = {}
    sizes: dict = {}
    live = peak = 0.0
    misses = 0
    for pair in plans:
        for slot, op in enumerate(pair):
            if op.mode != "get":
                continue
            key = (slot, op.owner, op.index[0].start, op.index[0].stop,
                   op.index[1].start, op.index[1].stop)
            if key in cache:
                cache[key] = cache.pop(key)  # refresh LRU position
                continue
            misses += 1
            while len(cache) >= slots:
                old = next(iter(cache))
                cache.pop(old)
                live -= sizes.pop(old)
            nbytes = op.elems * ITEMSIZE
            cache[key] = None
            sizes[key] = nbytes
            live += nbytes
            peak = max(peak, live)
    return misses, peak


# The TT case on a non-square (4x2) grid produces segmented task lists
# where adjacent tasks re-fetch the same operand patch — the reuse the
# paper's "currently held A_ik block is used in consecutive products"
# sentence describes.
TT_CASE = dict(nranks=8, m=32, n=32, k=32, transa=True, transb=True)


def test_cache_hits_skip_duplicate_nb_get_issues():
    res = srumma_multiply(LINUX_MYRINET, TT_CASE["nranks"], TT_CASE["m"],
                          TT_CASE["n"], TT_CASE["k"], transa=True,
                          transb=True, payload="synthetic", verify=False)
    planned = 0
    for _, plans in _rank_plans(res, **TT_CASE):
        planned += len(_get_keys(plans))
    issued = sum(s.remote_gets for s in res.stats)
    assert planned > issued, "workload has no duplicate fetches to reuse"
    # Every skipped issue is a duplicate-key hit; the gap is the reuse win.
    assert planned - issued >= 20


def test_remote_gets_and_peak_bytes_match_reference_lru_exactly():
    res = srumma_multiply(LINUX_MYRINET, TT_CASE["nranks"], TT_CASE["m"],
                          TT_CASE["n"], TT_CASE["k"], transa=True,
                          transb=True, payload="synthetic", verify=False)
    slots = max(4, 2 * SrummaOptions().pipeline_depth)
    for rank, plans in _rank_plans(res, **TT_CASE):
        misses, peak = _replay_lru(plans, slots)
        st = res.stats[rank]
        assert st.remote_gets == misses, f"rank {rank} issue count"
        assert st.peak_buffer_bytes == peak, f"rank {rank} peak bytes"


def test_eviction_keeps_buffer_memory_bounded_at_cache_slots():
    # 16 ranks on a 4x4 grid at N=64: every rank plans 5 distinct remote
    # patches of 16x16 floats — one more than the 4 cache slots, so
    # eviction must cap live buffers at exactly 4 blocks.
    nranks, m = 16, 64
    res = srumma_multiply(LINUX_MYRINET, nranks, m, m, m,
                          payload="synthetic", verify=False)
    block_bytes = (m // 4) * (m // 4) * ITEMSIZE
    slots = max(4, 2 * SrummaOptions().pipeline_depth)
    for st in res.stats:
        assert st.remote_gets > slots - 1  # distinct patches exceed capacity
        assert st.peak_buffer_bytes <= slots * block_bytes
        # Fetched more bytes than ever live at once — eviction really ran.
        assert st.bytes_fetched > st.peak_buffer_bytes


def test_peak_equals_bytes_fetched_when_nothing_evicted():
    # 8 ranks, NN: 3 distinct remote patches per rank, under the 4-slot
    # capacity — the high-water mark must equal total fetched bytes.
    res = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32,
                          payload="synthetic", verify=False)
    for st in res.stats:
        assert 0 < st.remote_gets <= 4
        assert st.peak_buffer_bytes == st.bytes_fetched


def test_deeper_pipeline_widens_the_cache():
    # pipeline_depth=4 -> 8 slots: the 5-distinct-patch workload that
    # overflowed the default cache now fits with no eviction.
    nranks, m = 16, 64
    opts = SrummaOptions(pipeline_depth=4)
    res = srumma_multiply(LINUX_MYRINET, nranks, m, m, m, options=opts,
                          payload="synthetic", verify=False)
    for st in res.stats:
        assert st.peak_buffer_bytes == st.bytes_fetched


def test_cache_counters_are_deterministic_across_runs():
    res1 = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32, transa=True,
                           transb=True, payload="synthetic", verify=False)
    res2 = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32, transa=True,
                           transb=True, payload="synthetic", verify=False)
    assert [s.remote_gets for s in res1.stats] == \
        [s.remote_gets for s in res2.stats]
    assert [s.peak_buffer_bytes for s in res1.stats] == \
        [s.peak_buffer_bytes for s in res2.stats]
