"""Full GEMM semantics: C = alpha * op(A) op(B) + beta * C."""

import numpy as np
import pytest

from repro.core import srumma_multiply
from repro.machines import LINUX_MYRINET, SGI_ALTIX


def test_default_is_plain_product():
    res = srumma_multiply(LINUX_MYRINET, 4, 16, 16, 16)
    assert res.max_error < 1e-10 * 16


@pytest.mark.parametrize("alpha", [2.0, -1.0, 0.5])
def test_alpha_scaling(alpha):
    res = srumma_multiply(LINUX_MYRINET, 4, 16, 16, 16, alpha=alpha)
    assert res.max_error < 1e-9


@pytest.mark.parametrize("beta", [1.0, 2.0, -0.5])
def test_beta_accumulation(beta):
    res = srumma_multiply(LINUX_MYRINET, 4, 16, 16, 16, beta=beta)
    assert res.max_error < 1e-9


def test_alpha_and_beta_together():
    res = srumma_multiply(LINUX_MYRINET, 6, 18, 14, 22, alpha=-2.5, beta=3.0)
    assert res.max_error < 1e-9


def test_gemm_with_transposes():
    res = srumma_multiply(LINUX_MYRINET, 4, 20, 20, 20,
                          transa=True, transb=True, alpha=1.5, beta=0.5)
    assert res.max_error < 1e-9


def test_alpha_zero_beta_keeps_c():
    """alpha=0, beta=1: C is unchanged (the degenerate GEMM identity)."""
    res = srumma_multiply(LINUX_MYRINET, 4, 16, 16, 16, alpha=0.0, beta=1.0)
    rng = np.random.default_rng(1)  # seed + 1 is the c0 seed
    c0 = rng.standard_normal((16, 16))
    assert np.allclose(res.c, c0)


def test_gemm_on_shared_memory_flavor():
    res = srumma_multiply(SGI_ALTIX, 4, 16, 16, 16, alpha=2.0, beta=1.0)
    assert res.max_error < 1e-9


def test_nontrivial_beta_costs_scale_time():
    fast = srumma_multiply(LINUX_MYRINET, 4, 64, 64, 64, beta=0.0,
                           payload="synthetic")
    slow = srumma_multiply(LINUX_MYRINET, 4, 64, 64, 64, beta=2.0,
                           payload="synthetic")
    assert slow.elapsed > fast.elapsed
