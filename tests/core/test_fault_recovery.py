"""SRUMMA degraded-mode recovery: retries, backoff, reliable fallback.

The contract under test:

- injected get failures are retried with deterministic exponential
  backoff and the multiplication still verifies numerically;
- after ``max_retries`` the rank falls back to the reliable
  blocking-copy protocol, so even ``get_fail_prob=1.0`` completes;
- ``RankStats.retries`` / ``faults_absorbed`` and the ``fault:*`` health
  counters expose what happened;
- an *empty* plan is byte-identical to no plan at all (the healthy path
  is the exact pre-fault code path);
- degraded runs are deterministic: same plan + seed => identical elapsed,
  across repeated runs and across worker counts.
"""

import pytest

from repro.bench.parallel import PointSpec, run_points
from repro.core.api import srumma_multiply
from repro.core.srumma import SrummaOptions
from repro.machines import LINUX_MYRINET
from repro.sim.faults import FaultPlan, LinkBrownout, StragglerWindow

N, P = 48, 4


def _run(plan, **kw):
    kw.setdefault("payload", "real")
    kw.setdefault("verify", True)
    return srumma_multiply(LINUX_MYRINET, P, N, N, N, faults=plan, **kw)


class TestRetryRecovery:
    def test_failed_gets_are_retried_and_result_verifies(self):
        plan = FaultPlan(get_fail_prob=0.4, seed=11)
        res = _run(plan)
        assert res.max_error is not None and res.max_error < 1e-10
        assert sum(s.retries for s in res.stats) > 0
        assert sum(s.faults_absorbed for s in res.stats) > 0
        health = res.run.tracer.health()
        assert health["get_failed"] > 0
        assert health["get_retry"] > 0

    def test_prob_one_exhausts_retries_and_falls_back_reliably(self):
        plan = FaultPlan(get_fail_prob=1.0, seed=0, max_retries=2)
        res = _run(plan)
        assert res.max_error is not None and res.max_error < 1e-10
        health = res.run.tracer.health()
        assert health["get_fallback"] > 0  # the blocking-copy escape hatch
        # Every remote get failed, retried max_retries times, then fell back.
        assert sum(s.retries for s in res.stats) >= health["get_fallback"]

    def test_retries_cost_simulated_time(self):
        healthy = _run(None)
        degraded = _run(FaultPlan(get_fail_prob=1.0, seed=0))
        assert degraded.elapsed > healthy.elapsed

    def test_blocking_pipeline_recovers_too(self):
        plan = FaultPlan(get_fail_prob=0.5, seed=3)
        res = _run(plan, options=SrummaOptions(flavor="cluster",
                                               nonblocking=False))
        assert res.max_error is not None and res.max_error < 1e-10

    def test_dynamic_schedule_recovers_too(self):
        plan = FaultPlan(get_fail_prob=0.5, seed=3)
        res = _run(plan, options=SrummaOptions(dynamic=True))
        assert res.max_error is not None and res.max_error < 1e-10

    def test_verifies_under_brownout_and_straggler(self):
        plan = FaultPlan(
            brownouts=(LinkBrownout(0, 0.0, 10.0, 0.25),),
            stragglers=(StragglerWindow(1, 0.0, 10.0, 2.0),),
            get_fail_prob=0.2, seed=5)
        healthy = _run(None)
        degraded = _run(plan)
        assert degraded.max_error is not None and degraded.max_error < 1e-10
        assert degraded.elapsed > healthy.elapsed


class TestHealthyPathExactness:
    def test_empty_plan_matches_no_plan_exactly(self):
        # An installed-but-empty plan exercises the robust wait wrapper;
        # with no draws and no windows it must cost zero simulated time.
        healthy = _run(None)
        empty = _run(FaultPlan())
        assert empty.elapsed == healthy.elapsed  # bit-identical, not approx
        assert sum(s.retries for s in empty.stats) == 0
        assert empty.run.tracer.health() == {}

    def test_zero_prob_draws_do_not_perturb_timing(self):
        healthy = _run(None)
        drawn = _run(FaultPlan(get_fail_prob=0.0, seed=99))
        assert drawn.elapsed == healthy.elapsed


class TestDeterminism:
    def test_same_plan_same_elapsed(self):
        plan = FaultPlan(get_fail_prob=0.3, seed=21)
        a = _run(plan)
        b = _run(plan)
        assert a.elapsed == b.elapsed
        assert [s.retries for s in a.stats] == [s.retries for s in b.stats]

    def test_different_seed_different_failures(self):
        a = _run(FaultPlan(get_fail_prob=0.3, seed=1))
        b = _run(FaultPlan(get_fail_prob=0.3, seed=2))
        # Same probability, different stream: the retry pattern moves.
        assert ([s.retries for s in a.stats] != [s.retries for s in b.stats]
                or a.elapsed != b.elapsed)

    def test_degraded_points_identical_across_jobs(self):
        import dataclasses

        plan = FaultPlan(
            brownouts=(LinkBrownout(0, 0.0, 10.0, 0.5),),
            get_fail_prob=0.3, seed=7)
        specs = [PointSpec("srumma", LINUX_MYRINET, P, N, faults=plan),
                 PointSpec("pdgemm", LINUX_MYRINET, P, N, faults=plan)]
        serial = run_points(specs, jobs=1)
        parallel = run_points(specs, jobs=2)
        assert [dataclasses.asdict(p) for p in parallel] == \
            [dataclasses.asdict(p) for p in serial]


class TestGetTimeout:
    def test_slow_get_times_out_and_recovers(self):
        # A deep brownout makes remote gets crawl; a get_timeout treats
        # them as failed and the retry (after the window) succeeds.
        plan = FaultPlan(
            brownouts=(LinkBrownout(0, 0.0, 0.002, 0.001),),
            get_timeout=0.0005, seed=0)
        res = _run(plan)
        assert res.max_error is not None and res.max_error < 1e-10
        assert sum(s.retries for s in res.stats) > 0
