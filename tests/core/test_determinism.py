"""Determinism regression: identical runs stay bit-identical.

The incremental allocator, heap compaction, and plan caching all reorder
*work*, not *results*: two identical ``srumma_multiply`` runs must produce
bit-identical virtual timings, per-rank statistics, and trace event
sequences.  Every figure benchmark relies on this (reruns must reproduce
results/*.txt exactly), so this test guards the whole optimisation layer.
"""

import numpy as np

from repro.comm.base import run_parallel
from repro.core.schedule import ScheduleOptions
from repro.core.srumma import SrummaOptions, srumma_rank
from repro.distarray.distribution import Block2D
from repro.machines.platforms import get_platform
from repro.sim.trace import Tracer


def _traced_run(nranks=16, mnk=256):
    """One synthetic cluster-flavour nonblocking run with full event log."""
    spec = get_platform("linux-myrinet")  # cluster flavour, 2 CPUs/node
    options = SrummaOptions(flavor="cluster", nonblocking=True,
                            schedule=ScheduleOptions())
    p = q = int(np.sqrt(nranks))
    assert p * q == nranks
    dist = Block2D(mnk, mnk, p, q)
    tracer = Tracer(record_events=True)

    def rank_fn(ctx):
        yield from ctx.mpi.barrier()
        stats = yield from srumma_rank(ctx, dist, dist, dist, options=options)
        return stats

    run = run_parallel(spec, nranks, rank_fn, tracer=tracer)
    return run, tracer


def test_identical_runs_bit_identical():
    run1, tracer1 = _traced_run()
    run2, tracer2 = _traced_run()

    # Virtual elapsed: exact float equality, not approx.
    assert run1.elapsed == run2.elapsed

    # Per-rank RankStats (dataclass __eq__ compares every field, including
    # comm_time and peak_buffer_bytes floats) must match bitwise.
    assert run1.results == run2.results

    # The full ordered trace event sequence — time, rank, kind, detail,
    # data — must be identical event for event.
    assert len(tracer1.events) == len(tracer2.events)
    assert tracer1.events == tracer2.events

    # Accounting buckets and counters too.
    assert tracer1.summary() == tracer2.summary()


def test_engine_counters_deterministic():
    """Steps/compactions are part of the deterministic execution, so they
    must also agree across identical runs (a cheap canary for any hidden
    nondeterminism in the heap hygiene)."""
    run1, _ = _traced_run(nranks=16, mnk=192)
    run2, _ = _traced_run(nranks=16, mnk=192)
    e1, e2 = run1.machine.engine, run2.machine.engine
    assert e1.steps == e2.steps
    assert e1.compactions == e2.compactions
    assert e1.pending_events == e2.pending_events == 0
