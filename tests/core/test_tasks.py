"""Unit and property tests for SRUMMA task-list construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tasks import build_tasks, k_dimension
from repro.distarray import Block2D


def dists(m, n, k, p, q, transa=False, transb=False):
    da = Block2D(k if transa else m, m if transa else k, p, q)
    db = Block2D(n if transb else k, k if transb else n, p, q)
    dc = Block2D(m, n, p, q)
    return da, db, dc


class TestBasicConstruction:
    def test_square_grid_nn_task_count(self):
        """On a p x p grid with aligned sizes, each C block needs exactly
        p tasks (paper: q gets of A + p gets of B, one pair per k-block)."""
        da, db, dc = dists(8, 8, 8, 2, 2)
        tasks = build_tasks(da, db, dc, coords=(0, 0))
        assert len(tasks) == 2

    def test_nonsquare_grid_nn_task_count(self):
        """p != q: the k refinement is the union of both partitions."""
        da, db, dc = dists(12, 12, 12, 3, 2)
        # A k-partition (cols over q=2): 0,6,12; B k-partition (rows over
        # p=3): 0,4,8,12 -> union 0,4,6,8,12 -> 4 intervals.
        tasks = build_tasks(da, db, dc, coords=(0, 0))
        assert len(tasks) == 4

    def test_tasks_cover_k_exactly(self):
        da, db, dc = dists(10, 10, 10, 3, 2)
        tasks = build_tasks(da, db, dc, coords=(1, 1))
        ivs = sorted(t.k_range for t in tasks)
        assert ivs[0][0] == 0
        assert ivs[-1][1] == 10
        for (a, b), (c, d) in zip(ivs[:-1], ivs[1:]):
            assert b == c  # contiguous, no overlap

    def test_empty_for_rank_outside_grid(self):
        da, db, dc = dists(8, 8, 8, 2, 2)
        assert build_tasks(da, db, dc, coords=None) == []

    def test_empty_for_empty_block(self):
        # m=4, p=3: grid row 2 owns an empty row range.
        da, db, dc = dists(4, 4, 4, 3, 1)
        assert build_tasks(da, db, dc, coords=(2, 0)) == []

    def test_shape_mismatch_raises(self):
        da = Block2D(8, 6, 2, 2)
        db = Block2D(7, 8, 2, 2)  # inner dims 6 vs 7
        dc = Block2D(8, 8, 2, 2)
        with pytest.raises(ValueError, match="inner dims"):
            build_tasks(da, db, dc, coords=(0, 0))

    def test_outer_mismatch_raises(self):
        da = Block2D(8, 6, 2, 2)
        db = Block2D(6, 8, 2, 2)
        dc = Block2D(9, 8, 2, 2)
        with pytest.raises(ValueError, match="outer dims"):
            build_tasks(da, db, dc, coords=(0, 0))

    def test_k_dimension_helper(self):
        d = Block2D(8, 6, 2, 2)
        assert k_dimension(d, transa=False) == 6
        assert k_dimension(d, transa=True) == 8

    def test_flops_property(self):
        da, db, dc = dists(8, 8, 8, 2, 2)
        tasks = build_tasks(da, db, dc, coords=(0, 0))
        # Each rank's tasks compute its 4x4 C block over the full k=8.
        assert sum(t.flops for t in tasks) == 2 * 4 * 4 * 8


class TestTransposeGeometry:
    def test_transa_patches_are_in_stored_orientation(self):
        da, db, dc = dists(8, 8, 8, 2, 2, transa=True)
        tasks = build_tasks(da, db, dc, transa=True, coords=(0, 0))
        for t in tasks:
            # stored A is k x m: patch rows span k-interval, cols span C rows
            assert t.a_shape == (t.k_range[1] - t.k_range[0],
                                 t.m_range[1] - t.m_range[0])

    def test_transb_patches_are_in_stored_orientation(self):
        da, db, dc = dists(8, 8, 8, 2, 2, transb=True)
        tasks = build_tasks(da, db, dc, transb=True, coords=(1, 0))
        for t in tasks:
            assert t.b_shape == (t.n_range[1] - t.n_range[0],
                                 t.k_range[1] - t.k_range[0])

    def test_transa_nonsquare_grid_segments_m(self):
        """Stored-A columns (the C row dim) are partitioned over q != p, so
        the C row range must be segmented."""
        da, db, dc = dists(12, 12, 12, 3, 2, transa=True)
        tasks = build_tasks(da, db, dc, transa=True, coords=(0, 0))
        m_segs = sorted({t.m_range for t in tasks})
        # C row range of grid row 0 is [0,4); stored A col partition has a
        # breakpoint at 6 -> no split here; but grid row 1 owns [4,8) which
        # straddles 6 -> split.
        tasks_r1 = build_tasks(da, db, dc, transa=True, coords=(1, 0))
        m_segs_r1 = sorted({t.m_range for t in tasks_r1})
        assert m_segs == [(0, 4)]
        assert m_segs_r1 == [(4, 6), (6, 8)]


@st.composite
def _task_configs(draw):
    m = draw(st.integers(min_value=1, max_value=40))
    n = draw(st.integers(min_value=1, max_value=40))
    k = draw(st.integers(min_value=1, max_value=40))
    p = draw(st.integers(min_value=1, max_value=4))
    q = draw(st.integers(min_value=1, max_value=4))
    transa = draw(st.booleans())
    transb = draw(st.booleans())
    return m, n, k, p, q, transa, transb


class TestTaskProperties:
    @given(_task_configs())
    @settings(max_examples=200, deadline=None)
    def test_tasks_tile_the_c_block_times_k(self, cfg):
        """Across all tasks of one rank, (m_range x n_range x k_range)
        exactly tiles block(C) x [0, k)."""
        m, n, k, p, q, transa, transb = cfg
        da, db, dc = dists(m, n, k, p, q, transa, transb)
        for pi in range(p):
            for pj in range(q):
                tasks = build_tasks(da, db, dc, transa, transb, coords=(pi, pj))
                r0, r1 = dc.row_range(pi)
                c0, c1 = dc.col_range(pj)
                cover = np.zeros((r1 - r0, c1 - c0, k), dtype=int)
                for t in tasks:
                    cover[t.m_range[0] - r0:t.m_range[1] - r0,
                          t.n_range[0] - c0:t.n_range[1] - c0,
                          t.k_range[0]:t.k_range[1]] += 1
                assert np.all(cover == 1)

    @given(_task_configs())
    @settings(max_examples=100, deadline=None)
    def test_patch_shapes_consistent_with_dgemm(self, cfg):
        """op(A patch) is (m_seg x k_seg) and op(B patch) is (k_seg x n_seg)."""
        m, n, k, p, q, transa, transb = cfg
        da, db, dc = dists(m, n, k, p, q, transa, transb)
        tasks = build_tasks(da, db, dc, transa, transb, coords=(0, 0))
        for t in tasks:
            ms = t.m_range[1] - t.m_range[0]
            ns = t.n_range[1] - t.n_range[0]
            ks = t.k_range[1] - t.k_range[0]
            a_op = (t.a_shape[1], t.a_shape[0]) if transa else t.a_shape
            b_op = (t.b_shape[1], t.b_shape[0]) if transb else t.b_shape
            assert a_op == (ms, ks)
            assert b_op == (ks, ns)

    @given(_task_configs())
    @settings(max_examples=100, deadline=None)
    def test_total_flops_equals_2mnk(self, cfg):
        m, n, k, p, q, transa, transb = cfg
        da, db, dc = dists(m, n, k, p, q, transa, transb)
        total = 0
        for pi in range(p):
            for pj in range(q):
                total += sum(t.flops for t in build_tasks(
                    da, db, dc, transa, transb, coords=(pi, pj)))
        assert total == 2 * m * n * k
