"""Tests for flavour resolution and option validation."""

import pytest

from repro.core import ScheduleOptions, SrummaOptions, resolve_flavor
from repro.machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX


def test_auto_resolves_by_machine():
    """The §3.2 decision table: clusters -> cluster; shared-memory machines
    by cacheability."""
    assert resolve_flavor(LINUX_MYRINET) == "cluster"
    assert resolve_flavor(IBM_SP) == "cluster"
    assert resolve_flavor(SGI_ALTIX) == "direct"   # cacheable remote memory
    assert resolve_flavor(CRAY_X1) == "copy"       # non-cacheable


def test_explicit_flavor_passes_through():
    for flavor in ("cluster", "direct", "copy"):
        assert resolve_flavor(SGI_ALTIX, flavor) == flavor


def test_unknown_flavor_rejected():
    with pytest.raises(ValueError, match="unknown SRUMMA flavor"):
        resolve_flavor(LINUX_MYRINET, "teleport")


def test_auto_flips_with_cacheability():
    x1_cacheable = CRAY_X1.with_memory(remote_cacheable=True)
    assert resolve_flavor(x1_cacheable) == "direct"
    altix_uncached = SGI_ALTIX.with_memory(remote_cacheable=False)
    assert resolve_flavor(altix_uncached) == "copy"


def test_options_describe_strings():
    assert SrummaOptions().describe() == "auto/nb/diag+localfirst"
    assert SrummaOptions(flavor="cluster", nonblocking=False).describe() \
        == "cluster/blk/diag+localfirst"
    assert SrummaOptions(dynamic=True).describe() == "auto/dyn/diag+localfirst"
    assert SrummaOptions(
        schedule=ScheduleOptions(diagonal_shift=False)).describe() \
        == "auto/nb/nodiag+localfirst"


def test_options_are_frozen():
    opts = SrummaOptions()
    with pytest.raises(Exception):
        opts.flavor = "copy"  # type: ignore[misc]
