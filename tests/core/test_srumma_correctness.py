"""Numerical correctness of SRUMMA across shapes, variants, platforms."""

import numpy as np
import pytest

from repro.core import ScheduleOptions, SrummaOptions, srumma_multiply
from repro.machines import CRAY_X1, IBM_SP, IDEAL, LINUX_MYRINET, SGI_ALTIX


def ok(res):
    assert res.max_error is not None
    return res.max_error < 1e-8 * max(1, res.k)


def test_square_even_grid():
    res = srumma_multiply(LINUX_MYRINET, 4, 32, 32, 32)
    assert ok(res)
    assert res.c.shape == (32, 32)


def test_single_rank_degenerate():
    res = srumma_multiply(LINUX_MYRINET, 1, 16, 16, 16)
    assert ok(res)


@pytest.mark.parametrize("nranks", [2, 3, 6, 8, 12])
def test_various_rank_counts(nranks):
    res = srumma_multiply(LINUX_MYRINET, nranks, 24, 24, 24)
    assert ok(res)


@pytest.mark.parametrize("m,n,k", [
    (17, 23, 11),   # primes, nothing divides
    (40, 10, 20),   # wide/thin rectangular
    (10, 40, 20),
    (64, 8, 8),
    (5, 5, 64),     # deep k
])
def test_rectangular_shapes(m, n, k):
    res = srumma_multiply(LINUX_MYRINET, 6, m, n, k)
    assert ok(res)


@pytest.mark.parametrize("transa,transb", [
    (False, False), (True, False), (False, True), (True, True),
])
def test_all_transpose_variants_square_grid(transa, transb):
    res = srumma_multiply(LINUX_MYRINET, 4, 20, 20, 20,
                          transa=transa, transb=transb)
    assert ok(res)


@pytest.mark.parametrize("transa,transb", [
    (True, False), (False, True), (True, True),
])
def test_transpose_on_nonsquare_grid(transa, transb):
    """p != q forces the extra m/n segmentation in task construction."""
    res = srumma_multiply(LINUX_MYRINET, 8, 24, 24, 24,
                          transa=transa, transb=transb)  # 4x2 grid
    assert ok(res)


@pytest.mark.parametrize("transa,transb", [
    (True, False), (False, True), (True, True),
])
def test_transpose_rectangular_nonsquare_grid(transa, transb):
    res = srumma_multiply(LINUX_MYRINET, 6, 21, 13, 17,
                          transa=transa, transb=transb)  # 3x2 grid
    assert ok(res)


@pytest.mark.parametrize("spec", [LINUX_MYRINET, IBM_SP, CRAY_X1, SGI_ALTIX, IDEAL],
                         ids=lambda s: s.name)
def test_all_platforms(spec):
    res = srumma_multiply(spec, 8, 24, 24, 24)
    assert ok(res)


@pytest.mark.parametrize("flavor", ["cluster", "direct", "copy"])
def test_explicit_flavors_on_altix(flavor):
    res = srumma_multiply(SGI_ALTIX, 4, 16, 16, 16,
                          options=SrummaOptions(flavor=flavor))
    assert ok(res)
    assert all(s.flavor == flavor for s in res.stats)


def test_copy_flavor_on_x1_produces_copies():
    res = srumma_multiply(CRAY_X1, 8, 32, 32, 32,
                          options=SrummaOptions(flavor="copy"))
    assert ok(res)
    assert sum(s.copies for s in res.stats) > 0


def test_direct_flavor_does_no_communication():
    res = srumma_multiply(SGI_ALTIX, 4, 16, 16, 16,
                          options=SrummaOptions(flavor="direct"))
    assert ok(res)
    assert sum(s.remote_gets for s in res.stats) == 0
    assert sum(s.copies for s in res.stats) == 0


def test_blocking_mode_correct():
    res = srumma_multiply(LINUX_MYRINET, 4, 20, 20, 20,
                          options=SrummaOptions(nonblocking=False))
    assert ok(res)


def test_no_diagonal_shift_correct():
    res = srumma_multiply(
        LINUX_MYRINET, 4, 20, 20, 20,
        options=SrummaOptions(schedule=ScheduleOptions(diagonal_shift=False)))
    assert ok(res)


def test_no_local_first_correct():
    res = srumma_multiply(
        LINUX_MYRINET, 4, 20, 20, 20,
        options=SrummaOptions(schedule=ScheduleOptions(local_first=False)))
    assert ok(res)


def test_explicit_grid():
    res = srumma_multiply(LINUX_MYRINET, 8, 24, 24, 24, p=2, q=4)
    assert ok(res)
    assert res.grid == (2, 4)


def test_grid_smaller_than_machine():
    """Extra ranks idle but the run still completes and verifies."""
    res = srumma_multiply(LINUX_MYRINET, 7, 24, 24, 24, p=2, q=2)
    assert ok(res)


def test_more_grid_than_ranks_raises():
    with pytest.raises(ValueError):
        srumma_multiply(LINUX_MYRINET, 2, 8, 8, 8, p=2, q=2)


def test_matrix_smaller_than_grid():
    """Some ranks own empty blocks."""
    res = srumma_multiply(LINUX_MYRINET, 16, 3, 3, 3)
    assert ok(res)


def test_float32_dtype():
    res = srumma_multiply(LINUX_MYRINET, 4, 16, 16, 16,
                          dtype=np.float32, verify=False)
    assert res.c.dtype == np.float32
    _, _, expected = __import__("repro.core.api", fromlist=["make_operands"]) \
        .make_operands(16, 16, 16, False, False, seed=0, dtype=np.float32)
    assert np.allclose(res.c, expected, atol=1e-3)


def test_deterministic_elapsed_time():
    r1 = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32)
    r2 = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32)
    assert r1.elapsed == r2.elapsed
    assert np.array_equal(r1.c, r2.c)


def test_synthetic_payload_matches_real_timing():
    """The synthetic schedule must cost exactly the same virtual time."""
    real = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48)
    synth = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48, payload="synthetic")
    assert synth.c is None
    assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)


def test_stats_reported():
    res = srumma_multiply(LINUX_MYRINET, 4, 32, 32, 32)
    total_flops = sum(s.flops for s in res.stats)
    assert total_flops == 2 * 32 ** 3
    # On a 2x2 grid over 2-way nodes some tasks are domain-local.
    assert sum(s.local_tasks for s in res.stats) > 0
    assert sum(s.remote_gets for s in res.stats) > 0
