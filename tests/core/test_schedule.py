"""Tests for the §3.1 step-2 task orderings."""

import pytest

from repro.core.schedule import ScheduleOptions, order_tasks, task_is_domain_local
from repro.core.tasks import build_tasks
from repro.distarray import Block2D
from repro.machines import IBM_SP, LINUX_MYRINET, SGI_ALTIX
from repro.sim import Machine


def make_tasks(machine, m=16, p=4, q=4, coords=(0, 0)):
    da = Block2D(m, m, p, q)
    return build_tasks(da, da, da, coords=coords), da


def test_order_preserves_multiset():
    machine = Machine(LINUX_MYRINET, 16)
    tasks, _ = make_tasks(machine)
    ordered = order_tasks(tasks, machine, 0, (0, 0), ScheduleOptions())
    assert sorted(t.k_range for t in ordered) == sorted(t.k_range for t in tasks)
    assert len(ordered) == len(tasks)


def test_empty_task_list():
    machine = Machine(LINUX_MYRINET, 16)
    assert order_tasks([], machine, 0, (0, 0)) == []


def test_local_first_puts_domain_local_tasks_first():
    machine = Machine(LINUX_MYRINET, 16)  # 2-way nodes
    tasks, _ = make_tasks(machine, coords=(0, 0))
    ordered = order_tasks(tasks, machine, 0, (0, 0),
                          ScheduleOptions(local_first=True))
    locality = [task_is_domain_local(machine, 0, t) for t in ordered]
    # Once we hit the first remote task, no local task follows.
    if any(locality):
        first_remote = locality.index(False) if False in locality else len(locality)
        assert all(not loc for loc in locality[first_remote:])


def test_no_local_first_keeps_k_order_rotated():
    machine = Machine(LINUX_MYRINET, 16)
    tasks, _ = make_tasks(machine, coords=(0, 0))
    ordered = order_tasks(tasks, machine, 0, (0, 0),
                          ScheduleOptions(diagonal_shift=False,
                                          local_first=False))
    assert ordered == list(tasks)


def test_diagonal_shift_rotates_by_coords():
    machine = Machine(LINUX_MYRINET, 16)
    tasks, _ = make_tasks(machine, coords=(1, 2))
    ordered = order_tasks(tasks, machine, 6, (1, 2),
                          ScheduleOptions(diagonal_shift=True,
                                          local_first=False))
    start = (1 + 2) % len(tasks)
    assert ordered == list(tasks[start:]) + list(tasks[:start])


def test_diagonal_shift_spreads_first_targets():
    """The point of the shift (paper Fig. 4): ranks in one node start
    their remote fetches at different owner nodes."""
    machine = Machine(IBM_SP, 64)  # 16-way nodes, grid 8x8
    da = Block2D(64, 64, 8, 8)
    first_owner_nodes = set()
    for rank in range(16):  # all ranks of node 0
        coords = da.coords_of(rank)
        tasks = build_tasks(da, da, da, coords=coords)
        ordered = order_tasks(tasks, machine, rank, coords,
                              ScheduleOptions(local_first=False))
        remote = [t for t in ordered
                  if not task_is_domain_local(machine, rank, t)]
        if remote:
            t = remote[0]
            owner = (t.b_owner
                     if not machine.same_domain(rank, t.b_owner)
                     else t.a_owner)
            first_owner_nodes.add(machine.node_of(owner))
    # Without the shift every rank in the node would hit the same first
    # remote owner node; with it the first targets are spread.
    assert len(first_owner_nodes) >= 3


def test_everything_is_local_on_machine_scope():
    machine = Machine(SGI_ALTIX, 16)
    tasks, _ = make_tasks(machine)
    assert all(task_is_domain_local(machine, 0, t) for t in tasks)


def test_describe_strings():
    assert ScheduleOptions().describe() == "diag+localfirst"
    assert ScheduleOptions(diagonal_shift=False,
                           local_first=False).describe() == "nodiag+listorder"
