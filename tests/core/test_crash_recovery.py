"""SRUMMA crash recovery: a node dies mid-run, survivors finish its work.

The contract under test (protocol narrative in ``docs/resilience.md``):

- a :class:`NodeCrash` kills every rank on the node; their results are
  gone (``None``) and they contribute nothing after ``t_fail``;
- survivors redirect gets/puts for dead owners to declustered replicas,
  re-execute the dead ranks' unfinished tasks, and write the recovered
  C blocks back — the *assembled product still verifies numerically*;
- recovery costs simulated time (completion inflates) but the run
  terminates — no deadlock on the dead node;
- everything is deterministic: same plan, same elapsed, across repeated
  runs and across ``run_points`` worker counts.
"""

import pytest

from repro.bench.parallel import PointSpec, run_points
from repro.core.api import srumma_multiply
from repro.core.srumma import SrummaOptions
from repro.machines import LINUX_MYRINET
from repro.sim.faults import FaultPlan, NodeCrash

N, P = 96, 4  # 2 nodes on the 2-CPU-per-node Linux cluster


def _run(faults=None, **kw):
    kw.setdefault("payload", "real")
    kw.setdefault("verify", True)
    kw.setdefault("options", SrummaOptions(dynamic=True))
    return srumma_multiply(LINUX_MYRINET, P, N, N, N, faults=faults, **kw)


def _crash_plan(t_fail, node=1, **kw):
    kw.setdefault("checkpoint_interval", 1)
    return FaultPlan(crashes=(NodeCrash(node=node, t_fail=t_fail),), **kw)


@pytest.fixture(scope="module")
def healthy():
    return _run()


class TestSurvival:
    @pytest.mark.parametrize("frac", [0.3, 0.6, 0.9])
    def test_result_verifies_after_mid_run_crash(self, healthy, frac):
        res = _run(_crash_plan(frac * healthy.elapsed))
        assert res.max_error is not None and res.max_error < 1e-10

    def test_dead_ranks_return_nothing_survivors_recover(self, healthy):
        res = _run(_crash_plan(0.4 * healthy.elapsed))
        # Node 1 hosts ranks 2 and 3 on the 2-CPU-per-node cluster.
        assert res.stats[2] is None and res.stats[3] is None
        survivors = [s for s in res.stats if s is not None]
        assert survivors
        assert sum(s.recovered_tasks for s in survivors) > 0
        health = res.run.tracer.health()
        assert health["node_crash"] == 1
        assert health["recovery_tasks"] > 0

    def test_crash_costs_time_but_terminates(self, healthy):
        res = _run(_crash_plan(0.5 * healthy.elapsed))
        assert res.elapsed > healthy.elapsed

    def test_later_crash_leaves_less_to_recover(self, healthy):
        # The earlier the crash, the more of the dead ranks' work remains
        # (durable checkpoints can only shrink the residue as time passes).
        def recovered(res):
            return sum(s.recovered_tasks for s in res.stats if s is not None)

        early = _run(_crash_plan(0.25 * healthy.elapsed))
        late = _run(_crash_plan(0.9 * healthy.elapsed))
        assert recovered(late) <= recovered(early)

    def test_crash_of_other_node_also_recovers(self, healthy):
        # Kill node 0 instead: ranks 0 and 1 die, replicas walk the other way.
        res = _run(_crash_plan(0.4 * healthy.elapsed, node=0))
        assert res.max_error is not None and res.max_error < 1e-10
        assert res.stats[0] is None and res.stats[1] is None

    def test_synthetic_payload_matches_crash_protocol(self, healthy):
        # The timing-only path exercises the same recovery machinery.
        res = _run(_crash_plan(0.4 * healthy.elapsed),
                   payload="synthetic", verify=False)
        assert res.elapsed > healthy.elapsed
        assert res.run.tracer.health()["recovery_tasks"] > 0

    def test_checkpoints_reduce_reexecution(self, healthy):
        # With checkpointing every task vs never, the recovered-task count
        # after a late crash can only shrink (durable progress is honoured).
        t_fail = 0.8 * healthy.elapsed
        every = _run(_crash_plan(t_fail, checkpoint_interval=1))
        never = _run(_crash_plan(t_fail, checkpoint_interval=1000))
        n_every = sum(s.recovered_tasks for s in every.stats if s is not None)
        n_never = sum(s.recovered_tasks for s in never.stats if s is not None)
        assert n_every <= n_never
        assert every.max_error is not None and every.max_error < 1e-10


class TestDeterminism:
    def test_same_plan_same_run(self, healthy):
        plan = _crash_plan(0.5 * healthy.elapsed)
        a, b = _run(plan), _run(plan)
        assert a.elapsed == b.elapsed
        assert ([None if s is None else s.recovered_tasks for s in a.stats]
                == [None if s is None else s.recovered_tasks for s in b.stats])

    def test_crash_points_identical_across_jobs(self):
        healthy = _run(payload="synthetic", verify=False)
        plan = _crash_plan(0.5 * healthy.elapsed)
        specs = [PointSpec("srumma", LINUX_MYRINET, P, N,
                           options=SrummaOptions(dynamic=True), faults=plan)]
        serial = run_points(specs, jobs=1)
        parallel = run_points(specs, jobs=2)
        assert serial[0].elapsed == parallel[0].elapsed
        assert serial[0].gflops == parallel[0].gflops
