"""Tests for the measured overlap degree (the paper's omega)."""

import pytest

from repro.core import SrummaOptions, measured_omega, srumma_multiply
from repro.machines import LINUX_MYRINET, SGI_ALTIX


def test_omega_in_unit_interval():
    res = srumma_multiply(LINUX_MYRINET, 16, 512, 512, 512,
                          payload="synthetic")
    assert 0.0 <= measured_omega(res) <= 1.0


def test_paper_claim_omega_below_10_percent():
    """§4.1: 'We were able to overlap more than 90% of the communication
    with computation, thus the degree of overlapping (omega) is less than
    10%' — at a paper-scale configuration.  The residual omega is the
    cold-start transfer of ranks with no local task to prime the pipeline,
    so it shrinks as ~1/#gets with the grid size."""
    res = srumma_multiply(LINUX_MYRINET, 128, 8000, 8000, 8000,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster"))
    assert measured_omega(res) < 0.10


def test_blocking_mode_has_high_omega():
    """With blocking gets nothing overlaps compute; omega is bounded below
    1 only because a task's A and B transfers still run concurrently with
    each other (the metric counts their durations separately)."""
    res = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster",
                                                nonblocking=False))
    assert measured_omega(res) > 0.5


def test_nonblocking_omega_below_blocking():
    blk = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                          payload="synthetic",
                          options=SrummaOptions(flavor="cluster",
                                                nonblocking=False))
    nb = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                         payload="synthetic",
                         options=SrummaOptions(flavor="cluster"))
    assert measured_omega(nb) < 0.5 * measured_omega(blk)


def test_no_communication_means_omega_zero():
    res = srumma_multiply(SGI_ALTIX, 4, 64, 64, 64, payload="synthetic",
                          options=SrummaOptions(flavor="direct"))
    assert measured_omega(res) == 0.0


def test_comm_time_populated_for_cluster_runs():
    res = srumma_multiply(LINUX_MYRINET, 8, 256, 256, 256,
                          payload="synthetic")
    assert sum(s.comm_time for s in res.stats) > 0


def test_comm_time_populated_for_copy_flavor():
    from repro.machines import CRAY_X1

    res = srumma_multiply(CRAY_X1, 8, 256, 256, 256, payload="synthetic",
                          options=SrummaOptions(flavor="copy"))
    assert sum(s.comm_time for s in res.stats) > 0