"""Tests for the dynamic runtime task schedule (paper §2)."""

import pytest

from repro.core import ScheduleOptions, SrummaOptions, srumma_multiply
from repro.machines import IBM_SP, LINUX_MYRINET, SGI_ALTIX

DYN = SrummaOptions(flavor="cluster", dynamic=True)


def test_dynamic_is_numerically_correct():
    res = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32, options=DYN)
    assert res.max_error < 1e-9


@pytest.mark.parametrize("transa,transb", [(True, False), (False, True),
                                           (True, True)])
def test_dynamic_transpose_variants(transa, transb):
    res = srumma_multiply(LINUX_MYRINET, 6, 21, 17, 19, options=DYN,
                          transa=transa, transb=transb)
    assert res.max_error < 1e-9


def test_dynamic_on_all_local_machine():
    """With nothing remote the dynamic path degrades to plain execution."""
    res = srumma_multiply(SGI_ALTIX, 4, 16, 16, 16,
                          options=SrummaOptions(flavor="direct", dynamic=True))
    assert res.max_error < 1e-9


def test_dynamic_depth1_equals_static_pipeline():
    """With one outstanding prefetch the dynamic executor visits tasks in
    exactly the static pipeline's order, so the schedules coincide."""
    static = srumma_multiply(IBM_SP, 64, 1024, 1024, 1024,
                             payload="synthetic",
                             options=SrummaOptions(flavor="cluster")).elapsed
    dyn1 = srumma_multiply(IBM_SP, 64, 1024, 1024, 1024,
                           payload="synthetic",
                           options=SrummaOptions(flavor="cluster",
                                                 dynamic=True,
                                                 pipeline_depth=1)).elapsed
    assert dyn1 == pytest.approx(static, rel=1e-9)


def test_dynamic_helps_under_contention_skew():
    """Without the diagonal shift, get completion times are skewed by the
    first-round NIC stampede; completion-order execution recovers part of
    the loss (the paper's motivation for dynamic sequencing)."""
    nodiag = ScheduleOptions(diagonal_shift=False)
    static = srumma_multiply(IBM_SP, 64, 1024, 1024, 1024,
                             payload="synthetic",
                             options=SrummaOptions(flavor="cluster",
                                                   schedule=nodiag)).elapsed
    dynamic = srumma_multiply(IBM_SP, 64, 1024, 1024, 1024,
                              payload="synthetic",
                              options=SrummaOptions(flavor="cluster",
                                                    dynamic=True,
                                                    schedule=nodiag)).elapsed
    assert dynamic < static


def test_dynamic_beats_blocking():
    blocking = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                               payload="synthetic",
                               options=SrummaOptions(flavor="cluster",
                                                     nonblocking=False)).elapsed
    dynamic = srumma_multiply(LINUX_MYRINET, 16, 1024, 1024, 1024,
                              payload="synthetic", options=DYN).elapsed
    assert dynamic < blocking


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_pipeline_depths_all_correct(depth):
    res = srumma_multiply(LINUX_MYRINET, 8, 32, 32, 32,
                          options=SrummaOptions(flavor="cluster",
                                                dynamic=True,
                                                pipeline_depth=depth))
    assert res.max_error < 1e-9


def test_invalid_depth_rejected():
    with pytest.raises(ValueError):
        SrummaOptions(pipeline_depth=0)


def test_dynamic_synthetic_matches_real_timing():
    real = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48, options=DYN)
    synth = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48, options=DYN,
                            payload="synthetic")
    assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)


def test_describe_mentions_dynamic():
    assert "dyn" in DYN.describe()
