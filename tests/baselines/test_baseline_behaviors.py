"""Cross-baseline behavioural tests: communication structure, timing shapes."""

import pytest

from repro.baselines import cannon_multiply, fox_multiply, summa_multiply
from repro.bench import run_matmul
from repro.machines import IDEAL, LINUX_MYRINET


def test_cannon_message_count_matches_structure():
    """s x s Cannon: skew + (s-1) shift rounds + unskew, two matrices.

    On a 3x3 grid: skew moves A for rows 1,2 (6 ranks) and B for cols 1,2
    (6 ranks); each of 2 shift rounds moves A and B on all 9 ranks; unskew
    mirrors the skew.  Every sendrecv is one send."""
    run = cannon_multiply(IDEAL, 9, 27, 27, 27, payload="synthetic").run
    sends = run.tracer.counters["mpi_send"]
    barrier_sends = 9 * 4  # dissemination barrier, ceil(log2 9)=4 rounds
    skew = 6 + 6
    shifts = 2 * (9 + 9)
    unskew = 6 + 6
    assert sends == barrier_sends + skew + shifts + unskew


def test_summa_broadcast_count_scales_with_panels():
    run8 = summa_multiply(IDEAL, 4, 64, 64, 64, kb=8,
                          payload="synthetic").run
    run32 = summa_multiply(IDEAL, 4, 64, 64, 64, kb=32,
                           payload="synthetic").run
    # 8 panels vs 2 panels -> ~4x the broadcast messages (minus barrier).
    barrier = 4 * 2
    s8 = run8.tracer.counters["mpi_send"] - barrier
    s32 = run32.tracer.counters["mpi_send"] - barrier
    assert s8 == 4 * s32


def test_fox_vs_cannon_same_volume_different_pattern():
    """Fox broadcasts A (log-tree) and rolls B; Cannon shifts both.  On the
    same configuration Fox sends at least as many messages."""
    fox = fox_multiply(IDEAL, 9, 27, 27, 27, payload="synthetic").run
    can = cannon_multiply(IDEAL, 9, 27, 27, 27, payload="synthetic").run
    assert (fox.tracer.counters["mpi_send"]
            >= can.tracer.counters["mpi_send"] - 24)  # modulo un-skew traffic


def test_all_baselines_slower_than_srumma_on_cluster():
    cfg = dict(payload="synthetic")
    sr = run_matmul("srumma", LINUX_MYRINET, 16, 1024, **cfg).elapsed
    for alg in ("cannon", "fox", "summa", "pdgemm"):
        other = run_matmul(alg, LINUX_MYRINET, 16, 1024, **cfg).elapsed
        assert other > sr, alg


def test_single_rank_degenerates_to_serial_everywhere():
    """P=1: every algorithm's elapsed approaches the pure kernel time."""
    kernel = IDEAL.cpu.dgemm_time(64, 64, 64)
    for alg in ("srumma", "cannon", "fox", "summa", "pdgemm"):
        t = run_matmul(alg, IDEAL, 1, 64, payload="synthetic").elapsed
        assert t == pytest.approx(kernel, rel=0.25), alg


def test_baselines_have_zero_armci_traffic():
    """The message-passing baselines must not touch the one-sided layer."""
    for alg in ("cannon", "fox", "summa", "pdgemm"):
        run = run_matmul(alg, LINUX_MYRINET, 4, 32).extra  # real payload
    run = cannon_multiply(LINUX_MYRINET, 4, 32, 32, 32).run
    assert run.tracer.counters.get("armci_get", 0) == 0
