"""Tests for Fox's algorithm (BMR)."""

import numpy as np
import pytest

from repro.baselines import cannon_multiply, fox_multiply
from repro.machines import IBM_SP, LINUX_MYRINET


def test_square_divisible():
    res = fox_multiply(LINUX_MYRINET, 4, 16, 16, 16)
    assert res.max_error < 1e-9


@pytest.mark.parametrize("s", [1, 2, 3, 4])
def test_grid_sizes(s):
    res = fox_multiply(LINUX_MYRINET, s * s, 24, 24, 24, s=s)
    assert res.max_error < 1e-9


def test_non_divisible_dims():
    res = fox_multiply(LINUX_MYRINET, 9, 17, 19, 23)
    assert res.max_error < 1e-9


def test_rectangular():
    res = fox_multiply(LINUX_MYRINET, 4, 30, 10, 20)
    assert res.max_error < 1e-9


def test_extra_ranks_idle():
    res = fox_multiply(LINUX_MYRINET, 7, 16, 16, 16)  # s=2, 3 idle
    assert res.grid == (2, 2)
    assert res.max_error < 1e-9


def test_oversized_grid_raises():
    with pytest.raises(ValueError):
        fox_multiply(LINUX_MYRINET, 4, 8, 8, 8, s=3)


def test_synthetic_matches_real_timing():
    real = fox_multiply(LINUX_MYRINET, 4, 32, 32, 32)
    synth = fox_multiply(LINUX_MYRINET, 4, 32, 32, 32, payload="synthetic")
    assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)


def test_agrees_with_cannon():
    f = fox_multiply(LINUX_MYRINET, 9, 27, 27, 27, seed=3)
    c = cannon_multiply(LINUX_MYRINET, 9, 27, 27, 27, seed=3)
    assert np.allclose(f.c, c.c)


def test_runner_dispatch():
    from repro.bench import run_matmul

    point = run_matmul("fox", IBM_SP, 16, 64)
    assert point.algorithm == "fox"
    assert point.gflops > 0


def test_runner_rejects_transpose():
    from repro.bench import run_matmul

    with pytest.raises(ValueError, match="NN"):
        run_matmul("fox", LINUX_MYRINET, 4, 16, transa=True)
