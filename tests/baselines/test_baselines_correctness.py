"""Numerical correctness of the baseline algorithms."""

import numpy as np
import pytest

from repro.baselines import cannon_multiply, pdgemm_multiply, summa_multiply
from repro.machines import IBM_SP, LINUX_MYRINET, SGI_ALTIX


class TestCannon:
    def test_square_divisible(self):
        res = cannon_multiply(LINUX_MYRINET, 4, 16, 16, 16)
        assert res.max_error < 1e-10 * 16

    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_grid_sizes(self, s):
        res = cannon_multiply(LINUX_MYRINET, s * s, 18, 18, 18, s=s)
        assert res.max_error < 1e-9

    def test_non_divisible_dims_padded(self):
        res = cannon_multiply(LINUX_MYRINET, 9, 17, 19, 23)
        assert res.max_error < 1e-9

    def test_rectangular(self):
        res = cannon_multiply(LINUX_MYRINET, 4, 30, 10, 20)
        assert res.max_error < 1e-9

    def test_extra_ranks_idle(self):
        res = cannon_multiply(LINUX_MYRINET, 6, 16, 16, 16)  # s = 2, 2 idle
        assert res.grid == (2, 2)
        assert res.max_error < 1e-9

    def test_oversized_grid_raises(self):
        with pytest.raises(ValueError):
            cannon_multiply(LINUX_MYRINET, 4, 8, 8, 8, s=3)

    def test_synthetic_matches_real_timing(self):
        real = cannon_multiply(LINUX_MYRINET, 4, 32, 32, 32)
        synth = cannon_multiply(LINUX_MYRINET, 4, 32, 32, 32,
                                payload="synthetic")
        assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)


class TestSumma:
    def test_square(self):
        res = summa_multiply(LINUX_MYRINET, 4, 24, 24, 24, kb=8)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("nranks", [1, 2, 6, 8])
    def test_rank_counts(self, nranks):
        res = summa_multiply(LINUX_MYRINET, nranks, 20, 20, 20, kb=8)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("m,n,k", [(13, 17, 19), (40, 8, 12), (8, 40, 12)])
    def test_awkward_shapes(self, m, n, k):
        res = summa_multiply(LINUX_MYRINET, 6, m, n, k, kb=7)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("kb", [1, 3, 16, 100])
    def test_panel_widths(self, kb):
        res = summa_multiply(LINUX_MYRINET, 4, 20, 20, 20, kb=kb)
        assert res.max_error < 1e-9

    def test_invalid_kb(self):
        with pytest.raises(ValueError):
            summa_multiply(LINUX_MYRINET, 4, 8, 8, 8, kb=0)

    def test_synthetic_matches_real_timing(self):
        real = summa_multiply(LINUX_MYRINET, 4, 32, 32, 32, kb=8)
        synth = summa_multiply(LINUX_MYRINET, 4, 32, 32, 32, kb=8,
                               payload="synthetic")
        assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)


class TestPdgemm:
    def test_square_nn(self):
        res = pdgemm_multiply(LINUX_MYRINET, 4, 24, 24, 24, nb=8)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("nranks", [1, 2, 4, 6, 8])
    def test_rank_counts(self, nranks):
        res = pdgemm_multiply(LINUX_MYRINET, nranks, 20, 20, 20, nb=8)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("m,n,k", [(13, 17, 19), (50, 10, 30), (10, 50, 30)])
    def test_awkward_shapes(self, m, n, k):
        res = pdgemm_multiply(LINUX_MYRINET, 6, m, n, k, nb=8)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("transa,transb", [
        (True, False), (False, True), (True, True),
    ])
    def test_transpose_variants(self, transa, transb):
        res = pdgemm_multiply(LINUX_MYRINET, 4, 24, 24, 24, nb=8,
                              transa=transa, transb=transb)
        assert res.max_error < 1e-9

    @pytest.mark.parametrize("transa,transb", [
        (True, False), (False, True), (True, True),
    ])
    def test_transpose_nonsquare_grid_rectangular(self, transa, transb):
        res = pdgemm_multiply(LINUX_MYRINET, 6, 21, 13, 17, nb=5,
                              transa=transa, transb=transb)
        assert res.max_error < 1e-9

    def test_tile_size_one(self):
        res = pdgemm_multiply(LINUX_MYRINET, 4, 9, 9, 9, nb=1)
        assert res.max_error < 1e-9

    def test_tile_bigger_than_matrix(self):
        res = pdgemm_multiply(LINUX_MYRINET, 4, 8, 8, 8, nb=64)
        assert res.max_error < 1e-9

    def test_transpose_costs_more_than_nn(self):
        """pdtran redistribution makes the T case slower (Table 1 shape)."""
        nn = pdgemm_multiply(LINUX_MYRINET, 8, 64, 64, 64, nb=16)
        tt = pdgemm_multiply(LINUX_MYRINET, 8, 64, 64, 64, nb=16,
                             transa=True, transb=True)
        assert tt.elapsed > nn.elapsed

    def test_synthetic_matches_real_timing(self):
        real = pdgemm_multiply(LINUX_MYRINET, 4, 32, 32, 32, nb=8)
        synth = pdgemm_multiply(LINUX_MYRINET, 4, 32, 32, 32, nb=8,
                                payload="synthetic")
        assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)

    def test_synthetic_transpose_matches_real_timing(self):
        real = pdgemm_multiply(LINUX_MYRINET, 4, 24, 24, 24, nb=8, transa=True)
        synth = pdgemm_multiply(LINUX_MYRINET, 4, 24, 24, 24, nb=8,
                                transa=True, payload="synthetic")
        assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)

    @pytest.mark.parametrize("spec", [LINUX_MYRINET, IBM_SP, SGI_ALTIX],
                             ids=lambda s: s.name)
    def test_platforms(self, spec):
        res = pdgemm_multiply(spec, 8, 24, 24, 24, nb=8)
        assert res.max_error < 1e-9


class TestCrossAlgorithm:
    def test_all_algorithms_agree(self):
        """Same seed -> same operands -> same product."""
        from repro.core import srumma_multiply

        sr = srumma_multiply(LINUX_MYRINET, 4, 24, 24, 24, seed=7)
        su = summa_multiply(LINUX_MYRINET, 4, 24, 24, 24, kb=8, seed=7)
        pd = pdgemm_multiply(LINUX_MYRINET, 4, 24, 24, 24, nb=8, seed=7)
        ca = cannon_multiply(LINUX_MYRINET, 4, 24, 24, 24, seed=7)
        assert np.allclose(sr.c, su.c)
        assert np.allclose(sr.c, pd.c)
        assert np.allclose(sr.c, ca.c)
