"""Tests for the table/CSV reporting helpers."""

import pytest

from repro.bench import fmt_bytes, format_table, paper_vs_measured, to_csv


def test_format_table_basic():
    out = format_table(["a", "bb"], [[1, 2.5], [33, 4.0]])
    lines = out.splitlines()
    assert lines[0].split() == ["a", "bb"]
    assert "--" in lines[1]
    assert lines[2].split() == ["1", "2.5"]
    assert lines[3].split() == ["33", "4"]


def test_format_table_title():
    out = format_table(["x"], [[1]], title="hello")
    assert out.startswith("== hello ==")


def test_format_table_column_alignment():
    out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
    lines = out.splitlines()
    # Header padded to the widest cell.
    assert len(lines[1]) == len("a-much-longer-cell")


def test_format_table_row_width_mismatch():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])


def test_float_formatting():
    out = format_table(["v"], [[0.000123], [123456.0], [1.5], [0.0]])
    body = out.splitlines()[2:]
    assert body[0].strip() == "0.000123"
    assert body[1].strip() == "1.23e+05"
    assert body[2].strip() == "1.5"
    assert body[3].strip() == "0"


def test_to_csv():
    csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
    assert csv == "a,b\n1,2\n3,4\n"


def test_to_csv_width_mismatch():
    with pytest.raises(ValueError):
        to_csv(["a"], [[1, 2]])


def test_paper_vs_measured():
    row = paper_vs_measured("fig10/altix", 20.0, 2.6)
    assert "paper=20" in row and "measured=2.6" in row


def test_fmt_bytes():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(2048) == "2KB"
    assert fmt_bytes(1 << 20) == "1MB"
    assert fmt_bytes(3 * (1 << 20)) == "3MB"
