"""Unit tests for the protocol microbenchmarks."""

import pytest

from repro.bench import (
    bandwidth_sweep,
    measure_bandwidth,
    measure_overlap,
    overlap_sweep,
)
from repro.machines import IBM_SP, IDEAL, LINUX_MYRINET


class TestBandwidth:
    def test_large_message_approaches_wire_rate(self):
        bw = measure_bandwidth(LINUX_MYRINET, "armci_get", 8 << 20)
        assert bw == pytest.approx(LINUX_MYRINET.network.bandwidth, rel=0.1)

    def test_small_message_latency_bound(self):
        bw = measure_bandwidth(LINUX_MYRINET, "armci_get", 64)
        # 64 bytes in ~15 us of startup: far below wire rate.
        assert bw < 0.05 * LINUX_MYRINET.network.bandwidth

    def test_bandwidth_monotone_in_size(self):
        series = bandwidth_sweep(LINUX_MYRINET, "armci_get",
                                 sizes=(1 << 10, 1 << 14, 1 << 18, 1 << 22))
        values = [bw for _, bw in series]
        assert values == sorted(values)

    def test_host_assisted_get_capped_by_staging(self):
        """On the SP (no zero-copy) the get rate never beats min(wire, host)."""
        bw = measure_bandwidth(IBM_SP, "armci_get", 4 << 20)
        cap = min(IBM_SP.network.bandwidth,
                  IBM_SP.network.host_copy_bandwidth)
        assert bw <= cap * 1.001

    def test_unknown_protocol_raises(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            measure_bandwidth(LINUX_MYRINET, "pigeon", 1024)

    def test_shmem_protocol_measures_intra_domain(self):
        bw = measure_bandwidth(IBM_SP, "shmem", 1 << 20)
        # Intra-domain copies run at the memcpy stream rate (+latency).
        assert bw == pytest.approx(IBM_SP.memory.copy_bandwidth, rel=0.1)


class TestOverlap:
    def test_armci_full_overlap_on_ideal(self):
        assert measure_overlap(IDEAL, "armci_get", 1 << 20) > 0.99

    def test_overlap_values_bounded(self):
        for s, ov in overlap_sweep(LINUX_MYRINET, "mpi",
                                   sizes=(1 << 12, 1 << 16, 1 << 20)):
            assert 0.0 <= ov <= 1.0

    def test_overlap_rejects_other_protocols(self):
        with pytest.raises(ValueError, match="overlap defined"):
            measure_overlap(LINUX_MYRINET, "shmem", 1024)

    def test_mpi_overlap_eager_vs_rendezvous_ordering(self):
        eager = measure_overlap(LINUX_MYRINET, "mpi", 8 << 10)
        rndv = measure_overlap(LINUX_MYRINET, "mpi", 128 << 10)
        assert eager > rndv + 0.5
