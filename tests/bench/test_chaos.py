"""Tests for the deterministic harness-chaos layer.

Determinism is the load-bearing property: the same seed must produce the
same kill and corruption schedule on every machine and every run, or
chaos drills stop being reproducible evidence and become flakes.
"""

import dataclasses
import warnings

import pytest

from repro.bench.cache import ResultCache
from repro.bench.chaos import ChaosInterrupt, ChaosPlan
from repro.bench.parallel import ExecutionPolicy, PointSpec, SweepReport, run_points
from repro.machines import LINUX_MYRINET

SPECS = [
    PointSpec("srumma", LINUX_MYRINET, 4, 24),
    PointSpec("pdgemm", LINUX_MYRINET, 4, 24),
    PointSpec("summa", LINUX_MYRINET, 4, 16),
]


def _fields(points):
    return [dataclasses.asdict(p) for p in points]


# -- pure-plan determinism --------------------------------------------------

def test_same_seed_same_schedule():
    a = ChaosPlan(seed=42, worker_kill_prob=0.3)
    b = ChaosPlan(seed=42, worker_kill_prob=0.3)
    assert a.kill_schedule(64) == b.kill_schedule(64)
    assert a.kill_schedule(64)  # 0.3 over 256 draws: certainly non-empty


def test_different_seeds_differ():
    a = ChaosPlan(seed=1, worker_kill_prob=0.3)
    b = ChaosPlan(seed=2, worker_kill_prob=0.3)
    assert a.kill_schedule(64) != b.kill_schedule(64)


def test_kinds_draw_from_independent_streams():
    # Turning one chaos kind on must not perturb another kind's schedule.
    bare = ChaosPlan(seed=9, worker_kill_prob=0.25)
    loaded = ChaosPlan(seed=9, worker_kill_prob=0.25,
                       cache_io_error_prob=0.5, cache_corrupt_prob=0.5)
    assert bare.kill_schedule(32) == loaded.kill_schedule(32)


def test_attempts_draw_independently():
    plan = ChaosPlan(seed=3, worker_kill_prob=0.5)
    draws = {plan.kills_worker(5, a) for a in range(16)}
    assert draws == {True, False}  # both outcomes appear across attempts


def test_zero_probability_never_fires():
    plan = ChaosPlan(seed=123)
    assert plan.kill_schedule(128) == []
    assert not plan.cache_io_fails(0)
    assert not plan.corrupts_entry(0)


def test_plan_validation():
    with pytest.raises(ValueError, match="worker_kill_prob"):
        ChaosPlan(worker_kill_prob=1.5)
    with pytest.raises(ValueError, match="kill_after"):
        ChaosPlan(kill_after=0)


def test_json_roundtrip_and_unknown_fields(tmp_path):
    plan = ChaosPlan(seed=7, worker_kill_prob=0.1, kill_after=3)
    assert ChaosPlan.from_json(plan.to_json()) == plan
    with pytest.raises(ValueError, match="unknown chaos plan fields"):
        ChaosPlan.from_json('{"seed": 1, "typo_prob": 0.5}')
    f = tmp_path / "plan.json"
    f.write_text(plan.to_json())
    assert ChaosPlan.parse(str(f)) == plan
    assert ChaosPlan.parse(f"@{f}") == plan
    assert ChaosPlan.parse(plan.to_json()) == plan


# -- harness integration ----------------------------------------------------

def test_worker_kills_absorbed_by_retry_policy():
    plan = ChaosPlan(seed=11, worker_kill_prob=0.5)
    # Pick a seed/prob where every point survives within 4 attempts.
    assert all(any(not plan.kills_worker(i, a) for a in range(4))
               for i in range(len(SPECS)))
    policy = ExecutionPolicy(on_error="retry", retries=3, retry_backoff=0.0,
                             chaos=plan)
    report = SweepReport()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_points(SPECS, jobs=2, policy=policy, report=report)
    assert _fields(points) == _fields(run_points(SPECS, jobs=1))
    assert not report.failed


def test_certain_kills_with_skip_policy_report_failures():
    policy = ExecutionPolicy(
        on_error="skip", chaos=ChaosPlan(seed=1, worker_kill_prob=1.0))
    report = SweepReport()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_points(SPECS, jobs=2, policy=policy, report=report)
    assert points == [None] * len(SPECS)
    assert len(report.failed) == len(SPECS)
    assert not report.ok
    assert "failed=3" in report.summary()


def test_kill_after_interrupts_deterministically():
    policy = ExecutionPolicy(chaos=ChaosPlan(seed=5, kill_after=1))
    with pytest.raises(ChaosInterrupt):
        run_points(SPECS, jobs=1, policy=policy)


def test_injected_cache_io_errors_never_fail_the_sweep(tmp_path):
    cache = ResultCache(directory=tmp_path,
                        chaos=ChaosPlan(seed=2, cache_io_error_prob=1.0))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_points(SPECS, jobs=1, cache=cache)
    assert _fields(points) == _fields(run_points(SPECS, jobs=1))
    assert cache.stats.io_errors > 0
    assert cache.stats.disk_hits == 0


def test_injected_corruption_drives_corrupt_discard_path(tmp_path):
    plan = ChaosPlan(seed=4, cache_corrupt_prob=1.0)
    cache = ResultCache(directory=tmp_path, chaos=plan)
    run_points(SPECS, jobs=1, cache=cache)
    assert cache.stats.writes == len(SPECS)
    # A second cache over the same directory reads the garbled entries.
    fresh = ResultCache(directory=tmp_path)
    points = run_points(SPECS, jobs=1, cache=fresh)
    assert fresh.stats.corrupt_discarded == len(SPECS)
    assert _fields(points) == _fields(run_points(SPECS, jobs=1))
