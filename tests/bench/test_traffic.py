"""SRUMMA phase-traffic replay: determinism and mode equivalence."""

import pytest

from repro.bench.traffic import srumma_phase_traffic
from repro.machines.platforms import get_platform
from repro.sim.cluster import Machine

MODES_OFF = dict(batched_dispatch=False, fast_forward=False,
                 aggregation=False)


def _run(nranks=64, phases=2, subpanels=4, **tuning):
    spec = get_platform("linux-myrinet")
    machine = Machine(spec, nranks, **tuning)
    return srumma_phase_traffic(machine, phases=phases, subpanels=subpanels,
                                base_bytes=float(1 << 16))


def test_deterministic_across_runs():
    a = _run()
    b = _run()
    assert a["virtual_elapsed"] == b["virtual_elapsed"]
    assert a["flows"] == b["flows"]


def test_modes_do_not_change_virtual_time():
    on = _run()
    off = _run(**MODES_OFF)
    assert on["virtual_elapsed"] == off["virtual_elapsed"]  # bitwise
    assert on["flows"] == off["flows"]
    assert on["reallocations"] == off["reallocations"]


def test_bursts_actually_aggregate():
    # Each rank's sub-panel burst shares (path, size, instant) with its
    # node sibling: the aggregated engine must fold members into carriers.
    on = _run()
    assert on["flows_aggregated"] > on["flows"]
    assert on["ff_jumps"] > 0
    off = _run(**MODES_OFF)
    assert off["flows_aggregated"] == 0
    assert off["ff_jumps"] == 0


def test_bad_parameters_rejected():
    spec = get_platform("linux-myrinet")
    machine = Machine(spec, 16)
    with pytest.raises(ValueError, match="phases"):
        srumma_phase_traffic(machine, phases=0)
    machine = Machine(spec, 16)
    with pytest.raises(ValueError, match="subpanels"):
        srumma_phase_traffic(machine, subpanels=0)
