"""Tests for the experiment registry and the reproduce CLI command."""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.cli import main


def test_registry_covers_every_figure_and_table():
    expected = {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "table1", "diag-shift", "resilience", "crash", "detection",
                "comm-bound"}
    assert expected == set(EXPERIMENTS)


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        run_experiment("fig99")


@pytest.mark.parametrize("name", ["fig5", "fig6", "fig7", "fig8"])
def test_quick_experiments_produce_tables(name):
    title, headers, rows = run_experiment(name, full=False)
    assert name.replace("fig", "Fig. ") in title
    assert rows
    assert all(len(r) == len(headers) for r in rows)


def test_quick_fig9_shape():
    _, headers, rows = run_experiment("fig9")
    # zero-copy nonblocking column dominates in every row.
    zc_nb = headers.index("zc+nb")
    for row in rows:
        for j in range(zc_nb + 1, len(row)):
            assert row[zc_nb] >= row[j]


def test_quick_comm_bound_is_a_lower_bound():
    """Every algorithm's measured per-node NIC traffic sits at or above
    the COSMA-style analytic bound, with hierarchical SRUMMA closest."""
    _, headers, rows = run_experiment("comm-bound")
    bound = headers.index("lower bound")
    algs = [headers.index(a) for a in ("srumma", "summa", "hierarchical")]
    hier = headers.index("hierarchical")
    for row in rows:
        for a in algs:
            assert row[a] >= row[bound]
        assert row[hier] == min(row[a] for a in algs)


def test_quick_fig10_srumma_wins():
    _, headers, rows = run_experiment("fig10")
    ratio = headers.index("ratio")
    assert all(row[ratio] > 1.0 for row in rows)


def test_quick_table1_srumma_wins():
    _, headers, rows = run_experiment("table1")
    ratio = headers.index("ratio")
    assert all(row[ratio] > 1.0 for row in rows)


def test_quick_diag_shift_never_hurts():
    _, headers, rows = run_experiment("diag-shift")
    speedup = headers.index("speedup")
    assert all(row[speedup] >= 0.99 for row in rows)


def test_quick_resilience_shape_and_determinism():
    # SRUMMA's degraded-mode inflation is strictly the smallest, and the
    # rows are reproducible for a fixed fault seed.
    title, headers, rows = run_experiment("resilience", fault_seed=0)
    assert "Resilience" in title
    infl = headers.index("inflation")
    by_alg = {row[0]: row[infl] for row in rows}
    assert by_alg["srumma"] < by_alg["summa"]
    assert by_alg["srumma"] < by_alg["pdgemm"]
    assert all(v > 1.0 for v in by_alg.values())  # faults actually bite
    again = run_experiment("resilience", fault_seed=0)
    assert again[2] == rows


def test_resilience_fault_plan_file_overrides_standard(tmp_path):
    # A --fault-plan file bypasses the seed-derived standard plan entirely.
    from repro.sim.faults import FaultPlan, StragglerWindow

    plan = FaultPlan(stragglers=(StragglerWindow(0, 0.0, 1.0, 2.0),))
    path = tmp_path / "plan.json"
    plan.save(path)
    _, headers, rows = run_experiment("resilience",
                                      fault_plan=FaultPlan.load(path))
    infl = headers.index("inflation")
    assert all(row[infl] >= 1.0 for row in rows)


def test_cli_reproduce(capsys):
    assert main(["reproduce", "--experiment", "fig5"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "quick scale" in out


def test_cli_reproduce_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["reproduce", "--experiment", "fig99"])
