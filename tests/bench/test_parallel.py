"""Tests for the parallel point executor.

The load-bearing invariant: each simulation point is seeded and
self-contained, so ``run_points`` must return **field-identical**
``MatmulPoint`` lists for any worker count.  The property test here is the
gate for that; the rest covers ordering, error surfacing, the serial
fallback, and ``--jobs`` resolution.
"""

import dataclasses
import os
import warnings

import pytest

from repro.bench.parallel import (
    PointExecutionError,
    PointSpec,
    resolve_jobs,
    run_points,
)
from repro.bench.runner import sweep
from repro.core.srumma import SrummaOptions
from repro.machines import IBM_SP, LINUX_MYRINET, SGI_ALTIX


def _fields(points):
    return [dataclasses.asdict(p) for p in points]


# A deliberately heterogeneous spec list: multiple machines, algorithms,
# shapes, transposes, options, and seeds — anything that could leak state
# between points would break field-identity across worker placements.
MIXED_SPECS = [
    PointSpec("srumma", LINUX_MYRINET, 4, 24),
    PointSpec("pdgemm", LINUX_MYRINET, 4, 24),
    PointSpec("srumma", SGI_ALTIX, 8, 32, transa=True,
              options=SrummaOptions(flavor="direct")),
    PointSpec("srumma", IBM_SP, 4, 16, 24, 32, transb=True),
    PointSpec("summa", LINUX_MYRINET, 4, 24),
    PointSpec("cannon", LINUX_MYRINET, 4, 16),
    PointSpec("fox", LINUX_MYRINET, 4, 16),
    PointSpec("srumma", LINUX_MYRINET, 4, 24, payload="real", verify=True),
    PointSpec("srumma", LINUX_MYRINET, 4, 24, seed=7, payload="real"),
]


def test_serial_and_parallel_runs_are_field_identical():
    serial = run_points(MIXED_SPECS, jobs=1)
    for jobs in (2, 4):
        parallel = run_points(MIXED_SPECS, jobs=jobs)
        assert _fields(parallel) == _fields(serial), (
            f"jobs={jobs} diverged from serial")


def test_results_come_back_in_submission_order():
    points = run_points(MIXED_SPECS, jobs=3)
    got = [(p.algorithm, p.platform, p.m, p.n, p.k) for p in points]
    want = [(s.algorithm, s.machine.name, s.m,
             s.n if s.n is not None else s.m,
             s.k if s.k is not None else s.m) for s in MIXED_SPECS]
    assert got == want


def test_spec_run_matches_run_matmul_defaults():
    # PointSpec defaults mirror run_matmul's benchmark defaults.
    point = PointSpec("srumma", LINUX_MYRINET, 4, 24).run()
    from repro.bench.runner import run_matmul

    direct = run_matmul("srumma", LINUX_MYRINET, 4, 24)
    assert dataclasses.asdict(point) == dataclasses.asdict(direct)


def test_empty_spec_list():
    assert run_points([], jobs=4) == []


def test_worker_failure_surfaces_spec_and_traceback():
    bad = PointSpec("summa", LINUX_MYRINET, 4, 16, transa=True)
    good = PointSpec("srumma", LINUX_MYRINET, 4, 16)
    with pytest.raises(PointExecutionError) as exc_info:
        run_points([bad, good], jobs=2)
    msg = str(exc_info.value)
    assert "summa" in msg                  # the originating spec
    assert "ValueError" in msg             # the worker-side traceback
    assert exc_info.value.spec == bad


def test_serial_path_raises_original_exception():
    # jobs=1 is the exact old serial path: unwrapped exceptions.
    bad = PointSpec("cannon", LINUX_MYRINET, 4, 16, transb=True)
    with pytest.raises(ValueError, match="NN"):
        run_points([bad], jobs=1)


def test_fallback_to_serial_when_pool_unavailable(monkeypatch):
    from repro.bench import parallel as mod

    def broken_pool(max_workers):
        raise OSError("no processes in this sandbox")

    monkeypatch.setattr(mod, "_make_pool", broken_pool)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        points = run_points(MIXED_SPECS[:3], jobs=4)
    assert any(issubclass(w.category, RuntimeWarning) for w in caught)
    assert _fields(points) == _fields(run_points(MIXED_SPECS[:3], jobs=1))


def test_resolve_jobs():
    assert resolve_jobs(None) == (os.cpu_count() or 1)
    assert resolve_jobs(0) == (os.cpu_count() or 1)
    assert resolve_jobs(1) == 1
    assert resolve_jobs(8) == 8
    with pytest.raises(ValueError, match="positive"):
        resolve_jobs(-2)


def test_sweep_jobs_matches_serial_sweep():
    serial = sweep(["srumma", "pdgemm"], LINUX_MYRINET, [16, 24], 4)
    parallel = sweep(["srumma", "pdgemm"], LINUX_MYRINET, [16, 24], 4, jobs=2)
    assert _fields(parallel) == _fields(serial)
    # Order stays size-major, algorithm-minor.
    assert [(p.algorithm, p.m) for p in parallel] == [
        ("srumma", 16), ("pdgemm", 16), ("srumma", 24), ("pdgemm", 24)]


def test_experiment_rows_identical_serial_vs_parallel():
    from repro.bench.experiments import run_experiment

    serial = run_experiment("fig10", full=False, jobs=1)
    parallel = run_experiment("fig10", full=False, jobs=2)
    assert serial == parallel


# -- pool hardening: timeouts, worker death, bounded retry --------------------

def _sleepy_payload(spec):
    # Module-level so the fork-context pool can pickle it by reference.
    import time
    time.sleep(30.0)
    return ("ok", None, 0.0)


def _suicidal_payload(spec):
    # Dies without a traceback: the parent sees BrokenProcessPool.
    os._exit(1)


def _die_once_payload(spec):
    # First execution kills the worker; the retry (flag file now exists)
    # succeeds.  The flag path rides in through spec.payload.
    flag = spec.payload
    if os.path.exists(flag):
        real = dataclasses.replace(spec, payload="synthetic")
        return ("ok", real.run(), 0.0)
    open(flag, "w").close()
    os._exit(1)


def test_point_timeout_raises_without_joining_worker(monkeypatch):
    from repro.bench import parallel as mod

    monkeypatch.setattr(mod, "_run_point_payload", _sleepy_payload)
    specs = [PointSpec("srumma", LINUX_MYRINET, 4, 16),
             PointSpec("pdgemm", LINUX_MYRINET, 4, 16)]
    import time
    t0 = time.perf_counter()
    with pytest.raises(PointExecutionError, match="per-point timeout"):
        run_points(specs, jobs=2, point_timeout=0.5)
    # shutdown(wait=False): raising must not block on the sleeping worker.
    assert time.perf_counter() - t0 < 25.0


def test_worker_death_retries_once_in_fresh_pool(monkeypatch, tmp_path):
    from repro.bench import parallel as mod

    monkeypatch.setattr(mod, "_run_point_payload", _die_once_payload)
    flag = str(tmp_path / "died-once")
    specs = [PointSpec("srumma", LINUX_MYRINET, 4, 16, payload=flag),
             PointSpec("pdgemm", LINUX_MYRINET, 4, 16, payload=flag)]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        points = run_points(specs, jobs=2)
    assert any("retrying once" in str(w.message) for w in caught)
    assert [p.algorithm for p in points] == ["srumma", "pdgemm"]
    assert _fields(points) == _fields(run_points(
        [dataclasses.replace(s, payload="synthetic") for s in specs], jobs=1))


def test_worker_death_twice_raises_with_spec(monkeypatch):
    from repro.bench import parallel as mod

    monkeypatch.setattr(mod, "_run_point_payload", _suicidal_payload)
    specs = [PointSpec("srumma", LINUX_MYRINET, 4, 16),
             PointSpec("pdgemm", LINUX_MYRINET, 4, 16)]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with pytest.raises(PointExecutionError, match="died twice") as exc_info:
            run_points(specs, jobs=2)
    assert exc_info.value.spec == specs[0]


def test_point_timeout_ignored_on_serial_path(monkeypatch):
    from repro.bench import parallel as mod

    # Serial path must not touch the payload wrapper or the timeout at all.
    monkeypatch.setattr(mod, "_run_point_payload", _sleepy_payload)
    points = run_points([PointSpec("srumma", LINUX_MYRINET, 4, 16)],
                        jobs=1, point_timeout=1e-9)
    assert points[0].algorithm == "srumma"


def test_point_execution_error_pickles_roundtrip():
    import pickle

    err = PointExecutionError(MIXED_SPECS[0], "worker traceback text")
    back = pickle.loads(pickle.dumps(err))
    assert isinstance(back, PointExecutionError)
    assert back.spec == err.spec
    assert back.remote_traceback == err.remote_traceback
    assert str(back) == str(err)


def test_skip_policy_on_pool_path(monkeypatch):
    from repro.bench import parallel as mod
    from repro.bench.parallel import ExecutionPolicy, SweepReport

    monkeypatch.setattr(mod, "_run_point_payload", _suicidal_payload)
    specs = [PointSpec("srumma", LINUX_MYRINET, 4, 16),
             PointSpec("pdgemm", LINUX_MYRINET, 4, 16)]
    report = SweepReport()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_points(specs, jobs=2,
                            policy=ExecutionPolicy(on_error="skip"),
                            report=report)
    assert points == [None, None]
    assert [f.index for f in report.failed] == [0, 1]
    assert all("worker process died" in f.error for f in report.failed)


def test_retry_policy_recovers_worker_death(monkeypatch, tmp_path):
    from repro.bench import parallel as mod
    from repro.bench.parallel import ExecutionPolicy, SweepReport

    monkeypatch.setattr(mod, "_run_point_payload", _die_once_payload)
    flag = str(tmp_path / "died-once")
    specs = [PointSpec("srumma", LINUX_MYRINET, 4, 16, payload=flag),
             PointSpec("pdgemm", LINUX_MYRINET, 4, 16, payload=flag)]
    report = SweepReport()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_points(
            specs, jobs=2,
            policy=ExecutionPolicy(on_error="retry", retries=2,
                                   retry_backoff=0.0),
            report=report)
    assert not report.failed
    assert _fields(points) == _fields(run_points(
        [dataclasses.replace(s, payload="synthetic") for s in specs], jobs=1))


def test_retry_policy_on_serial_path_bounded(tmp_path):
    from repro.bench.parallel import ExecutionPolicy, SweepReport

    bad = PointSpec("summa", LINUX_MYRINET, 4, 16, transa=True)  # raises
    report = SweepReport()
    points = run_points(
        [bad], jobs=1,
        policy=ExecutionPolicy(on_error="retry", retries=2,
                               retry_backoff=0.0),
        report=report)
    assert points == [None]
    assert report.failed[0].attempts == 3  # 1 try + 2 retries
