"""Tests for the durable sweep journal.

The contract under test: an interrupted ``run_points`` batch resumed
with the same journal directory produces **field-identical** results to
an uninterrupted run, re-simulating only the points that had not yet
completed — and no journaling at all happens unless a policy asks for
it.
"""

import dataclasses
import json

import pytest

from repro.bench.chaos import ChaosInterrupt, ChaosPlan
from repro.bench.journal import JOURNAL_SCHEMA_VERSION, SweepJournal, sweep_key
from repro.bench.parallel import ExecutionPolicy, PointSpec, SweepReport, run_points
from repro.machines import LINUX_MYRINET, SGI_ALTIX

SPECS = [
    PointSpec("srumma", LINUX_MYRINET, 4, 24),
    PointSpec("pdgemm", LINUX_MYRINET, 4, 24),
    PointSpec("srumma", SGI_ALTIX, 8, 32),
    PointSpec("summa", LINUX_MYRINET, 4, 16),
]


def _fields(points):
    return [dataclasses.asdict(p) for p in points]


def _journal_files(tmp_path):
    return sorted((tmp_path / "journal").glob("*.jsonl"))


def test_sweep_key_is_stable_and_order_sensitive():
    assert sweep_key(SPECS) == sweep_key(list(SPECS))
    assert sweep_key(SPECS) != sweep_key(SPECS[::-1])
    assert sweep_key(SPECS) != sweep_key(SPECS[:-1])


def test_record_and_resume_roundtrip(tmp_path):
    j = SweepJournal.open(tmp_path, SPECS)
    baseline = [s.run() for s in SPECS]
    for i in (0, 2):
        j.record(i, SPECS[i], baseline[i])
    j.close()

    again = SweepJournal.open(tmp_path, SPECS)
    assert again.resumed_points == 2
    assert set(again.completed) == {0, 2}
    assert _fields([again.completed[0], again.completed[2]]) == _fields(
        [baseline[0], baseline[2]])


def test_finish_unlinks_close_keeps(tmp_path):
    j = SweepJournal.open(tmp_path, SPECS)
    j.record(0, SPECS[0], SPECS[0].run())
    j.close()
    assert len(_journal_files(tmp_path)) == 1

    j2 = SweepJournal.open(tmp_path, SPECS)
    j2.finish()
    assert _journal_files(tmp_path) == []


def test_truncated_trailing_line_is_dropped(tmp_path):
    j = SweepJournal.open(tmp_path, SPECS)
    for i in range(3):
        j.record(i, SPECS[i], SPECS[i].run())
    j.close()
    path = _journal_files(tmp_path)[0]
    raw = path.read_bytes()
    # Chop the file mid-way through the last record: a crash mid-append.
    path.write_bytes(raw[:-20])

    again = SweepJournal.open(tmp_path, SPECS)
    assert set(again.completed) == {0, 1}
    # Opening rewrote the file canonically: loadable line by line again.
    lines = _journal_files(tmp_path)[0].read_text().splitlines()
    assert len(lines) == 3  # header + the two surviving records
    assert json.loads(lines[0])["journal_schema"] == JOURNAL_SCHEMA_VERSION


def test_different_batch_starts_fresh(tmp_path):
    j = SweepJournal.open(tmp_path, SPECS)
    j.record(0, SPECS[0], SPECS[0].run())
    j.close()
    other = SweepJournal.open(tmp_path, SPECS[:-1])
    assert other.completed == {}
    assert other.key != j.key


def test_resume_false_ignores_existing_records(tmp_path):
    j = SweepJournal.open(tmp_path, SPECS)
    j.record(0, SPECS[0], SPECS[0].run())
    j.close()
    fresh = SweepJournal.open(tmp_path, SPECS, resume=False)
    assert fresh.completed == {}
    assert fresh.resumed_points == 0


def test_interrupt_then_resume_is_field_identical(tmp_path):
    baseline = run_points(SPECS, jobs=1)
    policy = ExecutionPolicy(
        journal_dir=tmp_path, chaos=ChaosPlan(seed=7, kill_after=2))
    with pytest.raises(ChaosInterrupt):
        run_points(SPECS, jobs=1, policy=policy)
    assert len(_journal_files(tmp_path)) == 1  # interrupted: file kept

    report = SweepReport()
    resumed = run_points(SPECS, jobs=1,
                         policy=ExecutionPolicy(journal_dir=tmp_path),
                         report=report)
    assert _fields(resumed) == _fields(baseline)
    assert report.from_journal == 2
    assert report.executed == len(SPECS) - 2
    assert _journal_files(tmp_path) == []  # completed: journal retired


def test_journal_replay_skips_cache_and_execution(tmp_path):
    policy = ExecutionPolicy(journal_dir=tmp_path)
    first = run_points(SPECS, jobs=1, policy=policy)
    # A finished batch leaves no journal, so a rerun re-executes.
    report = SweepReport()
    second = run_points(SPECS, jobs=1, policy=policy, report=report)
    assert _fields(second) == _fields(first)
    assert report.from_journal == 0 and report.executed == len(SPECS)


def test_unwritable_journal_degrades_not_fails(tmp_path, monkeypatch):
    blocker = tmp_path / "journal"
    blocker.write_text("not a directory")  # mkdir(parents=True) will fail
    policy = ExecutionPolicy(journal_dir=tmp_path)
    points = run_points(SPECS[:2], jobs=1, policy=policy)
    assert [p.algorithm for p in points] == ["srumma", "pdgemm"]
