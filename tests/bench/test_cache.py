"""Tests for the content-addressed simulation result cache.

Load-bearing invariants:

- the cache changes wall-clock, never results: cached and freshly
  simulated points are field-identical (tuple types included);
- keys are canonical (square defaults normalized, floats hex-rendered,
  sorted-key JSON) and stable across sessions and Python versions;
- a damaged disk entry is discarded and recomputed, never crashed on;
- ``cache=None`` is the exact uncached execution path;
- a point shared by several figures is simulated exactly once per
  process tree (hit/miss counters gate this).
"""

import dataclasses
import json
import os

import pytest

from repro.bench import cache as cache_mod
from repro.bench.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_spec,
    code_fingerprint,
    decode_point,
    default_cache_dir,
    encode_point,
    point_key,
)
from repro.bench.parallel import PointSpec, run_points
from repro.bench.runner import MatmulPoint, run_matmul
from repro.core.srumma import SrummaOptions
from repro.machines import LINUX_MYRINET, SGI_ALTIX
from repro.machines.spec import CpuSpec, MachineSpec, MemorySpec, NetworkSpec


def _fields(points):
    return [dataclasses.asdict(p) for p in points]


# -- key anatomy --------------------------------------------------------------

def test_key_normalizes_square_defaults():
    # PointSpec(m=32) and PointSpec(m=32, n=32, k=32) are the same
    # simulation, so they must share a key (this is what dedupes a
    # Table 1 case against a Fig. 10 sweep point).
    assert point_key(PointSpec("srumma", LINUX_MYRINET, 4, 32)) == \
        point_key(PointSpec("srumma", LINUX_MYRINET, 4, 32, 32, 32))


BASE = PointSpec("srumma", LINUX_MYRINET, 4, 32)


@pytest.mark.parametrize("other", [
    PointSpec("pdgemm", LINUX_MYRINET, 4, 32),
    PointSpec("srumma", SGI_ALTIX, 4, 32),
    PointSpec("srumma", LINUX_MYRINET.with_network(zero_copy=False), 4, 32),
    PointSpec("srumma", LINUX_MYRINET, 8, 32),
    PointSpec("srumma", LINUX_MYRINET, 4, 48),
    PointSpec("srumma", LINUX_MYRINET, 4, 32, 32, 48),
    PointSpec("srumma", LINUX_MYRINET, 4, 32, transa=True),
    PointSpec("srumma", LINUX_MYRINET, 4, 32, payload="real"),
    PointSpec("srumma", LINUX_MYRINET, 4, 32, verify=True),
    PointSpec("srumma", LINUX_MYRINET, 4, 32, seed=1),
    PointSpec("srumma", LINUX_MYRINET, 4, 32, nb=16),
    PointSpec("srumma", LINUX_MYRINET, 4, 32,
              options=SrummaOptions(flavor="cluster", nonblocking=False)),
])
def test_key_distinguishes_every_spec_field(other):
    assert point_key(other) != point_key(BASE)


def test_key_distinguishes_faulty_from_healthy():
    from repro.sim.faults import FaultPlan

    assert point_key(dataclasses.replace(BASE, faults=FaultPlan())) != \
        point_key(BASE)


def _plan_variants():
    from repro.sim.faults import (
        DetectorConfig,
        FaultPlan,
        LinkBrownout,
        NetworkPartition,
        NicOutage,
        NodeCrash,
        NodeRejoin,
        StragglerWindow,
    )

    base = FaultPlan(get_fail_prob=0.1, seed=1)
    det = DetectorConfig()
    return base, [
        dataclasses.replace(base, brownouts=(LinkBrownout(0, 0.1, 0.2, 0.5),)),
        dataclasses.replace(base, outages=(NicOutage(1, 0.1, 0.2),)),
        dataclasses.replace(base, stragglers=(StragglerWindow(0, 0.0, 1.0, 2.0),)),
        dataclasses.replace(base, get_fail_prob=0.2),
        dataclasses.replace(base, seed=2),
        dataclasses.replace(base, max_retries=5),
        dataclasses.replace(base, backoff_base=1e-3),
        dataclasses.replace(base, backoff_factor=3.0),
        dataclasses.replace(base, detect_timeout=1e-3),
        dataclasses.replace(base, get_timeout=0.5),
        dataclasses.replace(base, partitions=(
            NetworkPartition(nodes=(1,), t_start=0.1, t_heal=0.2),)),
        dataclasses.replace(base, detector=det),
        dataclasses.replace(base, detector=dataclasses.replace(
            det, heartbeat_loss_prob=0.1)),
        dataclasses.replace(base, detector=det,
                            crashes=(NodeCrash(node=1, t_fail=0.5),),
                            rejoins=(NodeRejoin(node=1, t_rejoin=1.0),)),
        dataclasses.replace(base, watchdog_grace=5.0),
    ]


def test_key_distinguishes_every_fault_plan_field():
    # _canon walks the nested frozen dataclasses field-by-field, so every
    # FaultPlan knob — windows, probabilities, retry policy — must land in
    # the key: two degraded runs differing in any of them are different
    # simulations.
    base, variants = _plan_variants()
    base_key = point_key(dataclasses.replace(BASE, faults=base))
    keys = {point_key(dataclasses.replace(BASE, faults=v)) for v in variants}
    assert base_key not in keys
    assert len(keys) == len(variants)  # all pairwise distinct


def test_same_plan_value_same_key():
    from repro.sim.faults import standard_degraded_plan

    a = dataclasses.replace(BASE, faults=standard_degraded_plan(0.5, seed=3))
    b = dataclasses.replace(BASE, faults=standard_degraded_plan(0.5, seed=3))
    assert point_key(a) == point_key(b)


def test_golden_key_is_stable_across_sessions_and_python_versions():
    # The key must only depend on the canonical spec content — hex floats,
    # sorted-key compact JSON — never on dict order, repr details, or the
    # Python version (3.10-3.12).  If this golden value moves, the key
    # anatomy changed: bump CACHE_SCHEMA_VERSION.
    golden_machine = MachineSpec(
        name="golden", cpus_per_node=2,
        cpu=CpuSpec(flops=1e9),
        network=NetworkSpec(latency=1e-5, bandwidth=1e8),
        memory=MemorySpec(copy_bandwidth=1e9),
    )
    spec = PointSpec("srumma", golden_machine, 16, 2000, seed=3)
    # Golden for schema v4 (v1: 6f64d7d1..., v2: f0c2fb1f..., v3:
    # 7f1d3cd2...; the failure-detection FaultPlan fields and the schema
    # bump moved it).
    assert point_key(spec) == (
        "0949f0b4f84888e478afcf57a0a3d36cac778a2f5dd1c92e20b78bb01d97e648")


def test_canonical_spec_renders_floats_as_hex():
    blob = canonical_spec(BASE)
    assert blob["machine"]["cpu"]["flops"] == float.hex(LINUX_MYRINET.cpu.flops)
    assert blob["schema"] == CACHE_SCHEMA_VERSION


def test_code_fingerprint_is_hex_and_memoized():
    fp = code_fingerprint()
    assert len(fp) == 64 and int(fp, 16) >= 0
    assert code_fingerprint() is fp  # lru_cache: computed once per process


def test_default_cache_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"


# -- payload round-trip -------------------------------------------------------

def test_point_roundtrip_is_field_identical():
    point = run_matmul("srumma", LINUX_MYRINET, 4, 24)
    back = decode_point(json.loads(json.dumps(encode_point(point))))
    assert dataclasses.asdict(back) == dataclasses.asdict(point)
    # Exact float round-trip (json uses repr: shortest-exact in CPython).
    assert back.gflops == point.gflops
    assert back.elapsed == point.elapsed
    # Tuple-ness survives: extra['grid'] must not decay to a list.
    assert isinstance(back.extra["grid"], tuple)


def test_decode_rejects_non_matmul_payloads():
    with pytest.raises(ValueError, match="MatmulPoint"):
        decode_point({"algorithm": "srumma"})


def test_uncacheable_extra_is_skipped_not_fatal(tmp_path):
    cache = ResultCache(tmp_path)
    point = run_matmul("srumma", LINUX_MYRINET, 4, 24)
    point.extra["weird"] = object()
    cache.put(BASE, point)
    assert cache.stats.uncacheable == 1
    assert cache.stats.writes == 0
    assert cache.get(BASE) is None


# -- the two tiers ------------------------------------------------------------

def test_memory_and_disk_hits(tmp_path):
    spec = PointSpec("srumma", LINUX_MYRINET, 4, 24)
    cache = ResultCache(tmp_path)
    assert cache.get(spec) is None
    point = spec.run()
    cache.put(spec, point)

    hit = cache.get(spec)
    assert _fields([hit]) == _fields([point])
    assert cache.stats.memory_hits == 1 and cache.stats.misses == 1

    # A fresh instance (fresh process, conceptually) hits the disk tier.
    other = ResultCache(tmp_path)
    hit2 = other.get(spec)
    assert _fields([hit2]) == _fields([point])
    assert other.stats.disk_hits == 1
    assert isinstance(hit2.extra["grid"], tuple)


def test_returned_points_are_not_aliased(tmp_path):
    spec = PointSpec("srumma", LINUX_MYRINET, 4, 24)
    cache = ResultCache(tmp_path, use_disk=False)
    cache.put(spec, spec.run())
    first = cache.get(spec)
    first.extra["grid"] = ("poisoned",)
    assert cache.get(spec).extra["grid"] != ("poisoned",)


def test_memory_lru_eviction(tmp_path):
    cache = ResultCache(tmp_path, memory_entries=2, use_disk=False)
    specs = [PointSpec("srumma", LINUX_MYRINET, 2, m) for m in (8, 12, 16)]
    point = specs[0].run()
    for s in specs:
        cache.put(s, point)
    assert len(cache._memory) == 2
    assert cache.get(specs[0]) is None      # evicted (oldest)
    assert cache.get(specs[2]) is not None  # newest survives


def test_corrupt_disk_entry_is_discarded_and_recomputed(tmp_path):
    spec = PointSpec("srumma", LINUX_MYRINET, 4, 24)
    writer = ResultCache(tmp_path)
    writer.put(spec, spec.run())
    [entry] = list(tmp_path.rglob("*.json"))

    for damage in (b"{ not json", b"", b'{"entry_schema": 999}',
                   json.dumps({"entry_schema": CACHE_SCHEMA_VERSION,
                               "key": "0" * 64, "point": {}}).encode()):
        writer.put(spec, spec.run())  # restore
        entry.write_bytes(damage)
        reader = ResultCache(tmp_path)
        assert reader.get(spec) is None
        assert reader.stats.corrupt_discarded == 1
        assert not entry.exists(), "damaged entry must be unlinked"
        # ...and the point is recomputable + cacheable again.
        reader.put(spec, spec.run())
        assert ResultCache(tmp_path).get(spec) is not None


def test_code_fingerprint_change_invalidates_namespace(tmp_path, monkeypatch):
    spec = PointSpec("srumma", LINUX_MYRINET, 4, 24)
    cache = ResultCache(tmp_path)
    cache.put(spec, spec.run())
    old_namespace = cache.namespace
    monkeypatch.setattr(cache_mod, "code_fingerprint",
                        lambda: "f" * 64)
    stale_reader = ResultCache(tmp_path)
    assert stale_reader.namespace != old_namespace
    assert stale_reader.get(spec) is None  # old namespace never consulted


def test_disk_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for m in (8, 12):
        spec = PointSpec("srumma", LINUX_MYRINET, 2, m)
        cache.put(spec, spec.run())
    info = cache.disk_stats()
    assert info["entries"] == 2 and info["bytes"] > 0
    assert info["namespaces"][cache.namespace]["current"]
    assert cache.clear() == 2
    assert cache.disk_stats()["entries"] == 0
    # clear() also wipes the memory tier.
    assert cache.get(PointSpec("srumma", LINUX_MYRINET, 2, 8)) is None


def test_disk_write_errors_are_counted_not_raised(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    monkeypatch.setattr(os, "replace",
                        lambda *a, **k: (_ for _ in ()).throw(OSError("disk")))
    spec = PointSpec("srumma", LINUX_MYRINET, 4, 24)
    with pytest.warns(RuntimeWarning, match="result cache degraded"):
        cache.put(spec, spec.run())
    assert cache.stats.write_errors == 1
    assert cache.stats.io_errors == 1
    assert cache.get(spec) is not None  # memory tier still has it


# -- run_points integration ---------------------------------------------------

SWEEP_SPECS = [PointSpec(alg, LINUX_MYRINET, 4, m)
               for m in (16, 24) for alg in ("srumma", "pdgemm")]


def test_cached_run_points_is_field_identical_to_uncached(tmp_path):
    uncached = run_points(SWEEP_SPECS, jobs=1)
    cache = ResultCache(tmp_path)
    cold = run_points(SWEEP_SPECS, jobs=1, cache=cache)
    warm = run_points(SWEEP_SPECS, jobs=1, cache=cache)
    fresh = run_points(SWEEP_SPECS, jobs=1, cache=ResultCache(tmp_path))
    assert _fields(cold) == _fields(uncached)
    assert _fields(warm) == _fields(uncached)
    assert _fields(fresh) == _fields(uncached)
    assert cache.stats.misses == len(SWEEP_SPECS)
    assert cache.stats.memory_hits == len(SWEEP_SPECS)


def test_duplicate_specs_in_one_batch_simulate_once(tmp_path):
    cache = ResultCache(tmp_path)
    dup = [SWEEP_SPECS[0], SWEEP_SPECS[1], SWEEP_SPECS[0],
           PointSpec("srumma", LINUX_MYRINET, 4, 16, 16, 16)]  # = SPECS[0]
    points = run_points(dup, jobs=1, cache=cache)
    assert cache.stats.misses == 2       # only the two unique points ran
    assert cache.stats.deduped == 2
    assert _fields([points[0]]) == _fields([points[2]]) == _fields([points[3]])


def test_shared_point_across_figures_simulated_once(tmp_path):
    # Two figure-style batches sharing a point (the fig10-full sweep point
    # and the table1-full case express the same simulation with different
    # spec spellings); one cache per "process tree" -> one simulation.
    fig_a = [PointSpec(alg, LINUX_MYRINET, 4, 24) for alg in ("srumma", "pdgemm")]
    fig_b = [PointSpec("srumma", LINUX_MYRINET, 4, 24, 24, 24),  # shared
             PointSpec("srumma", LINUX_MYRINET, 4, 32)]
    cache = ResultCache(tmp_path)
    run_points(fig_a, jobs=1, cache=cache)
    run_points(fig_b, jobs=1, cache=cache)
    unique = {point_key(s) for s in fig_a + fig_b}
    assert cache.stats.misses == len(unique) == 3
    assert cache.stats.hits == 1


def test_full_scale_fig10_and_table1_really_share_points():
    # The dedup above is not hypothetical: these exact spec spellings come
    # from _fig10 (full) and _table1 (full) in bench/experiments.py.
    from repro.machines import IBM_SP

    fig10_spelling = point_key(PointSpec("srumma", LINUX_MYRINET, 128, 12000))
    table1_spelling = point_key(
        PointSpec("srumma", LINUX_MYRINET, 128, 12000, 12000, 12000))
    assert fig10_spelling == table1_spelling
    assert point_key(PointSpec("pdgemm", IBM_SP, 256, 8000)) == \
        point_key(PointSpec("pdgemm", IBM_SP, 256, 8000, 8000, 8000))


def test_run_points_without_cache_never_touches_the_cache(tmp_path, monkeypatch):
    # cache=None must be the exact pre-cache execution path: no key is
    # computed, nothing is read or written.
    monkeypatch.setattr(cache_mod, "point_key",
                        lambda spec: pytest.fail("point_key called"))
    points = run_points(SWEEP_SPECS[:2], jobs=1, cache=None)
    assert len(points) == 2
    assert not (tmp_path / "repro-cache").exists()


@pytest.mark.parametrize("jobs", [1, 2])
def test_cache_results_deterministic_for_any_worker_count(tmp_path, jobs):
    cache = ResultCache(tmp_path / f"jobs{jobs}")
    got = run_points(SWEEP_SPECS, jobs=jobs, cache=cache)
    assert _fields(got) == _fields(run_points(SWEEP_SPECS, jobs=1))


def test_partially_warm_batch_mixes_hits_and_misses(tmp_path):
    cache = ResultCache(tmp_path)
    run_points(SWEEP_SPECS[:2], jobs=1, cache=cache)
    got = run_points(SWEEP_SPECS, jobs=1, cache=cache)
    assert _fields(got) == _fields(run_points(SWEEP_SPECS, jobs=1))
    assert cache.stats.memory_hits == 2
    assert cache.stats.misses == len(SWEEP_SPECS)


def test_verbose_progress_lines(tmp_path, capsys):
    cache = ResultCache(tmp_path)
    run_points(SWEEP_SPECS[:2], jobs=1, cache=cache, verbose=True)
    run_points(SWEEP_SPECS[:2], jobs=1, cache=cache, verbose=True)
    err = capsys.readouterr().err
    assert err.count("(miss)") == 2
    assert err.count("(hit)") == 2
    assert "[point 1/2] srumma/linux-myrinet m=16 n=16 k=16 NN P=4:" in err


def test_verbose_without_cache(capsys):
    run_points(SWEEP_SPECS[:2], jobs=1, verbose=True)
    err = capsys.readouterr().err
    assert err.count("(run)") == 2


# -- experiment-level integration --------------------------------------------

def test_experiment_rerun_hits_cache_entirely(tmp_path):
    from repro.bench.experiments import run_experiment

    cache = ResultCache(tmp_path)
    first = run_experiment("fig5", cache=cache)
    misses = cache.stats.misses
    assert misses > 0
    second = run_experiment("fig5", cache=cache)
    assert second == first
    assert cache.stats.misses == misses  # every point served from cache
    assert cache.stats.memory_hits == misses
    assert run_experiment("fig5") == first  # and identical to uncached
