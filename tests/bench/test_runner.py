"""Tests for the experiment driver."""

import pytest

from repro.bench import default_nb, run_matmul, sweep
from repro.machines import IDEAL, LINUX_MYRINET


def test_run_matmul_dispatches_all_algorithms():
    for alg in ("srumma", "pdgemm", "summa", "cannon"):
        point = run_matmul(alg, LINUX_MYRINET, 4, 24)
        assert point.algorithm == alg
        assert point.gflops > 0
        assert point.m == point.n == point.k == 24


def test_run_matmul_rectangular_defaults():
    point = run_matmul("srumma", LINUX_MYRINET, 4, 16, 8, 12)
    assert (point.m, point.n, point.k) == (16, 8, 12)


def test_run_matmul_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown algorithm"):
        run_matmul("strassen", LINUX_MYRINET, 4, 16)


@pytest.mark.parametrize("algorithm", ["summa", "cannon", "fox"])
@pytest.mark.parametrize("flags", [
    {"transa": True},
    {"transb": True},
    {"transa": True, "transb": True},
])
def test_nn_only_baselines_reject_transpose(algorithm, flags):
    with pytest.raises(ValueError, match="NN"):
        run_matmul(algorithm, LINUX_MYRINET, 4, 16, **flags)


def test_real_payload_with_verification():
    point = run_matmul("srumma", LINUX_MYRINET, 4, 16, payload="real",
                       verify=True)
    assert point.gflops > 0


def test_sweep_shape():
    points = sweep(["srumma", "pdgemm"], LINUX_MYRINET, [16, 24], 4)
    assert len(points) == 4
    assert {(p.algorithm, p.m) for p in points} == {
        ("srumma", 16), ("pdgemm", 16), ("srumma", 24), ("pdgemm", 24)}


def test_point_label():
    p = run_matmul("srumma", IDEAL, 2, 8, transa=True)
    assert "TN" in p.label
    assert "ideal" in p.label


def test_default_nb_bounds():
    assert default_nb(100, 4) == 32      # floor
    assert default_nb(100000, 4) == 256  # cap
    assert 1 <= default_nb(10, 64) <= 10
    # Never exceeds the matrix.
    assert default_nb(5, 1) == 5


def test_default_nb_tiny_matrices():
    # The floor (32) would exceed these matrices; the result must clamp
    # to N, never below 1.
    assert default_nb(1, 1) == 1
    assert default_nb(1, 1024) == 1
    assert default_nb(2, 16) == 2
    assert default_nb(31, 4) == 31


def test_default_nb_huge_rank_counts():
    # q = isqrt(nranks) can dwarf N: the panel formula goes to zero, the
    # floor kicks in, and the N-clamp keeps it valid.
    assert default_nb(100, 10_000) == 32          # floored, N > 32
    assert default_nb(10, 1_000_000) == 10        # floored then clamped to N
    assert default_nb(1, 2**31) == 1
    # Non-square rank counts floor the sqrt: q = isqrt(8) = 2.
    assert default_nb(1000, 8) == 1000 // (2 * 2)


def test_default_nb_uses_module_level_math():
    # The function is called per point in hot sweep loops; the math import
    # must be at module scope, not re-executed per call.
    from repro.bench import runner as runner_mod

    assert hasattr(runner_mod, "math")


def test_determinism_across_calls():
    a = run_matmul("pdgemm", LINUX_MYRINET, 8, 64)
    b = run_matmul("pdgemm", LINUX_MYRINET, 8, 64)
    assert a.elapsed == b.elapsed
