"""Tests for the experiment driver."""

import pytest

from repro.bench import default_nb, run_matmul, sweep
from repro.machines import IDEAL, LINUX_MYRINET


def test_run_matmul_dispatches_all_algorithms():
    for alg in ("srumma", "pdgemm", "summa", "cannon"):
        point = run_matmul(alg, LINUX_MYRINET, 4, 24)
        assert point.algorithm == alg
        assert point.gflops > 0
        assert point.m == point.n == point.k == 24


def test_run_matmul_rectangular_defaults():
    point = run_matmul("srumma", LINUX_MYRINET, 4, 16, 8, 12)
    assert (point.m, point.n, point.k) == (16, 8, 12)


def test_run_matmul_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown algorithm"):
        run_matmul("strassen", LINUX_MYRINET, 4, 16)


def test_summa_rejects_transpose():
    with pytest.raises(ValueError, match="NN"):
        run_matmul("summa", LINUX_MYRINET, 4, 16, transa=True)


def test_cannon_rejects_transpose():
    with pytest.raises(ValueError, match="NN"):
        run_matmul("cannon", LINUX_MYRINET, 4, 16, transb=True)


def test_real_payload_with_verification():
    point = run_matmul("srumma", LINUX_MYRINET, 4, 16, payload="real",
                       verify=True)
    assert point.gflops > 0


def test_sweep_shape():
    points = sweep(["srumma", "pdgemm"], LINUX_MYRINET, [16, 24], 4)
    assert len(points) == 4
    assert {(p.algorithm, p.m) for p in points} == {
        ("srumma", 16), ("pdgemm", 16), ("srumma", 24), ("pdgemm", 24)}


def test_point_label():
    p = run_matmul("srumma", IDEAL, 2, 8, transa=True)
    assert "TN" in p.label
    assert "ideal" in p.label


def test_default_nb_bounds():
    assert default_nb(100, 4) == 32      # floor
    assert default_nb(100000, 4) == 256  # cap
    assert 1 <= default_nb(10, 64) <= 10
    # Never exceeds the matrix.
    assert default_nb(5, 1) == 5


def test_determinism_across_calls():
    a = run_matmul("pdgemm", LINUX_MYRINET, 8, 64)
    b = run_matmul("pdgemm", LINUX_MYRINET, 8, 64)
    assert a.elapsed == b.elapsed
