"""Tests for the concurrency-hardened result cache.

Three properties under test: the disk tier stays *bounded* (LRU
eviction), stays *coordinated* (single-flight locks with stale-lock
reaping), and stays *optional* (every I/O failure mode degrades to
uncached execution — a cache must never fail a sweep).
"""

import dataclasses
import os
import threading
import time
import warnings

import pytest

from repro.bench.cache import ResultCache
from repro.bench.parallel import ExecutionPolicy, PointSpec, SweepReport, run_points
from repro.machines import LINUX_MYRINET, SGI_ALTIX

SPECS = [
    PointSpec("srumma", LINUX_MYRINET, 4, 24),
    PointSpec("pdgemm", LINUX_MYRINET, 4, 24),
    PointSpec("srumma", SGI_ALTIX, 8, 32),
    PointSpec("summa", LINUX_MYRINET, 4, 16),
]


def _fields(points):
    return [dataclasses.asdict(p) for p in points]


def _entry_files(cache):
    return sorted(p for p in cache.namespace_dir.rglob("*.json"))


# -- disk-tier size bound ---------------------------------------------------

def test_lru_eviction_respects_max_bytes(tmp_path):
    probe = ResultCache(directory=tmp_path)
    run_points(SPECS[:1], cache=probe)
    entry_size = probe.disk_stats()["bytes"]
    probe.clear()

    cache = ResultCache(directory=tmp_path, max_bytes=2 * entry_size + 64)
    run_points(SPECS, cache=cache)
    assert cache.stats.evictions >= 2
    assert cache.disk_stats()["bytes"] <= 2 * entry_size + 64


def test_eviction_is_lru_and_reads_refresh_recency(tmp_path):
    probe = ResultCache(directory=tmp_path)
    points = run_points(SPECS[:3], cache=probe)
    entry_size = probe.disk_stats()["bytes"] // 3
    keys = [probe.key(s) for s in SPECS[:3]]
    paths = [probe._entry_path(k) for k in keys]
    # Age the mtimes oldest-first, then touch key 0 by reading it.
    now = time.time()
    for i, p in enumerate(paths):
        os.utime(p, (now - 100 + i, now - 100 + i))
    probe._memory.clear()
    assert probe.get(SPECS[0]) is not None  # disk read refreshes mtime

    cache = ResultCache(directory=tmp_path, max_bytes=2 * entry_size + 64)
    cache.put(SPECS[3], run_points(SPECS[3:4])[0])
    remaining = {p.name for p in _entry_files(cache)}
    assert f"{keys[0]}.json" in remaining          # recently read: kept
    assert f"{keys[1]}.json" not in remaining      # oldest untouched: gone


def test_tiny_bound_still_caches_the_current_point(tmp_path):
    cache = ResultCache(directory=tmp_path, max_bytes=1)
    run_points(SPECS[:2], cache=cache)
    # Each write evicts the predecessor but the just-written entry stays.
    assert len(_entry_files(cache)) == 1


# -- graceful degradation ---------------------------------------------------

def test_disk_tier_disables_after_consecutive_failures(tmp_path, monkeypatch):
    cache = ResultCache(directory=tmp_path, disable_after_io_errors=3)
    point = run_points(SPECS[:1])[0]
    monkeypatch.setattr(os, "replace",
                        lambda *a, **k: (_ for _ in ()).throw(OSError(28, "ENOSPC")))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for spec in SPECS:
            cache.put(spec, point)
    assert cache.stats.io_errors >= 3
    assert not cache._disk_ok()
    # Disabled tier: further operations are memory-only, no exceptions.
    cache.put(SPECS[0], point)
    assert cache.get(SPECS[0]) is not None


def test_eacces_on_put_never_fails_the_sweep(tmp_path, monkeypatch):
    cache = ResultCache(directory=tmp_path)
    real_replace = os.replace

    def deny(src, dst, *a, **k):
        raise PermissionError(13, "EACCES", str(dst))

    monkeypatch.setattr(os, "replace", deny)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        points = run_points(SPECS, cache=cache)
    monkeypatch.setattr(os, "replace", real_replace)
    assert _fields(points) == _fields(run_points(SPECS))
    assert cache.stats.io_errors == len(SPECS)
    assert cache.stats.writes == 0


def test_io_recovery_resets_the_disable_streak(tmp_path, monkeypatch):
    cache = ResultCache(directory=tmp_path, disable_after_io_errors=3)
    point = run_points(SPECS[:1])[0]
    real_replace = os.replace
    fail = {"on": True}

    def flaky(src, dst, *a, **k):
        if fail["on"]:
            raise OSError(5, "EIO")
        return real_replace(src, dst, *a, **k)

    monkeypatch.setattr(os, "replace", flaky)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        cache.put(SPECS[0], point)
        cache.put(SPECS[1], point)
        fail["on"] = False
        cache.put(SPECS[2], point)  # success: streak resets
        fail["on"] = True
        cache.put(SPECS[3], point)
    assert cache._disk_ok()  # never hit 3 *consecutive* failures


# -- single-flight locks ----------------------------------------------------

def test_try_lock_release_roundtrip(tmp_path):
    a = ResultCache(directory=tmp_path)
    b = ResultCache(directory=tmp_path)
    key = a.key(SPECS[0])
    assert a.try_lock(key)
    assert not b.try_lock(key)
    assert b.stats.lock_waits == 1
    a.release(key)
    assert b.try_lock(key)
    b.release(key)


def test_dead_holder_lock_is_reaped(tmp_path):
    cache = ResultCache(directory=tmp_path)
    key = cache.key(SPECS[0])
    path = cache._lock_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    # A pid that cannot exist: the holder is certainly dead.
    path.write_text(f"{2**22 + 1} {time.time():.3f}\n")
    assert cache.try_lock(key)
    assert cache.stats.stale_locks_reaped == 1
    cache.release(key)


def test_silent_holder_lock_goes_stale_by_age(tmp_path):
    cache = ResultCache(directory=tmp_path, stale_lock_after=0.1)
    key = cache.key(SPECS[0])
    path = cache._lock_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("not-a-pid\n")
    old = time.time() - 60
    os.utime(path, (old, old))
    assert cache.try_lock(key)
    assert cache.stats.stale_locks_reaped == 1
    cache.release(key)


def test_wait_for_times_out_to_local_simulation(tmp_path):
    a = ResultCache(directory=tmp_path)
    b = ResultCache(directory=tmp_path)
    key = a.key(SPECS[0])
    assert a.try_lock(key)
    assert b.wait_for(key, timeout=0.2, poll=0.02) is None
    assert b.stats.lock_timeouts == 1
    a.release(key)


def test_wait_for_coalesces_a_concurrent_simulation(tmp_path):
    a = ResultCache(directory=tmp_path)
    b = ResultCache(directory=tmp_path)
    key = a.key(SPECS[0])
    point = run_points(SPECS[:1])[0]
    assert a.try_lock(key)

    def finish():
        time.sleep(0.15)
        a.put(SPECS[0], point, key=key)
        a.release(key)

    t = threading.Thread(target=finish)
    t.start()
    got = b.wait_for(key, timeout=5.0, poll=0.02)
    t.join()
    assert got is not None
    assert dataclasses.asdict(got) == dataclasses.asdict(point)
    assert b.stats.coalesced == 1


def test_run_points_coalesces_across_cache_instances(tmp_path):
    """Two 'processes' (two cache instances over one directory): each
    unique point simulated exactly once, the second run coalesced."""
    a = ResultCache(directory=tmp_path)
    b = ResultCache(directory=tmp_path)
    baseline = run_points(SPECS, jobs=1)
    results = {}

    def runner(name, cache, delay):
        time.sleep(delay)
        results[name] = run_points(SPECS, jobs=1, cache=cache)

    ta = threading.Thread(target=runner, args=("a", a, 0.0))
    tb = threading.Thread(target=runner, args=("b", b, 0.05))
    ta.start(); tb.start(); ta.join(); tb.join()
    assert _fields(results["a"]) == _fields(baseline)
    assert _fields(results["b"]) == _fields(baseline)
    # Exactly one simulation per unique point across both runs.
    assert a.stats.misses + b.stats.misses == len(SPECS)
    assert b.stats.coalesced + b.stats.disk_hits + b.stats.memory_hits \
        == len(SPECS) - b.stats.misses


def test_single_flight_off_is_uncoordinated(tmp_path):
    a = ResultCache(directory=tmp_path, single_flight=False)
    b = ResultCache(directory=tmp_path, single_flight=False)
    key = a.key(SPECS[0])
    assert a.try_lock(key) and b.try_lock(key)  # everyone may simulate
    a.release(key); b.release(key)


# -- policy integration (satellites) ---------------------------------------

def test_skip_policy_streams_completed_points_to_cache(tmp_path):
    """Write-back is streaming: points cached as they finish, so the
    points before a failure survive it."""
    cache = ResultCache(directory=tmp_path)
    bad = PointSpec("summa", LINUX_MYRINET, 4, 16, transa=True)  # raises
    specs = [SPECS[0], SPECS[1], bad, SPECS[2]]
    report = SweepReport()
    points = run_points(specs, jobs=1, cache=cache,
                        policy=ExecutionPolicy(on_error="skip"),
                        report=report)
    assert points[2] is None and None not in (points[0], points[1], points[3])
    assert cache.stats.writes == 3
    assert len(report.failed) == 1 and report.failed[0].index == 2


def test_raise_policy_keeps_earlier_points_cached(tmp_path):
    from repro.bench.parallel import PointExecutionError

    cache = ResultCache(directory=tmp_path)
    bad = PointSpec("summa", LINUX_MYRINET, 4, 16, transa=True)
    with pytest.raises((PointExecutionError, ValueError)):
        run_points([SPECS[0], SPECS[1], bad], jobs=1, cache=cache)
    # The two points that finished before the failure are on disk.
    fresh = ResultCache(directory=tmp_path)
    rerun = run_points(SPECS[:2], jobs=1, cache=fresh)
    assert fresh.stats.misses == 0
    assert _fields(rerun) == _fields(run_points(SPECS[:2], jobs=1))
