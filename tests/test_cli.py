"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_platforms_lists_all(capsys):
    assert main(["platforms"]) == 0
    out = capsys.readouterr().out
    for name in ("linux-myrinet", "ibm-sp", "cray-x1", "sgi-altix", "ideal"):
        assert name in out


def test_run_square(capsys):
    assert main(["run", "--platform", "linux-myrinet", "--nranks", "4",
                 "--size", "32"]) == 0
    out = capsys.readouterr().out
    assert "GFLOP/s" in out
    assert "verified numerically" in out


def test_run_rectangular_synthetic(capsys):
    assert main(["run", "--platform", "sgi-altix", "--nranks", "8",
                 "--m", "64", "--n", "32", "--k", "48",
                 "--payload", "synthetic"]) == 0
    out = capsys.readouterr().out
    assert "64x32x48" in out
    assert "verified" not in out


def test_run_transpose_flags(capsys):
    assert main(["run", "--platform", "linux-myrinet", "--nranks", "4",
                 "--size", "24", "--transa", "--transb"]) == 0
    assert "TT" in capsys.readouterr().out


def test_run_pdgemm(capsys):
    assert main(["run", "--algorithm", "pdgemm", "--nranks", "4",
                 "--size", "32"]) == 0
    assert "pdgemm" in capsys.readouterr().out


def test_run_without_size_errors(capsys):
    assert main(["run", "--nranks", "4"]) == 2
    assert "--size" in capsys.readouterr().err


def test_run_unknown_platform_errors(capsys):
    assert main(["run", "--platform", "bluegene", "--size", "16"]) == 2
    assert "unknown platform" in capsys.readouterr().err


def test_sweep(capsys):
    assert main(["sweep", "--platform", "linux-myrinet", "--nranks", "4",
                 "--sizes", "64,128", "--algorithms", "srumma,pdgemm"]) == 0
    out = capsys.readouterr().out
    assert "srumma GF/s" in out
    assert "pdgemm GF/s" in out
    assert "64" in out and "128" in out


def test_sweep_unknown_algorithm_errors(capsys):
    assert main(["sweep", "--algorithms", "strassen"]) == 2
    assert "unknown algorithm" in capsys.readouterr().err


def test_sweep_jobs_values_produce_identical_output(capsys):
    # --no-cache so the second invocation really exercises the executor
    # rather than replaying the first invocation's cache entries.
    argv = ["sweep", "--platform", "linux-myrinet", "--nranks", "4",
            "--sizes", "24,32", "--algorithms", "srumma,pdgemm", "--no-cache"]
    assert main([*argv, "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main([*argv, "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out


def test_sweep_cached_cold_warm_nocache_outputs_identical(capsys):
    argv = ["sweep", "--platform", "linux-myrinet", "--nranks", "4",
            "--sizes", "24,32", "--algorithms", "srumma,pdgemm", "--jobs", "1"]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert main([*argv, "--no-cache"]) == 0
    uncached = capsys.readouterr()
    assert cold.out == warm.out == uncached.out
    # The stderr summary shows the warm run was served from the cache...
    assert "misses=4" in cold.err
    assert "misses=0" in warm.err and "disk=4" in warm.err
    # ...and --no-cache reports nothing at all.
    assert "[cache]" not in uncached.err


def test_sweep_verbose_progress_lines(capsys):
    argv = ["sweep", "--platform", "linux-myrinet", "--nranks", "4",
            "--sizes", "24", "--algorithms", "srumma", "--jobs", "1",
            "--verbose"]
    assert main(argv) == 0
    assert "(miss)" in capsys.readouterr().err
    assert main(argv) == 0
    assert "(hit)" in capsys.readouterr().err


def test_reproduce_accepts_jobs(capsys):
    assert main(["reproduce", "--experiment", "fig5", "--jobs", "1"]) == 0
    assert "Fig. 5" in capsys.readouterr().out


def test_reproduce_multiple_experiments_in_one_run(capsys):
    assert main(["reproduce", "--experiment", "fig5,fig6",
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out and "Fig. 6" in out


def test_reproduce_experiment_all_parses():
    from repro.bench.experiments import EXPERIMENTS
    from repro.cli import _experiment_list

    assert _experiment_list("all") == sorted(EXPERIMENTS)
    assert _experiment_list("fig5, table1") == ["fig5", "table1"]


def test_reproduce_second_run_hits_cache(capsys):
    argv = ["reproduce", "--experiment", "fig5", "--jobs", "1"]
    assert main(argv) == 0
    cold = capsys.readouterr()
    assert main(argv) == 0
    warm = capsys.readouterr()
    assert warm.out == cold.out
    assert "misses=4" in cold.err
    assert "misses=0" in warm.err


def test_reproduce_no_cache_matches_cached_output(capsys):
    assert main(["reproduce", "--experiment", "fig9", "--jobs", "1"]) == 0
    cached = capsys.readouterr()
    assert main(["reproduce", "--experiment", "fig9", "--jobs", "1",
                 "--no-cache"]) == 0
    uncached = capsys.readouterr()
    assert uncached.out == cached.out
    assert "[cache]" not in uncached.err


def test_cache_stats_and_clear(capsys):
    assert main(["reproduce", "--experiment", "fig5", "--jobs", "1"]) == 0
    capsys.readouterr()
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries         : 4" in out
    assert "v4-" in out
    assert main(["cache", "clear"]) == 0
    assert "removed 4 cached result(s)" in capsys.readouterr().out
    assert main(["cache", "stats"]) == 0
    assert "entries         : 0" in capsys.readouterr().out


@pytest.mark.parametrize("algorithm", ["summa", "cannon", "fox"])
@pytest.mark.parametrize("flag", ["--transa", "--transb"])
def test_nn_only_baselines_reject_transpose_through_cli(algorithm, flag):
    # The guard raises from run_matmul and surfaces through the CLI
    # unswallowed, so scripted callers see the real error.
    with pytest.raises(ValueError, match="NN"):
        main(["run", "--algorithm", algorithm, "--platform", "linux-myrinet",
              "--nranks", "4", "--size", "16", "--payload", "synthetic",
              flag])


def test_bandwidth(capsys):
    assert main(["bandwidth", "--platform", "ibm-sp",
                 "--protocol", "armci_get"]) == 0
    out = capsys.readouterr().out
    assert "MB/s" in out
    assert "1KB" in out


def test_overlap(capsys):
    assert main(["overlap", "--platform", "linux-myrinet",
                 "--protocol", "mpi"]) == 0
    assert "overlap" in capsys.readouterr().out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_invalid_protocol_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bandwidth", "--protocol", "carrier-pigeon"])
