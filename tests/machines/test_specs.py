"""Tests for machine specifications and platform models."""

import pytest

from repro.machines import (
    CRAY_X1,
    IBM_SP,
    IDEAL,
    LINUX_MYRINET,
    PLATFORMS,
    SGI_ALTIX,
    CpuSpec,
    MachineSpec,
    MemorySpec,
    NetworkSpec,
    get_platform,
)


class TestCpuSpec:
    def test_dgemm_time_scales_cubically(self):
        cpu = CpuSpec(flops=1e9, peak_efficiency=1.0, small_block_knee=0)
        t1 = cpu.dgemm_time(100, 100, 100)
        t2 = cpu.dgemm_time(200, 200, 200)
        assert t2 == pytest.approx(8 * t1)

    def test_dgemm_time_exact(self):
        cpu = CpuSpec(flops=2e9, peak_efficiency=1.0, small_block_knee=0)
        # 2*m*n*k flops at 2 GFLOP/s.
        assert cpu.dgemm_time(10, 20, 30) == pytest.approx(2 * 6000 / 2e9)

    def test_small_blocks_run_below_peak(self):
        cpu = CpuSpec(flops=1e9, peak_efficiency=0.9, small_block_knee=32)
        assert cpu.dgemm_rate(8, 8, 8) < cpu.dgemm_rate(512, 512, 512)
        # Knee: at block == knee the efficiency is half the plateau.
        assert cpu.dgemm_rate(32, 32, 32) == pytest.approx(
            0.5 * 0.9 * 1e9)

    def test_efficiency_saturates(self):
        cpu = CpuSpec(flops=1e9, peak_efficiency=0.9, small_block_knee=32)
        assert cpu.dgemm_rate(10_000, 10_000, 10_000) <= 0.9 * 1e9

    def test_min_dimension_governs(self):
        cpu = CpuSpec(flops=1e9, peak_efficiency=0.9, small_block_knee=32)
        assert (cpu.dgemm_rate(1000, 1000, 4)
                == pytest.approx(cpu.dgemm_rate(4, 4, 4)))

    def test_uncached_penalty(self):
        cpu = CpuSpec(flops=1e9, uncached_remote_factor=0.25)
        slow = cpu.dgemm_time(64, 64, 64, remote_uncached=True)
        fast = cpu.dgemm_time(64, 64, 64, remote_uncached=False)
        assert slow == pytest.approx(4 * fast)

    def test_zero_dim_costs_nothing(self):
        cpu = CpuSpec(flops=1e9)
        assert cpu.dgemm_time(0, 10, 10) == 0.0


class TestNetworkSpec:
    def test_rma_latency_defaults_to_double(self):
        net = NetworkSpec(latency=5e-6, bandwidth=1e8)
        assert net.rma_latency == pytest.approx(10e-6)

    def test_explicit_rma_latency_kept(self):
        net = NetworkSpec(latency=5e-6, bandwidth=1e8, rma_latency=42e-6)
        assert net.rma_latency == 42e-6

    def test_host_copy_default(self):
        net = NetworkSpec(latency=1e-6, bandwidth=1e8)
        assert net.host_copy_bandwidth == pytest.approx(2e8)


class TestMemorySpec:
    def test_node_bandwidth_default(self):
        mem = MemorySpec(copy_bandwidth=1e9)
        assert mem.node_bandwidth == pytest.approx(2e9)


class TestMachineSpec:
    def test_nodes_for(self):
        assert LINUX_MYRINET.nodes_for(1) == 1
        assert LINUX_MYRINET.nodes_for(2) == 1
        assert LINUX_MYRINET.nodes_for(3) == 2
        assert IBM_SP.nodes_for(256) == 16

    def test_nodes_for_invalid(self):
        with pytest.raises(ValueError):
            LINUX_MYRINET.nodes_for(0)

    def test_invalid_cpus_per_node(self):
        with pytest.raises(ValueError):
            MachineSpec(name="x", cpus_per_node=0,
                        cpu=IDEAL.cpu, network=IDEAL.network,
                        memory=IDEAL.memory)

    def test_with_network_override(self):
        spec = LINUX_MYRINET.with_network(zero_copy=False)
        assert spec.network.zero_copy is False
        assert LINUX_MYRINET.network.zero_copy is True  # original untouched
        assert spec.name == LINUX_MYRINET.name

    def test_with_cpu_and_memory_overrides(self):
        spec = CRAY_X1.with_cpu(flops=1.0).with_memory(copy_bandwidth=2.0)
        assert spec.cpu.flops == 1.0
        assert spec.memory.copy_bandwidth == 2.0


class TestPlatforms:
    def test_registry_contains_all_four_paper_machines(self):
        for name in ("linux-myrinet", "ibm-sp", "cray-x1", "sgi-altix"):
            assert name in PLATFORMS

    def test_get_platform(self):
        assert get_platform("cray-x1") is CRAY_X1
        with pytest.raises(KeyError, match="unknown platform"):
            get_platform("bluegene")

    def test_shared_memory_scopes(self):
        assert LINUX_MYRINET.shared_memory_scope == "node"
        assert IBM_SP.shared_memory_scope == "node"
        assert CRAY_X1.shared_memory_scope == "machine"
        assert SGI_ALTIX.shared_memory_scope == "machine"

    def test_zero_copy_flags_match_paper(self):
        """Myrinet GM is zero-copy; IBM LAPI is not (paper §4.1)."""
        assert LINUX_MYRINET.network.zero_copy is True
        assert IBM_SP.network.zero_copy is False

    def test_cacheability_matches_paper(self):
        """X1 remote memory not cacheable, Altix cacheable (paper §3.2)."""
        assert CRAY_X1.memory.remote_cacheable is False
        assert SGI_ALTIX.memory.remote_cacheable is True

    def test_eager_threshold_is_16kb_everywhere(self):
        """The Fig. 7 cliff sits at 16 KB on the measured platforms."""
        for spec in (LINUX_MYRINET, IBM_SP):
            assert spec.network.eager_threshold == 16 * 1024

    def test_per_cpu_peaks_match_hardware(self):
        assert LINUX_MYRINET.cpu.flops == pytest.approx(4.8e9)  # 2.4 GHz Xeon
        assert IBM_SP.cpu.flops == pytest.approx(1.5e9)         # 375 MHz P3
        assert CRAY_X1.cpu.flops == pytest.approx(12.8e9)       # X1 MSP
        assert SGI_ALTIX.cpu.flops == pytest.approx(6.0e9)      # 1.5 GHz It2
