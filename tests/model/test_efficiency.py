"""Tests for the §2.1 analytic model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    ModelParams,
    efficiency,
    isoefficiency_problem_size,
    overlap_degree,
    speedup,
    t_comm,
    t_par_overlap,
    t_par_rma,
    t_seq,
)


def test_sequential_time_is_cubic():
    p = ModelParams(alpha=2.0)
    assert t_seq(10, p) == pytest.approx(2.0 * 1000)


def test_eq1_structure():
    """T = N^3/P + 2 N^2/sqrt(P) t_w + 2 t_s sqrt(P)."""
    params = ModelParams(alpha=1.0, t_w=0.5, t_s=3.0)
    n, p = 100, 16
    expected = (100 ** 3 / 16) + 2 * (100 ** 2 / 4) * 0.5 + 2 * 3.0 * 4
    assert t_par_rma(n, p, params) == pytest.approx(expected)


def test_full_overlap_leaves_only_latency_term():
    params = ModelParams(alpha=1.0, t_w=0.5, t_s=3.0)
    n, p = 100, 16
    assert t_par_overlap(n, p, params, omega=0.0) == pytest.approx(
        100 ** 3 / 16 + 2 * 3.0 * 4)


def test_omega_one_equals_blocking():
    params = ModelParams(alpha=1.0, t_w=0.2, t_s=1.0)
    assert t_par_overlap(50, 4, params, omega=1.0) == pytest.approx(
        t_par_rma(50, 4, params))


def test_efficiency_closed_form():
    """With t_s = 0, eta = 1 / (1 + 2 sqrt(P) t_w / N)."""
    params = ModelParams(alpha=1.0, t_w=0.3, t_s=0.0)
    n, p = 200, 64
    closed = 1.0 / (1.0 + 2.0 * math.sqrt(p) * params.t_w / n)
    assert efficiency(n, p, params) == pytest.approx(closed)


def test_speedup_bounded_by_p():
    params = ModelParams(alpha=1.0, t_w=0.1, t_s=0.1)
    for p in (1, 4, 16, 64):
        assert speedup(100, p, params) <= p + 1e-9


def test_speedup_of_one_process_is_one():
    params = ModelParams(alpha=1.0, t_w=0.1, t_s=0.1)
    # With P=1 the model still charges the (degenerate) comm terms, so the
    # speedup is slightly below 1; with zero comm it is exactly 1.
    assert speedup(100, 1, ModelParams(alpha=1.0)) == pytest.approx(1.0)


@given(
    n=st.integers(min_value=10, max_value=2000),
    p=st.sampled_from([1, 4, 16, 64, 256]),
    omega=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200)
def test_overlap_never_slower_than_blocking(n, p, omega):
    params = ModelParams(alpha=1.0, t_w=0.25, t_s=2.0)
    assert (t_par_overlap(n, p, params, omega)
            <= t_par_rma(n, p, params) + 1e-9)


@given(
    n=st.integers(min_value=10, max_value=2000),
    p=st.sampled_from([4, 16, 64]),
)
@settings(max_examples=100)
def test_efficiency_improves_with_n(n, p):
    """Bigger problems -> higher efficiency (the N/sqrt(P) law)."""
    params = ModelParams(alpha=1.0, t_w=0.25, t_s=2.0)
    assert efficiency(2 * n, p, params) >= efficiency(n, p, params) - 1e-12


@given(p=st.sampled_from([1, 4, 16, 64, 256, 1024]))
def test_isoefficiency_growth(p):
    w = isoefficiency_problem_size(p)
    assert w == pytest.approx(p ** 1.5)


def test_isoefficiency_keeps_efficiency_roughly_constant():
    """Scaling W = N^3 with P^1.5 holds eta steady (the §2.1 claim)."""
    params = ModelParams(alpha=1.0, t_w=0.1, t_s=0.0)
    etas = []
    for p in (16, 64, 256, 1024):
        n = round(isoefficiency_problem_size(p, c=1000.0) ** (1.0 / 3.0))
        etas.append(efficiency(n, p, params))
    assert max(etas) - min(etas) < 0.02


def test_overlap_degree_definition():
    assert overlap_degree(t_comp=5.0, t_comm_=10.0) == pytest.approx(0.5)
    assert overlap_degree(t_comp=20.0, t_comm_=10.0) == 0.0  # clamped
    assert overlap_degree(t_comp=1.0, t_comm_=0.0) == 0.0


def test_from_machine_dimensionalisation():
    from repro.machines import LINUX_MYRINET

    params = ModelParams.from_machine(LINUX_MYRINET)
    assert params.t_w == pytest.approx(8 / LINUX_MYRINET.network.bandwidth)
    assert params.t_s == LINUX_MYRINET.network.rma_latency
    assert params.alpha == pytest.approx(
        1.0 / (LINUX_MYRINET.cpu.flops * LINUX_MYRINET.cpu.peak_efficiency))


def test_invalid_arguments():
    params = ModelParams()
    with pytest.raises(ValueError):
        t_seq(0, params)
    with pytest.raises(ValueError):
        t_par_rma(10, 0, params)
    with pytest.raises(ValueError):
        t_par_overlap(10, 4, params, omega=1.5)
