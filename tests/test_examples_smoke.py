"""Smoke tests: the fast example scripts run end-to-end and verify.

Only the examples that finish in seconds are exercised (the sweep-heavy
ones are effectively benchmarks; they are executed by hand / CI nightly).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    ("quickstart.py", "verified"),
    ("pipeline_trace.py", "dgemm"),
    ("irregular_distribution.py", "verified"),
]


@pytest.mark.parametrize("script,needle", FAST_EXAMPLES,
                         ids=[s for s, _ in FAST_EXAMPLES])
def test_example_runs_clean(script, needle):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert needle in proc.stdout


def test_all_examples_are_listed_in_readme():
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in EXAMPLES.glob("*.py"):
        assert script.name in readme, f"{script.name} missing from README"
