"""Tests for the MPI-2 one-sided (window) model."""

import numpy as np
import pytest

from repro.comm import CommError, MpiWindow, run_parallel
from repro.machines import IBM_SP, LINUX_MYRINET


def test_lock_get_unlock_moves_data():
    def prog(ctx):
        local = np.full(16, float(ctx.rank))
        win = MpiWindow.create(ctx, "w", local=local)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(16)
            yield from win.lock(2)
            win.get(2, out)
            yield from win.unlock(2)
            assert np.all(out == 2.0)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_put_updates_target():
    exposures = {}

    def prog(ctx):
        local = np.zeros(8)
        exposures[ctx.rank] = local
        win = MpiWindow.create(ctx, "w", local=local)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from win.lock(1)
            win.put(1, np.full(8, 9.0))
            yield from win.unlock(1)
        yield from ctx.mpi.barrier()

    run_parallel(LINUX_MYRINET, 2, prog)
    assert np.all(exposures[1] == 9.0)


def test_get_with_section_index():
    def prog(ctx):
        local = np.arange(16.0).reshape(4, 4) * (ctx.rank + 1)
        win = MpiWindow.create(ctx, "w", local=local)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((2, 2))
            yield from win.lock(1)
            win.get(1, out, index=(slice(1, 3), slice(2, 4)))
            yield from win.unlock(1)
            assert np.array_equal(out, (np.arange(16.0).reshape(4, 4) * 2)[1:3, 2:4])

    run_parallel(LINUX_MYRINET, 2, prog)


def test_data_not_valid_before_unlock():
    """MPI-2 deferred semantics: the get queues; the buffer fills at unlock."""
    def prog(ctx):
        local = np.full(4, float(ctx.rank + 10))
        win = MpiWindow.create(ctx, "w", local=local)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(4)
            yield from win.lock(1)
            win.get(1, out)
            assert np.all(out == 0.0)  # nothing moved yet
            yield from win.unlock(1)
            assert np.all(out == 11.0)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_op_without_lock_raises():
    def prog(ctx):
        win = MpiWindow.create(ctx, "w", local=np.zeros(4))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(CommError, match="without holding the lock"):
                win.get(1, np.zeros(4))

    run_parallel(LINUX_MYRINET, 2, prog)


def test_double_lock_raises():
    def prog(ctx):
        win = MpiWindow.create(ctx, "w", local=np.zeros(4))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from win.lock(1)
            with pytest.raises(CommError, match="already held"):
                yield from win.lock(1)
            yield from win.unlock(1)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_unlock_without_lock_raises():
    def prog(ctx):
        win = MpiWindow.create(ctx, "w", local=np.zeros(4))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(CommError, match="unlock without lock"):
                yield from win.unlock(1)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_exclusive_lock_serialises_origins():
    """Two origins locking the same target take turns."""
    order = []

    def prog(ctx):
        win = MpiWindow.create(ctx, "w", local=np.zeros(1024))
        yield from ctx.mpi.barrier()
        if ctx.rank in (0, 1):
            out = np.zeros(1024)
            yield from win.lock(2)
            order.append(("locked", ctx.rank, ctx.now))
            win.get(2, out)
            yield from win.unlock(2)
            order.append(("unlocked", ctx.rank, ctx.now))

    run_parallel(LINUX_MYRINET, 4, prog)
    locks = [e for e in order if e[0] == "locked"]
    unlocks = [e for e in order if e[0] == "unlocked"]
    # The second lock grant happens only after the first unlock.
    assert locks[1][2] >= unlocks[0][2]


def test_fence_synchronises():
    departures = {}

    def prog(ctx):
        win = MpiWindow.create(ctx, "w", local=np.zeros(4))
        yield ctx.engine.timeout(0.001 * ctx.rank)
        yield from win.fence()
        departures[ctx.rank] = ctx.now

    run_parallel(LINUX_MYRINET, 4, prog)
    assert min(departures.values()) >= 0.003


def test_fence_with_held_lock_raises():
    def prog(ctx):
        win = MpiWindow.create(ctx, "w", local=np.zeros(4))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from win.lock(1)
            with pytest.raises(CommError, match="locks still held"):
                yield from win.fence()
            yield from win.unlock(1)
        yield from ctx.mpi.barrier()

    run_parallel(LINUX_MYRINET, 2, prog)


def test_mpi2_get_slower_than_armci_get():
    """The Fig. 8 finding, via the real window implementation."""
    from repro.bench import measure_bandwidth

    mpi2 = measure_bandwidth(IBM_SP, "mpi2_get", 1 << 20)
    armci = measure_bandwidth(IBM_SP, "armci_get", 1 << 20)
    assert mpi2 < 0.75 * armci


def test_duplicate_exposure_raises():
    def prog(ctx):
        MpiWindow.create(ctx, "w", local=np.zeros(4))
        with pytest.raises(CommError, match="already exposed"):
            MpiWindow.create(ctx, "w", local=np.zeros(4))
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 1, prog)
