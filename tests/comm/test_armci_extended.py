"""Tests for ARMCI accumulate, read-modify-write, and fence."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.machines import LINUX_MYRINET, SGI_ALTIX


class TestAccumulate:
    def test_blocking_acc_adds(self):
        segs = {}

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (4,))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                yield from ctx.armci.acc(1, "s", np.full(4, 2.0))
                yield from ctx.armci.acc(1, "s", np.full(4, 3.0))
            yield from ctx.mpi.barrier()

        run_parallel(LINUX_MYRINET, 2, prog)
        assert np.all(segs[1] == 5.0)

    def test_acc_with_scale(self):
        segs = {}

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (4,))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                yield from ctx.armci.acc(1, "s", np.ones(4), scale=-2.5)
            yield from ctx.mpi.barrier()

        run_parallel(LINUX_MYRINET, 2, prog)
        assert np.all(segs[1] == -2.5)

    def test_concurrent_accs_from_all_ranks_all_land(self):
        """Element-atomicity: N ranks accumulating 1.0 yields exactly N."""
        segs = {}
        nranks = 8

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (16,))
            yield from ctx.mpi.barrier()
            yield from ctx.armci.acc(0, "s", np.ones(16))
            yield from ctx.mpi.barrier()

        run_parallel(LINUX_MYRINET, nranks, prog)
        assert np.all(segs[0] == nranks)

    def test_acc_section(self):
        segs = {}

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (4, 4))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                yield from ctx.armci.acc(
                    1, "s", np.ones((2, 2)), dst_index=(slice(0, 2), slice(2, 4)))
            yield from ctx.mpi.barrier()

        run_parallel(LINUX_MYRINET, 2, prog)
        assert np.all(segs[1][0:2, 2:4] == 1.0)
        assert segs[1].sum() == 4.0

    def test_acc_shape_mismatch_raises(self):
        def prog(ctx):
            ctx.armci.malloc("s", (4,))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                with pytest.raises(CommError, match="acc shape"):
                    ctx.armci.nb_acc(1, "s", np.ones(5))

        run_parallel(LINUX_MYRINET, 2, prog)

    def test_acc_snapshot_semantics(self):
        """Mutating the source after nb_acc must not change what lands."""
        segs = {}

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (4,))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                data = np.full(4, 7.0)
                req = ctx.armci.nb_acc(1, "s", data)
                data[...] = -1.0
                yield from ctx.wait(req)
            yield from ctx.mpi.barrier()

        run_parallel(LINUX_MYRINET, 2, prog)
        assert np.all(segs[1] == 7.0)

    def test_acc_works_on_shared_memory_machine(self):
        segs = {}

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (4,))
            yield from ctx.mpi.barrier()
            yield from ctx.armci.acc((ctx.rank + 1) % ctx.nranks, "s",
                                     np.ones(4))
            yield from ctx.mpi.barrier()

        run_parallel(SGI_ALTIX, 4, prog)
        for r in range(4):
            assert np.all(segs[r] == 1.0)


class TestRmw:
    def test_fetch_add_returns_old_values_uniquely(self):
        """The canonical ARMCI_Rmw use: a global work counter — every rank
        must draw distinct values."""
        drawn = {}

        def prog(ctx):
            if ctx.rank == 0:
                ctx.armci.rmw_counter("next_task", initial=0)
            yield from ctx.mpi.barrier()
            mine = []
            for _ in range(3):
                v = yield from ctx.armci.rmw_fetch_add(0, "next_task", 1)
                mine.append(v)
            drawn[ctx.rank] = mine

        run_parallel(LINUX_MYRINET, 6, prog)
        all_values = sorted(v for vs in drawn.values() for v in vs)
        assert all_values == list(range(18))

    def test_unknown_counter_raises(self):
        def prog(ctx):
            yield from ctx.mpi.barrier()
            with pytest.raises(CommError, match="no counter"):
                yield from ctx.armci.rmw_fetch_add(0, "nope")

        run_parallel(LINUX_MYRINET, 2, prog)

    def test_duplicate_counter_raises(self):
        def prog(ctx):
            ctx.armci.rmw_counter("c")
            with pytest.raises(CommError, match="already exists"):
                ctx.armci.rmw_counter("c")
            yield from ctx.mpi.barrier()

        run_parallel(LINUX_MYRINET, 1, prog)


class TestFence:
    def test_fence_completes_outstanding_puts(self):
        segs = {}

        def prog(ctx):
            segs[ctx.rank] = ctx.armci.malloc("s", (1024,))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                reqs = [ctx.armci.nb_put(2, "s", np.full(1024, float(i)))
                        for i in range(3)]
                yield from ctx.armci.fence(2)
                assert all(r.test() for r in reqs)
                # The last put's data is in place at the target.
                assert np.all(segs[2] == 2.0)

        run_parallel(LINUX_MYRINET, 4, prog)

    def test_fence_all_targets(self):
        def prog(ctx):
            ctx.armci.malloc("s", (64,))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                r1 = ctx.armci.nb_put(1, "s", np.ones(64))
                r2 = ctx.armci.nb_acc(2, "s", np.ones(64))
                yield from ctx.armci.fence()
                assert r1.test() and r2.test()

        run_parallel(LINUX_MYRINET, 4, prog)

    def test_fence_with_nothing_outstanding_is_instant(self):
        def prog(ctx):
            ctx.armci.malloc("s", (4,))
            yield from ctx.mpi.barrier()
            t0 = ctx.now
            yield from ctx.armci.fence()
            assert ctx.now == t0

        run_parallel(LINUX_MYRINET, 2, prog)
