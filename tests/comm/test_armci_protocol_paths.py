"""Additional ARMCI protocol-path coverage: host-assisted puts, byte-level
puts, out_index combinations, locality queries, request metadata."""

import numpy as np
import pytest

from repro.comm import run_parallel
from repro.machines import CRAY_X1, LINUX_MYRINET

NO_ZC = LINUX_MYRINET.with_network(zero_copy=False)


def test_host_assisted_put_moves_data():
    segs = {}

    def prog(ctx):
        segs[ctx.rank] = ctx.armci.malloc("s", (256,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ctx.armci.put(2, "s", np.full(256, 3.0))
        yield from ctx.mpi.barrier()

    run_parallel(NO_ZC, 4, prog)
    assert np.all(segs[2] == 3.0)


def test_host_assisted_put_charges_target_copy_time():
    def prog(ctx):
        ctx.armci.malloc("s", (1 << 17,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ctx.armci.put(2, "s", np.ones(1 << 17))
        yield from ctx.mpi.barrier()

    run = run_parallel(NO_ZC, 4, prog)
    # The target (rank 2) paid 'copy' time for the staging.
    assert run.tracer.buckets(2).copy > 0


def test_nb_put_bytes_timing_only():
    times = {}

    def prog(ctx):
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            req = ctx.armci.nb_put_bytes(2, 1 << 20)
            yield from ctx.wait(req)
            times["dt"] = ctx.now
            assert req.nbytes == 1 << 20

    run_parallel(LINUX_MYRINET, 4, prog)
    wire = (1 << 20) / LINUX_MYRINET.network.bandwidth
    assert times["dt"] >= wire


def test_negative_byte_sizes_rejected():
    def prog(ctx):
        yield ctx.engine.timeout(0.0)
        with pytest.raises(ValueError):
            ctx.armci.nb_get_bytes(0, -1.0)
        with pytest.raises(ValueError):
            ctx.armci.nb_put_bytes(0, -1.0)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_get_with_both_src_and_out_indices():
    def prog(ctx):
        local = ctx.armci.malloc("m", (6, 6))
        local[...] = np.arange(36.0).reshape(6, 6) + 100 * ctx.rank
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.full((4, 4), -1.0)
            yield from ctx.armci.get(
                2, "m", out,
                src_index=(slice(0, 2), slice(0, 2)),
                out_index=(slice(2, 4), slice(2, 4)))
            expected = np.arange(36.0).reshape(6, 6)[0:2, 0:2] + 200
            assert np.array_equal(out[2:4, 2:4], expected)
            assert np.all(out[0:2, :] == -1.0)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_request_duration_metadata():
    durations = {}

    def prog(ctx):
        ctx.armci.malloc("s", (1 << 15,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            req = ctx.armci.nb_get_bytes(2, float(1 << 18))
            assert req.duration is None  # still pending
            yield from ctx.wait(req)
            durations["d"] = req.duration
            assert req.completed_at is not None

    run_parallel(LINUX_MYRINET, 4, prog)
    wire = (1 << 18) / LINUX_MYRINET.network.bandwidth
    assert durations["d"] >= wire


def test_domain_queries_on_machine_scope():
    def prog(ctx):
        yield ctx.engine.timeout(0.0)
        assert ctx.armci.domain_of(7) == 0
        assert ctx.armci.same_domain(7)
        assert ctx.armci.domain_ranks() == list(range(8))

    run_parallel(CRAY_X1, 8, prog)


def test_put_snapshot_semantics():
    segs = {}

    def prog(ctx):
        segs[ctx.rank] = ctx.armci.malloc("s", (8,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            data = np.full(8, 5.0)
            req = ctx.armci.nb_put(2, "s", data)
            data[...] = -1.0  # mutate after issue
            yield from ctx.wait(req)
        yield from ctx.mpi.barrier()

    run_parallel(LINUX_MYRINET, 4, prog)
    assert np.all(segs[2] == 5.0)


def test_concurrent_gets_from_many_ranks_all_deliver():
    results = {}

    def prog(ctx):
        local = ctx.armci.malloc("s", (64,))
        local[...] = float(ctx.rank)
        yield from ctx.mpi.barrier()
        out = np.zeros(64)
        target = (ctx.rank + ctx.nranks // 2) % ctx.nranks
        yield from ctx.armci.get(target, "s", out)
        results[ctx.rank] = (target, out[0])

    run_parallel(LINUX_MYRINET, 8, prog)
    for rank, (target, val) in results.items():
        assert val == float(target)
