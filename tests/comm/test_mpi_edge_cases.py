"""Edge-case tests for the MPI protocol model."""

import numpy as np
import pytest

from repro.comm import run_parallel
from repro.machines import INFINIBAND, LINUX_MYRINET

EAGER = LINUX_MYRINET.network.eager_threshold


def test_message_exactly_at_eager_threshold_is_eager():
    """nbytes == threshold stays eager: the isend completes locally."""
    n = EAGER // 8
    done_early = {}

    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.mpi.isend(2, np.ones(n))
            yield from ctx.mpi.wait(req)
            done_early["t"] = ctx.now
        elif ctx.rank == 2:
            out = np.zeros(n)
            yield from ctx.mpi.recv(out, src=0)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 4, prog)
    wire = EAGER / LINUX_MYRINET.network.bandwidth
    assert done_early["t"] < wire


def test_one_byte_over_threshold_is_rendezvous():
    n = EAGER // 8 + 1
    times = {}

    def prog(ctx):
        if ctx.rank == 0:
            t0 = ctx.now
            yield from ctx.mpi.send(2, np.ones(n))
            times["send"] = ctx.now - t0
        elif ctx.rank == 2:
            out = np.zeros(n)
            yield from ctx.mpi.recv(out, src=0)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 4, prog)
    # Blocking rendezvous send completes only after the wire transfer.
    wire = (n * 8) / LINUX_MYRINET.network.bandwidth
    assert times["send"] >= wire


def test_zero_byte_message():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.zeros(0))
        else:
            out = np.zeros(0)
            src, tag, nbytes = yield from ctx.mpi.recv(out, src=0)
            assert nbytes == 0

    run_parallel(LINUX_MYRINET, 2, prog)


def test_self_rendezvous_send():
    n = (EAGER // 8) * 4

    def prog(ctx):
        out = np.zeros(n)
        rreq = ctx.mpi.irecv(out, src=0, tag=9)
        sreq = ctx.mpi.isend(0, np.full(n, 2.5), tag=9)
        yield from ctx.mpi.wait_all([sreq, rreq])
        assert np.all(out == 2.5)

    run_parallel(LINUX_MYRINET, 1, prog)


def test_wildcard_recv_matches_rendezvous_rts():
    n = (EAGER // 8) * 4

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.full(n, 3.0), tag=42)
        else:
            out = np.zeros(n)
            src, tag, _ = yield from ctx.mpi.recv(out)  # ANY/ANY
            assert (src, tag) == (0, 42)
            assert np.all(out == 3.0)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_many_outstanding_isends_complete():
    def prog(ctx):
        if ctx.rank == 0:
            reqs = [ctx.mpi.isend(1, np.full(8, float(i)), tag=i)
                    for i in range(20)]
            yield from ctx.mpi.wait_all(reqs)
        else:
            # Receive in reverse tag order to stress the matching queue.
            for i in reversed(range(20)):
                out = np.zeros(8)
                yield from ctx.mpi.recv(out, src=0, tag=i)
                assert np.all(out == i)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_progress_call_lets_rendezvous_move_without_wait():
    """mpi.progress() (a Waitall-in-progress) opens the gate."""
    n = (EAGER // 8) * 16
    spec = LINUX_MYRINET
    wire = (n * 8) / spec.network.bandwidth
    times = {}

    def prog(ctx):
        if ctx.rank == 0:
            req = ctx.mpi.isend(2, np.ones(n))
            ctx.mpi.progress([req])     # enter the library conceptually
            yield from ctx.compute(2 * wire)
            t0 = ctx.now
            yield from ctx.mpi.wait(req)
            times["residual_wait"] = ctx.now - t0
        elif ctx.rank == 2:
            out = np.zeros(n)
            req = ctx.mpi.irecv(out, src=0)
            yield from ctx.mpi.wait(req)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(spec, 4, prog)
    # With the gate open before computing, the transfer overlapped fully.
    assert times["residual_wait"] < 0.05 * wire


def test_interleaved_tags_between_three_ranks():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(2, np.full(4, 1.0), tag=1)
            yield from ctx.mpi.send(2, np.full(4, 2.0), tag=2)
        elif ctx.rank == 1:
            yield from ctx.mpi.send(2, np.full(4, 3.0), tag=1)
        else:
            a = np.zeros(4)
            b = np.zeros(4)
            c = np.zeros(4)
            yield from ctx.mpi.recv(a, src=1, tag=1)
            yield from ctx.mpi.recv(b, src=0, tag=2)
            yield from ctx.mpi.recv(c, src=0, tag=1)
            assert (a[0], b[0], c[0]) == (3.0, 2.0, 1.0)

    run_parallel(LINUX_MYRINET, 3, prog)


def test_infiniband_platform_runs_everything():
    """The extension platform behaves like a zero-copy cluster."""
    from repro.core import srumma_multiply

    res = srumma_multiply(INFINIBAND, 8, 64, 64, 64)
    assert res.max_error < 1e-9
    # Zero-copy means gets charge no remote-CPU copy time; the only 'copy'
    # bucket entries come from the setup barrier's tiny eager tokens.
    assert res.run.tracer.total("copy") < 0.01 * res.run.tracer.total("compute")
