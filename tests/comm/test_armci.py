"""Tests for the ARMCI one-sided communication layer."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.machines import IDEAL, LINUX_MYRINET, SGI_ALTIX


def test_malloc_registers_per_rank_segments():
    seen = {}

    def prog(ctx):
        arr = ctx.armci.malloc("x", (4, 4))
        arr[...] = ctx.rank
        seen[ctx.rank] = arr
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 4, prog)
    assert set(seen) == {0, 1, 2, 3}
    for r, arr in seen.items():
        assert np.all(arr == r)


def test_double_malloc_same_key_raises():
    def prog(ctx):
        ctx.armci.malloc("x", (2,))
        with pytest.raises(CommError):
            ctx.armci.malloc("x", (2,))
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 1, prog)


def test_blocking_get_moves_data_across_nodes():
    def prog(ctx):
        local = ctx.armci.malloc("seg", (8,))
        local[...] = 100 + ctx.rank
        yield from ctx.mpi.barrier()
        out = np.zeros(8)
        if ctx.rank == 0:
            # Rank 3 is on the second node of the 2-way-node Linux cluster.
            yield from ctx.armci.get(3, "seg", out)
            assert np.all(out == 103)
        return out

    run_parallel(LINUX_MYRINET, 4, prog)


def test_get_section_with_indices():
    def prog(ctx):
        local = ctx.armci.malloc("m", (6, 6))
        local[...] = np.arange(36).reshape(6, 6) + 100 * ctx.rank
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((2, 3))
            yield from ctx.armci.get(
                2, "m", out, src_index=(slice(1, 3), slice(2, 5)))
            expected = (np.arange(36).reshape(6, 6) + 200)[1:3, 2:5]
            assert np.array_equal(out, expected)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_get_into_subsection_of_out_buffer():
    def prog(ctx):
        local = ctx.armci.malloc("m", (4,))
        local[...] = ctx.rank
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.full((2, 4), -1.0)
            yield from ctx.armci.get(1, "m", out, out_index=(1, slice(None)))
            assert np.all(out[0] == -1)
            assert np.all(out[1] == 1)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_get_shape_mismatch_raises():
    def prog(ctx):
        ctx.armci.malloc("m", (4,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(5)
            with pytest.raises(CommError, match="shape"):
                ctx.armci.nb_get(1, "m", out)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_get_unregistered_segment_raises():
    def prog(ctx):
        yield ctx.engine.timeout(0.0)
        if ctx.rank == 0:
            with pytest.raises(CommError, match="no segment"):
                ctx.armci.nb_get(1, "nope", np.zeros(1))

    run_parallel(LINUX_MYRINET, 2, prog)


def test_put_moves_data():
    segs = {}

    def prog(ctx):
        segs[ctx.rank] = ctx.armci.malloc("s", (4,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ctx.armci.put(1, "s", np.full(4, 7.0))
        yield from ctx.mpi.barrier()

    run_parallel(LINUX_MYRINET, 2, prog)
    assert np.all(segs[1] == 7.0)


def test_put_section():
    segs = {}

    def prog(ctx):
        segs[ctx.rank] = ctx.armci.malloc("s", (4, 4))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ctx.armci.put(
                1, "s", np.ones((2, 2)), dst_index=(slice(0, 2), slice(2, 4)))
        yield from ctx.mpi.barrier()

    run_parallel(LINUX_MYRINET, 2, prog)
    assert np.all(segs[1][0:2, 2:4] == 1.0)
    assert np.all(segs[1][2:, :] == 0.0)


def test_payload_snapshot_at_issue_time():
    """A get sees the source as it was when issued, not at delivery."""
    def prog(ctx):
        local = ctx.armci.malloc("s", (4,))
        local[...] = ctx.rank + 1.0
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(4)
            req = ctx.armci.nb_get(1, "s", out)
            yield from ctx.wait(req)
            assert np.all(out == 2.0)
        else:
            # Mutate strictly after the get was issued (the transfer takes
            # much longer than 1 ns): the in-flight get must still deliver
            # the issue-time snapshot, not the mutated data.
            yield ctx.engine.timeout(1e-9)
            local[...] = -999.0

    run_parallel(LINUX_MYRINET, 2, prog)


def test_nonblocking_get_overlaps_with_compute():
    """Zero-copy remote get: computing while the wire transfer runs."""
    nbytes = 1 << 20  # 1 MiB
    spec = LINUX_MYRINET
    wire = nbytes / spec.network.bandwidth + spec.network.rma_latency
    times = {}

    def prog(ctx):
        local = ctx.armci.malloc("s", (nbytes // 8,))
        local[...] = ctx.rank
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(nbytes // 8)
            t0 = ctx.now
            req = ctx.armci.nb_get(2, "s", out)  # rank 2 = other node
            yield from ctx.compute(wire)  # compute as long as the wire takes
            yield from ctx.wait(req)
            times["total"] = ctx.now - t0
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(spec, 4, prog)
    # Full overlap: total ~ compute time, not compute + wire.
    assert times["total"] == pytest.approx(wire, rel=0.05)


def test_blocking_get_does_not_overlap():
    nbytes = 1 << 20
    spec = LINUX_MYRINET
    wire = nbytes / spec.network.bandwidth + spec.network.rma_latency
    times = {}

    def prog(ctx):
        local = ctx.armci.malloc("s", (nbytes // 8,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(nbytes // 8)
            t0 = ctx.now
            yield from ctx.armci.get(2, "s", out)
            yield from ctx.compute(wire)
            times["total"] = ctx.now - t0
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(spec, 4, prog)
    assert times["total"] == pytest.approx(2 * wire, rel=0.05)


def test_host_assisted_get_steals_target_cpu():
    """With zero-copy disabled, the target's compute is delayed by the copy."""
    nbytes = 8 << 20
    spec = LINUX_MYRINET.with_network(zero_copy=False)
    copy_time = nbytes / spec.network.host_copy_bandwidth
    target_elapsed = {}

    def prog(ctx):
        local = ctx.armci.malloc("s", (nbytes // 8,))
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        if ctx.rank == 0:
            out = np.zeros(nbytes // 8)
            yield from ctx.armci.get(2, "s", out)
        elif ctx.rank == 2:
            # Busy compute loop in small slices so the host copy can be
            # interleaved FIFO between slices.
            for _ in range(100):
                yield from ctx.compute(copy_time / 100)
            target_elapsed["t"] = ctx.now - t0
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(spec, 4, prog)
    # Target's 100 compute slices take their own time plus the stolen copy.
    assert target_elapsed["t"] >= copy_time * 1.5


def test_same_domain_get_uses_memory_not_nic():
    """Intra-node get must not touch the NICs."""
    def prog(ctx):
        local = ctx.armci.malloc("s", (1024,))
        local[...] = ctx.rank
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(1024)
            yield from ctx.armci.get(1, "s", out)  # rank 1 = same node
            assert np.all(out == 1)

    run = run_parallel(LINUX_MYRINET, 2, prog)
    node0 = run.machine.nodes[0]
    assert node0.nic_out.bytes_carried == 0
    assert node0.mem.bytes_carried > 0


def test_machine_scope_domain_spans_all_ranks():
    """On the Altix every rank pair is one shared-memory domain."""
    def prog(ctx):
        local = ctx.armci.malloc("s", (16,))
        local[...] = ctx.rank
        yield from ctx.mpi.barrier()
        assert ctx.armci.same_domain((ctx.rank + 7) % ctx.nranks)
        out = np.zeros(16)
        yield from ctx.armci.get((ctx.rank + 1) % ctx.nranks, "s", out)
        assert np.all(out == (ctx.rank + 1) % ctx.nranks)

    run_parallel(SGI_ALTIX, 8, prog)


def test_domain_ranks_query():
    domains = {}

    def prog(ctx):
        domains[ctx.rank] = ctx.armci.domain_ranks()
        yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 6, prog)  # 2-way nodes
    assert domains[0] == [0, 1]
    assert domains[3] == [2, 3]
    assert domains[4] == [4, 5]


def test_get_latency_charged():
    """A tiny remote get costs at least the RMA startup latency."""
    spec = IDEAL
    times = {}

    def prog(ctx):
        ctx.armci.malloc("s", (1,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            t0 = ctx.now
            out = np.zeros(1)
            yield from ctx.armci.get(1, "s", out)
            times["get"] = ctx.now - t0

    run_parallel(spec, 2, prog)
    assert times["get"] >= spec.network.rma_latency
