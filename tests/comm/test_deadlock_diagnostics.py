"""Tests for deadlock detection and diagnostics in run_parallel."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.machines import LINUX_MYRINET


def test_deadlock_reports_blocked_ranks():
    def prog(ctx):
        if ctx.rank == 0:
            out = np.zeros(1)
            yield from ctx.mpi.recv(out, src=1, tag=7)  # never sent
        else:
            yield ctx.engine.timeout(0.0)

    with pytest.raises(CommError, match="rank 0 blocked on"):
        run_parallel(LINUX_MYRINET, 2, prog)


def test_deadlock_counts_all_stuck_ranks():
    def prog(ctx):
        # Everyone waits for a message from the next rank that never comes.
        out = np.zeros(1)
        yield from ctx.mpi.recv(out, src=(ctx.rank + 1) % ctx.nranks, tag=1)

    with pytest.raises(CommError, match="4/4 ranks still blocked"):
        run_parallel(LINUX_MYRINET, 4, prog)


def test_mismatched_barrier_is_a_deadlock():
    def prog(ctx):
        if ctx.rank < 3:
            yield from ctx.mpi.barrier()
        else:
            yield ctx.engine.timeout(0.0)  # rank 3 skips the barrier

    with pytest.raises(CommError, match="deadlock"):
        run_parallel(LINUX_MYRINET, 4, prog)


def test_rank_exception_propagates_with_type():
    def prog(ctx):
        yield ctx.engine.timeout(0.0)
        if ctx.rank == 1:
            raise RuntimeError("rank 1 exploded")

    with pytest.raises(RuntimeError, match="rank 1 exploded"):
        run_parallel(LINUX_MYRINET, 2, prog)


def test_partial_bcast_group_is_a_deadlock():
    """Rendezvous-sized payload: the root's send to the missing member
    blocks forever.  (An eager-sized payload would NOT deadlock — small
    sends complete locally, correct MPI semantics.)"""
    n = LINUX_MYRINET.network.eager_threshold  # bytes -> n/8 doubles * 8 > thr

    def prog(ctx):
        if ctx.rank in (0, 1):
            buf = np.zeros(n)  # n doubles = 8x the eager threshold
            yield from ctx.mpi.bcast(buf, root=0, group=[0, 1, 2])
        else:
            yield ctx.engine.timeout(0.0)  # rank 2 never joins

    with pytest.raises(CommError, match="deadlock"):
        run_parallel(LINUX_MYRINET, 3, prog)


def test_eager_partial_bcast_completes():
    """The eager counterpart: buffered sends let the root finish even if a
    group member never receives."""
    def prog(ctx):
        if ctx.rank in (0, 1):
            buf = np.zeros(4)
            if ctx.rank == 0:
                buf[...] = 1.0
            yield from ctx.mpi.bcast(buf, root=0, group=[0, 1, 2])
            assert np.all(buf == 1.0)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 3, prog)
