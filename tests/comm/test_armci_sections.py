"""Property tests for ``_section_segments`` against a numpy-derived oracle.

PR 1 made ``_section_segments`` a hot-loop input — the SRUMMA planner calls
it for every remote operand and the result feeds the per-segment
``sg_overhead`` charge — so its closed form must match real row-major
memory layout exactly.  The oracle here materialises the section's flat
addresses with numpy and counts maximal runs of consecutive ones; the
closed form must agree on every shape/index combination hypothesis can
construct (strided, negative-step, single-column, integer-indexed, and
empty sections), modulo the floor of 1 (even an empty get issues one
descriptor).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.armci import _section_segments


def numpy_segments(shape, idx) -> int:
    """Oracle: maximal runs of consecutive flat addresses in the section."""
    arr = np.arange(int(np.prod(shape))).reshape(shape)
    flat = np.sort(np.asarray(arr[idx]).ravel())
    if flat.size == 0:
        return 0
    return int(np.count_nonzero(np.diff(flat) != 1) + 1)


def _slices(dim: int):
    bound = st.none() | st.integers(-dim - 2, dim + 2)
    step = st.none() | st.sampled_from([-3, -2, -1, 1, 2, 3])
    return st.builds(slice, bound, bound, step)


def _indexers(dim: int):
    return st.integers(0, dim - 1) | _slices(dim)


@st.composite
def shape_and_index(draw):
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(1, 12)) for _ in range(ndim))
    nidx = draw(st.integers(1, ndim))
    idx = tuple(draw(_indexers(shape[d])) for d in range(nidx))
    return shape, idx


@settings(max_examples=400, deadline=None)
@given(shape_and_index())
def test_section_segments_matches_numpy_oracle(case):
    shape, idx = case
    assert _section_segments(shape, idx) == max(1, numpy_segments(shape, idx))


@pytest.mark.parametrize("shape,idx,expected", [
    # Strided columns: every element is its own memory interval.
    ((8, 8), (slice(0, 4), slice(0, 8, 2)), 16),
    # Strided rows of full width: rows no longer merge.
    ((8, 8), (slice(0, 8, 2), slice(None)), 4),
    # Negative steps touch the same addresses as their positive mirror.
    ((6, 8), (slice(None, None, -1), slice(None, None, -1)), 1),
    ((8, 8), (slice(6, 1, -1), slice(0, 5)), 5),
    # Single column of a wide array: one interval per row.
    ((8, 8), (slice(None), slice(3, 4)), 8),
    ((8, 8), (slice(None), 3), 8),
    # A one-column array's column IS contiguous.
    ((8, 1), (slice(None), slice(None)), 1),
    # Empty sections floor at one descriptor.
    ((5, 5), (slice(3, 3), slice(0, 2)), 1),
    ((5, 5), (slice(0, 2), slice(4, 1)), 1),
    # 1D: contiguous vs strided.
    ((100,), (slice(10, 50),), 1),
    ((10,), (slice(0, 10, 3),), 4),
    ((10,), (slice(None, None, -1),), 1),
])
def test_section_segments_named_cases(shape, idx, expected):
    assert _section_segments(shape, idx) == expected
    assert expected == max(1, numpy_segments(shape, idx))
