"""Request cancellation semantics: timed-out waits tear the operation down.

``Request.wait(timeout)`` used to merely stop waiting; since the crash
recovery work it *cancels* the request — the in-flight flow is aborted,
``done`` fails with :class:`WaitTimeout`, and no orphaned events linger
in the engine.  This is load-bearing for the robust-wait retry loop: a
re-issued get must not race its abandoned predecessor for bandwidth.
"""

import numpy as np
import pytest

from repro.comm import run_parallel
from repro.comm.base import Request, WaitTimeout
from repro.machines import LINUX_MYRINET


class TestWaitTimeoutCancels:
    def test_timeout_aborts_flow_and_fails_done(self):
        observed = {}

        def prog(ctx):
            local = ctx.armci.malloc("seg", (512, 512))
            local[...] = 7.0
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                out = np.zeros((512, 512))
                req = ctx.armci.nb_get(2, "seg", out)  # cross-node: slow
                with pytest.raises(WaitTimeout):
                    yield from req.wait(timeout=1e-6)
                observed["done"] = req.done.triggered
                observed["ok"] = req.done.ok
                observed["delivered"] = float(out.max())
                observed["aborted"] = ctx.machine.net.aborted_flows

        run = run_parallel(LINUX_MYRINET, 4, prog)
        assert observed["done"] and not observed["ok"]
        assert observed["delivered"] == 0.0  # payload never landed
        assert observed["aborted"] >= 1
        # The run drained: nothing left in the engine's heap or the network.
        assert run.machine.engine.pending_events == 0
        assert run.machine.net.active_flow_count == 0

    def test_timeout_longer_than_transfer_is_a_plain_wait(self):
        def prog(ctx):
            local = ctx.armci.malloc("seg", (64,))
            local[...] = ctx.rank
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                out = np.zeros(64)
                req = ctx.armci.nb_get(2, "seg", out)
                yield from req.wait(timeout=10.0)
                assert np.all(out == 2)
                assert ctx.machine.net.aborted_flows == 0

        run_parallel(LINUX_MYRINET, 4, prog)

    def test_reissue_after_timeout_completes(self):
        # The robust-wait pattern: cancel a stuck get, issue a fresh one.
        def prog(ctx):
            local = ctx.armci.malloc("seg", (256, 256))
            local[...] = 3.0
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                out = np.zeros((256, 256))
                req = ctx.armci.nb_get(2, "seg", out)
                with pytest.raises(WaitTimeout):
                    yield from req.wait(timeout=1e-6)
                retry = ctx.armci.nb_get(2, "seg", out)
                yield from retry.wait()
                assert np.all(out == 3.0)

        run = run_parallel(LINUX_MYRINET, 4, prog)
        assert run.machine.net.aborted_flows == 1


class TestCancelDirect:
    def test_cancel_pending_true_then_completed_false(self):
        def prog(ctx):
            local = ctx.armci.malloc("seg", (128, 128))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                out = np.zeros((128, 128))
                req = ctx.armci.nb_get(2, "seg", out)
                assert req.cancel() is True
                assert req.done.triggered and not req.done.ok
                assert req.cancel() is False  # idempotent once down
                ok = ctx.armci.nb_get(2, "seg", out)
                yield from ok.wait()
                assert ok.cancel() is False  # completed: no-op

        run_parallel(LINUX_MYRINET, 4, prog)

    def test_cancel_wakes_other_waiters_with_failure(self):
        failures = []

        def prog(ctx):
            local = ctx.armci.malloc("seg", (256, 256))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                out = np.zeros((256, 256))
                req = ctx.armci.nb_get(2, "seg", out)

                def other_waiter():
                    try:
                        yield from req.wait()
                    except WaitTimeout as exc:
                        failures.append(exc)

                ctx.engine.spawn(other_waiter())
                with pytest.raises(WaitTimeout):
                    yield from req.wait(timeout=1e-6)

        run_parallel(LINUX_MYRINET, 4, prog)
        # The second waiter saw the same cancellation, not a hang.
        assert len(failures) == 1


class TestNoTransportLeak:
    def test_repeated_timeouts_leave_no_residue(self):
        def prog(ctx):
            local = ctx.armci.malloc("seg", (512, 512))
            yield from ctx.mpi.barrier()
            if ctx.rank == 0:
                out = np.zeros((512, 512))
                for _ in range(5):
                    req = ctx.armci.nb_get(2, "seg", out)
                    with pytest.raises(WaitTimeout):
                        yield from req.wait(timeout=1e-6)

        run = run_parallel(LINUX_MYRINET, 4, prog)
        assert run.machine.net.aborted_flows == 5
        assert run.machine.net.active_flow_count == 0
        assert run.machine.engine.pending_events == 0
