"""Tests for the two-sided MPI model."""

import numpy as np
import pytest

from repro.comm import ANY_SOURCE, ANY_TAG, CommError, run_parallel
from repro.machines import IDEAL, LINUX_MYRINET

EAGER = LINUX_MYRINET.network.eager_threshold


def test_blocking_send_recv_small_message():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.arange(8.0), tag=5)
        else:
            out = np.zeros(8)
            src, tag, nbytes = yield from ctx.mpi.recv(out, src=0, tag=5)
            assert (src, tag) == (0, 5)
            assert nbytes == 64
            assert np.array_equal(out, np.arange(8.0))

    run_parallel(LINUX_MYRINET, 2, prog)


def test_blocking_send_recv_rendezvous_message():
    n = (EAGER // 8) * 4  # well above the eager threshold

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(2, np.full(n, 3.5))
        elif ctx.rank == 2:
            out = np.zeros(n)
            yield from ctx.mpi.recv(out, src=0)
            assert np.all(out == 3.5)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_messages_from_same_sender_keep_order():
    def prog(ctx):
        if ctx.rank == 0:
            for i in range(5):
                yield from ctx.mpi.send(1, np.full(4, float(i)), tag=7)
        else:
            seen = []
            for _ in range(5):
                out = np.zeros(4)
                yield from ctx.mpi.recv(out, src=0, tag=7)
                seen.append(out[0])
            assert seen == [0.0, 1.0, 2.0, 3.0, 4.0]

    run_parallel(LINUX_MYRINET, 2, prog)


def test_tag_matching_selects_correct_message():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.full(2, 1.0), tag=10)
            yield from ctx.mpi.send(1, np.full(2, 2.0), tag=20)
        else:
            out = np.zeros(2)
            yield from ctx.mpi.recv(out, src=0, tag=20)
            assert np.all(out == 2.0)
            yield from ctx.mpi.recv(out, src=0, tag=10)
            assert np.all(out == 1.0)

    run_parallel(LINUX_MYRINET, 2, prog)


def test_wildcard_source_and_tag():
    def prog(ctx):
        if ctx.rank == 0:
            out = np.zeros(1)
            src, tag, _ = yield from ctx.mpi.recv(out, src=ANY_SOURCE, tag=ANY_TAG)
            assert src in (1, 2)
            assert np.all(out == src)
        else:
            yield from ctx.mpi.send(0, np.full(1, float(ctx.rank)), tag=ctx.rank)

    run_parallel(LINUX_MYRINET, 3, prog)


def test_recv_buffer_size_mismatch_raises():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.zeros(4))
        else:
            out = np.zeros(6)
            with pytest.raises(CommError, match="buffer size"):
                yield from ctx.mpi.recv(out, src=0)

    with pytest.raises(CommError):
        run_parallel(LINUX_MYRINET, 2, prog)


def test_sendrecv_ring_shift():
    def prog(ctx):
        n = ctx.nranks
        data = np.full(4, float(ctx.rank))
        out = np.zeros(4)
        dst = (ctx.rank + 1) % n
        src = (ctx.rank - 1) % n
        yield from ctx.mpi.sendrecv(dst, data, src, out, send_tag=3, recv_tag=3)
        assert np.all(out == src)

    run_parallel(LINUX_MYRINET, 6, prog)


def test_sendrecv_large_messages_no_deadlock():
    n = (EAGER // 8) * 8

    def prog(ctx):
        data = np.full(n, float(ctx.rank))
        out = np.zeros(n)
        dst = (ctx.rank + 1) % ctx.nranks
        src = (ctx.rank - 1) % ctx.nranks
        yield from ctx.mpi.sendrecv(dst, data, src, out)
        assert np.all(out == src)

    run_parallel(LINUX_MYRINET, 4, prog)


@pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 8, 13])
def test_bcast_all_group_sizes(nranks):
    def prog(ctx):
        buf = np.zeros(16)
        if ctx.rank == 0:
            buf[...] = np.arange(16.0)
        yield from ctx.mpi.bcast(buf, root=0)
        assert np.array_equal(buf, np.arange(16.0))

    run_parallel(LINUX_MYRINET, nranks, prog)


@pytest.mark.parametrize("root", [0, 1, 3, 6])
def test_bcast_nonzero_root(root):
    def prog(ctx):
        buf = np.zeros(4)
        if ctx.rank == root:
            buf[...] = 42.0
        yield from ctx.mpi.bcast(buf, root=root)
        assert np.all(buf == 42.0)

    run_parallel(LINUX_MYRINET, 7, prog)


def test_bcast_subgroup():
    group = [1, 3, 5]

    def prog(ctx):
        if ctx.rank in group:
            buf = np.zeros(4)
            if ctx.rank == 3:
                buf[...] = 9.0
            yield from ctx.mpi.bcast(buf, root=3, group=group)
            assert np.all(buf == 9.0)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 6, prog)


def test_bcast_rank_outside_group_raises():
    def prog(ctx):
        if ctx.rank == 0:
            with pytest.raises(CommError, match="not in broadcast group"):
                yield from ctx.mpi.bcast(np.zeros(1), root=1, group=[1, 2])
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 3, prog)


@pytest.mark.parametrize("nranks", [2, 3, 7, 8])
def test_barrier_synchronises(nranks):
    arrivals = {}
    departures = {}

    def prog(ctx):
        # Stagger arrivals.
        yield ctx.engine.timeout(0.001 * ctx.rank)
        arrivals[ctx.rank] = ctx.now
        yield from ctx.mpi.barrier()
        departures[ctx.rank] = ctx.now

    run_parallel(LINUX_MYRINET, nranks, prog)
    # Nobody leaves the barrier before the last arrival.
    assert min(departures.values()) >= max(arrivals.values())


def test_eager_nonblocking_send_overlaps():
    """Eager isend completes locally; sender is free during the wire time."""
    n = EAGER // 8  # exactly at the threshold -> eager
    spec = LINUX_MYRINET
    times = {}

    def prog(ctx):
        if ctx.rank == 0:
            data = np.ones(n)
            t0 = ctx.now
            req = ctx.mpi.isend(2, data)
            yield from ctx.mpi.wait(req)
            times["send_complete"] = ctx.now - t0
        elif ctx.rank == 2:
            out = np.zeros(n)
            yield from ctx.mpi.recv(out, src=0)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(spec, 4, prog)
    wire = (n * 8) / spec.network.bandwidth
    # The send completed after the local copy, well before the wire time.
    assert times["send_complete"] < wire


def test_rendezvous_requires_sender_in_library():
    """An isend above the threshold makes no progress while the sender
    computes; the transfer happens inside wait() (the Fig. 7 cliff)."""
    n = (EAGER // 8) * 64
    spec = LINUX_MYRINET
    wire = (n * 8) / spec.network.bandwidth
    times = {}

    def prog(ctx):
        if ctx.rank == 0:
            data = np.ones(n)
            req = ctx.mpi.isend(2, data)
            yield from ctx.compute(wire * 2)  # plenty of time to overlap...
            t0 = ctx.now
            yield from ctx.mpi.wait(req)
            times["wait"] = ctx.now - t0  # ...but none happened
        elif ctx.rank == 2:
            out = np.zeros(n)
            req = ctx.mpi.irecv(out, src=0)
            yield from ctx.mpi.wait(req)
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(spec, 4, prog)
    # The full wire time is paid inside wait: overlap ~ 0.
    assert times["wait"] >= wire * 0.9


def test_intra_node_mpi_does_not_use_nic():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.ones(256))  # same node on 2-way nodes
        elif ctx.rank == 1:
            out = np.zeros(256)
            yield from ctx.mpi.recv(out, src=0)
        else:
            yield ctx.engine.timeout(0.0)

    run = run_parallel(LINUX_MYRINET, 4, prog)
    assert run.machine.nodes[0].nic_out.bytes_carried == 0


def test_unmatched_recv_is_reported_as_deadlock():
    def prog(ctx):
        if ctx.rank == 0:
            out = np.zeros(1)
            yield from ctx.mpi.recv(out, src=1, tag=99)  # never sent
        else:
            yield ctx.engine.timeout(0.0)

    with pytest.raises(CommError, match="deadlock"):
        run_parallel(LINUX_MYRINET, 2, prog)


def test_send_to_invalid_rank_raises():
    def prog(ctx):
        yield ctx.engine.timeout(0.0)
        with pytest.raises(IndexError):
            ctx.mpi.isend(99, np.zeros(1))

    run_parallel(LINUX_MYRINET, 2, prog)


def test_self_send_recv():
    def prog(ctx):
        req = ctx.mpi.isend(ctx.rank, np.full(4, 1.25), tag=1)
        out = np.zeros(4)
        rreq = ctx.mpi.irecv(out, src=ctx.rank, tag=1)
        yield from ctx.mpi.wait_all([req, rreq])
        assert np.all(out == 1.25)

    run_parallel(LINUX_MYRINET, 1, prog)


def test_mpi_message_counters():
    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.mpi.send(1, np.zeros(4))
        else:
            out = np.zeros(4)
            yield from ctx.mpi.recv(out, src=0)

    run = run_parallel(IDEAL, 2, prog)
    assert run.tracer.counters["mpi_send"] == 1
    assert run.tracer.counters["mpi_recv"] == 1
