"""Tests for strided (non-contiguous) transfer costs."""

import numpy as np
import pytest

from repro.comm import run_parallel
from repro.comm.armci import _section_segments
from repro.machines import LINUX_MYRINET


class TestSectionSegments:
    def test_full_array_is_one_segment(self):
        assert _section_segments((10, 10), (slice(0, 10), slice(0, 10))) == 1

    def test_full_width_rows_are_one_segment(self):
        assert _section_segments((10, 10), (slice(2, 7), slice(0, 10))) == 1

    def test_sub_width_section_one_segment_per_row(self):
        assert _section_segments((10, 10), (slice(2, 7), slice(0, 5))) == 5

    def test_single_row_subsection(self):
        assert _section_segments((10, 10), (slice(3, 4), slice(1, 4))) == 1

    def test_1d_always_contiguous(self):
        assert _section_segments((100,), (slice(10, 50),)) == 1

    def test_column_slice(self):
        assert _section_segments((8, 8), (slice(0, 8), slice(3, 4))) == 8


def test_strided_get_costs_more_than_contiguous():
    """Same byte count, different shapes: a column strip pays per-row
    descriptor overhead on Myrinet, a row strip does not."""
    spec = LINUX_MYRINET
    times = {}

    def prog(ctx):
        local = ctx.armci.malloc("m", (256, 256))
        local[...] = ctx.rank
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out_rows = np.zeros((4, 256))   # full-width: contiguous
            out_cols = np.zeros((256, 4))   # column strip: 256 segments
            t0 = ctx.now
            yield from ctx.armci.get(2, "m", out_rows,
                                     src_index=(slice(0, 4), slice(None)))
            times["rows"] = ctx.now - t0
            t0 = ctx.now
            yield from ctx.armci.get(2, "m", out_cols,
                                     src_index=(slice(None), slice(0, 4)))
            times["cols"] = ctx.now - t0
            assert np.all(out_rows == 2)
            assert np.all(out_cols == 2)

    run_parallel(spec, 4, prog)
    expected_extra = 255 * spec.network.sg_overhead
    assert times["cols"] - times["rows"] == pytest.approx(expected_extra, rel=0.05)


def test_byte_level_segments_match_real_timing():
    spec = LINUX_MYRINET
    times = {}

    def prog(ctx):
        local = ctx.armci.malloc("m", (64, 64))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((64, 8))
            t0 = ctx.now
            yield from ctx.armci.get(2, "m", out,
                                     src_index=(slice(None), slice(0, 8)))
            times["real"] = ctx.now - t0
            t0 = ctx.now
            yield from ctx.armci.get_bytes(2, out.nbytes, segments=64)
            times["bytes"] = ctx.now - t0

    run_parallel(spec, 4, prog)
    assert times["bytes"] == pytest.approx(times["real"], rel=1e-9)


def test_zero_sg_overhead_means_no_penalty():
    spec = LINUX_MYRINET.with_network(sg_overhead=0.0)
    times = {}

    def prog(ctx):
        ctx.armci.malloc("m", (128, 128))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            t0 = ctx.now
            yield from ctx.armci.get_bytes(2, 8192.0, segments=1)
            times["contig"] = ctx.now - t0
            t0 = ctx.now
            yield from ctx.armci.get_bytes(2, 8192.0, segments=128)
            times["strided"] = ctx.now - t0

    run_parallel(spec, 4, prog)
    assert times["strided"] == pytest.approx(times["contig"], rel=1e-9)


def test_srumma_synthetic_still_matches_real_with_strided_costs():
    """The end-to-end guarantee after adding segment costs."""
    from repro.core import srumma_multiply

    real = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48)
    synth = srumma_multiply(LINUX_MYRINET, 8, 48, 48, 48, payload="synthetic")
    assert synth.elapsed == pytest.approx(real.elapsed, rel=1e-9)
