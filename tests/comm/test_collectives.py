"""Tests for reduce/allreduce collectives."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.machines import LINUX_MYRINET


@pytest.mark.parametrize("nranks", [1, 2, 3, 5, 8])
def test_reduce_sum_to_root(nranks):
    def prog(ctx):
        buf = np.full(4, float(ctx.rank + 1))
        yield from ctx.mpi.reduce(buf, root=0, op="sum")
        if ctx.rank == 0:
            total = sum(range(1, nranks + 1))
            assert np.all(buf == total)

    run_parallel(LINUX_MYRINET, nranks, prog)


@pytest.mark.parametrize("root", [0, 2, 4])
def test_reduce_nonzero_root(root):
    def prog(ctx):
        buf = np.full(2, float(ctx.rank))
        yield from ctx.mpi.reduce(buf, root=root, op="sum")
        if ctx.rank == root:
            assert np.all(buf == sum(range(5)))

    run_parallel(LINUX_MYRINET, 5, prog)


def test_reduce_max_and_min():
    def prog(ctx):
        buf = np.array([float(ctx.rank), -float(ctx.rank)])
        yield from ctx.mpi.reduce(buf, root=0, op="max")
        if ctx.rank == 0:
            assert buf[0] == 5.0
        buf2 = np.array([float(ctx.rank)])
        yield from ctx.mpi.reduce(buf2, root=0, op="min", tag=4_100_000)
        if ctx.rank == 0:
            assert buf2[0] == 0.0

    run_parallel(LINUX_MYRINET, 6, prog)


def test_reduce_unknown_op_raises():
    def prog(ctx):
        with pytest.raises(CommError, match="unknown reduce op"):
            yield from ctx.mpi.reduce(np.zeros(1), root=0, op="xor")

    run_parallel(LINUX_MYRINET, 2, prog)


def test_reduce_subgroup():
    group = [1, 2, 4]

    def prog(ctx):
        if ctx.rank in group:
            buf = np.array([1.0])
            yield from ctx.mpi.reduce(buf, root=2, op="sum", group=group)
            if ctx.rank == 2:
                assert buf[0] == 3.0
        else:
            yield ctx.engine.timeout(0.0)

    run_parallel(LINUX_MYRINET, 5, prog)


@pytest.mark.parametrize("nranks", [1, 2, 4, 7])
def test_allreduce_everyone_gets_result(nranks):
    def prog(ctx):
        buf = np.array([float(ctx.rank + 1)])
        yield from ctx.mpi.allreduce(buf, op="sum")
        assert buf[0] == sum(range(1, nranks + 1))

    run_parallel(LINUX_MYRINET, nranks, prog)


def test_allreduce_large_payload():
    n = 4096

    def prog(ctx):
        buf = np.full(n, 1.0)
        yield from ctx.mpi.allreduce(buf, op="sum")
        assert np.all(buf == 4.0)

    run_parallel(LINUX_MYRINET, 4, prog)


def test_byte_level_reduce_times_only():
    times = {}

    def prog(ctx):
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        yield from ctx.mpi.reduce(None, root=0, op="sum", nbytes=65536.0)
        times[ctx.rank] = ctx.now - t0

    run_parallel(LINUX_MYRINET, 4, prog)
    assert times[0] > 0  # the root actually waited for contributions


def test_byte_level_reduce_needs_nbytes():
    def prog(ctx):
        with pytest.raises(ValueError, match="nbytes"):
            yield from ctx.mpi.reduce(None, root=0)

    run_parallel(LINUX_MYRINET, 2, prog)
