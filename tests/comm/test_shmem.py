"""Tests for direct shared-memory access."""

import numpy as np
import pytest

from repro.comm import CommError, run_parallel
from repro.machines import CRAY_X1, LINUX_MYRINET, SGI_ALTIX


def test_view_same_node_is_a_real_reference():
    def prog(ctx):
        local = ctx.armci.malloc("blk", (4, 4))
        local[...] = float(ctx.rank)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            v = ctx.shmem.view(1, "blk")
            assert np.all(v == 1.0)
            # It is a live reference, not a copy.
            v2 = ctx.shmem.view(1, "blk")
            assert v.base is v2.base or v is v2

    run_parallel(LINUX_MYRINET, 2, prog)


def test_view_cross_domain_raises_on_cluster():
    def prog(ctx):
        ctx.armci.malloc("blk", (2,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(CommError, match="cannot load/store"):
                ctx.shmem.view(2, "blk")  # other node on 2-way nodes

    run_parallel(LINUX_MYRINET, 4, prog)


def test_view_any_rank_on_machine_scope():
    def prog(ctx):
        local = ctx.armci.malloc("blk", (2,))
        local[...] = ctx.rank
        yield from ctx.mpi.barrier()
        v = ctx.shmem.view((ctx.rank + 5) % ctx.nranks, "blk")
        assert np.all(v == (ctx.rank + 5) % ctx.nranks)

    run_parallel(SGI_ALTIX, 8, prog)


def test_view_with_index_returns_section():
    def prog(ctx):
        local = ctx.armci.malloc("blk", (4, 4))
        local[...] = np.arange(16.0).reshape(4, 4)
        yield from ctx.mpi.barrier()
        v = ctx.shmem.view(ctx.rank, "blk", index=(slice(1, 3), slice(0, 2)))
        assert v.shape == (2, 2)
        assert v[0, 0] == 4.0

    run_parallel(SGI_ALTIX, 2, prog)


def test_direct_access_penalty_only_off_node():
    flags = {}

    def prog(ctx):
        yield ctx.engine.timeout(0.0)
        if ctx.rank == 0:
            flags["self"] = ctx.shmem.direct_access_penalty(0)
            flags["same_node"] = ctx.shmem.direct_access_penalty(1)
            flags["off_node"] = ctx.shmem.direct_access_penalty(2)

    run_parallel(SGI_ALTIX, 4, prog)  # 2-CPU bricks
    assert flags == {"self": False, "same_node": False, "off_node": True}


def test_copy_moves_data_and_costs_time():
    spec = CRAY_X1
    times = {}

    def prog(ctx):
        local = ctx.armci.malloc("blk", (1 << 17,))  # 1 MiB
        local[...] = ctx.rank + 0.5
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros(1 << 17)
            t0 = ctx.now
            yield from ctx.shmem.copy(5, "blk", out)  # other node, same domain
            times["copy"] = ctx.now - t0
            assert np.all(out == 5.5)

    run_parallel(spec, 8, prog)
    # Cross-node copies are capped by the slower of the memcpy stream and
    # the NUMA fabric link.
    rate = min(spec.memory.copy_bandwidth, spec.network.bandwidth)
    expected = (1 << 20) / rate
    assert times["copy"] == pytest.approx(expected, rel=0.2)


def test_copy_section():
    def prog(ctx):
        local = ctx.armci.malloc("blk", (8, 8))
        local[...] = np.arange(64.0).reshape(8, 8) * (ctx.rank + 1)
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            out = np.zeros((2, 8))
            yield from ctx.shmem.copy(
                1, "blk", out, src_index=(slice(4, 6), slice(None)))
            expected = (np.arange(64.0).reshape(8, 8) * 2)[4:6]
            assert np.array_equal(out, expected)

    run_parallel(SGI_ALTIX, 2, prog)


def test_copy_cross_domain_raises():
    def prog(ctx):
        ctx.armci.malloc("blk", (4,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            with pytest.raises(CommError, match="cannot copy"):
                yield from ctx.shmem.copy(2, "blk", np.zeros(4))

    run_parallel(LINUX_MYRINET, 4, prog)


def test_concurrent_copies_contend_on_node_memory():
    """Two copies through one node's memory run slower than one."""
    spec = LINUX_MYRINET
    n = 1 << 18  # 2 MiB each

    def one(ctx):
        local = ctx.armci.malloc("blk", (n,))
        yield from ctx.mpi.barrier()
        if ctx.rank == 0:
            yield from ctx.shmem.copy(1, "blk", np.zeros(n))

    r1 = run_parallel(spec, 2, one)
    solo = r1.elapsed

    def two(ctx):
        local = ctx.armci.malloc("blk", (n,))
        yield from ctx.mpi.barrier()
        out = np.zeros(n)
        yield from ctx.shmem.copy(1 - ctx.rank, "blk", out)

    r2 = run_parallel(spec, 2, two)
    both = r2.elapsed
    # node_bandwidth = 2x copy_bandwidth in this spec, so two concurrent
    # streams still fit; they should NOT be 2x slower, but with
    # node_bandwidth == 2*copy_bandwidth they fit exactly -> same time.
    assert both == pytest.approx(solo, rel=0.25)
