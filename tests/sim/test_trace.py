"""Tests for the tracer and time accounting."""

import pytest

from repro.sim import TimeBuckets, Tracer


def test_account_and_totals():
    t = Tracer()
    t.account(0, "compute", 1.5)
    t.account(0, "compute", 0.5)
    t.account(1, "comm_wait", 3.0)
    assert t.buckets(0).compute == 2.0
    assert t.total("compute") == 2.0
    assert t.total("comm_wait") == 3.0


def test_unknown_bucket_goes_to_other():
    t = Tracer()
    t.account(0, "mystery", 2.0)
    assert t.buckets(0).other == 2.0
    assert t.summary()["other"] == 2.0


def test_negative_interval_rejected():
    t = Tracer()
    with pytest.raises(ValueError):
        t.account(0, "compute", -1.0)


def test_counters():
    t = Tracer()
    t.bump("gets")
    t.bump("gets", 4)
    assert t.counters["gets"] == 5
    assert t.summary()["count:gets"] == 5


def test_time_buckets_total():
    b = TimeBuckets(compute=1.0, comm_wait=2.0, copy=0.5)
    assert b.total() == 3.5


def test_event_log_disabled_by_default():
    t = Tracer()
    t.log(1.0, 0, "kind", "detail")
    assert t.events == []


def test_event_log_enabled():
    t = Tracer(record_events=True)
    t.log(1.0, 0, "get", "a")
    t.log(2.0, 1, "put", "b")
    t.log(3.0, 0, "put", "c")
    assert len(t.events) == 3
    assert [e.kind for e in t.events_of(rank=0)] == ["get", "put"]
    assert [e.time for e in t.events_of(kind="put")] == [2.0, 3.0]
    assert len(t.events_of(rank=0, kind="put")) == 1


def test_all_buckets_snapshot():
    t = Tracer()
    t.account(3, "copy", 1.0)
    snap = t.all_buckets()
    assert snap[3].copy == 1.0
