"""Unit tests for Resource, Mailbox and TokenBucket."""

import pytest

from repro.sim import Engine, Mailbox, Resource, SimulationError, Timeout, TokenBucket


def test_resource_serialises_holders():
    eng = Engine()
    res = Resource(eng, capacity=1)
    log = []

    def worker(name, hold):
        yield res.request()
        log.append(("start", name, eng.now))
        yield Timeout(hold)
        res.release()
        log.append(("end", name, eng.now))

    eng.spawn(worker("a", 2.0))
    eng.spawn(worker("b", 1.0))
    eng.run()
    assert log == [
        ("start", "a", 0.0), ("end", "a", 2.0),
        ("start", "b", 2.0), ("end", "b", 3.0),
    ]


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def worker(i):
        yield Timeout(i * 0.001)  # arrive in index order
        yield res.request()
        order.append(i)
        yield Timeout(1.0)
        res.release()

    for i in range(5):
        eng.spawn(worker(i))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_capacity_two_allows_two_concurrent():
    eng = Engine()
    res = Resource(eng, capacity=2)
    starts = []

    def worker(i):
        yield res.request()
        starts.append((i, eng.now))
        yield Timeout(1.0)
        res.release()

    for i in range(4):
        eng.spawn(worker(i))
    eng.run()
    assert starts == [(0, 0.0), (1, 0.0), (2, 1.0), (3, 1.0)]


def test_resource_release_idle_raises():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_occupy_helper():
    eng = Engine()
    res = Resource(eng)

    def worker():
        yield from res.occupy(3.0)
        return eng.now

    p = eng.spawn(worker())
    eng.run()
    assert p.value == 3.0


def test_resource_busy_time_accounting():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def worker():
        yield from res.occupy(2.0)
        yield Timeout(1.0)
        yield from res.occupy(3.0)

    eng.spawn(worker())
    eng.run()
    assert res.busy_time() == pytest.approx(5.0)


def test_resource_invalid_capacity():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_mailbox_put_then_recv():
    eng = Engine()
    box = Mailbox(eng)
    box.put("hello")

    def reader():
        msg = yield box.recv()
        return msg

    p = eng.spawn(reader())
    eng.run()
    assert p.value == "hello"


def test_mailbox_recv_blocks_until_put():
    eng = Engine()
    box = Mailbox(eng)
    got = []

    def reader():
        msg = yield box.recv()
        got.append((eng.now, msg))

    def writer():
        yield Timeout(4.0)
        box.put("late")

    eng.spawn(reader())
    eng.spawn(writer())
    eng.run()
    assert got == [(4.0, "late")]


def test_mailbox_matching_skips_nonmatching():
    eng = Engine()
    box = Mailbox(eng)
    box.put(("tag", 1))
    box.put(("other", 2))
    box.put(("tag", 3))

    def reader():
        a = yield box.recv(lambda m: m[0] == "other")
        b = yield box.recv(lambda m: m[0] == "tag")
        c = yield box.recv(lambda m: m[0] == "tag")
        return [a, b, c]

    p = eng.spawn(reader())
    eng.run()
    assert p.value == [("other", 2), ("tag", 1), ("tag", 3)]


def test_mailbox_waiters_matched_in_fifo_order():
    eng = Engine()
    box = Mailbox(eng)
    got = []

    def reader(i):
        msg = yield box.recv()
        got.append((i, msg))

    eng.spawn(reader(0))
    eng.spawn(reader(1))

    def writer():
        yield Timeout(1.0)
        box.put("m0")
        box.put("m1")

    eng.spawn(writer())
    eng.run()
    assert got == [(0, "m0"), (1, "m1")]


def test_mailbox_poll():
    eng = Engine()
    box = Mailbox(eng)
    assert box.poll() is None
    box.put(5)
    assert box.poll() is None or True  # poll with no match returns the message
    # re-check deterministic behaviour
    box.put(7)
    assert box.poll(lambda m: m > 10) is None
    assert box.poll(lambda m: m == 7) == 7
    assert len(box) == 0


def test_token_bucket_threshold():
    eng = Engine()
    bucket = TokenBucket(eng)
    done = []

    def waiter():
        yield bucket.wait_for(3)
        done.append(eng.now)

    def adder():
        for _ in range(3):
            yield Timeout(1.0)
            bucket.add()

    eng.spawn(waiter())
    eng.spawn(adder())
    eng.run()
    assert done == [3.0]


def test_token_bucket_already_met():
    eng = Engine()
    bucket = TokenBucket(eng)
    bucket.add(5)
    ev = bucket.wait_for(3)
    assert ev.triggered and ev.value == 5


def test_token_bucket_negative_add_rejected():
    eng = Engine()
    bucket = TokenBucket(eng)
    with pytest.raises(ValueError):
        bucket.add(-1)
