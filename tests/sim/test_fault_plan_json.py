"""Property tests for the :class:`FaultPlan` JSON round-trip.

The ``--fault-plan FILE`` CLI path deserialises operator-written JSON, so
the contract is stricter than "our own dumps load back":

- *any* valid plan — including crash schedules and ABFT corruption rates —
  survives ``to_json_dict`` -> ``json.dumps`` -> ``json.loads`` ->
  ``from_json_dict`` exactly (dataclass equality, which is field-exact);
- malformed blobs are rejected with :class:`ValueError` at load time,
  never deferred to a mid-run crash deep inside the simulator.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    FaultPlan,
    LinkBrownout,
    NicOutage,
    NodeCrash,
    StragglerWindow,
)

# Finite, JSON-exact floats (json round-trips Python floats losslessly,
# but NaN != NaN would break equality, so keep draws finite).
_frac = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_pos = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)
_factor = st.floats(min_value=1e-3, max_value=0.999, allow_nan=False)


@st.composite
def _windows(draw):
    t0 = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    dt = draw(_pos)
    return t0, t0 + dt


@st.composite
def _brownouts(draw):
    t0, t1 = draw(_windows())
    return LinkBrownout(node=draw(st.integers(0, 7)), t_start=t0, t_end=t1,
                        factor=draw(_factor),
                        direction=draw(st.sampled_from(("out", "in", "both"))))


@st.composite
def _outages(draw):
    t0, t1 = draw(_windows())
    return NicOutage(node=draw(st.integers(0, 7)), t_start=t0, t_end=t1,
                     residual=draw(st.floats(min_value=1e-6, max_value=1.0,
                                             allow_nan=False)))


@st.composite
def _stragglers(draw):
    # One window per rank, so the no-overlap validation cannot fire.
    t0, t1 = draw(_windows())
    return StragglerWindow(rank=draw(st.integers(0, 63)), t_start=t0,
                           t_end=t1,
                           slowdown=draw(st.floats(min_value=1.0,
                                                   max_value=16.0,
                                                   allow_nan=False)))


@st.composite
def _crashes(draw):
    t_fail = draw(_pos)
    recover = draw(st.one_of(st.none(), _pos))
    return NodeCrash(node=draw(st.integers(0, 7)), t_fail=t_fail,
                     t_recover=None if recover is None else t_fail + recover,
                     residual=draw(st.floats(min_value=1e-6, max_value=1.0,
                                             allow_nan=False)))


@st.composite
def _plans(draw):
    stragglers = {w.rank: w for w in draw(st.lists(_stragglers(), max_size=3))}
    crashes = {c.node: c for c in draw(st.lists(_crashes(), max_size=3))}
    return FaultPlan(
        brownouts=tuple(draw(st.lists(_brownouts(), max_size=3))),
        outages=tuple(draw(st.lists(_outages(), max_size=3))),
        stragglers=tuple(stragglers.values()),
        crashes=tuple(crashes.values()),
        get_fail_prob=draw(_frac),
        corruption_rate=draw(_frac),
        seed=draw(st.integers(0, 2**63 - 1)),
        max_retries=draw(st.integers(0, 10)),
        backoff_base=draw(st.floats(min_value=0.0, max_value=1.0,
                                    allow_nan=False)),
        backoff_factor=draw(st.floats(min_value=1.0, max_value=10.0,
                                      allow_nan=False)),
        detect_timeout=draw(st.floats(min_value=0.0, max_value=1.0,
                                      allow_nan=False)),
        get_timeout=draw(st.one_of(st.none(), _pos)),
        checkpoint_interval=draw(st.integers(1, 64)),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_plans())
    def test_any_valid_plan_survives_json(self, plan):
        wire = json.dumps(plan.to_json_dict(), sort_keys=True)
        assert FaultPlan.from_json_dict(json.loads(wire)) == plan

    @settings(max_examples=60, deadline=None)
    @given(_plans())
    def test_wire_form_is_canonical(self, plan):
        # Serialising the reloaded plan reproduces the exact bytes — the
        # property the on-disk result cache's canonical keys rely on.
        once = json.dumps(plan.to_json_dict(), sort_keys=True)
        again = json.dumps(
            FaultPlan.from_json_dict(json.loads(once)).to_json_dict(),
            sort_keys=True)
        assert once == again

    def test_crash_and_corruption_fields_hit_the_wire(self):
        plan = FaultPlan(crashes=(NodeCrash(node=3, t_fail=0.5),),
                         corruption_rate=0.25, checkpoint_interval=2,
                         get_timeout=1.0)
        blob = plan.to_json_dict()
        assert blob["crashes"] == [{"node": 3, "t_fail": 0.5,
                                    "t_recover": None, "residual": 1e-4}]
        assert blob["corruption_rate"] == 0.25
        assert blob["checkpoint_interval"] == 2
        assert FaultPlan.from_json_dict(blob) == plan

    def test_save_load_file(self, tmp_path):
        plan = FaultPlan(crashes=(NodeCrash(node=1, t_fail=2.0,
                                            t_recover=3.0),),
                         corruption_rate=0.1)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan


class TestCorruptBlobs:
    @pytest.mark.parametrize("blob", [
        [],                                        # not an object
        "plan",                                    # not an object
        {"bogus_field": 1},                        # unknown key
        {"crashes": [{"node": 0}]},                # missing t_fail
        {"crashes": [{"node": 0, "t_fail": -1.0}]},   # invalid value
        {"crashes": [{"node": 0, "t_fail": 1.0,
                      "t_recover": 0.5}]},         # recover before fail
        {"crashes": [{"node": 0, "t_fail": 1.0},
                     {"node": 0, "t_fail": 2.0}]},  # duplicate crash node
        {"corruption_rate": 1.5},                  # out of range
        {"checkpoint_interval": 0},                # out of range
        {"get_timeout": 0.0},                      # out of range
        {"stragglers": [{"rank": 0, "t_start": 0.0, "t_end": 2.0,
                         "slowdown": 1.5},
                        {"rank": 0, "t_start": 1.0, "t_end": 3.0,
                         "slowdown": 2.0}]},       # overlapping windows
    ])
    def test_rejected_with_value_error(self, blob):
        with pytest.raises((ValueError, TypeError)):
            FaultPlan.from_json_dict(blob)

    def test_truncated_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"get_fail_prob": 0.5, "crash')
        with pytest.raises(json.JSONDecodeError):
            FaultPlan.load(path)
