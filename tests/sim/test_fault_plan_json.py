"""Property tests for the :class:`FaultPlan` JSON round-trip.

The ``--fault-plan FILE`` CLI path deserialises operator-written JSON, so
the contract is stricter than "our own dumps load back":

- *any* valid plan — including crash schedules and ABFT corruption rates —
  survives ``to_json_dict`` -> ``json.dumps`` -> ``json.loads`` ->
  ``from_json_dict`` exactly (dataclass equality, which is field-exact);
- malformed blobs are rejected with :class:`ValueError` at load time,
  never deferred to a mid-run crash deep inside the simulator.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    DetectorConfig,
    FaultPlan,
    LinkBrownout,
    NetworkPartition,
    NicOutage,
    NodeCrash,
    NodeRejoin,
    StragglerWindow,
)

# Finite, JSON-exact floats (json round-trips Python floats losslessly,
# but NaN != NaN would break equality, so keep draws finite).
_frac = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_pos = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)
_factor = st.floats(min_value=1e-3, max_value=0.999, allow_nan=False)


@st.composite
def _windows(draw):
    t0 = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    dt = draw(_pos)
    return t0, t0 + dt


@st.composite
def _brownouts(draw):
    t0, t1 = draw(_windows())
    return LinkBrownout(node=draw(st.integers(0, 7)), t_start=t0, t_end=t1,
                        factor=draw(_factor),
                        direction=draw(st.sampled_from(("out", "in", "both"))))


@st.composite
def _outages(draw):
    t0, t1 = draw(_windows())
    return NicOutage(node=draw(st.integers(0, 7)), t_start=t0, t_end=t1,
                     residual=draw(st.floats(min_value=1e-6, max_value=1.0,
                                             allow_nan=False)))


@st.composite
def _stragglers(draw):
    # One window per rank, so the no-overlap validation cannot fire.
    t0, t1 = draw(_windows())
    return StragglerWindow(rank=draw(st.integers(0, 63)), t_start=t0,
                           t_end=t1,
                           slowdown=draw(st.floats(min_value=1.0,
                                                   max_value=16.0,
                                                   allow_nan=False)))


@st.composite
def _crashes(draw, min_node=0):
    t_fail = draw(_pos)
    recover = draw(st.one_of(st.none(), _pos))
    return NodeCrash(node=draw(st.integers(min_node, 7)), t_fail=t_fail,
                     t_recover=None if recover is None else t_fail + recover,
                     residual=draw(st.floats(min_value=1e-6, max_value=1.0,
                                             allow_nan=False)))


@st.composite
def _partitions(draw):
    # Nodes 8-15: disjoint from the crash pool (0-7) so the partition/crash
    # clash validation cannot fire, and never the monitor node 0.
    t0, t1 = draw(_windows())
    nodes = draw(st.lists(st.integers(8, 15), min_size=1, max_size=3,
                          unique=True))
    return NetworkPartition(nodes=tuple(nodes), t_start=t0, t_heal=t1,
                            residual=draw(st.floats(min_value=1e-6,
                                                    max_value=1.0,
                                                    allow_nan=False)))


@st.composite
def _detectors(draw):
    period = draw(st.floats(min_value=1e-4, max_value=0.1, allow_nan=False))
    return DetectorConfig(
        mode=draw(st.sampled_from(("timeout", "phi"))),
        period=period,
        timeout=period + draw(_pos),
        confirm_grace=draw(st.floats(min_value=0.0, max_value=1.0,
                                     allow_nan=False)),
        phi_threshold=draw(st.floats(min_value=0.1, max_value=32.0,
                                     allow_nan=False)),
        heartbeat_bytes=draw(st.floats(min_value=1.0, max_value=4096.0,
                                       allow_nan=False)),
        dissemination_bytes=draw(st.floats(min_value=1.0, max_value=4096.0,
                                           allow_nan=False)),
        heartbeat_loss_prob=draw(st.floats(min_value=0.0, max_value=0.5,
                                           allow_nan=False)))


@st.composite
def _plans(draw):
    stragglers = {w.rank: w for w in draw(st.lists(_stragglers(), max_size=3))}
    detector = draw(st.one_of(st.none(), _detectors()))
    # With a detector the monitor node 0 may not crash; rejoins require a
    # detector plus a matching crash that never set t_recover.
    crashes = {c.node: c
               for c in draw(st.lists(
                   _crashes(min_node=1 if detector is not None else 0),
                   max_size=3))}
    rejoins = ()
    if detector is not None:
        rejoinable = sorted(
            (c for c in crashes.values() if c.t_recover is None),
            key=lambda c: c.node)
        picked = [c for c in rejoinable if draw(st.booleans())]
        rejoins = tuple(NodeRejoin(node=c.node,
                                   t_rejoin=c.t_fail + draw(_pos))
                        for c in picked)
    return FaultPlan(
        brownouts=tuple(draw(st.lists(_brownouts(), max_size=3))),
        outages=tuple(draw(st.lists(_outages(), max_size=3))),
        stragglers=tuple(stragglers.values()),
        crashes=tuple(crashes.values()),
        partitions=tuple(draw(st.lists(_partitions(), max_size=2))),
        rejoins=rejoins,
        detector=detector,
        watchdog_grace=draw(st.one_of(st.none(), _pos)),
        get_fail_prob=draw(_frac),
        corruption_rate=draw(_frac),
        seed=draw(st.integers(0, 2**63 - 1)),
        max_retries=draw(st.integers(0, 10)),
        backoff_base=draw(st.floats(min_value=0.0, max_value=1.0,
                                    allow_nan=False)),
        backoff_factor=draw(st.floats(min_value=1.0, max_value=10.0,
                                      allow_nan=False)),
        detect_timeout=draw(st.floats(min_value=0.0, max_value=1.0,
                                      allow_nan=False)),
        get_timeout=draw(st.one_of(st.none(), _pos)),
        checkpoint_interval=draw(st.integers(1, 64)),
    )


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_plans())
    def test_any_valid_plan_survives_json(self, plan):
        wire = json.dumps(plan.to_json_dict(), sort_keys=True)
        assert FaultPlan.from_json_dict(json.loads(wire)) == plan

    @settings(max_examples=60, deadline=None)
    @given(_plans())
    def test_wire_form_is_canonical(self, plan):
        # Serialising the reloaded plan reproduces the exact bytes — the
        # property the on-disk result cache's canonical keys rely on.
        once = json.dumps(plan.to_json_dict(), sort_keys=True)
        again = json.dumps(
            FaultPlan.from_json_dict(json.loads(once)).to_json_dict(),
            sort_keys=True)
        assert once == again

    def test_crash_and_corruption_fields_hit_the_wire(self):
        plan = FaultPlan(crashes=(NodeCrash(node=3, t_fail=0.5),),
                         corruption_rate=0.25, checkpoint_interval=2,
                         get_timeout=1.0)
        blob = plan.to_json_dict()
        assert blob["crashes"] == [{"node": 3, "t_fail": 0.5,
                                    "t_recover": None, "residual": 1e-4}]
        assert blob["corruption_rate"] == 0.25
        assert blob["checkpoint_interval"] == 2
        assert FaultPlan.from_json_dict(blob) == plan

    def test_detection_fields_hit_the_wire(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node=2, t_fail=1.0),),
            partitions=(NetworkPartition(nodes=(3, 4), t_start=0.5,
                                         t_heal=2.0),),
            rejoins=(NodeRejoin(node=2, t_rejoin=3.0),),
            detector=DetectorConfig(period=0.002, timeout=0.01,
                                    confirm_grace=0.005,
                                    heartbeat_loss_prob=0.1),
            watchdog_grace=5.0)
        blob = plan.to_json_dict()
        assert blob["partitions"][0]["nodes"] == [3, 4]
        assert blob["rejoins"] == [{"node": 2, "t_rejoin": 3.0}]
        assert blob["detector"]["heartbeat_loss_prob"] == 0.1
        assert blob["watchdog_grace"] == 5.0
        assert FaultPlan.from_json_dict(blob) == plan

    def test_save_load_file(self, tmp_path):
        plan = FaultPlan(crashes=(NodeCrash(node=1, t_fail=2.0,
                                            t_recover=3.0),),
                         corruption_rate=0.1)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan


class TestCorruptBlobs:
    @pytest.mark.parametrize("blob", [
        [],                                        # not an object
        "plan",                                    # not an object
        {"bogus_field": 1},                        # unknown key
        {"crashes": [{"node": 0}]},                # missing t_fail
        {"crashes": [{"node": 0, "t_fail": -1.0}]},   # invalid value
        {"crashes": [{"node": 0, "t_fail": 1.0,
                      "t_recover": 0.5}]},         # recover before fail
        {"crashes": [{"node": 0, "t_fail": 1.0},
                     {"node": 0, "t_fail": 2.0}]},  # duplicate crash node
        {"corruption_rate": 1.5},                  # out of range
        {"checkpoint_interval": 0},                # out of range
        {"get_timeout": 0.0},                      # out of range
        {"stragglers": [{"rank": 0, "t_start": 0.0, "t_end": 2.0,
                         "slowdown": 1.5},
                        {"rank": 0, "t_start": 1.0, "t_end": 3.0,
                         "slowdown": 2.0}]},       # overlapping windows
        {"partitions": [{"nodes": [], "t_start": 0.0,
                         "t_heal": 1.0}]},         # empty partition
        {"partitions": [{"nodes": [1, 1], "t_start": 0.0,
                         "t_heal": 1.0}]},         # node listed twice
        {"partitions": [{"nodes": [1], "t_start": 1.0,
                         "t_heal": 0.5}]},         # heals before it starts
        {"partitions": [{"nodes": [1], "t_start": 0.0, "t_heal": 1.0,
                         "bogus": 1}]},            # unknown partition key
        {"crashes": [{"node": 1, "t_fail": 0.5}],
         "partitions": [{"nodes": [1], "t_start": 0.0,
                         "t_heal": 1.0}]},         # partitioned AND crashed
        {"rejoins": [{"node": 1, "t_rejoin": 1.0}]},  # rejoin sans detector
        {"detector": {}, "rejoins": [
            {"node": 1, "t_rejoin": 1.0}]},        # rejoin with no crash
        {"detector": {}, "crashes": [{"node": 1, "t_fail": 2.0}],
         "rejoins": [{"node": 1, "t_rejoin": 1.0}]},  # rejoins before crash
        {"detector": {}, "crashes": [
            {"node": 1, "t_fail": 1.0, "t_recover": 2.0}],
         "rejoins": [{"node": 1, "t_rejoin": 3.0}]},  # rejoin + t_recover
        {"detector": {"mode": "psychic"}},         # unknown detector mode
        {"detector": {"period": 0.01,
                      "timeout": 0.005}},          # timeout under period
        {"detector": {"heartbeat_loss_prob": 1.0}},   # certain loss
        {"detector": {"bogus_knob": 1}},           # unknown detector key
        {"detector": {},
         "crashes": [{"node": 0, "t_fail": 1.0}]},    # monitor crashes
        {"detector": {}, "partitions": [
            {"nodes": [0], "t_start": 0.0,
             "t_heal": 1.0}]},                     # monitor partitioned
        {"watchdog_grace": 0.0},                   # out of range
    ])
    def test_rejected_with_value_error(self, blob):
        with pytest.raises((ValueError, TypeError)):
            FaultPlan.from_json_dict(blob)

    def test_truncated_file_raises_cleanly(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"get_fail_prob": 0.5, "crash')
        with pytest.raises(json.JSONDecodeError):
            FaultPlan.load(path)
