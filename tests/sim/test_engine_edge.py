"""Additional edge-case coverage for the engine and combinators."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Timeout,
)


def test_all_of_fails_fast_on_child_failure():
    eng = Engine()

    def good():
        yield Timeout(5.0)
        return "late"

    def bad():
        yield Timeout(1.0)
        raise ValueError("child failed")

    caught = {}

    def parent():
        try:
            yield eng.all_of([eng.spawn(good()), eng.spawn(bad())])
        except ValueError as exc:
            caught["t"] = eng.now
            caught["msg"] = str(exc)

    eng.spawn(parent())
    eng.run()
    # Failure propagates at t=1, not after the slow child.
    assert caught["t"] == 1.0
    assert caught["msg"] == "child failed"


def test_any_of_failure_propagates():
    eng = Engine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("first to finish fails")

    def slow():
        yield Timeout(10.0)

    outcome = {}

    def parent():
        try:
            yield eng.any_of([eng.spawn(bad()), eng.spawn(slow())])
        except RuntimeError:
            outcome["failed_at"] = eng.now

    eng.spawn(parent())
    eng.run()
    assert outcome["failed_at"] == 1.0


def test_event_fail_requires_exception_instance():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_timeout_carries_value():
    eng = Engine()

    def p():
        val = yield eng.timeout(1.0, value="payload")
        return val

    proc = eng.spawn(p())
    eng.run()
    assert proc.value == "payload"


def test_interrupt_during_resource_occupancy_releases_slot():
    """Resource.occupy uses try/finally: an interrupt mid-hold must not
    leak the slot."""
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def holder():
        try:
            yield from res.occupy(100.0)
        except Interrupt:
            order.append(("interrupted", eng.now))

    def interrupter(target):
        yield Timeout(2.0)
        target.interrupt()

    def second():
        yield Timeout(3.0)
        yield from res.occupy(1.0)
        order.append(("second_done", eng.now))

    h = eng.spawn(holder())
    eng.spawn(interrupter(h))
    eng.spawn(second())
    eng.run()
    assert ("interrupted", 2.0) in order
    # The slot was freed, so the second process gets it at t=3.
    assert ("second_done", 4.0) in order


def test_interrupting_completed_process_is_noop():
    eng = Engine()

    def quick():
        yield Timeout(1.0)
        return 5

    p = eng.spawn(quick())
    eng.run()
    p.interrupt()  # must not raise or corrupt
    eng.run()
    assert p.value == 5


def test_run_with_empty_heap_respects_until():
    eng = Engine()
    t = eng.run(until=7.5)
    assert t == 7.5
    assert eng.now == 7.5


def test_pending_events_counts_live_entries():
    eng = Engine()

    def sleeper():
        yield Timeout(10.0)

    eng.spawn(sleeper())
    eng.run(until=1.0)
    assert eng.pending_events >= 1


def test_nested_process_chain():
    """Generators yielding generators yielding generators."""
    eng = Engine()

    def level3():
        yield Timeout(1.0)
        return 3

    def level2():
        v = yield level3()
        return v + 2

    def level1():
        v = yield level2()
        return v + 1

    p = eng.spawn(level1())
    eng.run()
    assert p.value == 6
    assert eng.now == 1.0


def test_event_without_engine_binding_gets_bound_on_yield():
    eng = Engine()
    ev = Event(engine=None)  # type: ignore[arg-type]
    woken = {}

    def waiter():
        val = yield ev
        woken["v"] = val

    def trigger():
        yield Timeout(1.0)
        ev.succeed("ok")

    eng.spawn(waiter())
    eng.spawn(trigger())
    eng.run()
    assert woken["v"] == "ok"


def test_schedule_into_past_rejected():
    eng = Engine()
    with pytest.raises(SimulationError):
        eng._schedule(-1.0, lambda: None)


def test_process_return_none_is_fine():
    eng = Engine()

    def p():
        yield Timeout(1.0)

    proc = eng.spawn(p())
    eng.run()
    assert proc.ok
    assert proc.value is None
