"""Property-based tests for the max-min fair flow network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork, Link, Timeout


@st.composite
def _flow_soups(draw):
    """A random set of links and flows over them."""
    n_links = draw(st.integers(min_value=1, max_value=6))
    bandwidths = [draw(st.floats(min_value=1.0, max_value=1000.0))
                  for _ in range(n_links)]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(n_flows):
        size = draw(st.floats(min_value=1.0, max_value=10_000.0))
        path_len = draw(st.integers(min_value=1, max_value=min(3, n_links)))
        path = draw(st.permutations(range(n_links)))[:path_len]
        start = draw(st.floats(min_value=0.0, max_value=5.0))
        flows.append((size, tuple(path), start))
    return bandwidths, flows


@given(_flow_soups())
@settings(max_examples=150, deadline=None)
def test_all_flows_complete_and_bytes_conserved(soup):
    bandwidths, flow_specs = soup
    eng = Engine()
    net = FlowNetwork(eng)
    links = [Link(f"l{i}", bw) for i, bw in enumerate(bandwidths)]

    def launcher():
        t = 0.0
        for size, path, start in sorted(flow_specs, key=lambda f: f[2]):
            if start > t:
                yield Timeout(start - t)
                t = start
            net.transfer(size, [links[i] for i in path])

    eng.spawn(launcher())
    eng.run()
    assert net.completed_flows == len(flow_specs)
    assert net.active_flow_count == 0
    # Each link carried at least the bytes of every flow crossing it.
    for i, link in enumerate(links):
        expected = sum(size for size, path, _ in flow_specs if i in path)
        assert link.bytes_carried == pytest.approx(expected, rel=1e-6, abs=1e-6)


@given(_flow_soups())
@settings(max_examples=150, deadline=None)
def test_finish_time_bounded_by_link_saturation(soup):
    """Lower bound: no link can drain its total traffic faster than its
    bandwidth allows; upper bound: serialising everything."""
    bandwidths, flow_specs = soup
    eng = Engine()
    net = FlowNetwork(eng)
    links = [Link(f"l{i}", bw) for i, bw in enumerate(bandwidths)]
    last_start = max(start for _, _, start in flow_specs)

    def launcher():
        t = 0.0
        for size, path, start in sorted(flow_specs, key=lambda f: f[2]):
            if start > t:
                yield Timeout(start - t)
                t = start
            net.transfer(size, [links[i] for i in path])

    eng.spawn(launcher())
    finish = eng.run()

    lower = max(
        sum(size for size, path, _ in flow_specs if i in path) / bw
        for i, bw in enumerate(bandwidths)
    )
    assert finish >= lower * (1 - 1e-9)
    upper = last_start + sum(
        size / min(bandwidths[i] for i in path)
        for size, path, _ in flow_specs
    )
    assert finish <= upper * (1 + 1e-9) + 1e-9


@given(
    bw=st.floats(min_value=1.0, max_value=1000.0),
    sizes=st.lists(st.floats(min_value=1.0, max_value=1000.0),
                   min_size=1, max_size=8),
)
@settings(max_examples=100, deadline=None)
def test_equal_sharing_on_single_link(bw, sizes):
    """All flows on one link, same start: finish order matches size order,
    and total time equals total bytes / bandwidth (work conservation)."""
    eng = Engine()
    net = FlowNetwork(eng)
    link = Link("l", bw)
    events = [net.transfer(s, [link]) for s in sizes]
    finish = eng.run()
    assert finish == pytest.approx(sum(sizes) / bw, rel=1e-9)
    assert all(ev.triggered for ev in events)


@given(
    bw=st.floats(min_value=10.0, max_value=100.0),
    size=st.floats(min_value=10.0, max_value=1000.0),
    latency=st.floats(min_value=0.0, max_value=5.0),
)
@settings(max_examples=100, deadline=None)
def test_uncontended_flow_matches_analytic_time(bw, size, latency):
    eng = Engine()
    net = FlowNetwork(eng)
    link = Link("l", bw)
    net.transfer(size, [link], latency=latency)
    finish = eng.run()
    assert finish == pytest.approx(latency + size / bw, rel=1e-9)


def test_max_min_rates_snapshot():
    """Direct check of the allocation: rates are max-min fair."""
    eng = Engine()
    net = FlowNetwork(eng)
    a = Link("a", 100.0)
    b = Link("b", 10.0)
    # f1 on a; f2 on a+b; f3 on b.
    net.transfer(1e9, [a], label="f1")
    net.transfer(1e9, [a, b], label="f2")
    net.transfer(1e9, [b], label="f3")
    flows = {f.label: f for f in net._flows}
    # b is the bottleneck for f2/f3: 5 each; f1 takes the rest of a: 95.
    assert flows["f2"].rate == pytest.approx(5.0)
    assert flows["f3"].rate == pytest.approx(5.0)
    assert flows["f1"].rate == pytest.approx(95.0)
    # No link oversubscribed.
    assert flows["f1"].rate + flows["f2"].rate <= 100.0 + 1e-9
    assert flows["f2"].rate + flows["f3"].rate <= 10.0 + 1e-9


@given(_flow_soups())
@settings(max_examples=75, deadline=None)
def test_no_link_oversubscribed_at_any_reallocation(soup):
    """Invariant probe: after every start, current rates never oversubscribe
    any link."""
    bandwidths, flow_specs = soup
    eng = Engine()
    net = FlowNetwork(eng)
    links = [Link(f"l{i}", bw) for i, bw in enumerate(bandwidths)]

    violations = []

    def check():
        for link in links:
            total = sum(f.rate for f in link.flows)
            if total > link.bandwidth * (1 + 1e-9):
                violations.append((link.name, total, link.bandwidth))

    def launcher():
        t = 0.0
        for size, path, start in sorted(flow_specs, key=lambda f: f[2]):
            if start > t:
                yield Timeout(start - t)
                t = start
            net.transfer(size, [links[i] for i in path])
            check()

    eng.spawn(launcher())
    eng.run()
    assert violations == []
