"""Exact equivalence of the large-rank engine modes.

PR 1 proved the incremental allocator bit-for-bit against the reference
sweep.  The scaling modes added on top — batched event dispatch
(``Engine(batched_dispatch=...)``), analytic fast-forward of coincident
completions (``FlowNetwork(fast_forward=...)``), and per-class flow
aggregation (``FlowNetwork(aggregation=...)``) — carry the same contract:
every observable (completion instants, per-link byte counters, final
virtual time, mid-run rates) must be **bitwise identical** (``==`` on
floats, no tolerance) across every mode combination, including under
aborts and mid-flight bandwidth changes.  These tests extend the PR 1
oracle to the full mode matrix.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork, Link, Timeout

# Every switch combination that must agree with the reference sweep.  The
# reference allocator itself forces all modes off, so it anchors the matrix.
MODE_MATRIX = [
    dict(batched=False, fast_forward=False, aggregation=False),  # stepped
    dict(batched=True, fast_forward=False, aggregation=False),
    dict(batched=False, fast_forward=True, aggregation=False),
    dict(batched=False, fast_forward=False, aggregation=True),
    dict(batched=True, fast_forward=True, aggregation=True),     # default
]


def _build(allocator="incremental", batched=True, fast_forward=True,
           aggregation=True):
    eng = Engine(batched_dispatch=batched)
    net = FlowNetwork(eng, allocator=allocator, fast_forward=fast_forward,
                      aggregation=aggregation)
    return eng, net


@st.composite
def _flow_soups(draw):
    """Random links, timed flow arrivals, and timed cancellations.

    Start times sit on a coarse grid so same-instant arrivals — the
    aggregation (carrier-merge) path — occur routinely, and sizes repeat
    from a small pool so identical (path, size) classes actually form.
    """
    n_links = draw(st.integers(min_value=1, max_value=6))
    bandwidths = [draw(st.floats(min_value=0.5, max_value=800.0))
                  for _ in range(n_links)]
    size_pool = [draw(st.floats(min_value=1.0, max_value=15_000.0))
                 for _ in range(draw(st.integers(min_value=1, max_value=3)))]
    n_flows = draw(st.integers(min_value=1, max_value=14))
    flows = []
    for _ in range(n_flows):
        size = draw(st.sampled_from(size_pool))
        path_len = draw(st.integers(min_value=1, max_value=min(3, n_links)))
        path = tuple(draw(st.permutations(range(n_links)))[:path_len])
        start = draw(st.integers(min_value=0, max_value=6)) * 0.5
        flows.append((size, path, start))
    # Cancellations: (flow index, abort time) — some land before the flow
    # starts (no-op), some mid-flight, some after completion (no-op).
    n_aborts = draw(st.integers(min_value=0, max_value=4))
    aborts = [(draw(st.integers(min_value=0, max_value=n_flows - 1)),
               draw(st.integers(min_value=0, max_value=8)) * 0.75)
              for _ in range(n_aborts)]
    return bandwidths, flows, aborts


def _run_soup(bandwidths, flow_specs, aborts, allocator="incremental",
              **modes):
    eng, net = _build(allocator=allocator, **modes)
    links = [Link(f"l{i}", bw) for i, bw in enumerate(bandwidths)]
    completions: dict[int, float] = {}
    events: dict[int, object] = {}

    def launcher():
        t = 0.0
        for idx, (size, path, start) in sorted(enumerate(flow_specs),
                                               key=lambda kv: kv[1][2]):
            if start > t:
                yield Timeout(start - t)
                t = start
            done = net.transfer(size, [links[i] for i in path], label=str(idx))
            events[idx] = done
            done.add_callback(
                lambda ev, idx=idx: completions.__setitem__(idx, eng.now))

    def aborter():
        t = 0.0
        for idx, at in sorted(aborts, key=lambda kv: kv[1]):
            if at > t:
                yield Timeout(at - t)
                t = at
            done = events.get(idx)
            if done is not None and not done.triggered:
                net.abort(done)

    eng.spawn(launcher())
    if aborts:
        eng.spawn(aborter())
    eng.run()
    assert net.active_flow_count == 0
    return {
        "completions": tuple(sorted(completions.items())),
        "bytes": tuple(link.bytes_carried for link in links),
        "final_now": eng.now,
        "completed": net.completed_flows,
        "aborted": net.aborted_flows,
    }


@given(_flow_soups())
@settings(max_examples=100, deadline=None)
def test_mode_matrix_matches_reference_exactly(soup):
    bandwidths, flow_specs, aborts = soup
    ref = _run_soup(bandwidths, flow_specs, aborts, allocator="reference")
    for modes in MODE_MATRIX:
        got = _run_soup(bandwidths, flow_specs, aborts, **modes)
        assert got == ref, f"divergence with modes {modes}"


@given(_flow_soups())
@settings(max_examples=60, deadline=None)
def test_fast_forward_with_brownouts_matches_reference(soup):
    """A bandwidth change landing inside a fast-forwarded interval must
    invalidate the scheduled analytic jump: results stay bitwise equal to
    the reference sweep with the change applied step-by-step."""
    bandwidths, flow_specs, _ = soup

    def run(allocator, **modes):
        eng, net = _build(allocator=allocator, **modes)
        links = [Link(f"l{i}", bw) for i, bw in enumerate(bandwidths)]
        completions = {}

        def launcher():
            t = 0.0
            for idx, (size, path, start) in sorted(enumerate(flow_specs),
                                                   key=lambda kv: kv[1][2]):
                if start > t:
                    yield Timeout(start - t)
                    t = start
                done = net.transfer(size, [links[i] for i in path],
                                    label=str(idx))
                done.add_callback(
                    lambda ev, idx=idx: completions.__setitem__(idx, eng.now))

        def brownout():
            # Degrade link 0 mid-run, restore later — instants chosen off
            # the arrival grid so they land inside settled intervals.
            yield Timeout(0.8)
            net.set_bandwidth(links[0], bandwidths[0] * 0.125)
            yield Timeout(1.3)
            net.set_bandwidth(links[0], bandwidths[0])

        eng.spawn(launcher())
        eng.spawn(brownout())
        eng.run()
        return {
            "completions": tuple(sorted(completions.items())),
            "bytes": tuple(link.bytes_carried for link in links),
            "final_now": eng.now,
        }

    ref = run("reference")
    for modes in MODE_MATRIX:
        assert run("incremental", **modes) == ref, \
            f"brownout divergence with modes {modes}"


def test_fault_plan_brownout_identical_across_modes():
    """End to end: a PR 4 ``FaultPlan`` brownout driven through a real
    SRUMMA run lands mid-phase inside fast-forwarded intervals; the
    degraded timeline must be bitwise identical with every mode off."""
    from repro.core.api import srumma_multiply
    from repro.machines import LINUX_MYRINET
    from repro.sim.faults import FaultPlan, LinkBrownout

    healthy = srumma_multiply(LINUX_MYRINET, 16, 384, 384, 384,
                              payload="synthetic", verify=False)
    plan = FaultPlan(brownouts=(
        LinkBrownout(node=3, t_start=0.2 * healthy.elapsed,
                     t_end=0.6 * healthy.elapsed, factor=0.1),))
    runs = {}
    for name, tuning in (("on", None),
                         ("off", dict(batched_dispatch=False,
                                      fast_forward=False,
                                      aggregation=False))):
        res = srumma_multiply(LINUX_MYRINET, 16, 384, 384, 384,
                              payload="synthetic", verify=False,
                              faults=plan, tuning=tuning)
        runs[name] = res.elapsed
    assert runs["on"] > healthy.elapsed  # the brownout actually bit
    assert runs["on"] == runs["off"]     # bitwise, no tolerance


class TestBrownoutInsideFastForwardedInterval:
    """The deterministic core case of the satellite: identical same-instant
    transfers merge into one carrier whose completion is one analytic jump
    away; a brownout strikes strictly inside that interval."""

    def _scenario(self, allocator, batched=True, fast_forward=True,
                  aggregation=True):
        eng, net = _build(allocator=allocator, batched=batched,
                          fast_forward=fast_forward, aggregation=aggregation)
        link = Link("nic", 100.0)
        other = Link("nic2", 100.0)
        completions = {}

        def work():
            # Four identical transfers born at one instant: the aggregated
            # path merges them; all four complete at the bitwise-same time,
            # which the fast-forward path schedules as one cohort.
            for i in range(4):
                done = net.transfer(400.0, [link], label=f"m{i}")
                done.add_callback(
                    lambda ev, i=i: completions.__setitem__(f"m{i}", eng.now))
            # A bystander on a disjoint link: its completion must be
            # untouched by the brownout.
            done = net.transfer(100.0, [other], label="solo")
            done.add_callback(
                lambda ev: completions.__setitem__("solo", eng.now))
            yield Timeout(0.0)

        def brownout():
            # The carrier's jump spans [0, 16]; strike at t=5, lift at t=9.
            yield Timeout(5.0)
            net.set_bandwidth(link, 10.0)
            yield Timeout(4.0)
            net.set_bandwidth(link, 100.0)

        eng.spawn(work())
        eng.spawn(brownout())
        eng.run()
        return completions, link.bytes_carried, other.bytes_carried, eng.now

    def test_brownout_invalidates_the_jump(self):
        ref = self._scenario("reference")
        for modes in MODE_MATRIX:
            got = self._scenario("incremental", **modes)
            assert got == ref, f"divergence with modes {modes}"

    def test_timeline_is_the_degraded_one(self):
        completions, carried, other_carried, final = self._scenario(
            "incremental")
        # 4 x 400 B on 100 B/s: healthy finish would be t=16.  Browned out
        # to 10 B/s over [5, 9]: 5*100 + 4*10 = 540 B done, 1060 B left at
        # 100 B/s -> t = 9 + 10.6 = 19.6.  A stale analytic jump would have
        # fired at 16.
        assert completions["m0"] == pytest.approx(19.6)
        assert all(completions[f"m{i}"] == completions["m0"] for i in range(4))
        assert completions["solo"] == pytest.approx(1.0)
        assert carried == pytest.approx(1600.0)
        assert other_carried == pytest.approx(100.0)
        assert final == completions["m0"]
