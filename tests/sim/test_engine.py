"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import AllOf, AnyOf, Engine, Event, Interrupt, SimulationError, Timeout


def test_timeout_ordering():
    eng = Engine()
    log = []

    def worker(name, delay):
        yield Timeout(delay)
        log.append((eng.now, name))
        return name

    eng.spawn(worker("a", 2.0))
    eng.spawn(worker("b", 1.0))
    eng.spawn(worker("c", 3.0))
    eng.run()
    assert log == [(1.0, "b"), (2.0, "a"), (3.0, "c")]


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    log = []

    def worker(name):
        yield Timeout(1.0)
        log.append(name)

    for name in "abcde":
        eng.spawn(worker(name))
    eng.run()
    assert log == list("abcde")


def test_process_return_value():
    eng = Engine()

    def worker():
        yield Timeout(1.0)
        return 42

    p = eng.spawn(worker())
    eng.run()
    assert p.ok
    assert p.value == 42


def test_joining_a_process_gets_its_return_value():
    eng = Engine()
    results = []

    def child():
        yield Timeout(2.0)
        return "payload"

    def parent():
        val = yield eng.spawn(child())
        results.append((eng.now, val))

    eng.spawn(parent())
    eng.run()
    assert results == [(2.0, "payload")]


def test_yielding_a_generator_spawns_it():
    eng = Engine()

    def child():
        yield Timeout(1.5)
        return "x"

    def parent():
        val = yield child()
        return val

    p = eng.spawn(parent())
    eng.run()
    assert p.value == "x"
    assert eng.now == 1.5


def test_event_succeed_wakes_waiters():
    eng = Engine()
    ev = eng.event("gate")
    woken = []

    def waiter(i):
        val = yield ev
        woken.append((i, val))

    def trigger():
        yield Timeout(5.0)
        ev.succeed("go")

    eng.spawn(waiter(0))
    eng.spawn(waiter(1))
    eng.spawn(trigger())
    eng.run()
    assert woken == [(0, "go"), (1, "go")]
    assert eng.now == 5.0


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_value_before_trigger_raises():
    eng = Engine()
    ev = eng.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_raises_in_waiter():
    eng = Engine()
    ev = eng.event()
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    def trigger():
        yield Timeout(1.0)
        ev.fail(ValueError("boom"))

    eng.spawn(waiter())
    eng.spawn(trigger())
    eng.run()
    assert caught == ["boom"]


def test_yielding_triggered_event_resumes_without_time_advance():
    eng = Engine()
    ev = eng.event()
    ev.succeed("already")
    times = []

    def waiter():
        val = yield ev
        times.append((eng.now, val))

    eng.spawn(waiter())
    eng.run()
    assert times == [(0.0, "already")]


def test_all_of_collects_values_in_order():
    eng = Engine()

    def worker(delay, val):
        yield Timeout(delay)
        return val

    def parent():
        vals = yield eng.all_of([
            eng.spawn(worker(3.0, "slow")),
            eng.spawn(worker(1.0, "fast")),
        ])
        return vals

    p = eng.spawn(parent())
    eng.run()
    assert p.value == ["slow", "fast"]
    assert eng.now == 3.0


def test_all_of_empty_completes_immediately():
    eng = Engine()
    ev = eng.all_of([])
    assert ev.triggered and ev.value == []


def test_any_of_returns_first():
    eng = Engine()

    def worker(delay, val):
        yield Timeout(delay)
        return val

    def parent():
        idx, val = yield eng.any_of([
            eng.spawn(worker(3.0, "slow")),
            eng.spawn(worker(1.0, "fast")),
        ])
        return (idx, val, eng.now)

    p = eng.spawn(parent())
    eng.run()
    assert p.value == (1, "fast", 1.0)


def test_run_until_stops_clock():
    eng = Engine()

    def worker():
        yield Timeout(10.0)

    eng.spawn(worker())
    t = eng.run(until=4.0)
    assert t == 4.0
    assert eng.now == 4.0
    eng.run()
    assert eng.now == 10.0


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_unobserved_process_crash_propagates():
    eng = Engine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("dead")

    eng.spawn(bad())
    with pytest.raises(RuntimeError, match="dead"):
        eng.run()


def test_crash_collection_mode():
    eng = Engine()

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("dead")

    eng.spawn(bad())
    eng.run(raise_crashes=False)
    assert len(eng.crashed_processes) == 1
    assert isinstance(eng.crashed_processes[0].value, RuntimeError)


def test_observed_process_crash_delivered_to_parent():
    eng = Engine()
    caught = []

    def bad():
        yield Timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield eng.spawn(bad())
        except RuntimeError as exc:
            caught.append(str(exc))

    eng.spawn(parent())
    eng.run()
    assert caught == ["child died"]


def test_interrupt_wakes_blocked_process():
    eng = Engine()
    log = []

    def sleeper():
        try:
            yield Timeout(100.0)
        except Interrupt as intr:
            log.append((eng.now, intr.cause))

    def interrupter(target):
        yield Timeout(2.0)
        target.interrupt("wakeup")

    p = eng.spawn(sleeper())
    eng.spawn(interrupter(p))
    eng.run()
    assert log == [(2.0, "wakeup")]


def test_interrupted_process_not_resumed_by_stale_event():
    eng = Engine()
    resumed = []

    def sleeper():
        try:
            yield Timeout(3.0)
            resumed.append("timeout")
        except Interrupt:
            yield Timeout(10.0)
            resumed.append("after-interrupt")

    def interrupter(target):
        yield Timeout(1.0)
        target.interrupt()

    p = eng.spawn(sleeper())
    eng.spawn(interrupter(p))
    eng.run()
    # The original 3.0 timeout fires but must not resume the process.
    assert resumed == ["after-interrupt"]
    assert eng.now == 11.0


def test_spawn_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.spawn(lambda: None)  # type: ignore[arg-type]


def test_yield_non_awaitable_raises():
    eng = Engine()

    def bad():
        yield 42

    eng.spawn(bad())
    eng.run(raise_crashes=False)
    assert len(eng.crashed_processes) == 1
    assert isinstance(eng.crashed_processes[0].value, TypeError)


def test_max_steps_guard():
    eng = Engine()

    def spinner():
        while True:
            yield Timeout(0.0)

    eng.spawn(spinner())
    with pytest.raises(SimulationError, match="steps"):
        eng.run(max_steps=100)


def test_max_steps_error_names_crashed_process_with_traceback():
    # A run that spins past max_steps after a process died unobserved
    # almost always spins *because* of that death; the guard's message
    # must surface the first crash (name + formatted traceback) instead
    # of leaving only a step count.
    eng = Engine()

    def doomed():
        yield Timeout(0.01)
        raise RuntimeError("rank 3 exploded")

    def spinner():
        while True:
            yield Timeout(0.001)  # time advances, so the crash happens first

    eng.spawn(doomed(), name="rank3")
    eng.spawn(spinner(), name="poller")
    with pytest.raises(SimulationError) as exc_info:
        eng.run(max_steps=200, raise_crashes=False)
    msg = str(exc_info.value)
    assert "exceeded 200 engine steps" in msg
    assert "'rank3'" in msg and "crashed unobserved" in msg
    assert "RuntimeError: rank 3 exploded" in msg
    assert "Traceback" in msg and "doomed" in msg


def test_max_steps_error_counts_additional_crashes():
    eng = Engine()

    def doomed(i):
        yield Timeout(0.01 * (i + 1))
        raise ValueError(f"boom {i}")

    def spinner():
        while True:
            yield Timeout(0.001)

    for i in range(3):
        eng.spawn(doomed(i), name=f"d{i}")
    eng.spawn(spinner(), name="poller")
    with pytest.raises(SimulationError, match=r"and 2 more"):
        eng.run(max_steps=300, raise_crashes=False)


def test_max_steps_error_without_crashes_is_bare():
    eng = Engine()

    def spinner():
        while True:
            yield Timeout(0.0)

    eng.spawn(spinner())
    with pytest.raises(SimulationError) as exc_info:
        eng.run(max_steps=100)
    assert "crashed" not in str(exc_info.value)


def test_deterministic_replay():
    def build_and_run():
        eng = Engine()
        log = []

        def worker(i):
            for j in range(3):
                yield Timeout(0.5 * ((i + j) % 4))
                log.append((eng.now, i, j))

        for i in range(8):
            eng.spawn(worker(i))
        eng.run()
        return log

    assert build_and_run() == build_and_run()
