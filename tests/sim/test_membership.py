"""Failure detection and membership: suspicion, confirmation, fencing.

Two layers under test (protocol narrative in ``docs/resilience.md``):

- the :class:`Membership` state machine itself — monitor-side
  transitions, monotone view dissemination, the sticky confirmed set,
  and the epoch fence that makes duplicate recovery write-backs safe;
- full SRUMMA runs where the *only* failure knowledge is heartbeats:
  a real crash must be detected (not oracle-revealed) and recovered,
  a partitioned-but-alive node must survive a false confirmation with
  the product still correct (its stale write-backs fenced off), and a
  never-healing partition under a watchdog must surface a diagnosed
  :class:`StallError` instead of a silent hang.
"""

import pytest

from repro.bench.parallel import PointSpec, run_points
from repro.core.api import srumma_multiply
from repro.core.srumma import SrummaOptions
from repro.machines import LINUX_MYRINET
from repro.sim.engine import StallError
from repro.sim.faults import (
    DetectorConfig,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
    NodeRejoin,
)
from repro.sim.membership import ALIVE, DEAD, REJOINED, SUSPECTED, Membership
from repro.sim.trace import Tracer

N, P = 96, 4  # 2 nodes on the 2-CPU-per-node Linux cluster


class _FakeMachine:
    """Just enough Machine for unit-testing the state machine."""

    def __init__(self, nnodes=4):
        self.nodes = list(range(nnodes))
        self.tracer = Tracer()


class TestStateMachine:
    def test_lifecycle_alive_suspected_dead_rejoined(self):
        m = Membership(_FakeMachine())
        assert m.state[1] == ALIVE
        assert m.suspect(1) and m.state[1] == SUSPECTED
        assert m.confirm(1) and m.state[1] == DEAD
        assert m.rejoin(1) and m.state[1] == REJOINED

    def test_illegal_transitions_are_noops(self):
        m = Membership(_FakeMachine())
        assert not m.confirm(1)          # never suspected
        assert not m.rejoin(1)           # never confirmed
        assert not m.clear_suspicion(1)  # nothing to clear
        m.suspect(1)
        assert not m.suspect(1)          # already suspected
        v = m.version
        assert m.state[1] == SUSPECTED and m.version == v

    def test_false_suspicion_clears_and_counts(self):
        fake = _FakeMachine()
        m = Membership(fake)
        m.suspect(2)
        assert m.clear_suspicion(2) and m.state[2] == ALIVE
        assert m.false_suspicion_counts[2] == 1
        assert fake.tracer.counters["fault:false_suspicions"] == 1

    def test_confirm_and_rejoin_each_bump_the_epoch(self):
        m = Membership(_FakeMachine())
        assert m.epoch == 0
        m.suspect(1), m.confirm(1)
        assert m.epoch == 1
        m.rejoin(1)
        assert m.epoch == 2

    def test_dissemination_is_version_monotone(self):
        m = Membership(_FakeMachine())
        m.suspect(1)
        old = m.snapshot()
        m.confirm(1)
        new = m.snapshot()
        m.deliver(2, new)
        m.deliver(2, old)  # reordered older message must not roll back
        assert m.sees_confirmed(2, 1)
        assert not m.sees_suspected(2, 1)

    def test_views_lag_until_delivery(self):
        m = Membership(_FakeMachine())
        m.suspect(1), m.confirm(1)
        assert not m.sees_confirmed(3, 1)  # node 3 never got the news
        m.deliver(3, m.snapshot())
        assert m.sees_confirmed(3, 1)

    def test_confirmed_is_sticky_through_rejoin_unreachable_is_not(self):
        m = Membership(_FakeMachine())
        m.suspect(1), m.confirm(1)
        m.deliver(2, m.snapshot())
        assert m.sees_unreachable(2, 1)
        m.rejoin(1)
        m.deliver(2, m.snapshot())
        assert m.sees_confirmed(2, 1)       # its ranks stay written off
        assert not m.sees_unreachable(2, 1)  # but transfers may target it

    def test_fence_claim_is_idempotent_and_rejects_stale_stamps(self):
        fake = _FakeMachine()
        m = Membership(fake)
        m.suspect(1), m.confirm(1)  # epoch 1
        assert m.claim(5) == 1
        assert m.claim(5) == 1       # second claim: same fence
        assert m.generation(5) == 1
        assert m.admit_write(5, 1)   # recovery's stamp passes
        assert not m.admit_write(5, 0)  # original owner's stale commit
        assert m.rejected_counts[5] == 1
        assert fake.tracer.counters["fault:stale_epoch_rejected"] == 1
        assert m.fenced_ranks() == [5]

    def test_unfenced_ranks_admit_generation_zero(self):
        m = Membership(_FakeMachine())
        assert m.generation(3) == 0
        assert m.admit_write(3, 0)  # nobody claimed it; owner commits fine


def _run(faults=None, **kw):
    kw.setdefault("payload", "real")
    kw.setdefault("verify", True)
    kw.setdefault("options", SrummaOptions(dynamic=True))
    return srumma_multiply(LINUX_MYRINET, P, N, N, N, faults=faults, **kw)


@pytest.fixture(scope="module")
def healthy():
    return _run()


def _detector(e, **kw):
    kw.setdefault("period", 0.05 * e)
    kw.setdefault("timeout", 0.2 * e)
    kw.setdefault("confirm_grace", 0.1 * e)
    return DetectorConfig(**kw)


def _false_suspicion_plan(e):
    # Partition node 1 long enough for the monitor to suspect AND confirm
    # it even though every rank on it keeps computing — the canonical
    # imperfect-detection scenario.  get_timeout matters: without it the
    # survivors would ride out the crawling partition links forever and
    # recovery would never engage.
    return FaultPlan(
        partitions=(NetworkPartition(nodes=(1,), t_start=0.3 * e,
                                     t_heal=0.9 * e),),
        detector=_detector(e),
        watchdog_grace=50 * e,
        checkpoint_interval=1,
        get_timeout=0.1 * e,
        backoff_base=0.02 * e)


def _detected_crash_plan(e, **kw):
    kw.setdefault("checkpoint_interval", 1)
    kw.setdefault("get_timeout", 0.05 * e)
    kw.setdefault("backoff_base", 0.01 * e)
    det = kw.pop("detector", _detector(e, period=0.02 * e,
                                       confirm_grace=0.05 * e))
    return FaultPlan(crashes=(NodeCrash(node=1, t_fail=0.5 * e),),
                     detector=det, **kw)


class TestDetectedCrash:
    def test_healthy_run_with_detector_sees_no_suspicions(self, healthy):
        res = _run(FaultPlan(detector=_detector(healthy.elapsed)))
        assert res.max_error is not None and res.max_error < 1e-10
        health = res.run.tracer.health()
        assert health["suspected"] == 0
        assert health["false_suspicions"] == 0
        assert health["stale_epoch_rejected"] == 0

    def test_crash_is_detected_and_recovered_without_oracle(self, healthy):
        res = _run(_detected_crash_plan(healthy.elapsed))
        assert res.max_error is not None and res.max_error < 1e-10
        assert res.stats[2] is None and res.stats[3] is None
        health = res.run.tracer.health()
        assert health["suspected"] >= 1
        assert health["confirmed_dead"] >= 1
        assert health["recovery_tasks"] > 0
        # Detection costs time the oracle never paid.
        assert res.elapsed > healthy.elapsed

    def test_phi_accrual_mode_also_detects(self, healthy):
        det = _detector(healthy.elapsed, mode="phi", period=0.02 * healthy.elapsed,
                        confirm_grace=0.05 * healthy.elapsed)
        res = _run(_detected_crash_plan(healthy.elapsed, detector=det))
        assert res.max_error is not None and res.max_error < 1e-10
        assert res.run.tracer.health()["confirmed_dead"] >= 1

    def test_longer_timeout_detects_later(self, healthy):
        e = healthy.elapsed
        quick = _run(_detected_crash_plan(
            e, detector=_detector(e, period=0.02 * e, timeout=0.1 * e,
                                  confirm_grace=0.02 * e)))
        slow = _run(_detected_crash_plan(
            e, detector=_detector(e, period=0.02 * e, timeout=0.6 * e,
                                  confirm_grace=0.02 * e)))
        assert quick.elapsed < slow.elapsed

    def test_rejoined_node_comes_back_as_replica_target(self, healthy):
        e = healthy.elapsed
        plan = FaultPlan(
            crashes=(NodeCrash(node=1, t_fail=0.4 * e),),
            rejoins=(NodeRejoin(node=1, t_rejoin=0.8 * e),),
            detector=_detector(e, period=0.02 * e, confirm_grace=0.05 * e),
            checkpoint_interval=1, get_timeout=0.05 * e,
            backoff_base=0.01 * e)
        res = _run(plan)
        assert res.max_error is not None and res.max_error < 1e-10
        # The ranks never return even though the hardware did.
        assert res.stats[2] is None and res.stats[3] is None
        assert res.run.tracer.health()["node_rejoin"] == 1


class TestFalseSuspicion:
    def test_partitioned_node_survives_false_confirmation(self, healthy):
        res = _run(_false_suspicion_plan(healthy.elapsed))
        # Nobody actually died: every rank reports, the product verifies,
        # and the duplicate write-backs were fenced off — the acceptance
        # scenario for imperfect detection.
        assert res.max_error is not None and res.max_error < 1e-10
        assert all(s is not None for s in res.stats)
        health = res.run.tracer.health()
        assert health["confirmed_dead"] >= 1   # the false confirmation
        assert health["stale_epoch_rejected"] > 0
        assert "node_crash" not in health      # oracle: nobody died

    def test_rank_stats_surface_the_detection_counters(self, healthy):
        res = _run(_false_suspicion_plan(healthy.elapsed))
        health = res.run.tracer.health()
        stats = [s for s in res.stats if s is not None]
        assert sum(s.stale_epoch_rejected for s in stats) == \
            health["stale_epoch_rejected"]
        assert sum(s.suspected for s in stats) >= health["suspected"] > 0
        assert all(s.stalls_diagnosed == 0 for s in stats)

    def test_partitioned_transfers_survive_and_complete_after_heal(
            self, healthy):
        # Satellite: a partitioned-but-alive node's in-flight transfers
        # must NOT be swept with NodeCrashedError when the detector
        # falsely confirms it — they crawl through the residual link and
        # complete after the heal.  A sweep would kill the node's ranks
        # (None stats) or poison the product; neither may happen.
        e = healthy.elapsed
        res = _run(_false_suspicion_plan(e))
        assert all(s is not None for s in res.stats)
        assert res.max_error is not None and res.max_error < 1e-10
        assert res.elapsed > 0.9 * e  # ran past the heal

    def test_partition_without_detector_just_rides_it_out(self, healthy):
        # No detector, no get_timeout: nothing is suspected, nothing is
        # swept, the waits ride the crawling links and the run completes
        # after the heal with zero fault-protocol activity.
        e = healthy.elapsed
        res = _run(FaultPlan(partitions=(
            NetworkPartition(nodes=(1,), t_start=0.3 * e, t_heal=0.9 * e),)))
        assert res.max_error is not None and res.max_error < 1e-10
        assert all(s is not None for s in res.stats)
        health = res.run.tracer.health()
        assert "node_crash" not in health
        assert "get_fallback" not in health
        assert res.elapsed > 0.9 * e


class TestStallDiagnosis:
    def test_never_healing_partition_surfaces_a_diagnosed_stall(
            self, healthy):
        # Satellite regression: PR 5's reliable fallback waited unbounded,
        # so an unreachable-forever target meant a silent hang.  Under the
        # watchdog the same livelock must surface as a diagnosed
        # StallError naming the blocked wait.
        e = healthy.elapsed
        plan = FaultPlan(
            partitions=(NetworkPartition(nodes=(1,), t_start=0.3 * e,
                                         t_heal=1e6),),
            max_retries=0,            # straight to the reliable fallback
            get_timeout=0.05 * e,
            backoff_base=0.01 * e,
            watchdog_grace=5 * e)
        with pytest.raises(StallError) as exc:
            _run(plan)
        msg = str(exc.value)
        assert "stall diagnosed" in msg
        assert "rank" in msg  # the per-rank blocked-state dump made it out


class TestDeterminism:
    def test_detection_run_is_identical_across_jobs(self, healthy):
        spec = PointSpec("srumma", LINUX_MYRINET, P, N,
                         options=SrummaOptions(dynamic=True),
                         faults=_detected_crash_plan(healthy.elapsed))
        serial = run_points([spec], jobs=1)
        fanned = run_points([spec, spec], jobs=2)
        assert serial[0] == fanned[0] == fanned[1]

    def test_false_suspicion_run_is_repeatable(self, healthy):
        a = _run(_false_suspicion_plan(healthy.elapsed))
        b = _run(_false_suspicion_plan(healthy.elapsed))
        assert a.elapsed == b.elapsed
        assert a.run.tracer.health() == b.run.tracer.health()
