"""Unit tests for daemon-interference injection."""

import numpy as np
import pytest

from repro.comm import run_parallel
from repro.core import srumma_multiply
from repro.machines import LINUX_MYRINET
from repro.sim import InterferencePattern, Machine, spawn_daemons


def test_pattern_validation():
    with pytest.raises(ValueError):
        InterferencePattern(load=1.0)
    with pytest.raises(ValueError):
        InterferencePattern(load=-0.1)
    with pytest.raises(ValueError):
        InterferencePattern(mean_burst=0.0)
    with pytest.raises(ValueError):
        InterferencePattern(quantum=0.0)


def test_mean_gap_matches_load():
    p = InterferencePattern(load=0.1, mean_burst=1e-3)
    # busy/(busy+idle) = load -> idle = busy*(1-load)/load
    assert p.mean_gap == pytest.approx(1e-3 * 0.9 / 0.1)
    assert InterferencePattern(load=0.0).mean_gap == float("inf")


def test_zero_load_spawns_nothing():
    m = Machine(LINUX_MYRINET, 4)
    assert spawn_daemons(m, None) == []
    assert spawn_daemons(m, InterferencePattern(load=0.0)) == []
    assert m.preemption_quantum is None


def test_daemons_spawn_one_per_cpu():
    m = Machine(LINUX_MYRINET, 6)
    daemons = spawn_daemons(m, InterferencePattern(load=0.05))
    assert len(daemons) == 6
    assert m.preemption_quantum == pytest.approx(2e-3)
    for d in daemons:
        d.interrupt()
    m.engine.run()


def test_interference_slows_a_run():
    clean = srumma_multiply(LINUX_MYRINET, 8, 512, 512, 512,
                            payload="synthetic").elapsed
    noisy = srumma_multiply(
        LINUX_MYRINET, 8, 512, 512, 512, payload="synthetic",
        interference=InterferencePattern(load=0.05, seed=1)).elapsed
    assert noisy > clean * 1.01


def test_interference_preserves_numerics():
    res = srumma_multiply(
        LINUX_MYRINET, 4, 48, 48, 48,
        interference=InterferencePattern(load=0.05, seed=2))
    assert res.max_error < 1e-10 * 48


def test_interference_is_deterministic():
    def one():
        return srumma_multiply(
            LINUX_MYRINET, 4, 128, 128, 128, payload="synthetic",
            interference=InterferencePattern(load=0.03, seed=7)).elapsed

    assert one() == one()


def test_different_seeds_differ():
    """The run must be long enough for bursts to land inside it (at 3%
    load the mean inter-burst gap is ~32 ms)."""
    def one(seed):
        return srumma_multiply(
            LINUX_MYRINET, 4, 512, 512, 512, payload="synthetic",
            interference=InterferencePattern(load=0.03, seed=seed)).elapsed

    assert one(1) != one(2)


def test_daemons_shut_down_cleanly_after_crash():
    """A crashing rank still tears the daemons down (no hung simulation)."""
    def prog(ctx):
        yield ctx.engine.timeout(1e-4)
        if ctx.rank == 0:
            raise RuntimeError("rank failure under interference")

    with pytest.raises(RuntimeError, match="rank failure"):
        run_parallel(LINUX_MYRINET, 4, prog,
                     interference=InterferencePattern(load=0.05))


def test_timeslicing_does_not_change_clean_timing():
    """Without interference the quantum stays None: timings bit-match the
    pre-interference code path."""
    a = srumma_multiply(LINUX_MYRINET, 8, 256, 256, 256,
                        payload="synthetic").elapsed
    b = srumma_multiply(LINUX_MYRINET, 8, 256, 256, 256,
                        payload="synthetic", interference=None).elapsed
    assert a == b
