"""Tests for Machine topology: nodes, domains, paths."""

import pytest

from repro.machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX
from repro.sim import Machine


class TestNodeLayout:
    def test_node_count(self):
        assert len(Machine(LINUX_MYRINET, 8).nodes) == 4   # 2-way
        assert len(Machine(IBM_SP, 64).nodes) == 4         # 16-way
        assert len(Machine(IBM_SP, 65).nodes) == 5         # partial node

    def test_partial_last_node_has_fewer_cpus(self):
        m = Machine(LINUX_MYRINET, 5)
        assert len(m.nodes[0].cpus) == 2
        assert len(m.nodes[2].cpus) == 1

    def test_rank_to_node_mapping(self):
        m = Machine(IBM_SP, 48)
        assert m.node_of(0) == 0
        assert m.node_of(15) == 0
        assert m.node_of(16) == 1
        assert m.node_of(47) == 2

    def test_invalid_rank_raises(self):
        m = Machine(LINUX_MYRINET, 4)
        with pytest.raises(IndexError):
            m.node_of(4)
        with pytest.raises(IndexError):
            m.cpu(-1)

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            Machine(LINUX_MYRINET, 0)

    def test_each_rank_has_distinct_cpu(self):
        m = Machine(LINUX_MYRINET, 6)
        cpus = [m.cpu(r) for r in range(6)]
        assert len(set(id(c) for c in cpus)) == 6


class TestDomains:
    def test_cluster_domains_are_nodes(self):
        m = Machine(LINUX_MYRINET, 8)
        assert m.domain_of(0) == 0
        assert m.domain_of(3) == 1
        assert m.same_domain(0, 1)
        assert not m.same_domain(1, 2)
        assert m.n_domains == 4

    def test_machine_scope_single_domain(self):
        for spec in (SGI_ALTIX, CRAY_X1):
            m = Machine(spec, 16)
            assert m.n_domains == 1
            assert all(m.domain_of(r) == 0 for r in range(16))
            assert m.same_domain(0, 15)
            # But nodes remain distinct hardware.
            assert not m.same_node(0, 15)

    def test_ranks_in_domain(self):
        m = Machine(IBM_SP, 40)
        assert m.ranks_in_domain(0) == list(range(16))
        assert m.ranks_in_domain(2) == list(range(32, 40))

    def test_ranks_in_domain_machine_scope(self):
        m = Machine(SGI_ALTIX, 6)
        assert m.ranks_in_domain(0) == list(range(6))
        with pytest.raises(ValueError):
            m.ranks_in_domain(1)


class TestPaths:
    def test_network_path_cross_node(self):
        m = Machine(LINUX_MYRINET, 4)
        path = m.network_path(0, 2)
        assert path == [m.nodes[0].nic_out, m.nodes[1].nic_in]

    def test_network_path_same_node_uses_memory(self):
        m = Machine(LINUX_MYRINET, 4)
        assert m.network_path(0, 1) == [m.nodes[0].mem]

    def test_shmem_path_same_node(self):
        m = Machine(LINUX_MYRINET, 4)
        assert m.shmem_path(0, 1) == [m.nodes[0].mem]

    def test_shmem_path_cross_node_on_cluster_raises(self):
        m = Machine(LINUX_MYRINET, 4)
        with pytest.raises(ValueError, match="not in one shared-memory"):
            m.shmem_path(0, 2)

    def test_shmem_path_cross_brick_on_altix(self):
        m = Machine(SGI_ALTIX, 4)
        path = m.shmem_path(0, 2)
        assert path == [m.nodes[0].nic_out, m.nodes[1].nic_in]

    def test_dgemm_time_delegates_to_spec(self):
        m = Machine(LINUX_MYRINET, 2)
        assert m.dgemm_time(64, 64, 64) == pytest.approx(
            LINUX_MYRINET.cpu.dgemm_time(64, 64, 64))
