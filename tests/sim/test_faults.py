"""Tests for deterministic fault injection (plans, injector, draws).

Load-bearing invariants:

- a :class:`FaultPlan` is pure data: hashable, picklable, JSON
  round-trippable, and validated at construction;
- :func:`unit_uniform` is a stateless platform-independent stream;
- ``FlowNetwork.set_bandwidth`` re-settles in-flight flows max-min
  fairly at the instant of the change;
- window restore is *exact*: after every window closes, each link is
  back at its original bandwidth float, even with overlapping windows;
- straggler dilation follows the closed-form piecewise walk.
"""

import pickle

import pytest

from repro.machines import LINUX_MYRINET
from repro.sim import (
    Engine,
    FaultInjector,
    FaultPlan,
    FlowNetwork,
    Link,
    LinkBrownout,
    Machine,
    NicOutage,
    StragglerWindow,
    Timeout,
    install_faults,
    standard_degraded_plan,
    unit_uniform,
)

BROWNOUT = LinkBrownout(node=0, t_start=1.0, t_end=2.0, factor=0.5)
PLAN = FaultPlan(brownouts=(BROWNOUT,), get_fail_prob=0.1, seed=42)


# -- plan data hygiene --------------------------------------------------------

class TestFaultPlanData:
    def test_hashable_and_equal_by_value(self):
        assert hash(PLAN) == hash(FaultPlan(brownouts=(BROWNOUT,),
                                            get_fail_prob=0.1, seed=42))
        assert PLAN == FaultPlan(brownouts=(BROWNOUT,),
                                 get_fail_prob=0.1, seed=42)
        assert PLAN != FaultPlan(brownouts=(BROWNOUT,),
                                 get_fail_prob=0.1, seed=43)

    def test_pickle_roundtrip(self):
        assert pickle.loads(pickle.dumps(PLAN)) == PLAN

    def test_json_roundtrip(self, tmp_path):
        plan = standard_degraded_plan(0.5, seed=3)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_json_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            FaultPlan.from_json_dict({"get_fail_prob": 0.5, "typo": 1})

    def test_empty(self):
        assert FaultPlan().empty
        assert not PLAN.empty
        assert not FaultPlan(get_fail_prob=0.01).empty

    def test_backoff_is_exponential(self):
        plan = FaultPlan(backoff_base=1e-3, backoff_factor=2.0)
        assert plan.backoff(0) == 1e-3
        assert plan.backoff(1) == 2e-3
        assert plan.backoff(2) == 4e-3

    @pytest.mark.parametrize("bad", [
        lambda: LinkBrownout(0, -0.1, 1.0, 0.5),
        lambda: LinkBrownout(0, 1.0, 1.0, 0.5),
        lambda: LinkBrownout(0, 0.0, 1.0, 0.0),
        lambda: LinkBrownout(0, 0.0, 1.0, 1.5),
        lambda: LinkBrownout(0, 0.0, 1.0, 0.5, direction="sideways"),
        lambda: NicOutage(0, 0.0, 1.0, residual=0.0),
        lambda: StragglerWindow(0, 0.0, 1.0, 0.9),
        lambda: FaultPlan(get_fail_prob=1.5),
        lambda: FaultPlan(max_retries=-1),
        lambda: FaultPlan(backoff_factor=0.5),
        lambda: FaultPlan(get_timeout=0.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_overlapping_straggler_windows_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            FaultPlan(stragglers=(StragglerWindow(1, 0.0, 2.0, 1.5),
                                  StragglerWindow(1, 1.0, 3.0, 2.0)))
        # Same windows on different ranks are fine.
        FaultPlan(stragglers=(StragglerWindow(1, 0.0, 2.0, 1.5),
                              StragglerWindow(2, 1.0, 3.0, 2.0)))

    def test_standard_plan_is_seed_deterministic(self):
        assert standard_degraded_plan(1.0, seed=5) == \
            standard_degraded_plan(1.0, seed=5)
        assert standard_degraded_plan(1.0, seed=5) != \
            standard_degraded_plan(1.0, seed=6)
        with pytest.raises(ValueError):
            standard_degraded_plan(0.0)


# -- the seeded stream --------------------------------------------------------

class TestUnitUniform:
    def test_deterministic_and_in_range(self):
        draws = [unit_uniform(7, n) for n in range(1000)]
        assert draws == [unit_uniform(7, n) for n in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_golden_values_are_platform_independent(self):
        # splitmix64 is fully specified; these must never move.
        assert unit_uniform(0, 0) == pytest.approx(0.6524484863740322)
        assert unit_uniform(42, 1) == pytest.approx(0.4949295270895354)

    def test_streams_differ_by_seed(self):
        a = [unit_uniform(1, n) for n in range(100)]
        b = [unit_uniform(2, n) for n in range(100)]
        assert a != b

    def test_mean_is_roughly_half(self):
        draws = [unit_uniform(3, n) for n in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(0.5, abs=0.03)


# -- mid-flight bandwidth changes ---------------------------------------------

class TestSetBandwidth:
    def test_rate_change_mid_flow(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Link("l", bandwidth=100.0)
        done = net.transfer(1000.0, [link])

        def chop():
            yield Timeout(5.0)  # 500 B delivered at 100 B/s
            net.set_bandwidth(link, 50.0)
        eng.spawn(chop())
        eng.run()
        assert done.triggered
        # Remaining 500 B at 50 B/s -> 10 more seconds.
        assert eng.now == pytest.approx(15.0)

    def test_restore_mid_flow(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Link("l", bandwidth=100.0)
        done = net.transfer(2000.0, [link])

        def dip():
            yield Timeout(5.0)
            net.set_bandwidth(link, 25.0)   # 500 B done; crawl
            yield Timeout(20.0)
            net.set_bandwidth(link, 100.0)  # 500 more done; restore
        eng.spawn(dip())
        eng.run()
        assert done.triggered
        assert eng.now == pytest.approx(5.0 + 20.0 + 1000.0 / 100.0)

    def test_noop_change_marks_nothing_dirty(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Link("l", bandwidth=100.0)
        done = net.transfer(1000.0, [link])
        net.set_bandwidth(link, 100.0)
        assert not net._dirty  # unchanged value short-circuits entirely
        eng.run()
        assert done.triggered
        assert eng.now == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        eng = Engine()
        net = FlowNetwork(eng)
        with pytest.raises(ValueError):
            net.set_bandwidth(Link("l", 10.0), 0.0)

    def test_shared_link_resettles_fairly(self):
        eng = Engine()
        net = FlowNetwork(eng)
        link = Link("l", bandwidth=100.0)
        d1 = net.transfer(500.0, [link])
        d2 = net.transfer(500.0, [link])

        def chop():
            yield Timeout(2.0)  # each flow has 100 B at 50 B/s
            net.set_bandwidth(link, 20.0)
        eng.spawn(chop())
        eng.run()
        # Remaining 400 B each at 10 B/s fair share -> 40 more seconds.
        assert d1.triggered and d2.triggered
        assert eng.now == pytest.approx(42.0)


# -- injector windows ---------------------------------------------------------

class TestInjectorWindows:
    def test_brownout_window_applies_and_restores_exactly(self):
        machine = Machine(LINUX_MYRINET, 4)
        plan = FaultPlan(brownouts=(LinkBrownout(0, 1.0, 2.0, 0.5),))
        injector = install_faults(machine, plan)
        injector.start()
        node0 = machine.nodes[0]
        base_out = node0.nic_out.bandwidth
        base_in = node0.nic_in.bandwidth
        seen = {}

        def probe():
            yield Timeout(1.5)
            seen["mid"] = (node0.nic_out.bandwidth, node0.nic_in.bandwidth)
            yield Timeout(1.0)
            seen["after"] = (node0.nic_out.bandwidth, node0.nic_in.bandwidth)
        machine.engine.spawn(probe())
        machine.engine.run()
        assert seen["mid"] == (base_out * 0.5, base_in * 0.5)
        assert seen["after"] == (base_out, base_in)  # exact, not approx
        assert machine.tracer.health().get("brownout") == 1

    def test_overlapping_windows_restore_exactly(self):
        machine = Machine(LINUX_MYRINET, 4)
        plan = FaultPlan(brownouts=(LinkBrownout(0, 1.0, 3.0, 0.3),
                                    LinkBrownout(0, 2.0, 4.0, 0.7)))
        injector = install_faults(machine, plan)
        injector.start()
        link = machine.nodes[0].nic_out
        base = link.bandwidth
        seen = {}

        def probe():
            yield Timeout(2.5)
            seen["both"] = link.bandwidth
            yield Timeout(1.0)
            seen["second"] = link.bandwidth
            yield Timeout(1.0)
            seen["after"] = link.bandwidth
        machine.engine.spawn(probe())
        machine.engine.run()
        assert seen["both"] == pytest.approx(base * 0.3 * 0.7)
        assert seen["second"] == pytest.approx(base * 0.7)
        assert seen["after"] == base  # bit-exact restore

    def test_outage_hits_both_directions(self):
        machine = Machine(LINUX_MYRINET, 4)
        plan = FaultPlan(outages=(NicOutage(1, 0.5, 1.5, residual=1e-3),))
        install_faults(machine, plan).start()
        node1 = machine.nodes[1]
        base = node1.nic_out.bandwidth
        seen = {}

        def probe():
            yield Timeout(1.0)
            seen["mid"] = (node1.nic_out.bandwidth, node1.nic_in.bandwidth)
        machine.engine.spawn(probe())
        machine.engine.run()
        assert seen["mid"][0] == pytest.approx(base * 1e-3)
        assert seen["mid"][1] == pytest.approx(base * 1e-3)
        assert node1.nic_out.bandwidth == base

    def test_interrupted_window_still_restores(self):
        machine = Machine(LINUX_MYRINET, 4)
        plan = FaultPlan(brownouts=(LinkBrownout(0, 0.5, 100.0, 0.5),))
        injector = install_faults(machine, plan)
        procs = injector.start()
        link = machine.nodes[0].nic_out
        base = link.bandwidth

        def supervisor():
            yield Timeout(1.0)  # mid-window
            assert link.bandwidth == base * 0.5
            for p in procs:
                p.interrupt()
        machine.engine.spawn(supervisor())
        machine.engine.run()
        assert link.bandwidth == base

    def test_interrupt_before_window_never_applies(self):
        machine = Machine(LINUX_MYRINET, 4)
        plan = FaultPlan(brownouts=(LinkBrownout(0, 50.0, 100.0, 0.5),))
        injector = install_faults(machine, plan)
        procs = injector.start()
        link = machine.nodes[0].nic_out
        base = link.bandwidth

        def supervisor():
            yield Timeout(1.0)
            for p in procs:
                p.interrupt()
        machine.engine.spawn(supervisor())
        machine.engine.run()
        assert link.bandwidth == base
        assert machine.tracer.health().get("brownout") is None

    def test_install_twice_rejected(self):
        machine = Machine(LINUX_MYRINET, 4)
        install_faults(machine, FaultPlan())
        with pytest.raises(ValueError, match="already has a fault plan"):
            install_faults(machine, FaultPlan())

    def test_out_of_range_node_and_rank_rejected(self):
        machine = Machine(LINUX_MYRINET, 4)  # 2 nodes
        with pytest.raises(ValueError, match="out of range"):
            FaultInjector(machine, FaultPlan(
                brownouts=(LinkBrownout(7, 0.0, 1.0, 0.5),)))
        with pytest.raises(IndexError):
            FaultInjector(machine, FaultPlan(
                stragglers=(StragglerWindow(9, 0.0, 1.0, 2.0),)))


# -- seeded get-failure draws -------------------------------------------------

class TestGetFailureDraws:
    def _injector(self, plan):
        return install_faults(Machine(LINUX_MYRINET, 4), plan)

    def test_draw_sequence_is_deterministic(self):
        a = self._injector(FaultPlan(get_fail_prob=0.3, seed=9))
        b = self._injector(FaultPlan(get_fail_prob=0.3, seed=9))
        assert [a.draw_get_failure(r % 4) for r in range(200)] == \
            [b.draw_get_failure(r % 4) for r in range(200)]

    def test_zero_prob_never_fails_but_advances_counter(self):
        inj = self._injector(FaultPlan(get_fail_prob=0.0))
        assert not any(inj.draw_get_failure(1) for _ in range(50))
        assert inj._draws[(inj._GET_FAIL_KIND, 1)] == 50

    def test_prob_one_always_fails(self):
        inj = self._injector(FaultPlan(get_fail_prob=1.0))
        assert all(inj.draw_get_failure(0) for _ in range(50))

    def test_observed_rate_tracks_probability(self):
        inj = self._injector(FaultPlan(get_fail_prob=0.2, seed=4))
        fails = sum(inj.draw_get_failure(2) for _ in range(5000))
        assert fails / 5000 == pytest.approx(0.2, abs=0.03)

    def test_stream_is_per_rank(self):
        """Regression: draws used to come from one global sequence, so
        adding a draw on rank 0 perturbed every other rank's future draws.
        Now each (kind, rank) pair owns an independent counter+stream."""
        a = self._injector(FaultPlan(get_fail_prob=0.3, seed=9))
        b = self._injector(FaultPlan(get_fail_prob=0.3, seed=9))
        seq_a = [a.draw_get_failure(3) for _ in range(100)]
        # b interleaves draws on other ranks; rank 3's stream must not move.
        seq_b = []
        for i in range(100):
            b.draw_get_failure(0)
            seq_b.append(b.draw_get_failure(3))
            if i % 3 == 0:
                b.draw_get_failure(1)
        assert seq_a == seq_b

    def test_corruption_stream_independent_of_failure_stream(self):
        inj = self._injector(FaultPlan(get_fail_prob=0.3,
                                       corruption_rate=0.3, seed=9))
        ref = self._injector(FaultPlan(get_fail_prob=0.3,
                                       corruption_rate=0.3, seed=9))
        seq = [inj.draw_corruption(1) for _ in range(100)]
        ref_seq = []
        for _ in range(100):
            ref.draw_get_failure(1)  # same rank, different kind
            ref_seq.append(ref.draw_corruption(1))
        assert seq == ref_seq
        # And the two kinds genuinely differ (not one salted stream).
        fresh = self._injector(FaultPlan(get_fail_prob=0.3,
                                         corruption_rate=0.3, seed=9))
        assert [fresh.draw_get_failure(1) for _ in range(100)] != seq


# -- straggler dilation -------------------------------------------------------

class TestWallTime:
    def _injector(self, *windows):
        return install_faults(Machine(LINUX_MYRINET, 8),
                              FaultPlan(stragglers=tuple(windows)))

    def test_no_window_is_identity(self):
        inj = self._injector()
        assert inj.wall_time(0, 5.0, 3.0) == 3.0

    def test_fully_inside_window(self):
        inj = self._injector(StragglerWindow(2, 0.0, 100.0, 2.0))
        assert inj.wall_time(2, 10.0, 3.0) == pytest.approx(6.0)
        # Other ranks unaffected.
        assert inj.wall_time(3, 10.0, 3.0) == 3.0

    def test_straddles_window_open(self):
        inj = self._injector(StragglerWindow(0, 10.0, 100.0, 2.0))
        # 4 s healthy before the window, remaining 2 CPU-s at half speed.
        assert inj.wall_time(0, 6.0, 6.0) == pytest.approx(4.0 + 4.0)

    def test_straddles_window_close(self):
        inj = self._injector(StragglerWindow(0, 0.0, 10.0, 2.0))
        # From t=6: window has 4 wall-s left -> 2 CPU-s; remaining 3 healthy.
        assert inj.wall_time(0, 6.0, 5.0) == pytest.approx(4.0 + 3.0)

    def test_spans_two_windows(self):
        inj = self._injector(StragglerWindow(0, 2.0, 4.0, 2.0),
                             StragglerWindow(0, 6.0, 8.0, 4.0))
        # From t=0, 6 CPU-s: 2 healthy, 1 in w1 (2 wall), 2 healthy,
        # 0.5 in w2 (2 wall), 0.5 healthy after.
        assert inj.wall_time(0, 0.0, 6.0) == pytest.approx(
            2.0 + 2.0 + 2.0 + 2.0 + 0.5)

    def test_zero_work(self):
        inj = self._injector(StragglerWindow(0, 0.0, 1.0, 3.0))
        assert inj.wall_time(0, 0.0, 0.0) == 0.0

    def test_cpu_busy_dilates_on_engine_clock(self):
        machine = Machine(LINUX_MYRINET, 4)
        install_faults(machine, FaultPlan(
            stragglers=(StragglerWindow(1, 0.0, 100.0, 3.0),)))
        walls = {}

        def busy(rank):
            wall = yield from machine.cpu_busy(rank, 2.0)
            walls[rank] = (wall, machine.engine.now)
        machine.engine.spawn(busy(0))
        machine.engine.spawn(busy(1))
        machine.engine.run()
        assert walls[0] == (2.0, 2.0)
        assert walls[1][0] == pytest.approx(6.0)
        assert walls[1][1] == pytest.approx(6.0)
