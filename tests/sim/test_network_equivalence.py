"""Incremental vs reference allocator: bit-for-bit equivalence.

The incremental allocator (``FlowNetwork(allocator="incremental")``, the
default) restricts each max-min recomputation to the connected component
of links touched by a membership change, takes fast paths for uncontended
joins/leaves, and coalesces same-instant changes.  The reference allocator
recomputes over *all* active flows under the same settle/reschedule
discipline.  Determinism is load-bearing for the whole reproduction, so
the two must agree **exactly** — same completion instants (``==`` on
floats, no tolerance), same per-link ``bytes_carried``, same mid-run
rates.  The invariants behind this are documented in docs/performance.md.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Engine, FlowNetwork, Link, Timeout


@st.composite
def _flow_schedules(draw):
    """Random links plus a timed flow arrival schedule over them."""
    n_links = draw(st.integers(min_value=1, max_value=8))
    bandwidths = [draw(st.floats(min_value=0.5, max_value=700.0))
                  for _ in range(n_links)]
    n_flows = draw(st.integers(min_value=1, max_value=16))
    flows = []
    for _ in range(n_flows):
        size = draw(st.floats(min_value=1.0, max_value=20_000.0))
        path_len = draw(st.integers(min_value=1, max_value=min(3, n_links)))
        path = tuple(draw(st.permutations(range(n_links)))[:path_len])
        # Coarse grid of start times so same-instant arrivals (the
        # coalescing path) actually occur.
        start = draw(st.integers(min_value=0, max_value=6)) * 0.5
        flows.append((size, path, start))
    return bandwidths, flows


def _simulate(allocator, bandwidths, flow_specs, probe_times=()):
    """Run one schedule; return every observable the allocators must agree on."""
    eng = Engine()
    net = FlowNetwork(eng, allocator=allocator)
    links = [Link(f"l{i}", bw) for i, bw in enumerate(bandwidths)]
    completions: dict[int, float] = {}

    ordered = sorted(enumerate(flow_specs), key=lambda kv: kv[1][2])

    def launcher():
        t = 0.0
        for idx, (size, path, start) in ordered:
            if start > t:
                yield Timeout(start - t)
                t = start
            done = net.transfer(size, [links[i] for i in path], label=str(idx))
            done.add_callback(
                lambda ev, idx=idx: completions.__setitem__(idx, eng.now))

    samples = []

    def prober():
        t = 0.0
        for pt in probe_times:
            if pt > t:
                yield Timeout(pt - t)
                t = pt
            samples.append(sorted(net.flow_rates()))

    eng.spawn(launcher())
    if probe_times:
        eng.spawn(prober())
    eng.run()
    assert net.active_flow_count == 0
    return {
        "completions": tuple(sorted(completions.items())),
        "bytes": tuple(link.bytes_carried for link in links),
        "final_now": eng.now,
        "completed": net.completed_flows,
        "samples": samples,
    }


def _quiescent_probes(event_times):
    """Instants strictly between consecutive events (no activity there)."""
    times = sorted(set(event_times))
    probes = []
    for a, b in zip(times, times[1:]):
        mid = (a + b) / 2.0
        if a < mid < b:
            probes.append(mid)
    return probes


@given(_flow_schedules())
@settings(max_examples=120, deadline=None)
def test_incremental_matches_reference_exactly(schedule):
    bandwidths, flow_specs = schedule
    # Pass 1: discover the event times from the (deterministic) reference
    # run, so rate probes land at quiescent instants — mid-event sampling
    # would race the same-instant coalescing flush, which is unordered
    # relative to foreign processes.
    base = _simulate("reference", bandwidths, flow_specs)
    event_times = ([start for _, _, start in flow_specs]
                   + [t for _, t in base["completions"]])
    probes = _quiescent_probes(event_times)

    ref = _simulate("reference", bandwidths, flow_specs, probe_times=probes)
    inc = _simulate("incremental", bandwidths, flow_specs, probe_times=probes)

    # Probes are pure observers at event-free instants: they must not have
    # perturbed the reference run at all.
    assert ref["completions"] == base["completions"]

    # Exact agreement — no pytest.approx anywhere.
    assert inc["completions"] == ref["completions"]
    assert inc["bytes"] == ref["bytes"]
    assert inc["final_now"] == ref["final_now"]
    assert inc["completed"] == ref["completed"]
    assert inc["samples"] == ref["samples"]


def test_seeded_soaks_match_exactly():
    """Longer randomized soaks (beyond hypothesis' example sizes)."""
    for seed in range(8):
        rng = random.Random(seed)
        n_links = rng.randint(2, 12)
        bandwidths = [rng.uniform(1.0, 900.0) for _ in range(n_links)]
        flows = []
        for _ in range(rng.randint(10, 60)):
            size = rng.uniform(1.0, 50_000.0)
            path_len = rng.randint(1, min(4, n_links))
            path = tuple(rng.sample(range(n_links), path_len))
            start = rng.randint(0, 20) * 0.25
            flows.append((size, path, start))
        ref = _simulate("reference", bandwidths, flows)
        inc = _simulate("incremental", bandwidths, flows)
        assert inc == ref, f"divergence at seed {seed}"


def test_incremental_touches_fewer_flows_on_disjoint_traffic():
    """Scoping must pay off: disjoint flow pairs never see each other."""
    eng_ref, eng_inc = Engine(), Engine()
    nets = {"reference": FlowNetwork(eng_ref, allocator="reference"),
            "incremental": FlowNetwork(eng_inc, allocator="incremental")}
    touches = {}
    for name, net in nets.items():
        eng = net.engine
        # 20 disjoint link pairs, two flows each (so neither the empty-path
        # nor the solo-departure fast path hides the reallocation).
        links = [(Link(f"a{i}", 10.0), Link(f"b{i}", 10.0)) for i in range(20)]

        def launcher(links=links, net=net):
            for i, (la, lb) in enumerate(links):
                net.transfer(100.0 + i, [la, lb])
                net.transfer(50.0 + i, [la, lb])
                yield Timeout(0.1)

        eng.spawn(launcher())
        eng.run()
        assert net.completed_flows == 40
        touches[name] = net.realloc_flow_touches
    # Reference passes sweep every active flow; incremental stays inside
    # each two-flow component.
    assert touches["incremental"] < touches["reference"]


def test_unknown_allocator_rejected():
    eng = Engine()
    try:
        FlowNetwork(eng, allocator="magic")
    except ValueError as exc:
        assert "magic" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("bad allocator name accepted")
