"""Unit tests for the max-min fair flow network."""

import pytest

from repro.sim import Engine, FlowNetwork, Interrupt, Link, Timeout


def make_net():
    eng = Engine()
    return eng, FlowNetwork(eng)


def test_single_flow_time_is_latency_plus_bytes_over_bandwidth():
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    done = net.transfer(1000.0, [link], latency=2.0)
    eng.run()
    assert done.triggered
    assert eng.now == pytest.approx(2.0 + 1000.0 / 100.0)


def test_zero_byte_transfer_costs_only_latency():
    eng, net = make_net()
    done = net.transfer(0.0, [], latency=3.0)
    eng.run()
    assert done.triggered
    assert eng.now == pytest.approx(3.0)


def test_zero_byte_zero_latency_completes_immediately():
    eng, net = make_net()
    done = net.transfer(0.0, [])
    assert done.triggered


def test_two_flows_share_one_link_fairly():
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    d1 = net.transfer(1000.0, [link])
    d2 = net.transfer(1000.0, [link])
    eng.run()
    # Each gets 50 B/s for the whole duration: 20 s.
    assert eng.now == pytest.approx(20.0)
    assert d1.triggered and d2.triggered


def test_flow_speeds_up_when_contender_finishes():
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    finish_times = {}

    def start(label, size, at):
        def proc():
            yield Timeout(at)
            done = net.transfer(size, [link], label=label)
            yield done
            finish_times[label] = eng.now
        eng.spawn(proc())

    start("short", 500.0, 0.0)
    start("long", 1500.0, 0.0)
    eng.run()
    # Both run at 50 B/s until short finishes at t=10 having moved 500 B;
    # long has 1000 B left and then runs at 100 B/s, finishing at t=20.
    assert finish_times["short"] == pytest.approx(10.0)
    assert finish_times["long"] == pytest.approx(20.0)


def test_late_arrival_slows_existing_flow():
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    finish = {}

    def first():
        done = net.transfer(1000.0, [link], label="first")
        yield done
        finish["first"] = eng.now

    def second():
        yield Timeout(5.0)
        done = net.transfer(250.0, [link], label="second")
        yield done
        finish["second"] = eng.now

    eng.spawn(first())
    eng.spawn(second())
    eng.run()
    # first: 500 B in [0,5] at 100 B/s; then 50 B/s shared. second needs
    # 250 B at 50 B/s -> finishes at t=10; first then has 250 B left at
    # 100 B/s -> finishes at t=12.5.
    assert finish["second"] == pytest.approx(10.0)
    assert finish["first"] == pytest.approx(12.5)


def test_max_min_with_distinct_bottlenecks():
    eng, net = make_net()
    a = Link("a", bandwidth=100.0)
    b = Link("b", bandwidth=30.0)
    # f1 crosses a only; f2 crosses a and b. Max-min: f2 capped at 30 by b,
    # f1 gets the residual 70 on a.
    d1 = net.transfer(700.0, [a], label="f1")
    d2 = net.transfer(300.0, [a, b], label="f2")
    eng.run()
    assert d1.triggered and d2.triggered
    assert eng.now == pytest.approx(10.0)  # both finish exactly at t=10


def test_bytes_carried_accounting():
    eng, net = make_net()
    link = Link("l", bandwidth=50.0)
    net.transfer(200.0, [link])
    net.transfer(300.0, [link])
    eng.run()
    assert link.bytes_carried == pytest.approx(500.0)


def test_parallel_disjoint_links_full_rate():
    eng, net = make_net()
    links = [Link(f"l{i}", bandwidth=100.0) for i in range(4)]
    for l in links:
        net.transfer(1000.0, [l])
    eng.run()
    assert eng.now == pytest.approx(10.0)


def test_contended_versus_diagonal_pattern():
    """The §3.1 mechanism: 4 flows into one NIC vs 4 flows into 4 NICs."""
    # Contended: all flows share one ingress link.
    eng, net = make_net()
    ingress = Link("in", bandwidth=100.0)
    egresses = [Link(f"out{i}", bandwidth=100.0) for i in range(4)]
    for e in egresses:
        net.transfer(1000.0, [e, ingress])
    eng.run()
    contended_time = eng.now

    # Diagonal: each flow uses its own ingress link.
    eng2, net2 = make_net()
    for i in range(4):
        net2.transfer(1000.0, [Link(f"o{i}", 100.0), Link(f"i{i}", 100.0)])
    eng2.run()
    diagonal_time = eng2.now

    assert contended_time == pytest.approx(40.0)
    assert diagonal_time == pytest.approx(10.0)
    assert contended_time / diagonal_time == pytest.approx(4.0)


def test_negative_size_rejected():
    eng, net = make_net()
    with pytest.raises(ValueError):
        net.transfer(-5.0, [Link("l", 10.0)])


def test_nonzero_transfer_needs_path():
    eng, net = make_net()
    with pytest.raises(ValueError):
        net.transfer(10.0, [])


def test_link_requires_positive_bandwidth():
    with pytest.raises(ValueError):
        Link("bad", 0.0)


def test_completed_flow_count():
    eng, net = make_net()
    link = Link("l", 100.0)
    for _ in range(3):
        net.transfer(10.0, [link])
    eng.run()
    assert net.completed_flows == 3
    assert net.active_flow_count == 0


def test_many_flows_conservation():
    """Total bytes delivered equals total bytes requested."""
    eng, net = make_net()
    links = [Link(f"l{i}", bandwidth=10.0 + 7.0 * i) for i in range(5)]
    sizes = []

    def launcher():
        for i in range(40):
            size = 100.0 + (i * 37) % 400
            path = [links[i % 5], links[(i * 3 + 1) % 5]]
            if path[0] is path[1]:
                path = [path[0]]
            sizes.append(size)
            net.transfer(size, path, label=f"f{i}")
            yield Timeout(0.5)

    eng.spawn(launcher())
    eng.run()
    assert net.completed_flows == 40
    total_carried = sum(l.bytes_carried for l in links)
    # Each flow crosses 1 or 2 links; carried >= sum(sizes).
    assert total_carried >= sum(sizes) - 1e-6


# -- aborting in-flight transfers (fault-injection / interrupt support) -------

def test_abort_removes_flow_and_resettles_contender():
    """A process interrupted mid-transfer aborts its flow: the flow leaves
    the link without counting as completed and the surviving contender's
    share re-settles to the full bandwidth from that instant."""
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    victim_done = net.transfer(1000.0, [link])
    survivor_done = net.transfer(1000.0, [link])
    outcome = {}

    def victim():
        try:
            yield victim_done
            outcome["victim"] = "finished"
        except Interrupt:
            net.abort(victim_done)
            outcome["victim"] = "aborted"

    def killer(proc):
        yield Timeout(4.0)  # each flow has 200 B at the 50 B/s fair share
        proc.interrupt()

    vp = eng.spawn(victim())
    eng.spawn(killer(vp))
    eng.run()
    assert outcome["victim"] == "aborted"
    assert survivor_done.triggered
    # Survivor: 200 B at 50 B/s, then 800 B alone at 100 B/s.
    assert eng.now == pytest.approx(4.0 + 8.0)
    assert net.aborted_flows == 1
    assert net.completed_flows == 1
    assert net.active_flow_count == 0
    assert not link.flows


def test_abort_unknown_event_returns_false():
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    done = net.transfer(100.0, [link])
    eng.run()
    assert done.triggered
    assert net.abort(done) is False  # already completed, nothing to tear down
    assert net.aborted_flows == 0


def test_abort_sole_flow_leaves_link_idle():
    eng, net = make_net()
    link = Link("l", bandwidth=100.0)
    done = net.transfer(1000.0, [link])

    def aborter():
        yield Timeout(2.0)
        assert net.abort(done) is True
    eng.spawn(aborter())
    eng.run()
    assert not done.triggered
    assert not link.flows
    assert net.aborted_flows == 1
    # Partial progress was settled onto the link's accounting.
    assert link.bytes_carried == pytest.approx(200.0)
