"""Heap hygiene: lazy compaction, O(1) pending_events, engine counters."""

from repro.sim import Engine
from repro.sim.engine import Timeout


def _noop():
    return None


def test_cancel_is_idempotent_and_counts_once():
    eng = Engine()
    call = eng._schedule(1.0, _noop)
    assert eng.pending_events == 1
    eng.cancel(call)
    eng.cancel(call)  # double-cancel must not double-decrement
    assert eng.pending_events == 0


def test_cancel_after_fire_is_noop():
    """Cancelling a callback that already ran must not corrupt the live
    counter (the flow network cancels completion entries it may already
    have consumed)."""
    eng = Engine()
    call = eng._schedule(1.0, _noop)
    eng._schedule(2.0, _noop)
    eng.run(until=1.5)
    assert eng.pending_events == 1
    eng.cancel(call)  # fired at t=1.0; cancelling now is a no-op
    assert eng.pending_events == 1
    eng.run()
    assert eng.pending_events == 0


def test_compaction_triggers_when_dead_outnumber_live():
    eng = Engine()
    keep = [eng._schedule(10.0 + i, _noop) for i in range(4)]
    doomed = [eng._schedule(1.0 + 0.001 * i, _noop) for i in range(200)]
    assert eng.compactions == 0
    heap_before = len(eng._heap)
    for call in doomed:
        eng.cancel(call)
    # Tombstones exceeded both the floor and the live count → compacted.
    assert eng.compactions >= 1
    assert len(eng._heap) < heap_before
    assert eng.pending_events == len(keep)
    # The survivors still fire, in order, at their scheduled times.
    eng.run()
    assert eng.now == 13.0
    assert eng.pending_events == 0


def test_no_compaction_below_floor():
    eng = Engine()
    calls = [eng._schedule(1.0 + i, _noop) for i in range(Engine.COMPACT_FLOOR)]
    for call in calls:
        eng.cancel(call)
    assert eng.compactions == 0  # dead == floor, not above it


def test_compaction_preserves_event_order():
    """Compacted heap pops in exactly the original (time, seq) order."""
    eng = Engine()
    fired = []
    live = []
    dead = []
    for i in range(300):
        delay = 1.0 + (i % 7) + 0.0001 * i
        call = eng._schedule(delay, lambda i=i: fired.append(i))
        (dead if i % 3 else live).append((delay, i, call))
    expected = [i for (delay, i, _) in sorted(live)]
    for _, _, call in dead:
        eng.cancel(call)
    assert eng.compactions >= 1
    eng.run()
    assert fired == expected


def test_pending_events_tracks_schedule_run_cancel():
    eng = Engine()
    assert eng.pending_events == 0

    def proc():
        yield Timeout(1.0)
        yield Timeout(1.0)

    eng.spawn(proc())
    assert eng.pending_events == 1  # the spawn bootstrap entry
    eng.run()
    assert eng.pending_events == 0
    assert eng.steps > 0


def test_counters_exposed_and_monotonic():
    eng = Engine()
    s0, c0 = eng.steps, eng.compactions
    assert (s0, c0) == (0, 0)
    eng._schedule(0.5, _noop)
    eng.run()
    assert eng.steps == 1
    assert eng.compactions == c0
