"""Legacy shim: this environment's setuptools lacks PEP 660 editable-install
support (no `wheel`), so `pip install -e .` falls back to `setup.py develop`
via this file. Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
