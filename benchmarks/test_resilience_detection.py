"""Imperfect failure detection: heartbeats, false positives, epoch fence.

A node dies at 50 % of the run, but nothing is oracle-revealed: a
heartbeat detector must suspect, confirm, and disseminate the failure
before survivors reassign the dead ranks' work.  The sweep crosses the
detection timeout (how long silence must last before suspicion) with a
per-heartbeat loss probability — the false-positive knob.  Lost
heartbeats get *live* nodes suspected and occasionally falsely
confirmed; the membership epoch fence then rejects their duplicate
write-backs (the ``stale rejected`` column) while the product stays
correct.

The analytic baseline is the crash experiment's SUMMA
restart-from-checkpoint model paying the *same* detector delay
(timeout + confirm grace) before throwing the run away.

Expected shape: SRUMMA's completion inflation stays strictly below the
restart baseline at every tested detection timeout and loss rate, the
restart cost grows with the timeout (wasted wall-clock before restart),
and everything is deterministic (seeded counter-indexed heartbeat
draws, pure-data plans).
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_experiment

TIMEOUTS = ("0.025", "0.05", "0.1")
FP_RATES = ("0", "0.2", "0.3")


@pytest.fixture(scope="module")
def detection_result():
    return run_experiment("detection", full=True, jobs=1, fault_seed=0)


def _by_case(result, column):
    _, headers, rows = result
    col = headers.index(column)
    return {(row[0], row[1]): row[col] for row in rows}


def test_detection_table(detection_result, save_result):
    title, headers, rows = detection_result
    save_result("resilience_detection",
                format_table(headers, rows, title=title))


def test_sweep_covers_every_case(detection_result):
    srumma = _by_case(detection_result, "srumma inflation")
    assert set(srumma) == {(t, fp) for t in TIMEOUTS for fp in FP_RATES}


def test_srumma_beats_analytic_restart_at_every_timeout(detection_result):
    """The tentpole claim: even with imperfect detection and false
    positives in the mix, in-place recovery inflates completion strictly
    less than detect-then-restart, at every tested detection timeout."""
    srumma = _by_case(detection_result, "srumma inflation")
    restart = _by_case(detection_result, "restart inflation")
    for case in srumma:
        assert srumma[case] < restart[case], case


def test_detection_actually_bites(detection_result):
    """No vacuous wins: the undetected-crash window costs visible time."""
    srumma = _by_case(detection_result, "srumma inflation")
    assert all(v > 1.05 for v in srumma.values())


def test_restart_cost_grows_with_detection_timeout(detection_result):
    restart = _by_case(detection_result, "restart inflation")
    for fp in FP_RATES:
        assert (restart[(TIMEOUTS[0], fp)] < restart[(TIMEOUTS[1], fp)]
                < restart[(TIMEOUTS[2], fp)])


def test_heartbeat_loss_manufactures_suspicions(detection_result):
    """The false-positive knob works: lossier heartbeats mean strictly
    more suspicions at the tightest timeout, and some of them are false
    (nobody but the one crashed node ever dies)."""
    suspected = _by_case(detection_result, "suspected")
    false_s = _by_case(detection_result, "false suspicions")
    for t in TIMEOUTS:
        assert (suspected[(t, "0")] <= suspected[(t, "0.2")]
                <= suspected[(t, "0.3")])
    assert suspected[(TIMEOUTS[0], "0")] < suspected[(TIMEOUTS[0], "0.3")]
    assert false_s[(TIMEOUTS[0], "0.3")] > 0


def test_epoch_fence_absorbs_duplicate_writebacks(detection_result):
    """At least one swept case drives a live node into false confirmation
    and its stale commit into the fence — and the run still verified
    (the driver's points all completed; a poisoned C would have failed
    verification in the correctness tests backing this sweep)."""
    rejected = _by_case(detection_result, "stale rejected")
    assert sum(rejected.values()) > 0
    assert all(v == 0 for (t, fp), v in rejected.items() if fp == "0")


def test_result_is_deterministic(detection_result):
    again = run_experiment("detection", full=True, jobs=1, fault_seed=0)
    assert again[2] == detection_result[2]


@pytest.mark.slow
def test_resilience_detection_benchmark(benchmark, detection_result,
                                        save_result):
    test_detection_table(detection_result, save_result)
    benchmark.pedantic(
        lambda: run_experiment("detection", full=False, jobs=1),
        rounds=3, iterations=1)
