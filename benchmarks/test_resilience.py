"""Resilience under degraded hardware: SRUMMA absorbs, broadcasts amplify.

The paper's overlap claim (§2.1, §4.1) has a robustness corollary the
healthy-machine figures cannot show: a pipeline that hides communication
behind computation also absorbs transient network degradation, while
synchronous broadcast pipelines serialise behind it.  We inject the
standard deterministic brownout+outage+straggler plan (scaled to the
slowest healthy run, so every algorithm faces the same absolute fault
timeline) and compare each algorithm's completion-time inflation against
its own healthy baseline.

Expected shape: SRUMMA's inflation is strictly the smallest.  Its dynamic
schedule computes local filler tasks while browned-out prefetches trickle
in and re-issues failed gets with backoff; SUMMA's broadcast trees and
pdgemm's panel broadcasts put every degraded link on the critical path of
all ranks.
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_experiment


@pytest.fixture(scope="module")
def resilience_result():
    return run_experiment("resilience", full=True, jobs=1, fault_seed=0)


def test_resilience_table(resilience_result, save_result):
    title, headers, rows = resilience_result
    save_result("resilience_degraded",
                format_table(headers, rows, title=title))


def _inflations(result):
    _, headers, rows = result
    infl = headers.index("inflation")
    return {row[0]: row[infl] for row in rows}


def test_srumma_inflation_strictly_smallest(resilience_result):
    """The shape claim: under the standard degraded plan, SRUMMA's
    completion-time inflation is strictly below SUMMA's and pdgemm's."""
    by_alg = _inflations(resilience_result)
    assert by_alg["srumma"] < by_alg["summa"]
    assert by_alg["srumma"] < by_alg["pdgemm"]


def test_faults_actually_bite(resilience_result):
    """Guard against a vacuous comparison: the plan must measurably slow
    every algorithm, not just the baselines."""
    by_alg = _inflations(resilience_result)
    assert all(v > 1.1 for v in by_alg.values())


def test_degraded_runs_stay_ordered(resilience_result):
    """Degradation must not invert the healthy ranking: SRUMMA still
    finishes first in absolute terms."""
    _, headers, rows = resilience_result
    deg = headers.index("degraded ms")
    by_alg = {row[0]: row[deg] for row in rows}
    assert by_alg["srumma"] < by_alg["summa"]
    assert by_alg["srumma"] < by_alg["pdgemm"]


def test_result_is_deterministic(resilience_result):
    """Same fault seed => identical rows, rerun within the same process."""
    again = run_experiment("resilience", full=True, jobs=1, fault_seed=0)
    assert again[2] == resilience_result[2]


def test_resilience_benchmark(benchmark, resilience_result, save_result):
    test_resilience_table(resilience_result, save_result)
    benchmark.pedantic(
        lambda: run_experiment("resilience", full=False, jobs=1),
        rounds=3, iterations=1)
