"""§3.1 ablation: the diagonal-shift task ordering.

The paper verifies on the IBM SP that the diagonal shift improves
performance by spreading each first-round get across distinct nodes instead
of stampeding one NIC, and notes it 'performs better if there are more
processors per node (e.g., 16-way IBM SP)'.

This ablation runs SRUMMA with and without the shift on both cluster
platforms and checks (a) the shift never hurts, (b) it helps more on the
16-way-node SP than on the 2-way-node Linux cluster.
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.core import ScheduleOptions, SrummaOptions
from repro.machines import IBM_SP, LINUX_MYRINET

SIZES = (1000, 2000, 4000)


def _gflops(spec, nranks, n, diag):
    opts = SrummaOptions(
        flavor="cluster",
        schedule=ScheduleOptions(diagonal_shift=diag))
    return run_matmul("srumma", spec, nranks, n, options=opts).gflops


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    for spec, nranks in ((IBM_SP, 64), (LINUX_MYRINET, 16)):
        for n in SIZES:
            with_shift = _gflops(spec, nranks, n, True)
            without = _gflops(spec, nranks, n, False)
            rows.append((spec.name, nranks, n, with_shift, without,
                         with_shift / without))
    return rows


def test_ablation_table(ablation_rows, save_result):
    text = format_table(
        ["platform", "CPUs", "N", "with shift", "without", "speedup"],
        ablation_rows,
        title="Ablation — diagonal shift (GFLOP/s)",
    )
    save_result("ablation_diagonal_shift", text)


def test_diagonal_shift_never_hurts(ablation_rows):
    for row in ablation_rows:
        assert row[5] >= 0.99, row


def test_diagonal_shift_helps_on_fat_nodes(ablation_rows):
    """On 16-way SP nodes the first-round stampede is 16 flows into one
    NIC; the shift must win measurably somewhere."""
    sp_speedups = [r[5] for r in ablation_rows if r[0] == "ibm-sp"]
    assert max(sp_speedups) > 1.02


def test_diagonal_shift_helps_sp_more_than_linux(ablation_rows):
    """Paper: 'this algorithm performs better if there are more processors
    per node'."""
    sp = max(r[5] for r in ablation_rows if r[0] == "ibm-sp")
    lx = max(r[5] for r in ablation_rows if r[0] == "linux-myrinet")
    assert sp >= lx * 0.98


def test_ablation_benchmark(benchmark, ablation_rows, save_result):
    test_ablation_table(ablation_rows, save_result)
    benchmark.pedantic(lambda: _gflops(IBM_SP, 64, 2000, True),
                       rounds=3, iterations=1)
