"""Ablation: static pipeline vs dynamic runtime scheduling, pipeline depth.

The paper (§2) says the block-product sequence is "determined dynamically
at run time to more efficiently schedule and overlap communication with
computations".  This bench quantifies what that buys on our substrate:

- with the diagonal shift active, get completions arrive in issue order
  and the static double-buffered pipeline is already optimal — the dynamic
  executor at depth 1 reproduces it exactly;
- *without* the shift (skewed contention), completion order diverges from
  issue order and the dynamic executor recovers part of the loss;
- deeper prefetch (more than the paper's two buffers) *hurts* in NIC-bound
  regimes: a rank's own concurrent gets share its NIC max-min fairly and
  delay each other's completion.
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.core import ScheduleOptions, SrummaOptions
from repro.machines import IBM_SP, LINUX_MYRINET

N = 1024
NODIAG = ScheduleOptions(diagonal_shift=False)

CONFIGS = [
    ("static", SrummaOptions(flavor="cluster")),
    ("dynamic d2", SrummaOptions(flavor="cluster", dynamic=True)),
    ("dynamic d4", SrummaOptions(flavor="cluster", dynamic=True,
                                 pipeline_depth=4)),
    ("static nodiag", SrummaOptions(flavor="cluster", schedule=NODIAG)),
    ("dynamic nodiag", SrummaOptions(flavor="cluster", dynamic=True,
                                     schedule=NODIAG)),
]


@pytest.fixture(scope="module")
def dynamic_rows():
    rows = []
    for spec, nranks in ((IBM_SP, 64), (LINUX_MYRINET, 16)):
        vals = {name: run_matmul("srumma", spec, nranks, N,
                                 options=opts).gflops
                for name, opts in CONFIGS}
        rows.append((spec.name, nranks, *(vals[n] for n, _ in CONFIGS)))
    return rows


def test_dynamic_table(dynamic_rows, save_result):
    text = format_table(
        ["platform", "CPUs", *(n for n, _ in CONFIGS)],
        dynamic_rows,
        title=f"Ablation — dynamic scheduling & depth, N={N} (GFLOP/s)",
    )
    save_result("ablation_dynamic", text)


def test_dynamic_recovers_contention_skew(dynamic_rows):
    """Without the diagonal shift, dynamic beats static on the SP."""
    sp = next(r for r in dynamic_rows if r[0] == "ibm-sp")
    static_nodiag, dynamic_nodiag = sp[5], sp[6]
    assert dynamic_nodiag > static_nodiag


def test_deeper_prefetch_not_better(dynamic_rows):
    """Two buffers (the paper's choice) beat four in NIC-bound regimes."""
    for row in dynamic_rows:
        d2, d4 = row[3], row[4]
        assert d2 >= d4 * 0.999, row


def test_diagonal_shift_plus_static_is_the_strong_baseline(dynamic_rows):
    """The paper's default (shift + static double-buffering) is within a
    few percent of the best configuration everywhere."""
    for row in dynamic_rows:
        best = max(row[2:])
        assert row[2] >= 0.80 * best, row


def test_dynamic_benchmark(benchmark, dynamic_rows, save_result):
    test_dynamic_table(dynamic_rows, save_result)
    benchmark.pedantic(
        lambda: run_matmul("srumma", LINUX_MYRINET, 16, N,
                           options=CONFIGS[1][1]).gflops,
        rounds=3, iterations=1)
