"""Paper Fig. 8: MPI vs ARMCI_Get bandwidth on the IBM SP and Myrinet.

Three findings the series must reproduce:

- RMA get beats MPI send/recv except in the short-message range (a get is
  request+reply, so its startup latency is higher — §4.1);
- on the IBM SP the crossover is pushed further out because AIX interrupt
  processing makes LAPI get startup expensive, while on Myrinet the
  zero-copy GM get wins from small sizes on;
- MPI-2 MPI_Get (measured by the paper on the SP) trails both, burdened by
  window-synchronisation round-trips and staging copies.
"""

import pytest

from repro.bench import bandwidth_sweep, fmt_bytes, format_table
from repro.machines import IBM_SP, LINUX_MYRINET

SIZES = tuple(1 << s for s in range(8, 23))  # 256 B .. 4 MB


@pytest.fixture(scope="module")
def fig8_series():
    out = {}
    for spec in (IBM_SP, LINUX_MYRINET):
        out[(spec.name, "armci_get")] = dict(bandwidth_sweep(spec, "armci_get", SIZES))
        out[(spec.name, "mpi")] = dict(bandwidth_sweep(spec, "mpi", SIZES))
    out[("ibm-sp", "mpi2_get")] = dict(bandwidth_sweep(IBM_SP, "mpi2_get", SIZES))
    return out


def test_fig8_table(fig8_series, save_result):
    rows = []
    for s in SIZES:
        rows.append((
            fmt_bytes(s),
            fig8_series[("ibm-sp", "armci_get")][s] / 1e6,
            fig8_series[("ibm-sp", "mpi")][s] / 1e6,
            fig8_series[("ibm-sp", "mpi2_get")][s] / 1e6,
            fig8_series[("linux-myrinet", "armci_get")][s] / 1e6,
            fig8_series[("linux-myrinet", "mpi")][s] / 1e6,
        ))
    text = format_table(
        ["msg size", "SP get", "SP mpi", "SP mpi2get",
         "myri get", "myri mpi"],
        rows,
        title="Fig. 8 — get/send bandwidth (MB/s)",
    )
    save_result("fig8_get_bandwidth", text)


@pytest.mark.parametrize("platform", ["ibm-sp", "linux-myrinet"])
def test_fig8_get_wins_for_large_messages(fig8_series, platform):
    for s in SIZES:
        if s >= 1 << 20:
            assert (fig8_series[(platform, "armci_get")][s]
                    > fig8_series[(platform, "mpi")][s]), fmt_bytes(s)


def test_fig8_mpi_wins_short_messages_on_sp(fig8_series):
    """Request/reply + interrupt cost: get latency exceeds send/recv, so
    MPI is ahead in the short-message range on the SP (§4.1)."""
    smallest = SIZES[0]
    assert (fig8_series[("ibm-sp", "mpi")][smallest]
            > fig8_series[("ibm-sp", "armci_get")][smallest])


def test_fig8_mpi2_get_is_worst_on_sp(fig8_series):
    """Paper: 'we measured performance of MPI_Get (MPI-2) on the IBM SP and
    found its performance to be relatively low'."""
    for s in SIZES:
        assert (fig8_series[("ibm-sp", "mpi2_get")][s]
                <= fig8_series[("ibm-sp", "armci_get")][s] + 1e-9), fmt_bytes(s)
        if s >= 1 << 12:
            assert (fig8_series[("ibm-sp", "mpi2_get")][s]
                    < fig8_series[("ibm-sp", "mpi")][s]), fmt_bytes(s)


def test_fig8_large_message_bandwidth_near_wire_rate(fig8_series):
    big = SIZES[-1]
    assert (fig8_series[("linux-myrinet", "armci_get")][big]
            > 0.8 * LINUX_MYRINET.network.bandwidth)


def test_fig8_benchmark(benchmark, fig8_series, save_result):
    test_fig8_table(fig8_series, save_result)
    from repro.bench import measure_bandwidth

    benchmark.pedantic(
        lambda: measure_bandwidth(IBM_SP, "armci_get", 1 << 20),
        rounds=5, iterations=1)
