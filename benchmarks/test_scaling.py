"""Strong scaling: SRUMMA 'scaled well when the number of processors and/or
the problem size was increased, thus proving the algorithm is cost-optimal'
(§4.2).

Fixed N, growing P on two platforms: both algorithms must speed up with P,
SRUMMA must hold higher parallel efficiency, and the efficiency loss from
P=16 to P=128 must be moderate for SRUMMA (cost-optimality) while pdgemm
degrades faster at small N (the §4.2 'performance degrades for smaller
matrices on larger processor counts' remark applies to both, but SRUMMA
less).
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.machines import LINUX_MYRINET, SGI_ALTIX

N = 2000
RANKS = (16, 32, 64, 128)


@pytest.fixture(scope="module")
def scaling_series():
    out = {}
    for spec in (LINUX_MYRINET, SGI_ALTIX):
        for alg in ("srumma", "pdgemm"):
            for p in RANKS:
                out[(spec.name, alg, p)] = run_matmul(alg, spec, p, N).gflops
    return out


def test_scaling_table(scaling_series, save_result):
    blocks = []
    for platform in ("linux-myrinet", "sgi-altix"):
        rows = []
        for p in RANKS:
            s = scaling_series[(platform, "srumma", p)]
            d = scaling_series[(platform, "pdgemm", p)]
            rows.append((p, s, d, s / d))
        blocks.append(format_table(
            ["CPUs", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
            rows, title=f"strong scaling, N={N}, {platform}"))
    save_result("scaling", "\n".join(blocks))


def test_both_algorithms_speed_up_with_p(scaling_series):
    for platform in ("linux-myrinet", "sgi-altix"):
        for alg in ("srumma", "pdgemm"):
            series = [scaling_series[(platform, alg, p)] for p in RANKS]
            assert all(b > a for a, b in zip(series, series[1:])), (
                platform, alg, series)


def test_srumma_wins_at_every_p(scaling_series):
    for platform in ("linux-myrinet", "sgi-altix"):
        for p in RANKS:
            assert (scaling_series[(platform, "srumma", p)]
                    > scaling_series[(platform, "pdgemm", p)]), (platform, p)


def test_srumma_efficiency_holds_up_better(scaling_series):
    """Parallel efficiency from 16 -> 128 CPUs: SRUMMA retains more."""
    for platform in ("linux-myrinet", "sgi-altix"):
        def retention(alg):
            g16 = scaling_series[(platform, alg, 16)]
            g128 = scaling_series[(platform, alg, 128)]
            return (g128 / 128) / (g16 / 16)

        assert retention("srumma") > retention("pdgemm") * 0.95, platform


def test_scaling_benchmark(benchmark, scaling_series, save_result):
    test_scaling_table(scaling_series, save_result)
    benchmark.pedantic(
        lambda: run_matmul("srumma", SGI_ALTIX, 64, N).gflops,
        rounds=3, iterations=1)
