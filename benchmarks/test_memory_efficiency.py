"""Memory efficiency: the paper's claim that SRUMMA is 'more general,
memory efficient' (§1).

SRUMMA holds only a bounded set of communication buffers (the paper's two
block buffers; our pipeline + reuse cache keeps a small constant number),
while Cannon keeps full shifted copies of both A and B blocks resident and
pdgemm/SUMMA materialise whole row/column panels every step.  This bench
quantifies per-rank extra memory for a fixed configuration.
"""

import pytest

from repro.core import SrummaOptions, srumma_multiply
from repro.bench import format_table
from repro.machines import LINUX_MYRINET

N = 2048
P = 16


def _block_bytes(n, grid):
    return (n / grid) * (n / grid) * 8


@pytest.fixture(scope="module")
def memory_numbers():
    res = srumma_multiply(LINUX_MYRINET, P, N, N, N, payload="synthetic",
                          options=SrummaOptions(flavor="cluster"))
    srumma_peak = max(s.peak_buffer_bytes for s in res.stats)
    # Cannon: resident shifted copies of one A and one B block plus the
    # receive double-buffers (analytic — its buffers are inherent to the
    # algorithm's structure).
    cannon_peak = 4 * _block_bytes(N, 4)  # 4x4 grid on 16 ranks
    # pdgemm/SUMMA: one A panel (local_m x nb) + one B panel per step.
    from repro.bench import default_nb
    nb = default_nb(N, P)
    summa_peak = 2 * (N / 4) * nb * 8
    return {"srumma": srumma_peak, "cannon": cannon_peak, "summa": summa_peak}


def test_memory_table(memory_numbers, save_result):
    block = _block_bytes(N, 4)
    rows = [(alg, peak / 1e6, peak / block)
            for alg, peak in memory_numbers.items()]
    text = format_table(
        ["algorithm", "peak extra MB/rank", "in units of one block"],
        rows,
        title=f"communication buffer memory, N={N}, {P} CPUs (one block = "
              f"{block / 1e6:.1f} MB)",
    )
    save_result("memory_efficiency", text)


def test_srumma_buffers_bounded_by_constant_blocks(memory_numbers):
    """SRUMMA's peak buffer usage stays within a small constant number of
    block-sized buffers regardless of grid size (2 in the paper; our
    pipeline + reuse cache keeps it under 4)."""
    block = _block_bytes(N, 4)
    assert memory_numbers["srumma"] <= 4 * block


def test_srumma_not_worse_than_cannon(memory_numbers):
    assert memory_numbers["srumma"] <= memory_numbers["cannon"]


def test_peak_grows_with_pipeline_depth():
    shallow = srumma_multiply(LINUX_MYRINET, P, N, N, N, payload="synthetic",
                              options=SrummaOptions(flavor="cluster",
                                                    dynamic=True,
                                                    pipeline_depth=1))
    deep = srumma_multiply(LINUX_MYRINET, P, N, N, N, payload="synthetic",
                           options=SrummaOptions(flavor="cluster",
                                                 dynamic=True,
                                                 pipeline_depth=4))
    assert (max(s.peak_buffer_bytes for s in deep.stats)
            >= max(s.peak_buffer_bytes for s in shallow.stats))


def test_memory_benchmark(benchmark, memory_numbers, save_result):
    test_memory_table(memory_numbers, save_result)
    benchmark.pedantic(
        lambda: srumma_multiply(LINUX_MYRINET, P, 512, 512, 512,
                                payload="synthetic").elapsed,
        rounds=3, iterations=1)
