"""Paper Fig. 9: impact of zero-copy and nonblocking RMA on SRUMMA.

On the Linux/Myrinet cluster the paper runs SRUMMA with the four
combinations of {zero-copy enabled, disabled} x {nonblocking, blocking}
gets.  Expected shape:

- zero-copy + nonblocking is best at every size;
- disabling zero-copy hurts (the remote host CPU is dragged into copying,
  stealing cycles from its own dgemm);
- nonblocking beats blocking within each protocol setting.
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.core import SrummaOptions
from repro.machines import LINUX_MYRINET

SIZES = (600, 1000, 2000, 4000)
P = 16

CONFIGS = [
    ("zcopy+nb", True, True),
    ("zcopy+blk", True, False),
    ("nozcopy+nb", False, True),
    ("nozcopy+blk", False, False),
]


def _gflops(n, zero_copy, nonblocking):
    spec = (LINUX_MYRINET if zero_copy
            else LINUX_MYRINET.with_network(zero_copy=False))
    opts = SrummaOptions(flavor="cluster", nonblocking=nonblocking)
    return run_matmul("srumma", spec, P, n, options=opts).gflops


@pytest.fixture(scope="module")
def fig9_series():
    return {
        (name, n): _gflops(n, zc, nb)
        for name, zc, nb in CONFIGS
        for n in SIZES
    }


def test_fig9_table(fig9_series, save_result):
    rows = [
        (n, *(fig9_series[(name, n)] for name, _, _ in CONFIGS))
        for n in SIZES
    ]
    text = format_table(
        ["N", *(name for name, _, _ in CONFIGS)],
        rows,
        title=f"Fig. 9 — SRUMMA GFLOP/s on Linux/Myrinet, {P} CPUs",
    )
    save_result("fig9_zero_copy", text)


def test_fig9_zero_copy_nonblocking_is_best(fig9_series):
    for n in SIZES:
        best = fig9_series[("zcopy+nb", n)]
        for name, _, _ in CONFIGS[1:]:
            assert best >= fig9_series[(name, n)], (n, name)


def test_fig9_zero_copy_helps(fig9_series):
    """Paper: 'zero-copy protocol is very important for performance'."""
    for n in SIZES:
        assert fig9_series[("zcopy+nb", n)] > fig9_series[("nozcopy+nb", n)]
        assert fig9_series[("zcopy+blk", n)] > fig9_series[("nozcopy+blk", n)]


def test_fig9_nonblocking_helps(fig9_series):
    for n in SIZES:
        assert fig9_series[("zcopy+nb", n)] > fig9_series[("zcopy+blk", n)]
        assert fig9_series[("nozcopy+nb", n)] > fig9_series[("nozcopy+blk", n)]


def test_fig9_overlap_degree_high_with_zero_copy():
    """Paper: 'we were able to overlap more than 90% of the communication
    with computation' — check comm_wait is a small fraction of compute."""
    point = run_matmul("srumma", LINUX_MYRINET, P, 4000,
                       options=SrummaOptions(flavor="cluster"))
    # Re-run with tracing through the full API to access the tracer.
    from repro.core import srumma_multiply

    res = srumma_multiply(LINUX_MYRINET, P, 4000, 4000, 4000,
                          payload="synthetic")
    tr = res.run.tracer
    wait = tr.total("comm_wait")
    compute = tr.total("compute")
    assert wait < 0.15 * compute


def test_fig9_benchmark(benchmark, fig9_series, save_result):
    test_fig9_table(fig9_series, save_result)
    benchmark.pedantic(lambda: _gflops(1000, True, True), rounds=3, iterations=1)
