"""Design-choice ablations beyond the paper's figures.

DESIGN.md calls out three SRUMMA scheduling/pipelining choices; each is
benchmarked on/off here:

- double-buffered nonblocking pipeline vs fully blocking gets (§3.1 step 4);
- local-first task ordering (shared-memory tasks prime the pipeline,
  §3.1 step 2);
- the combination — everything off approximates a naive one-sided
  implementation.
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.core import ScheduleOptions, SrummaOptions
from repro.machines import IBM_SP, LINUX_MYRINET

N = 2000
CONFIGS = [
    ("full", SrummaOptions(flavor="cluster")),
    ("blocking", SrummaOptions(flavor="cluster", nonblocking=False)),
    ("no-localfirst", SrummaOptions(
        flavor="cluster", schedule=ScheduleOptions(local_first=False))),
    ("naive", SrummaOptions(
        flavor="cluster", nonblocking=False,
        schedule=ScheduleOptions(diagonal_shift=False, local_first=False))),
]


@pytest.fixture(scope="module")
def pipeline_rows():
    rows = []
    for spec, nranks in ((LINUX_MYRINET, 16), (IBM_SP, 64)):
        vals = {name: run_matmul("srumma", spec, nranks, N,
                                 options=opts).gflops
                for name, opts in CONFIGS}
        rows.append((spec.name, nranks,
                     *(vals[name] for name, _ in CONFIGS)))
    return rows


def test_pipeline_table(pipeline_rows, save_result):
    text = format_table(
        ["platform", "CPUs", *(name for name, _ in CONFIGS)],
        pipeline_rows,
        title=f"Ablation — pipeline & ordering, N={N} (GFLOP/s)",
    )
    save_result("ablation_pipeline", text)


def test_nonblocking_pipeline_beats_blocking(pipeline_rows):
    for row in pipeline_rows:
        platform, _, full, blocking = row[0], row[1], row[2], row[3]
        assert full > blocking, platform


def test_naive_is_worst(pipeline_rows):
    for row in pipeline_rows:
        naive = row[-1]
        assert naive < row[2], row
        assert naive < row[4], row


def test_local_first_tradeoff(pipeline_rows):
    """A measured finding this reproduction documents (EXPERIMENTS.md):

    strict local-first ordering (§3.1 step 2) is neutral on the 2-way-node
    Linux cluster, but on the 16-way-node IBM SP — where over half of each
    rank's tasks are domain-local and the host-assisted gets are expensive —
    bunching every remote get into the tail of the list concentrates NIC
    contention and leaves nothing to overlap the gets with.  Interleaved
    k-order ('no-localfirst') wins there.  The paper's prescription is kept
    as the default; this ablation locks in the observed tradeoff."""
    for row in pipeline_rows:
        platform, _, full, _, no_localfirst, _ = row
        if platform == "linux-myrinet":
            assert no_localfirst <= full * 1.05, row
        else:  # ibm-sp: interleaving wins in the comm-bound regime
            assert no_localfirst >= full, row


def test_pipeline_benchmark(benchmark, pipeline_rows, save_result):
    test_pipeline_table(pipeline_rows, save_result)
    benchmark.pedantic(
        lambda: run_matmul("srumma", LINUX_MYRINET, 16, N,
                           options=CONFIGS[0][1]).gflops,
        rounds=3, iterations=1)
