"""Paper Table 1: SRUMMA best cases vs pdgemm.

The nine configurations of Table 1, each run for SRUMMA and the pdgemm
stand-in, with the paper's reported GFLOP/s next to ours.  Absolute numbers
are not expected to match (our substrate is a simulator); the asserted shape
is: SRUMMA wins every row, and the advantage ordering (shared-memory
platforms >> clusters) holds.
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX

# (m, n, k, CPUs, case, platform spec, paper SRUMMA GF, paper pdgemm GF)
TABLE1 = [
    (4000, 4000, 4000, 128, "C=AB", SGI_ALTIX, 384.0, 33.9),
    (2000, 2000, 2000, 128, "C=AB", CRAY_X1, 922.0, 128.0),
    (12000, 12000, 12000, 128, "C=AB", LINUX_MYRINET, 323.2, 138.6),
    (8000, 8000, 8000, 256, "C=AB", IBM_SP, 223.0, 186.0),
    (600, 600, 600, 128, "C=A^T B^T", LINUX_MYRINET, 16.64, 6.4),
    (16000, 16000, 16000, 128, "C=A^T B", IBM_SP, 108.9, 77.4),
    (4000, 4000, 4000, 128, "C=A^T B^T", SGI_ALTIX, 369.0, 24.3),
    (4000, 4000, 1000, 128, "rect C=AB", LINUX_MYRINET, 160.0, 107.5),
    (1000, 1000, 2000, 64, "rect C=AB", SGI_ALTIX, 288.0, 17.28),
]


def _flags(case):
    return ("A^T" in case, "B^T" in case)


@pytest.fixture(scope="module")
def table1_rows():
    rows = []
    for m, n, k, cpus, case, spec, paper_sr, paper_pd in TABLE1:
        transa, transb = _flags(case)
        sr = run_matmul("srumma", spec, cpus, m, n, k,
                        transa=transa, transb=transb).gflops
        pd = run_matmul("pdgemm", spec, cpus, m, n, k,
                        transa=transa, transb=transb).gflops
        rows.append((f"{m}x{n}x{k}", cpus, case, spec.name,
                     sr, pd, sr / pd, paper_sr, paper_pd, paper_sr / paper_pd))
    return rows


def test_table1(table1_rows, save_result):
    text = format_table(
        ["size", "CPUs", "case", "platform",
         "SRUMMA", "pdgemm", "ratio", "paper SR", "paper PD", "paper ratio"],
        table1_rows,
        title="Table 1 — best cases (GFLOP/s, measured vs paper)",
    )
    save_result("table1_best_cases", text)


def test_table1_srumma_wins_every_row(table1_rows):
    for row in table1_rows:
        assert row[4] > row[5], row


def test_table1_shared_memory_rows_have_larger_advantage(table1_rows):
    """Altix/X1 rows should show a larger SRUMMA/pdgemm ratio than the
    cluster NN rows (the paper's ratios: 11.3x/7.2x vs 2.3x/1.2x)."""
    shared = [r[6] for r in table1_rows if r[3] in ("sgi-altix", "cray-x1")]
    cluster_nn = [r[6] for r in table1_rows
                  if r[3] in ("linux-myrinet", "ibm-sp") and r[2] == "C=AB"]
    assert min(shared) > 0.9 * max(cluster_nn)
    assert (sum(shared) / len(shared)) > (sum(cluster_nn) / len(cluster_nn))


def test_table1_transpose_hurts_pdgemm_more(table1_rows):
    """Altix 4000^3: the pdgemm T^T row trails its NN row (paper: 24.3 vs
    33.9 GF/s), while SRUMMA's penalty is milder (369 vs 384)."""
    nn = next(r for r in table1_rows
              if r[3] == "sgi-altix" and r[2] == "C=AB" and r[0].startswith("4000"))
    tt = next(r for r in table1_rows
              if r[3] == "sgi-altix" and r[2] == "C=A^T B^T")
    assert tt[5] < nn[5]  # pdgemm slower with transposes
    sr_drop = (nn[4] - tt[4]) / nn[4]
    pd_drop = (nn[5] - tt[5]) / nn[5]
    assert pd_drop > sr_drop


def test_table1_benchmark(benchmark, table1_rows, save_result):
    test_table1(table1_rows, save_result)
    benchmark.pedantic(
        lambda: run_matmul("srumma", SGI_ALTIX, 64, 1000, 1000, 2000).gflops,
        rounds=3, iterations=1)
