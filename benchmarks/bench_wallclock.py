#!/usr/bin/env python
"""Wall-clock benchmark harness for the simulator itself.

Unlike the figure-reproduction benchmarks (which assert *virtual-time*
shapes), this harness times how long the simulator takes in *host* seconds
to run canonical synthetic workloads — the quantity the perf work on the
event engine, the max-min allocator, and the plan cache actually moves.

Workloads: synthetic (timing-only) SRUMMA runs at 64–256 ranks on all four
paper machine models, plus the 256-rank *contended* workload (diagonal
shift disabled so many concurrent flows pile onto shared NIC links) that
stresses the fairness reallocator hardest.

Schema 4 adds the large-rank tier: *phase-traffic* workloads
(``myrinet-1024``/``myrinet-4096``) replaying SRUMMA phase communication
straight into the flow network at 1024–4096 ranks — the 1024-rank record
carries the >=5x engine-modes-on-vs-off acceptance gate, the 4096-rank
record must beat the pre-modes engine's 1024-rank figure time — and a
*hierarchical* two-level SRUMMA protocol run at 1024 ranks (the CI
large-rank smoke workload).  Both record the engine-mode counters
(``engine_ff_jumps``, ``flows_aggregated``, ``dispatch_batches``).

On top of the single-simulation workloads there is a *sweep-level*
benchmark: a multi-point figure-style sweep executed serially
(``jobs=1``) and through the parallel point executor
(``repro.bench.parallel.run_points`` at ``--jobs`` workers, default all
CPU cores).  It records both medians plus ``parallel_speedup``, and
asserts the two executions produce field-identical points — a
determinism regression in the executor fails the benchmark itself.

Each workload runs ``--reps`` times (default 3) and reports the median.
Results land in ``BENCH_wallclock.json`` at the repo root so successive
PRs accumulate a perf trajectory; pass ``--baseline FILE`` to merge a
previous run in.  Baselines *carry forward*: ``baseline_median_s`` (and
the ``speedup`` computed from it) always refers to the oldest recorded
baseline — the pre-optimisation seed — while ``prev_median_s`` tracks
the immediately previous run, so the JSON shows both the cumulative
trajectory and the per-PR delta.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --baseline BENCH_wallclock.json --out BENCH_wallclock.json
    PYTHONPATH=src python benchmarks/bench_wallclock.py --only contended
    PYTHONPATH=src python benchmarks/bench_wallclock.py --only sweep --jobs 4

The pytest wrapper at the bottom is marked ``slow`` and only runs under
``-m slow``; see docs/performance.md.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import re
import shutil
import statistics
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.parallel import PointSpec, resolve_jobs, run_points  # noqa: E402
from repro.bench.traffic import srumma_phase_traffic  # noqa: E402
from repro.core.api import srumma_multiply  # noqa: E402
from repro.core.hierarchical import hierarchical_multiply  # noqa: E402
from repro.core.schedule import ScheduleOptions  # noqa: E402
from repro.core.srumma import SrummaOptions  # noqa: E402
from repro.machines.platforms import get_platform  # noqa: E402
from repro.sim.cluster import Machine  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_wallclock.json"
SCHEMA_VERSION = 4

# Median host seconds of the 1024-rank contended SRUMMA figure workload on
# the *pre-modes* engine (every scaling mode off), measured on the same
# host class that records BENCH_wallclock.json.  The myrinet-4096 budget:
# the scaled engine must finish a 4096-rank point in less time than the
# old engine needed for a quarter of the ranks.
PRE_MODES_1024_CONTENDED_S = 187.09

# All-off tuning: the step-by-step pre-modes engine, for on/off gates.
MODES_OFF = dict(batched_dispatch=False, fast_forward=False,
                 aggregation=False)

# (name, machine, nranks, mnk, diagonal_shift).  The contended workload is
# the acceptance gate: every CPU of a node fetches from the same remote
# node, so flows stampede shared NIC links and the fairness reallocator
# fires constantly.  It is listed first so partial runs still cover it.
WORKLOADS: list[tuple[str, str, int, int, bool]] = [
    ("myrinet-256-contended", "linux-myrinet", 256, 2048, False),
    ("myrinet-64", "linux-myrinet", 64, 2048, True),
    ("myrinet-128", "linux-myrinet", 128, 2048, True),
    ("myrinet-256", "linux-myrinet", 256, 2048, True),
    ("ibm-sp-64", "ibm-sp", 64, 2048, True),
    ("ibm-sp-128", "ibm-sp", 128, 2048, True),
    ("ibm-sp-256", "ibm-sp", 256, 2048, True),
    ("cray-x1-64", "cray-x1", 64, 2048, True),
    ("cray-x1-128", "cray-x1", 128, 2048, True),
    ("cray-x1-256", "cray-x1", 256, 2048, True),
    ("altix-64", "sgi-altix", 64, 2048, True),
    ("altix-128", "sgi-altix", 128, 2048, True),
    ("altix-256", "sgi-altix", 256, 2048, True),
]

# Large-rank phase-traffic workloads: (name, machine, nranks, phases,
# subpanels, base_bytes, off_reps, budget_s).  These replay SRUMMA phase
# communication straight into the flow network (see repro.bench.traffic)
# at rank counts where allocation cost *is* the workload.  ``off_reps``
# extra reps run with every engine mode off — the pre-modes engine — to
# record ``modes_speedup`` (the 1024-rank acceptance gate is >=5x);
# ``budget_s`` asserts an absolute ceiling on the modes-on median (the
# 4096-rank point must beat the pre-modes engine's 1024-rank figure time).
PHASE_WORKLOADS: list[tuple[str, str, int, int, int, float, int,
                            float | None]] = [
    ("myrinet-1024", "linux-myrinet", 1024, 2, 8, float(1 << 20), 1, None),
    ("myrinet-4096", "linux-myrinet", 4096, 2, 8, float(1 << 20), 0,
     PRE_MODES_1024_CONTENDED_S),
]

# Hierarchical two-level SRUMMA workloads: (name, machine, nranks, mnk).
# Full protocol runs (per-rank processes, synthetic payload) at rank
# counts the flat figure workloads cannot afford — the CI large-rank
# smoke job runs the first entry with --reps 1 under a host-time budget.
HIER_WORKLOADS: list[tuple[str, str, int, int]] = [
    ("myrinet-1024-hier", "linux-myrinet", 1024, 4096),
]

# Sweep-level workloads: (name, machine, nranks, sizes, algorithms).  Each
# is a figure-style cross product of independent points, executed serially
# and through the parallel executor; the speedup between the two is what
# ``repro sweep/reproduce --jobs N`` buys on this host.
SWEEP_WORKLOADS: list[tuple[str, str, int, tuple[int, ...], tuple[str, ...]]] = [
    ("sweep-myrinet-12pt", "linux-myrinet", 64,
     (512, 1024, 1536, 2048), ("srumma", "pdgemm", "summa")),
]

# Cache-level workloads: (name, experiments).  Each rep reproduces the
# figure set *cold* (fresh result-cache directory) and then *warm* (same
# disk store, fresh memory tier — i.e. what a second ``repro reproduce``
# invocation sees); the speedup between the two is what the
# content-addressed result cache buys across runs.  The warm pass must
# emit identical tables or the benchmark aborts.
CACHE_WORKLOADS: list[tuple[str, tuple[str, ...]]] = [
    ("cache-reproduce-quick",
     ("fig5", "fig9", "fig10", "table1", "diag-shift")),
]


def run_workload(name: str, machine: str, nranks: int, mnk: int,
                 diagonal_shift: bool, reps: int) -> dict:
    """Run one workload ``reps`` times; return its JSON record."""
    spec = get_platform(machine)
    options = SrummaOptions(
        schedule=ScheduleOptions(diagonal_shift=diagonal_shift))
    runs: list[float] = []
    virtual_elapsed = None
    engine_steps = None
    engine_compactions = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = srumma_multiply(spec, nranks=nranks, m=mnk, n=mnk, k=mnk,
                                 payload="synthetic", verify=False,
                                 options=options)
        runs.append(time.perf_counter() - t0)
        # Virtual time must be identical across reps (determinism); record
        # it so regressions in *simulated* output are visible in the JSON.
        if virtual_elapsed is None:
            virtual_elapsed = result.elapsed
        elif result.elapsed != virtual_elapsed:
            raise AssertionError(
                f"{name}: virtual elapsed changed across identical runs "
                f"({virtual_elapsed} vs {result.elapsed})")
        engine = result.run.machine.engine
        engine_steps = getattr(engine, "steps",
                               getattr(engine, "_step_count", None))
        engine_compactions = getattr(engine, "compactions", None)
        mode_counters = _mode_counters(result.run.machine)
    return {
        "machine": machine,
        "nranks": nranks,
        "mnk": mnk,
        "schedule": "diag" if diagonal_shift else "nodiag",
        "runs_s": [round(r, 6) for r in runs],
        "median_s": round(statistics.median(runs), 6),
        "virtual_elapsed_s": virtual_elapsed,
        "engine_steps": engine_steps,
        "engine_compactions": engine_compactions,
        **mode_counters,
    }


def _mode_counters(machine) -> dict:
    """The scaling-mode counters of one finished machine, for the JSON."""
    return {
        "engine_ff_jumps": machine.net.ff_jumps,
        "flows_aggregated": machine.net.flows_aggregated,
        "dispatch_batches": machine.engine.dispatch_batches,
    }


def run_phase_workload(name: str, machine_name: str, nranks: int,
                       phases: int, subpanels: int, base_bytes: float,
                       off_reps: int, budget_s: float | None,
                       reps: int) -> dict:
    """Replay SRUMMA phase traffic with the engine modes on (and, for
    ``off_reps`` extra reps, with the pre-modes step engine) and record
    the on/off wall-clock ratio.

    The virtual end time must be bitwise identical across reps *and*
    across mode settings — the exact-equivalence contract of the modes —
    or the benchmark aborts.
    """
    spec = get_platform(machine_name)
    virtual_elapsed = None
    stats = None

    def one(tuning: dict) -> float:
        nonlocal virtual_elapsed, stats
        m = Machine(spec, nranks, **tuning)
        t0 = time.perf_counter()
        st = srumma_phase_traffic(m, phases=phases, subpanels=subpanels,
                                  base_bytes=base_bytes)
        dt = time.perf_counter() - t0
        if virtual_elapsed is None:
            virtual_elapsed = st["virtual_elapsed"]
            stats = st
        elif st["virtual_elapsed"] != virtual_elapsed:
            raise AssertionError(
                f"{name}: virtual elapsed diverged across reps/modes "
                f"({virtual_elapsed} vs {st['virtual_elapsed']})")
        return dt

    runs = [one({}) for _ in range(reps)]
    off_runs = [one(MODES_OFF) for _ in range(off_reps)]
    median = statistics.median(runs)
    rec = {
        "kind": "phases",
        "machine": machine_name,
        "nranks": nranks,
        "phases": phases,
        "subpanels": subpanels,
        "base_bytes": base_bytes,
        "flows": stats["flows"],
        "runs_s": [round(r, 6) for r in runs],
        "median_s": round(median, 6),
        "virtual_elapsed_s": virtual_elapsed,
        "reallocations": stats["reallocations"],
        "engine_ff_jumps": stats["ff_jumps"],
        "flows_aggregated": stats["flows_aggregated"],
        "dispatch_batches": stats["dispatch_batches"],
    }
    if off_runs:
        off_median = statistics.median(off_runs)
        rec["modes_off_runs_s"] = [round(r, 6) for r in off_runs]
        rec["modes_off_median_s"] = round(off_median, 6)
        if median > 0:
            rec["modes_speedup"] = round(off_median / median, 3)
    if budget_s is not None:
        rec["budget_s"] = budget_s
        if median >= budget_s:
            raise AssertionError(
                f"{name}: modes-on median {median:.2f}s missed the "
                f"{budget_s}s budget (pre-modes 1024-rank figure time)")
    return rec


def run_hier_workload(name: str, machine_name: str, nranks: int, mnk: int,
                      reps: int) -> dict:
    """Time a full hierarchical two-level SRUMMA protocol run."""
    spec = get_platform(machine_name)
    runs: list[float] = []
    virtual_elapsed = None
    rec_extra: dict = {}
    for _ in range(reps):
        t0 = time.perf_counter()
        res = hierarchical_multiply(spec, nranks=nranks, m=mnk, n=mnk, k=mnk,
                                    payload="synthetic", verify=False)
        runs.append(time.perf_counter() - t0)
        if virtual_elapsed is None:
            virtual_elapsed = res.elapsed
        elif res.elapsed != virtual_elapsed:
            raise AssertionError(
                f"{name}: virtual elapsed changed across identical runs "
                f"({virtual_elapsed} vs {res.elapsed})")
        rec_extra = {
            "node_grid": list(res.node_grid),
            "kb": res.kb,
            **_mode_counters(res.run.machine),
        }
    return {
        "kind": "hier",
        "machine": machine_name,
        "nranks": nranks,
        "mnk": mnk,
        "runs_s": [round(r, 6) for r in runs],
        "median_s": round(statistics.median(runs), 6),
        "virtual_elapsed_s": virtual_elapsed,
        **rec_extra,
    }


def run_sweep_workload(name: str, machine: str, nranks: int,
                       sizes: tuple[int, ...], algorithms: tuple[str, ...],
                       jobs: int, reps: int) -> dict:
    """Time one multi-point sweep serially and through the point executor.

    The parallel pass must reproduce the serial pass field-for-field —
    the executor's determinism invariant — or the benchmark aborts.
    """
    spec = get_platform(machine)
    specs = [PointSpec(alg, spec, nranks, size)
             for size in sizes for alg in algorithms]

    def one_pass(npjobs: int) -> tuple[float, list]:
        t0 = time.perf_counter()
        pts = run_points(specs, jobs=npjobs)
        return time.perf_counter() - t0, pts

    serial_runs: list[float] = []
    parallel_runs: list[float] = []
    reference = None
    for _ in range(reps):
        dt, pts = one_pass(1)
        serial_runs.append(dt)
        fields = [dataclasses.asdict(p) for p in pts]
        if reference is None:
            reference = fields
        elif fields != reference:
            raise AssertionError(f"{name}: serial results changed across reps")
    for _ in range(reps):
        dt, pts = one_pass(jobs)
        parallel_runs.append(dt)
        if [dataclasses.asdict(p) for p in pts] != reference:
            raise AssertionError(
                f"{name}: parallel (jobs={jobs}) results diverged from serial")
    serial_median = statistics.median(serial_runs)
    parallel_median = statistics.median(parallel_runs)
    return {
        "kind": "sweep",
        "machine": machine,
        "nranks": nranks,
        "sizes": list(sizes),
        "algorithms": list(algorithms),
        "points": len(specs),
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_runs_s": [round(r, 6) for r in serial_runs],
        "serial_median_s": round(serial_median, 6),
        "parallel_runs_s": [round(r, 6) for r in parallel_runs],
        "parallel_median_s": round(parallel_median, 6),
        "parallel_speedup": (round(serial_median / parallel_median, 3)
                             if parallel_median > 0 else None),
    }


def run_cache_workload(name: str, experiments: tuple[str, ...],
                       reps: int) -> dict:
    """Time a figure-set reproduction cold vs warm through the result cache.

    Each rep starts from an empty cache directory, reproduces the
    experiment set with one shared :class:`ResultCache` (the cold pass),
    then repeats with a *new* cache instance over the same directory —
    an empty memory tier but a warm disk store, exactly what a second
    ``repro reproduce`` process sees.  The warm pass must return tables
    field-identical to the cold pass and serve every point from disk, or
    the benchmark aborts.
    """
    from repro.bench.cache import ResultCache
    from repro.bench.experiments import run_experiment

    cold_runs: list[float] = []
    warm_runs: list[float] = []
    reference = None
    counters: dict | None = None
    for _ in range(reps):
        cachedir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
        try:
            cold_cache = ResultCache(cachedir)
            t0 = time.perf_counter()
            cold_tables = [run_experiment(e, jobs=1, cache=cold_cache)
                           for e in experiments]
            cold_runs.append(time.perf_counter() - t0)

            warm_cache = ResultCache(cachedir)
            t0 = time.perf_counter()
            warm_tables = [run_experiment(e, jobs=1, cache=warm_cache)
                           for e in experiments]
            warm_runs.append(time.perf_counter() - t0)

            if warm_tables != cold_tables:
                raise AssertionError(
                    f"{name}: warm (cached) tables diverged from cold")
            if warm_cache.stats.misses:
                raise AssertionError(
                    f"{name}: warm pass missed the cache "
                    f"({warm_cache.stats.summary()})")
            if reference is None:
                reference = cold_tables
            elif cold_tables != reference:
                raise AssertionError(f"{name}: cold results changed across reps")
            counters = {
                "cold_misses": cold_cache.stats.misses,
                "cold_deduped": cold_cache.stats.deduped,
                "warm_disk_hits": warm_cache.stats.disk_hits,
                "warm_memory_hits": warm_cache.stats.memory_hits,
                "warm_deduped": warm_cache.stats.deduped,
            }
        finally:
            shutil.rmtree(cachedir, ignore_errors=True)
    cold_median = statistics.median(cold_runs)
    warm_median = statistics.median(warm_runs)
    return {
        "kind": "cache",
        "experiments": list(experiments),
        "cold_runs_s": [round(r, 6) for r in cold_runs],
        "cold_median_s": round(cold_median, 6),
        "warm_runs_s": [round(r, 6) for r in warm_runs],
        "warm_median_s": round(warm_median, 6),
        "warm_speedup": (round(cold_median / warm_median, 3)
                         if warm_median > 0 else None),
        **(counters or {}),
    }


def merge_baseline(records: dict, baseline_path: Path) -> None:
    """Attach baseline medians and speedups from a previous run.

    ``baseline_median_s`` carries forward the *oldest* recorded baseline
    (the pre-optimisation seed), so ``speedup`` is the cumulative
    trajectory; ``prev_median_s`` is the immediately previous run's median
    (the per-PR delta).  Sweep records merge their serial median the same
    way.
    """
    baseline = json.loads(baseline_path.read_text())
    base_workloads = baseline.get("workloads", {})
    for name, rec in records.items():
        base = base_workloads.get(name)
        if base is None:
            continue
        if rec.get("kind") == "sweep":
            prev = base.get("serial_median_s")
            if prev:
                rec["prev_serial_median_s"] = prev
                rec["baseline_serial_median_s"] = base.get(
                    "baseline_serial_median_s", prev)
                if rec["serial_median_s"] > 0:
                    rec["serial_speedup"] = round(
                        rec["baseline_serial_median_s"]
                        / rec["serial_median_s"], 3)
            continue
        if rec.get("kind") == "cache":
            prev = base.get("cold_median_s")
            if prev:
                rec["prev_cold_median_s"] = prev
                rec["baseline_cold_median_s"] = base.get(
                    "baseline_cold_median_s", prev)
            continue
        rec["prev_median_s"] = base["median_s"]
        rec["baseline_median_s"] = base.get("baseline_median_s",
                                            base["median_s"])
        if rec["median_s"] > 0:
            rec["speedup"] = round(
                rec["baseline_median_s"] / rec["median_s"], 3)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path (default: BENCH_wallclock.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous BENCH_wallclock.json to compute speedups against")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per workload (median reported)")
    parser.add_argument("--only", type=str, default=None,
                        help="regex: run only matching workload names")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep-level benchmark "
                             "(default: all CPU cores)")
    args = parser.parse_args(argv)

    selected = WORKLOADS
    selected_phases = PHASE_WORKLOADS
    selected_hier = HIER_WORKLOADS
    selected_sweeps = SWEEP_WORKLOADS
    selected_caches = CACHE_WORKLOADS
    if args.only:
        pat = re.compile(args.only)
        selected = [w for w in WORKLOADS if pat.search(w[0])]
        selected_phases = [w for w in PHASE_WORKLOADS if pat.search(w[0])]
        selected_hier = [w for w in HIER_WORKLOADS if pat.search(w[0])]
        selected_sweeps = [w for w in SWEEP_WORKLOADS if pat.search(w[0])]
        selected_caches = [w for w in CACHE_WORKLOADS if pat.search(w[0])]
        if not any((selected, selected_phases, selected_hier,
                    selected_sweeps, selected_caches)):
            parser.error(f"--only {args.only!r} matched no workloads")

    jobs = resolve_jobs(args.jobs)
    records: dict[str, dict] = {}
    for name, machine, nranks, mnk, diag in selected:
        print(f"[bench_wallclock] {name} ...", flush=True)
        rec = run_workload(name, machine, nranks, mnk, diag, args.reps)
        records[name] = rec
        print(f"[bench_wallclock] {name}: median {rec['median_s']:.3f}s "
              f"over {args.reps} reps", flush=True)

    for name, machine, nranks, phases, subp, base, off_reps, budget in \
            selected_phases:
        print(f"[bench_wallclock] {name} ...", flush=True)
        rec = run_phase_workload(name, machine, nranks, phases, subp, base,
                                 off_reps, budget, args.reps)
        records[name] = rec
        gate = (f", modes off {rec['modes_off_median_s']:.3f}s "
                f"({rec['modes_speedup']}x)"
                if "modes_speedup" in rec else "")
        print(f"[bench_wallclock] {name}: median {rec['median_s']:.3f}s"
              f"{gate}", flush=True)

    for name, machine, nranks, mnk in selected_hier:
        print(f"[bench_wallclock] {name} ...", flush=True)
        rec = run_hier_workload(name, machine, nranks, mnk, args.reps)
        records[name] = rec
        print(f"[bench_wallclock] {name}: median {rec['median_s']:.3f}s "
              f"over {args.reps} reps", flush=True)

    for name, machine, nranks, sizes, algorithms in selected_sweeps:
        print(f"[bench_wallclock] {name} (jobs={jobs}) ...", flush=True)
        rec = run_sweep_workload(name, machine, nranks, sizes, algorithms,
                                 jobs, args.reps)
        records[name] = rec
        print(f"[bench_wallclock] {name}: serial {rec['serial_median_s']:.3f}s, "
              f"jobs={jobs} {rec['parallel_median_s']:.3f}s "
              f"({rec['parallel_speedup']}x)", flush=True)

    for name, experiments in selected_caches:
        print(f"[bench_wallclock] {name} ...", flush=True)
        rec = run_cache_workload(name, experiments, args.reps)
        records[name] = rec
        print(f"[bench_wallclock] {name}: cold {rec['cold_median_s']:.3f}s, "
              f"warm {rec['warm_median_s']:.3f}s "
              f"({rec['warm_speedup']}x)", flush=True)

    if args.baseline and args.baseline.exists():
        merge_baseline(records, args.baseline)

    payload = {
        "schema": SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "reps": args.reps,
        "workloads": records,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_wallclock] wrote {args.out}")
    return payload


# -- pytest wrapper (only under -m slow) -------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - harness runs standalone
    pytest = None

if pytest is not None:
    @pytest.mark.slow
    def test_wallclock_smoke(tmp_path):
        """Reduced harness run: one small workload, JSON schema intact."""
        out = tmp_path / "bench.json"
        payload = main(["--only", "cray-x1-64", "--reps", "1",
                        "--out", str(out)])
        assert out.exists()
        rec = payload["workloads"]["cray-x1-64"]
        assert rec["median_s"] > 0
        assert rec["virtual_elapsed_s"] > 0

    @pytest.mark.slow
    def test_wallclock_gate_vs_recorded():
        """The committed BENCH_wallclock.json must show the >=3x gate on the
        contended 256-rank workload (when a baseline is recorded in it)."""
        if not DEFAULT_OUT.exists():
            pytest.skip("no BENCH_wallclock.json recorded yet")
        data = json.loads(DEFAULT_OUT.read_text())
        rec = data["workloads"].get("myrinet-256-contended")
        assert rec is not None
        if "speedup" not in rec:
            pytest.skip("no baseline merged into BENCH_wallclock.json")
        assert rec["speedup"] >= 3.0

    @pytest.mark.slow
    def test_wallclock_phase_smoke():
        """Phase-traffic workload runs at a reduced rank count; the on/off
        virtual-time identity and the speedup fields are recorded."""
        rec = run_phase_workload("phase-smoke", "linux-myrinet", 64,
                                 phases=1, subpanels=4,
                                 base_bytes=float(1 << 18),
                                 off_reps=1, budget_s=None, reps=1)
        assert rec["kind"] == "phases"
        assert rec["median_s"] > 0
        assert rec["virtual_elapsed_s"] > 0
        assert rec["flows_aggregated"] > 0      # bursts actually merged
        assert "modes_speedup" in rec           # the off rep ran

    @pytest.mark.slow
    def test_wallclock_phase_gate_vs_recorded():
        """The committed myrinet-1024 phase workload must show the >=5x
        modes-on vs modes-off gate."""
        if not DEFAULT_OUT.exists():
            pytest.skip("no BENCH_wallclock.json recorded yet")
        data = json.loads(DEFAULT_OUT.read_text())
        rec = data["workloads"].get("myrinet-1024")
        if rec is None:
            pytest.skip("myrinet-1024 not recorded yet")
        assert rec["modes_speedup"] >= 5.0, (
            f"engine modes only {rec['modes_speedup']}x over the "
            "pre-modes engine at 1024 ranks")

    @pytest.mark.slow
    def test_wallclock_4096_budget_vs_recorded():
        """The committed myrinet-4096 point must have beaten the pre-modes
        engine's 1024-rank figure time."""
        if not DEFAULT_OUT.exists():
            pytest.skip("no BENCH_wallclock.json recorded yet")
        data = json.loads(DEFAULT_OUT.read_text())
        rec = data["workloads"].get("myrinet-4096")
        if rec is None:
            pytest.skip("myrinet-4096 not recorded yet")
        assert rec["median_s"] < rec["budget_s"]

    @pytest.mark.slow
    def test_wallclock_hier_smoke():
        """Hierarchical workload runs end to end at a reduced size."""
        rec = run_hier_workload("hier-smoke", "linux-myrinet", 64, 512,
                                reps=1)
        assert rec["kind"] == "hier"
        assert rec["median_s"] > 0
        assert rec["virtual_elapsed_s"] > 0
        assert rec["kb"] >= 1

    @pytest.mark.slow
    def test_wallclock_sweep_smoke(tmp_path):
        """Sweep-level benchmark runs and its determinism gate holds."""
        out = tmp_path / "bench.json"
        payload = main(["--only", "sweep-myrinet-12pt", "--reps", "1",
                        "--jobs", "2", "--out", str(out)])
        rec = payload["workloads"]["sweep-myrinet-12pt"]
        assert rec["kind"] == "sweep"
        assert rec["points"] == 12
        assert rec["serial_median_s"] > 0
        assert rec["parallel_median_s"] > 0

    @pytest.mark.slow
    def test_wallclock_parallel_sweep_gate_vs_recorded():
        """The committed sweep-level record must show >=3x parallel speedup —
        but only when it was recorded on a host with enough real cores for
        the pool to matter (a single-core container cannot speed anything
        up, however correct the executor)."""
        if not DEFAULT_OUT.exists():
            pytest.skip("no BENCH_wallclock.json recorded yet")
        data = json.loads(DEFAULT_OUT.read_text())
        recs = {n: r for n, r in data["workloads"].items()
                if r.get("kind") == "sweep"}
        assert recs, "no sweep-level benchmark recorded"
        for name, rec in recs.items():
            if rec.get("cpu_count") is None or rec["cpu_count"] < 4:
                pytest.skip(
                    f"{name} recorded on a {rec.get('cpu_count')}-core host; "
                    "the >=3x parallel gate needs >=4 real cores")
            if rec.get("jobs", 1) < 4:
                pytest.skip(f"{name} recorded with jobs={rec.get('jobs')}")
            assert rec["parallel_speedup"] >= 3.0

    @pytest.mark.slow
    def test_wallclock_cache_smoke(tmp_path):
        """Cache-level benchmark runs; warm pass is all-hits and faster
        bookkeeping is recorded."""
        out = tmp_path / "bench.json"
        payload = main(["--only", "cache-reproduce-quick", "--reps", "1",
                        "--out", str(out)])
        rec = payload["workloads"]["cache-reproduce-quick"]
        assert rec["kind"] == "cache"
        assert rec["cold_median_s"] > 0
        assert rec["warm_median_s"] > 0
        assert rec["cold_misses"] > 0
        # Every unique point the cold pass computed is served from disk on
        # the warm pass (repeats promote to the memory tier).
        assert rec["warm_disk_hits"] == rec["cold_misses"]

    @pytest.mark.slow
    def test_wallclock_cache_gate_vs_recorded():
        """The committed cache-level record must show the >=5x warm-cache
        speedup on the reproduce workload."""
        if not DEFAULT_OUT.exists():
            pytest.skip("no BENCH_wallclock.json recorded yet")
        data = json.loads(DEFAULT_OUT.read_text())
        recs = {n: r for n, r in data["workloads"].items()
                if r.get("kind") == "cache"}
        assert recs, "no cache-level benchmark recorded"
        for name, rec in recs.items():
            assert rec["warm_speedup"] >= 5.0, (
                f"{name}: warm-cache reproduce only {rec['warm_speedup']}x "
                "faster than cold")


if __name__ == "__main__":
    main()
