#!/usr/bin/env python
"""Wall-clock benchmark harness for the simulator itself.

Unlike the figure-reproduction benchmarks (which assert *virtual-time*
shapes), this harness times how long the simulator takes in *host* seconds
to run canonical synthetic workloads — the quantity the perf work on the
event engine, the max-min allocator, and the plan cache actually moves.

Workloads: synthetic (timing-only) SRUMMA runs at 64–256 ranks on all four
paper machine models, plus the 256-rank *contended* workload (diagonal
shift disabled so many concurrent flows pile onto shared NIC links) that
stresses the fairness reallocator hardest.

Each workload runs ``--reps`` times (default 3) and reports the median.
Results land in ``BENCH_wallclock.json`` at the repo root so successive
PRs accumulate a perf trajectory; pass ``--baseline FILE`` to merge a
previous run's medians in and compute speedups.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
    PYTHONPATH=src python benchmarks/bench_wallclock.py \
        --baseline BENCH_wallclock.json --out BENCH_wallclock.json
    PYTHONPATH=src python benchmarks/bench_wallclock.py --only contended

The pytest wrapper at the bottom is marked ``slow`` and only runs under
``-m slow``; see docs/performance.md.
"""

from __future__ import annotations

import argparse
import json
import platform
import re
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.api import srumma_multiply  # noqa: E402
from repro.core.schedule import ScheduleOptions  # noqa: E402
from repro.core.srumma import SrummaOptions  # noqa: E402
from repro.machines.platforms import get_platform  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_wallclock.json"
SCHEMA_VERSION = 1

# (name, machine, nranks, mnk, diagonal_shift).  The contended workload is
# the acceptance gate: every CPU of a node fetches from the same remote
# node, so flows stampede shared NIC links and the fairness reallocator
# fires constantly.  It is listed first so partial runs still cover it.
WORKLOADS: list[tuple[str, str, int, int, bool]] = [
    ("myrinet-256-contended", "linux-myrinet", 256, 2048, False),
    ("myrinet-64", "linux-myrinet", 64, 2048, True),
    ("myrinet-128", "linux-myrinet", 128, 2048, True),
    ("myrinet-256", "linux-myrinet", 256, 2048, True),
    ("ibm-sp-64", "ibm-sp", 64, 2048, True),
    ("ibm-sp-128", "ibm-sp", 128, 2048, True),
    ("ibm-sp-256", "ibm-sp", 256, 2048, True),
    ("cray-x1-64", "cray-x1", 64, 2048, True),
    ("cray-x1-128", "cray-x1", 128, 2048, True),
    ("cray-x1-256", "cray-x1", 256, 2048, True),
    ("altix-64", "sgi-altix", 64, 2048, True),
    ("altix-128", "sgi-altix", 128, 2048, True),
    ("altix-256", "sgi-altix", 256, 2048, True),
]


def run_workload(name: str, machine: str, nranks: int, mnk: int,
                 diagonal_shift: bool, reps: int) -> dict:
    """Run one workload ``reps`` times; return its JSON record."""
    spec = get_platform(machine)
    options = SrummaOptions(
        schedule=ScheduleOptions(diagonal_shift=diagonal_shift))
    runs: list[float] = []
    virtual_elapsed = None
    engine_steps = None
    engine_compactions = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = srumma_multiply(spec, nranks=nranks, m=mnk, n=mnk, k=mnk,
                                 payload="synthetic", verify=False,
                                 options=options)
        runs.append(time.perf_counter() - t0)
        # Virtual time must be identical across reps (determinism); record
        # it so regressions in *simulated* output are visible in the JSON.
        if virtual_elapsed is None:
            virtual_elapsed = result.elapsed
        elif result.elapsed != virtual_elapsed:
            raise AssertionError(
                f"{name}: virtual elapsed changed across identical runs "
                f"({virtual_elapsed} vs {result.elapsed})")
        engine = result.run.machine.engine
        engine_steps = getattr(engine, "steps",
                               getattr(engine, "_step_count", None))
        engine_compactions = getattr(engine, "compactions", None)
    return {
        "machine": machine,
        "nranks": nranks,
        "mnk": mnk,
        "schedule": "diag" if diagonal_shift else "nodiag",
        "runs_s": [round(r, 6) for r in runs],
        "median_s": round(statistics.median(runs), 6),
        "virtual_elapsed_s": virtual_elapsed,
        "engine_steps": engine_steps,
        "engine_compactions": engine_compactions,
    }


def merge_baseline(records: dict, baseline_path: Path) -> None:
    """Attach ``baseline_median_s``/``speedup`` from a previous run."""
    baseline = json.loads(baseline_path.read_text())
    base_workloads = baseline.get("workloads", {})
    for name, rec in records.items():
        base = base_workloads.get(name)
        if base is None:
            continue
        rec["baseline_median_s"] = base["median_s"]
        if rec["median_s"] > 0:
            rec["speedup"] = round(base["median_s"] / rec["median_s"], 3)


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="output JSON path (default: BENCH_wallclock.json)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous BENCH_wallclock.json to compute speedups against")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per workload (median reported)")
    parser.add_argument("--only", type=str, default=None,
                        help="regex: run only matching workload names")
    args = parser.parse_args(argv)

    selected = WORKLOADS
    if args.only:
        pat = re.compile(args.only)
        selected = [w for w in WORKLOADS if pat.search(w[0])]
        if not selected:
            parser.error(f"--only {args.only!r} matched no workloads")

    records: dict[str, dict] = {}
    for name, machine, nranks, mnk, diag in selected:
        print(f"[bench_wallclock] {name} ...", flush=True)
        rec = run_workload(name, machine, nranks, mnk, diag, args.reps)
        records[name] = rec
        print(f"[bench_wallclock] {name}: median {rec['median_s']:.3f}s "
              f"over {args.reps} reps", flush=True)

    if args.baseline and args.baseline.exists():
        merge_baseline(records, args.baseline)

    payload = {
        "schema": SCHEMA_VERSION,
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "reps": args.reps,
        "workloads": records,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_wallclock] wrote {args.out}")
    return payload


# -- pytest wrapper (only under -m slow) -------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - harness runs standalone
    pytest = None

if pytest is not None:
    @pytest.mark.slow
    def test_wallclock_smoke(tmp_path):
        """Reduced harness run: one small workload, JSON schema intact."""
        out = tmp_path / "bench.json"
        payload = main(["--only", "cray-x1-64", "--reps", "1",
                        "--out", str(out)])
        assert out.exists()
        rec = payload["workloads"]["cray-x1-64"]
        assert rec["median_s"] > 0
        assert rec["virtual_elapsed_s"] > 0

    @pytest.mark.slow
    def test_wallclock_gate_vs_recorded():
        """The committed BENCH_wallclock.json must show the >=3x gate on the
        contended 256-rank workload (when a baseline is recorded in it)."""
        if not DEFAULT_OUT.exists():
            pytest.skip("no BENCH_wallclock.json recorded yet")
        data = json.loads(DEFAULT_OUT.read_text())
        rec = data["workloads"].get("myrinet-256-contended")
        assert rec is not None
        if "speedup" not in rec:
            pytest.skip("no baseline merged into BENCH_wallclock.json")
        assert rec["speedup"] >= 3.0


if __name__ == "__main__":
    main()
