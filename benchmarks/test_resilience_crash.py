"""Hard node failure: SRUMMA recovers in place, baselines restart.

A node dies at 25/50/75 % of the run.  SRUMMA's one-sided owner-computes
structure lets the survivors finish the dead ranks' work: gets redirect
to declustered replicas, the dynamic scheduler re-executes the residue
past the last durable buddy checkpoint, and one write-back per survivor
lands the recovered C blocks.  SUMMA's and Cannon's synchronous pipelines
have no such seam — a dead peer stalls every round — so they are charged
the classic restart-from-checkpoint model against their own healthy
runtime (checkpoint writes, detection, reload, re-execution on the
survivors; see ``repro.bench.experiments._crash``).

Expected shape: SRUMMA's completion-time inflation is strictly below
both restart models at every failure point, and everything is
deterministic (the crash instant derives from the healthy elapsed, the
plan is pure data, the draws are counter-indexed).
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_experiment

FRACS = ("25%", "50%", "75%")


@pytest.fixture(scope="module")
def crash_result():
    return run_experiment("crash", full=True, jobs=1, fault_seed=0)


def _by_alg_frac(result):
    _, headers, rows = result
    infl = headers.index("inflation")
    return {(row[0], row[1]): row[infl] for row in rows}


def test_crash_table(crash_result, save_result):
    title, headers, rows = crash_result
    save_result("resilience_crash", format_table(headers, rows, title=title))


def test_sweep_covers_every_failure_point(crash_result):
    table = _by_alg_frac(crash_result)
    assert set(table) == {(alg, frac)
                          for alg in ("srumma", "summa", "cannon")
                          for frac in FRACS}


def test_srumma_recovery_beats_restart_everywhere(crash_result):
    """The tentpole claim: in-place recovery inflates completion strictly
    less than restart-from-checkpoint, at every failure point."""
    table = _by_alg_frac(crash_result)
    for frac in FRACS:
        assert table[("srumma", frac)] < table[("summa", frac)], frac
        assert table[("srumma", frac)] < table[("cannon", frac)], frac


def test_crash_actually_bites(crash_result):
    """No vacuous wins: every algorithm pays a visible recovery cost."""
    table = _by_alg_frac(crash_result)
    assert all(v > 1.05 for v in table.values())


def test_healthy_baseline_constant_within_algorithm(crash_result):
    _, headers, rows = crash_result
    h = headers.index("healthy ms")
    for alg in ("srumma", "summa", "cannon"):
        baselines = {row[h] for row in rows if row[0] == alg}
        assert len(baselines) == 1, alg


def test_restart_model_cost_grows_with_failure_time(crash_result):
    """The analytic baselines lose more the later the node dies (more
    wall-clock thrown away); SRUMMA's simulated recovery must not grow
    *faster* than the worst restart model does."""
    table = _by_alg_frac(crash_result)
    for alg in ("summa", "cannon"):
        assert (table[(alg, "25%")] < table[(alg, "50%")]
                < table[(alg, "75%")])
    srumma_span = table[("srumma", "75%")] - table[("srumma", "25%")]
    worst_span = max(table[(alg, "75%")] - table[(alg, "25%")]
                     for alg in ("summa", "cannon"))
    assert srumma_span <= worst_span


def test_result_is_deterministic(crash_result):
    again = run_experiment("crash", full=True, jobs=1, fault_seed=0)
    assert again[2] == crash_result[2]


@pytest.mark.slow
def test_resilience_crash_benchmark(benchmark, crash_result, save_result):
    test_crash_table(crash_result, save_result)
    benchmark.pedantic(
        lambda: run_experiment("crash", full=False, jobs=1),
        rounds=3, iterations=1)
