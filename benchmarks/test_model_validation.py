"""§2.1 model validation: analytic T_par_rma vs the simulator.

On the idealised machine (1 CPU per node, zero-copy network, flat kernel
efficiency) the simulator should track the paper's eq. 1/eq. 3 closely:

- blocking SRUMMA ~ eq. 1 = N^3 alpha / P + 2 N^2 t_w / sqrt(P) + 2 t_s sqrt(P)
  (our kernel does 2 flops per multiply-add, folded into alpha);
- nonblocking SRUMMA approaches the full-overlap limit of eq. 3;
- efficiency grows with N at fixed P and the isoefficiency scaling
  N^3 ~ P^1.5 holds efficiency roughly constant.
"""

import math

import pytest

from repro.bench import format_table, run_matmul
from repro.core import ScheduleOptions, SrummaOptions
from repro.machines import IDEAL
from repro.model import ModelParams, t_par_overlap, t_par_rma

# alpha = seconds per flop (the simulator charges 2*m*n*k flops).
PARAMS = ModelParams(
    alpha=2.0 / (IDEAL.cpu.flops * IDEAL.cpu.peak_efficiency),
    t_w=8.0 / IDEAL.network.bandwidth,
    t_s=IDEAL.network.rma_latency,
)

BLOCKING = SrummaOptions(flavor="cluster", nonblocking=False,
                         schedule=ScheduleOptions(diagonal_shift=False))
NONBLOCKING = SrummaOptions(flavor="cluster", nonblocking=True)

CASES = [(512, 4), (1024, 16), (2048, 16), (2048, 64)]


@pytest.fixture(scope="module")
def validation_rows():
    rows = []
    for n, p in CASES:
        blocking = run_matmul("srumma", IDEAL, p, n, options=BLOCKING).elapsed
        nonblock = run_matmul("srumma", IDEAL, p, n, options=NONBLOCKING).elapsed
        model_blk = t_par_rma(n, p, PARAMS)
        model_ovl = t_par_overlap(n, p, PARAMS, omega=0.0)
        rows.append((n, p, blocking, model_blk, blocking / model_blk,
                     nonblock, model_ovl, nonblock / model_ovl))
    return rows


def test_model_table(validation_rows, save_result):
    text = format_table(
        ["N", "P", "sim blk", "eq1", "blk/eq1",
         "sim nb", "eq3(w=0)", "nb/eq3"],
        validation_rows,
        title="Model validation — simulated vs analytic seconds",
    )
    save_result("model_validation", text)


def test_blocking_time_tracks_eq1(validation_rows):
    """Within 25%: eq. 1 ignores kernel-efficiency curvature and per-block
    latency aggregation, so exact agreement is not expected."""
    for n, p, blocking, model_blk, ratio, *_ in validation_rows:
        assert 0.75 < ratio < 1.25, (n, p, ratio)


def test_nonblocking_time_tracks_full_overlap_limit(validation_rows):
    for row in validation_rows:
        n, p = row[0], row[1]
        ratio = row[7]
        assert 0.75 < ratio < 1.35, (n, p, ratio)


def test_nonblocking_never_slower_than_blocking(validation_rows):
    for row in validation_rows:
        assert row[5] <= row[2] * 1.001, row


def test_efficiency_grows_with_n():
    p = 16
    effs = []
    for n in (256, 1024, 4096):
        elapsed = run_matmul("srumma", IDEAL, p, n, options=BLOCKING).elapsed
        t1 = PARAMS.alpha * n ** 3
        effs.append(t1 / (p * elapsed))
    assert effs[0] < effs[1] < effs[2]


def test_isoefficiency_scaling_holds():
    """Scale N^3 with P^1.5 (i.e. N with sqrt(P)): efficiency ~ constant."""
    effs = []
    for p in (4, 16, 64):
        n = int(256 * math.sqrt(p))
        elapsed = run_matmul("srumma", IDEAL, p, n, options=BLOCKING).elapsed
        t1 = PARAMS.alpha * n ** 3
        effs.append(t1 / (p * elapsed))
    assert max(effs) - min(effs) < 0.12


def test_model_benchmark(benchmark, validation_rows, save_result):
    test_model_table(validation_rows, save_result)
    benchmark.pedantic(
        lambda: run_matmul("srumma", IDEAL, 16, 1024, options=BLOCKING).elapsed,
        rounds=3, iterations=1)
