"""Paper Fig. 6: bandwidth comparison on the Cray X1.

The paper plots achieved bandwidth vs message size on the X1 for the
protocols SRUMMA and pdgemm build on: direct shared-memory copies vs MPI
send/receive.  Shared memory wins across the size range (it is 'the fastest
communication protocol available on shared memory systems'), with MPI
additionally burdened by per-message software costs that dominate small
messages.
"""

import pytest

from repro.bench import bandwidth_sweep, fmt_bytes, format_table
from repro.machines import CRAY_X1

SIZES = tuple(1 << s for s in range(10, 23))  # 1 KB .. 4 MB


@pytest.fixture(scope="module")
def fig6_series():
    return {
        "shmem": dict(bandwidth_sweep(CRAY_X1, "shmem", SIZES)),
        "mpi": dict(bandwidth_sweep(CRAY_X1, "mpi", SIZES)),
    }


def test_fig6_table(fig6_series, save_result):
    rows = [
        (fmt_bytes(s),
         fig6_series["shmem"][s] / 1e6,
         fig6_series["mpi"][s] / 1e6)
        for s in SIZES
    ]
    text = format_table(
        ["msg size", "shmem MB/s", "MPI MB/s"],
        rows,
        title="Fig. 6 — bandwidth on the Cray X1",
    )
    save_result("fig6_bandwidth_x1", text)


def test_fig6_shmem_beats_mpi_everywhere(fig6_series):
    for s in SIZES:
        assert fig6_series["shmem"][s] > fig6_series["mpi"][s], fmt_bytes(s)


def test_fig6_mpi_small_message_penalty(fig6_series):
    """Per-message software overhead crushes MPI at small sizes: the
    shmem/MPI ratio is much larger at 1 KB than at 4 MB."""
    ratio_small = fig6_series["shmem"][SIZES[0]] / fig6_series["mpi"][SIZES[0]]
    ratio_large = fig6_series["shmem"][SIZES[-1]] / fig6_series["mpi"][SIZES[-1]]
    assert ratio_small > 3 * ratio_large


def test_fig6_bandwidth_approaches_hardware_limits(fig6_series):
    """Large-message shmem bandwidth approaches the copy-stream rate."""
    peak = fig6_series["shmem"][SIZES[-1]]
    assert peak > 0.5 * CRAY_X1.memory.copy_bandwidth


def test_fig6_benchmark(benchmark, fig6_series, save_result):
    test_fig6_table(fig6_series, save_result)
    from repro.bench import measure_bandwidth

    benchmark.pedantic(
        lambda: measure_bandwidth(CRAY_X1, "shmem", 1 << 20),
        rounds=5, iterations=1)
