"""§2 asynchrony claim: daemon interference hurts synchronised algorithms more.

The paper: "The absence of sender-receiver synchronization/coordination
(such in Cannon's algorithm) ... makes the overall algorithm more
asynchronous and thus more suited for the execution environments where the
computational threads share a CPU with other processes and system daemons
(e.g., on commodity clusters).  This is because synchronization amplifies
performance degradations due to the nonexclusive use of the processor."

We inject per-CPU daemon bursts (independent pseudo-Poisson streams, with
OS-style timeslicing so they actually preempt) on the Linux cluster model
and measure each algorithm's slowdown.  Expected shape: everyone slows by
at least the stolen CPU share, but Cannon's lock-step shifts amplify the
*variance* (each round waits for that round's unluckiest rank) while
SRUMMA's one-sided pipeline only absorbs its own rank's share.
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.machines import LINUX_MYRINET
from repro.sim import InterferencePattern

N = 2000
P = 64
LOADS = (0.0, 0.02, 0.05)
ALGS = ("srumma", "cannon", "fox")


def _elapsed(alg, load):
    pattern = (InterferencePattern(load=load, mean_burst=5e-3, seed=3)
               if load else None)
    return run_matmul(alg, LINUX_MYRINET, P, N, interference=pattern).elapsed


@pytest.fixture(scope="module")
def interference_rows():
    base = {alg: _elapsed(alg, 0.0) for alg in ALGS}
    rows = []
    for load in LOADS:
        row = [f"{load:.0%}"]
        for alg in ALGS:
            t = base[alg] if load == 0.0 else _elapsed(alg, load)
            row.append(t / base[alg])
        rows.append(row)
    return rows


def test_interference_table(interference_rows, save_result):
    text = format_table(
        ["daemon load", *(f"{a} slowdown" for a in ALGS)],
        interference_rows,
        title=f"Daemon interference, N={N}, {P} CPUs, linux-myrinet "
              "(slowdown vs clean run)",
    )
    save_result("daemon_interference", text)


def test_everyone_slows_under_interference(interference_rows):
    for row in interference_rows[1:]:
        for slowdown in row[1:]:
            assert slowdown > 1.0, row


def test_srumma_degrades_least(interference_rows):
    """The paper's claim: the asynchronous algorithm absorbs daemon noise;
    the synchronised shifts/broadcasts amplify it."""
    heavy = interference_rows[-1]  # the 5% row
    srumma, cannon, fox = heavy[1], heavy[2], heavy[3]
    assert srumma < cannon
    assert srumma <= fox * 1.02


def test_amplification_exceeds_raw_load_for_cannon(interference_rows):
    """Lock-step shifting pays far more than the 5% of CPU actually stolen."""
    heavy = interference_rows[-1]
    cannon = heavy[2]
    assert cannon > 1.25  # >5x the raw stolen share


def test_interference_benchmark(benchmark, interference_rows, save_result):
    test_interference_table(interference_rows, save_result)
    benchmark.pedantic(lambda: _elapsed("srumma", 0.05), rounds=3, iterations=1)
