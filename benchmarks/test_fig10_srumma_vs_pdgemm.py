"""Paper Fig. 10: SRUMMA vs ScaLAPACK pdgemm on all four platforms.

The paper's headline figure: square matrices (ranks 600..12000), all four
platforms, SRUMMA against pdgemm.  Shape to reproduce:

- SRUMMA outperforms pdgemm at every configuration;
- the advantage is larger on the shared-memory systems (Altix, X1) than on
  the clusters — shared memory vs message passing;
- the advantage shrinks as N grows (communication matters relatively less);
- both algorithms scale with N (GFLOP/s increase toward the dgemm-bound
  regime).
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX

SIZES = (600, 1000, 2000, 4000, 8000, 12000)
PLATFORMS = [
    (LINUX_MYRINET, 128),
    (IBM_SP, 256),
    (CRAY_X1, 128),
    (SGI_ALTIX, 128),
]


@pytest.fixture(scope="module")
def fig10_series():
    out = {}
    for spec, nranks in PLATFORMS:
        for n in SIZES:
            for alg in ("srumma", "pdgemm"):
                out[(spec.name, alg, n)] = run_matmul(alg, spec, nranks, n).gflops
    return out


def test_fig10_table(fig10_series, save_result):
    blocks = []
    for spec, nranks in PLATFORMS:
        rows = []
        for n in SIZES:
            s = fig10_series[(spec.name, "srumma", n)]
            p = fig10_series[(spec.name, "pdgemm", n)]
            rows.append((n, s, p, s / p))
        blocks.append(format_table(
            ["N", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
            rows,
            title=f"Fig. 10 — {spec.name}, {nranks} CPUs",
        ))
    save_result("fig10_srumma_vs_pdgemm", "\n".join(blocks))


def test_fig10_srumma_wins_everywhere(fig10_series):
    """Paper: 'the new algorithm outperforms pdgemm and scales better'."""
    for (platform, alg, n), g in fig10_series.items():
        if alg == "srumma":
            assert g > fig10_series[(platform, "pdgemm", n)], (platform, n)


def test_fig10_biggest_gains_on_shared_memory_systems(fig10_series):
    """Paper: 'the most profound gains noted on the two shared memory
    systems, Cray X1 and SGI Altix'."""
    def mean_ratio(platform):
        rs = [fig10_series[(platform, "srumma", n)]
              / fig10_series[(platform, "pdgemm", n)] for n in SIZES]
        return sum(rs) / len(rs)

    shared = min(mean_ratio("cray-x1"), mean_ratio("sgi-altix"))
    clusters = max(mean_ratio("linux-myrinet"), mean_ratio("ibm-sp"))
    # The weakest shared-memory advantage still beats the strongest cluster
    # advantage on the small-N half of the sweep, where protocol costs rule.
    def mean_ratio_small(platform):
        rs = [fig10_series[(platform, "srumma", n)]
              / fig10_series[(platform, "pdgemm", n)] for n in SIZES[:3]]
        return sum(rs) / len(rs)

    shared_small = min(mean_ratio_small("cray-x1"), mean_ratio_small("sgi-altix"))
    cluster_small = max(mean_ratio_small("linux-myrinet"),
                        mean_ratio_small("ibm-sp"))
    assert shared_small > 1.2
    assert shared > 1.2
    assert shared_small > cluster_small * 0.8  # comparable or better


def test_fig10_advantage_shrinks_with_n(fig10_series):
    """Communication matters relatively less for huge matrices."""
    for spec, _ in PLATFORMS:
        small = (fig10_series[(spec.name, "srumma", 600)]
                 / fig10_series[(spec.name, "pdgemm", 600)])
        large = (fig10_series[(spec.name, "srumma", 12000)]
                 / fig10_series[(spec.name, "pdgemm", 12000)])
        assert small > large, spec.name


def test_fig10_gflops_scale_with_n(fig10_series):
    for spec, _ in PLATFORMS:
        for alg in ("srumma", "pdgemm"):
            assert (fig10_series[(spec.name, alg, 12000)]
                    > fig10_series[(spec.name, alg, 1000)]), (spec.name, alg)


def test_fig10_linux_factor_matches_paper_range(fig10_series):
    """Paper: on the Linux cluster SRUMMA is 'faster by a factor of two for
    larger problem sizes, and by 20% to 40% in most of the cases'."""
    for n in SIZES:
        ratio = (fig10_series[("linux-myrinet", "srumma", n)]
                 / fig10_series[("linux-myrinet", "pdgemm", n)])
        assert 1.1 < ratio < 4.0, (n, ratio)


def test_fig10_benchmark(benchmark, fig10_series, save_result):
    test_fig10_table(fig10_series, save_result)
    benchmark.pedantic(
        lambda: run_matmul("srumma", SGI_ALTIX, 128, 2000).gflops,
        rounds=3, iterations=1)
