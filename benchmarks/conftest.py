"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one figure or table from the paper: it runs the
sweep on the simulated machines, prints the series (and writes them under
``results/``), asserts the paper's qualitative shape, and registers one
representative configuration with pytest-benchmark for wall-clock tracking.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one figure's text output under results/ and echo it."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text)
        print()
        print(text)

    return _save
