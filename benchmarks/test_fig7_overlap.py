"""Paper Fig. 7: potential communication/computation overlap vs message size.

Measured on the two cluster platforms (IBM SP and Linux/Myrinet) for
nonblocking ARMCI get vs nonblocking MPI:

- ARMCI nonblocking get achieves ~99% overlap for medium and large
  messages (the NIC, or the remote host, moves the data while the
  initiator computes);
- MPI overlap is high in the eager range but collapses once the library
  switches to the rendezvous protocol (16 KB): without a progress thread
  the transfer only advances inside MPI calls.
"""

import pytest

from repro.bench import fmt_bytes, format_table, measure_overlap
from repro.machines import IBM_SP, LINUX_MYRINET

SIZES = tuple(1 << s for s in range(10, 23))  # 1 KB .. 4 MB
EAGER = LINUX_MYRINET.network.eager_threshold


@pytest.fixture(scope="module")
def fig7_series():
    out = {}
    for spec in (IBM_SP, LINUX_MYRINET):
        for proto in ("armci_get", "mpi"):
            out[(spec.name, proto)] = {
                s: measure_overlap(spec, proto, s) for s in SIZES
            }
    return out


def test_fig7_table(fig7_series, save_result):
    rows = []
    for s in SIZES:
        rows.append((
            fmt_bytes(s),
            fig7_series[("ibm-sp", "armci_get")][s],
            fig7_series[("ibm-sp", "mpi")][s],
            fig7_series[("linux-myrinet", "armci_get")][s],
            fig7_series[("linux-myrinet", "mpi")][s],
        ))
    text = format_table(
        ["msg size", "SP armci", "SP mpi", "linux armci", "linux mpi"],
        rows,
        title="Fig. 7 — potential overlap (fraction of comm hidden)",
    )
    save_result("fig7_overlap", text)


@pytest.mark.parametrize("platform", ["ibm-sp", "linux-myrinet"])
def test_fig7_armci_overlap_near_total_for_large_messages(fig7_series, platform):
    """Paper: 'ARMCI non-blocking get offers almost 99% overlap for medium-
    and larger-sized messages'."""
    for s in SIZES:
        if s >= 64 * 1024:
            assert fig7_series[(platform, "armci_get")][s] > 0.9, fmt_bytes(s)


@pytest.mark.parametrize("platform", ["ibm-sp", "linux-myrinet"])
def test_fig7_mpi_cliff_at_rendezvous_threshold(fig7_series, platform):
    """Paper: MPI overlap 'sharply decreases after a certain message size
    (16Kb) as MPI switches to the Rendezvous protocol'."""
    below = fig7_series[(platform, "mpi")][EAGER]          # last eager size
    above = fig7_series[(platform, "mpi")][EAGER * 2]      # first rendezvous
    assert below > 0.8, "eager overlap should be high"
    assert above < 0.3, "rendezvous overlap should collapse"
    assert below - above > 0.5, "the cliff must be sharp"


@pytest.mark.parametrize("platform", ["ibm-sp", "linux-myrinet"])
def test_fig7_armci_beats_mpi_in_rendezvous_range(fig7_series, platform):
    for s in SIZES:
        if s > EAGER:
            assert (fig7_series[(platform, "armci_get")][s]
                    > fig7_series[(platform, "mpi")][s] + 0.5), fmt_bytes(s)


def test_fig7_benchmark(benchmark, fig7_series, save_result):
    test_fig7_table(fig7_series, save_result)
    benchmark.pedantic(
        lambda: measure_overlap(LINUX_MYRINET, "armci_get", 1 << 18),
        rounds=5, iterations=1)
