"""Paper Fig. 5: direct-access vs copy-based shared-memory flavours.

The paper compares the two §3.2 flavours for N=2000 on 16 processors of the
Cray X1 and the SGI Altix, for C=AB and C=A^T B:

- Cray X1: remote memory is NOT cacheable, so the copy-based flavour is
  clearly faster;
- SGI Altix: remote memory IS cacheable, so direct access wins (slightly at
  16 CPUs, more at higher processor counts — also checked here).
"""

import pytest

from repro.bench import format_table, run_matmul
from repro.core import SrummaOptions
from repro.machines import CRAY_X1, SGI_ALTIX

N = 2000
P = 16


def _flavor_gflops(spec, flavor, transa):
    point = run_matmul("srumma", spec, P, N, transa=transa,
                       options=SrummaOptions(flavor=flavor))
    return point.gflops


@pytest.fixture(scope="module")
def fig5_rows():
    rows = []
    for spec in (CRAY_X1, SGI_ALTIX):
        for transa in (False, True):
            case = "C=A^T B" if transa else "C=AB"
            direct = _flavor_gflops(spec, "direct", transa)
            copy = _flavor_gflops(spec, "copy", transa)
            rows.append((spec.name, case, direct, copy, direct / copy))
    return rows


def test_fig5_table(fig5_rows, save_result):
    text = format_table(
        ["platform", "case", "direct GF/s", "copy GF/s", "direct/copy"],
        fig5_rows,
        title=f"Fig. 5 — shared-memory flavours, N={N}, {P} CPUs",
    )
    save_result("fig5_shared_flavors", text)


def test_fig5_copy_wins_on_x1(fig5_rows):
    """Paper: 'the copy-based version is faster ... on the Cray X1'."""
    for platform, case, direct, copy, _ in fig5_rows:
        if platform == "cray-x1":
            assert copy > direct * 1.5, (platform, case)


def test_fig5_direct_wins_on_altix(fig5_rows):
    """Paper: direct access is 'somewhat slower' to copy on the X1 but the
    direct version wins on the Altix."""
    for platform, case, direct, copy, _ in fig5_rows:
        if platform == "sgi-altix":
            assert direct >= copy * 0.99, (platform, case)


def test_fig5_altix_gap_grows_with_cpus():
    """Paper: 'the gap ... actually increases for larger processor counts
    on the Altix'."""
    ratios = []
    for nranks in (16, 64):
        d = run_matmul("srumma", SGI_ALTIX, nranks, N,
                       options=SrummaOptions(flavor="direct")).gflops
        c = run_matmul("srumma", SGI_ALTIX, nranks, N,
                       options=SrummaOptions(flavor="copy")).gflops
        ratios.append(d / c)
    assert ratios[1] > ratios[0]


def test_fig5_benchmark(benchmark, fig5_rows, save_result):
    # Regenerate the table under --benchmark-only too.
    test_fig5_table(fig5_rows, save_result)
    benchmark.pedantic(
        lambda: _flavor_gflops(CRAY_X1, "copy", False),
        rounds=3, iterations=1)
