"""Block-size study: the paper's 'optimum block sizes were chosen
empirically for all matrix sizes and processor counts' (§4).

Sweeps the pdgemm/SUMMA panel width on the Linux cluster and checks the
expected bathtub shape: tiny panels drown in per-message costs and kernel
inefficiency, huge panels lose pipelining (fewer steps to overlap), and the
optimum sits in between.  Also verifies the harness default lands within
25% of the empirical optimum.
"""

import pytest

from repro.bench import default_nb, format_table, run_matmul
from repro.machines import LINUX_MYRINET

N = 2000
P = 16
NBS = (8, 16, 32, 64, 125, 250, 500, 1000)


@pytest.fixture(scope="module")
def blocksize_series():
    return {nb: run_matmul("pdgemm", LINUX_MYRINET, P, N, nb=nb).gflops
            for nb in NBS}


def test_blocksize_table(blocksize_series, save_result):
    best_nb = max(blocksize_series, key=blocksize_series.get)
    rows = [(nb, gf, "  <- best" if nb == best_nb else "")
            for nb, gf in blocksize_series.items()]
    text = format_table(
        ["nb", "pdgemm GF/s", ""],
        rows,
        title=f"pdgemm block-size sweep, N={N}, {P} CPUs, linux-myrinet",
    )
    save_result("blocksize_study", text)


def test_tiny_panels_are_bad(blocksize_series):
    best = max(blocksize_series.values())
    assert blocksize_series[8] < 0.6 * best


def test_optimum_is_interior(blocksize_series):
    """The best nb is neither the smallest nor the largest tested."""
    best_nb = max(blocksize_series, key=blocksize_series.get)
    assert NBS[0] < best_nb < NBS[-1]


def test_default_rule_is_near_optimal(blocksize_series):
    best = max(blocksize_series.values())
    auto = run_matmul("pdgemm", LINUX_MYRINET, P, N,
                      nb=default_nb(N, P)).gflops
    assert auto > 0.75 * best


def test_blocksize_benchmark(benchmark, blocksize_series, save_result):
    test_blocksize_table(blocksize_series, save_result)
    benchmark.pedantic(
        lambda: run_matmul("pdgemm", LINUX_MYRINET, P, N, nb=64).gflops,
        rounds=3, iterations=1)
