"""The paper's analytic efficiency model (§2.1).

With unit-time flops, transfer time per element ``t_w`` and startup ``t_s``,
on a ``sqrt(P) x sqrt(P)`` grid the paper derives (eq. 1)::

    T_par_rma = N^3/P + 2 (N^2/sqrt(P)) t_w + 2 t_s sqrt(P)

parallel efficiency (t_s neglected)::

    eta = 1 / (1 + 2 sqrt(P) t_w / N)

and an O(P^{3/2}) isoefficiency — the same as Cannon's algorithm.  With a
degree of overlap ``omega`` (0 = fully hidden communication, 1 = none),
eq. 3 reduces the communication term to ``omega`` of its blocking value.

All functions also take explicit ``alpha`` (seconds per flop) so the model
can be dimensionalised against a machine spec and compared with simulated
runs (the model-validation benchmark).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ModelParams",
    "t_seq",
    "t_comm",
    "t_par_rma",
    "t_par_overlap",
    "speedup",
    "efficiency",
    "overlap_degree",
    "isoefficiency_problem_size",
]


@dataclass(frozen=True)
class ModelParams:
    """Dimensional parameters of the §2.1 model."""

    alpha: float = 1.0
    """Seconds per flop (the paper normalises alpha = 1)."""

    t_w: float = 0.0
    """Transfer seconds per matrix element."""

    t_s: float = 0.0
    """Transfer startup seconds (latency)."""

    @classmethod
    def from_machine(cls, spec, itemsize: int = 8) -> "ModelParams":
        """Dimensionalise from a machine spec (per-element wire time etc.)."""
        alpha = 1.0 / (spec.cpu.flops * spec.cpu.peak_efficiency)
        return cls(alpha=alpha,
                   t_w=itemsize / spec.network.bandwidth,
                   t_s=spec.network.rma_latency)


def t_seq(n: int, params: ModelParams = ModelParams()) -> float:
    """Sequential time: N^3 multiply-adds (the paper's unit-cost convention)."""
    _check(n, 1)
    return params.alpha * float(n) ** 3


def t_comm(n: int, p: int, params: ModelParams) -> float:
    """Blocking communication time: fetch q A-blocks and p B-blocks (§2.1)."""
    _check(n, p)
    rp = math.sqrt(p)
    return 2.0 * (n * n / rp) * params.t_w + 2.0 * params.t_s * rp


def t_par_rma(n: int, p: int, params: ModelParams) -> float:
    """Eq. 1: parallel time with blocking RMA transfers."""
    _check(n, p)
    return t_seq(n, params) / p + t_comm(n, p, params)


def t_par_overlap(n: int, p: int, params: ModelParams, omega: float) -> float:
    """Eq. 3: parallel time when a fraction (1 - omega) of the communication
    is hidden behind computation.  omega=1 reproduces eq. 1; omega=0 leaves
    only the startup term (the '100% overlap' limit in the paper)."""
    _check(n, p)
    if not (0.0 <= omega <= 1.0):
        raise ValueError(f"omega must be in [0, 1], got {omega}")
    rp = math.sqrt(p)
    comm_bw = 2.0 * (n * n / rp) * params.t_w
    return t_seq(n, params) / p + omega * comm_bw + 2.0 * params.t_s * rp


def speedup(n: int, p: int, params: ModelParams, omega: float = 1.0) -> float:
    """T_seq / T_par."""
    return t_seq(n, params) / t_par_overlap(n, p, params, omega)


def efficiency(n: int, p: int, params: ModelParams, omega: float = 1.0) -> float:
    """Parallel efficiency eta = speedup / P; the paper's closed form
    (t_s neglected, omega=1) is 1 / (1 + 2 sqrt(P) t_w / N)."""
    return speedup(n, p, params, omega) / p


def overlap_degree(t_comp: float, t_comm_: float) -> float:
    """The paper's omega = 1 - T_comp/T_comm, clamped at 0 (fully hidden)."""
    if t_comm_ <= 0:
        return 0.0
    return max(0.0, 1.0 - t_comp / t_comm_)


def isoefficiency_problem_size(p: int, c: float = 1.0) -> float:
    """Work W = N^3 needed to hold efficiency constant: O(P^{3/2}).

    Returns ``c * p**1.5``; the constant absorbs t_w and the target
    efficiency.  Used by the model-validation bench to check the simulator
    scales the same way."""
    _check(1, p)
    return c * p ** 1.5


def _check(n: int, p: int) -> None:
    if n < 1:
        raise ValueError(f"matrix size must be >= 1, got {n}")
    if p < 1:
        raise ValueError(f"process count must be >= 1, got {p}")
