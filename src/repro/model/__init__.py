"""Analytic performance model from the paper's §2.1."""

from .efficiency import (
    ModelParams,
    efficiency,
    isoefficiency_problem_size,
    overlap_degree,
    speedup,
    t_comm,
    t_par_overlap,
    t_par_rma,
    t_seq,
)

__all__ = [
    "ModelParams", "efficiency", "isoefficiency_problem_size",
    "overlap_degree", "speedup", "t_comm", "t_par_overlap", "t_par_rma",
    "t_seq",
]
