"""Cannon's algorithm — the message-passing reference point (paper §2).

Classic 1969 formulation on a square ``s x s`` process grid:

1. *Skew*: block ``A_ij`` shifts left by ``i`` positions, ``B_ij`` up by
   ``j`` positions (so every rank starts holding a matching pair).
2. ``s`` compute-shift rounds: multiply the held blocks into ``C_ij``, then
   shift A one step left and B one step up (ring ``sendrecv``).

Every shift is sender-receiver synchronised — the coordination SRUMMA's
one-sided gets eliminate (§2: "unlike Cannon's algorithm, where skewed
blocks ... are shifted using message-passing to the logically neighboring
processors").

Non-divisible dimensions are handled by padding each block to the nominal
``ceil`` size with zeros (padded products contribute nothing); this is also
what keeps all shifted blocks the same shape.  Square grids only —
rectangular grids require the generalised (BMR) variant, which the paper
does not use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..comm.base import RankContext
from ..distarray.distribution import Block2D
from ..machines.spec import MachineSpec

__all__ = ["cannon_rank", "cannon_multiply", "CannonResult"]


@dataclass
class CannonResult:
    """Outcome of :func:`cannon_multiply` (mirrors MultiplyResult)."""

    elapsed: float
    gflops: float
    m: int
    n: int
    k: int
    nranks: int
    grid: tuple[int, int]
    run: object
    c: Optional[np.ndarray] = None
    max_error: Optional[float] = None


def cannon_rank(ctx: RankContext, s: int, m: int, n: int, k: int,
                a_block: Optional[np.ndarray], b_block: Optional[np.ndarray],
                c_block: Optional[np.ndarray]) -> Generator:
    """Per-rank Cannon on an ``s x s`` grid.

    ``a_block``/``b_block`` are this rank's (padded) blocks; ``c_block``
    accumulates the result.  Pass None blocks for a synthetic run.
    """
    if ctx.rank >= s * s:
        return None  # idle rank outside the grid
    i, j = divmod(ctx.rank, s)
    real = a_block is not None
    bm = -(-m // s)  # padded block sizes
    bk = -(-k // s)
    bn = -(-n // s)
    a_bytes = bm * bk * 8.0
    b_bytes = bk * bn * 8.0

    def grid_rank(gi: int, gj: int) -> int:
        return (gi % s) * s + (gj % s)

    a_cur = a_block
    b_cur = b_block

    def shift(a_steps: int, b_steps: int, tag: int):
        """Shift A left by a_steps and B up by b_steps (generators)."""
        nonlocal a_cur, b_cur
        if a_steps % s:
            dst = grid_rank(i, j - a_steps)
            src = grid_rank(i, j + a_steps)
            if real:
                a_new = np.empty_like(a_cur)
                yield from ctx.mpi.sendrecv(dst, a_cur, src, a_new,
                                            send_tag=tag, recv_tag=tag)
                a_cur = a_new
            else:
                yield from ctx.mpi.sendrecv(dst, None, src, None,
                                            send_tag=tag, recv_tag=tag,
                                            nbytes=a_bytes)
        if b_steps % s:
            dst = grid_rank(i - b_steps, j)
            src = grid_rank(i + b_steps, j)
            if real:
                b_new = np.empty_like(b_cur)
                yield from ctx.mpi.sendrecv(dst, b_cur, src, b_new,
                                            send_tag=tag + 1, recv_tag=tag + 1)
                b_cur = b_new
            else:
                yield from ctx.mpi.sendrecv(dst, None, src, None,
                                            send_tag=tag + 1, recv_tag=tag + 1,
                                            nbytes=b_bytes)

    # Initial skew: A_ij left by i, B_ij up by j.
    yield from shift(i, j, tag=10)

    for step in range(s):
        if real:
            yield from ctx.dgemm(a_cur, b_cur, c_block)
        else:
            yield from ctx.dgemm_flops(bm, bn, bk)
        if step < s - 1:
            yield from shift(1, 1, tag=100 + 2 * step)

    # Un-skew so blocks return home (keeps A/B logically unchanged).
    yield from shift(-i, -j, tag=20)
    return None


def cannon_multiply(spec: MachineSpec, nranks: int, m: int, n: int, k: int,
                    s: Optional[int] = None, payload: str = "real",
                    verify: bool = True, seed: int = 0,
                    interference=None, faults=None) -> CannonResult:
    """Run ``C = A @ B`` with Cannon's algorithm on a simulated machine.

    ``s`` is the grid side; defaults to ``floor(sqrt(nranks))`` (ranks beyond
    ``s*s`` idle).  Only the untransposed case is supported.
    """
    import math

    from ..comm.base import run_parallel

    if payload not in ("real", "synthetic"):
        raise ValueError(f"payload must be 'real' or 'synthetic', not {payload!r}")
    if s is None:
        s = int(math.isqrt(nranks))
    if s * s > nranks:
        raise ValueError(f"grid {s}x{s} needs more than {nranks} ranks")
    real = payload == "real"

    bm = -(-m // s)
    bk = -(-k // s)
    bn = -(-n // s)

    if real:
        rng = np.random.default_rng(seed)
        a_ref = rng.standard_normal((m, k))
        b_ref = rng.standard_normal((k, n))
        # Padded global matrices so every block has the nominal shape.
        a_pad = np.zeros((bm * s, bk * s))
        a_pad[:m, :k] = a_ref
        b_pad = np.zeros((bk * s, bn * s))
        b_pad[:k, :n] = b_ref

    c_blocks: dict[int, np.ndarray] = {}
    spans: dict[int, tuple[float, float]] = {}

    def rank_fn(ctx):
        if real and ctx.rank < s * s:
            i, j = divmod(ctx.rank, s)
            a_blk = a_pad[i * bm:(i + 1) * bm, j * bk:(j + 1) * bk].copy()
            b_blk = b_pad[i * bk:(i + 1) * bk, j * bn:(j + 1) * bn].copy()
            c_blk = np.zeros((bm, bn))
            c_blocks[ctx.rank] = c_blk
        else:
            a_blk = b_blk = c_blk = None
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        yield from cannon_rank(ctx, s, m, n, k, a_blk, b_blk, c_blk)
        spans[ctx.rank] = (t0, ctx.now)

    run = run_parallel(spec, nranks, rank_fn, interference=interference,
                       faults=faults)
    elapsed = (max(sp[1] for sp in spans.values())
               - min(sp[0] for sp in spans.values()))
    gflops = 2.0 * m * n * k / elapsed / 1e9 if elapsed > 0 else float("inf")
    result = CannonResult(elapsed=elapsed, gflops=gflops, m=m, n=n, k=k,
                          nranks=nranks, grid=(s, s), run=run)
    if real:
        c_pad = np.zeros((bm * s, bn * s))
        for rank, blk in c_blocks.items():
            i, j = divmod(rank, s)
            c_pad[i * bm:(i + 1) * bm, j * bn:(j + 1) * bn] = blk
        result.c = c_pad[:m, :n]
        if verify:
            expected = a_ref @ b_ref
            result.max_error = float(np.max(np.abs(result.c - expected)))
            tol = 1e-8 * max(1, k)
            if result.max_error > tol:
                raise AssertionError(
                    f"Cannon result wrong: max|err|={result.max_error:.3e}")
    return result
