"""Fox's algorithm (BMR: broadcast-multiply-roll) — an additional baseline.

The other classical message-passing contender the paper cites (§1, refs
[3, 4]).  On a square ``s x s`` grid, step ``l``:

1. the rank holding diagonal block ``A_{i,(i+l) mod s}`` broadcasts it along
   its process row;
2. every rank multiplies the broadcast block with its current B block into
   ``C_ij``;
3. B blocks roll upward one position (ring sendrecv).

Compared with Cannon: same O(s) steps and data volume, but the A movement
is a one-to-many broadcast per row instead of a shift, so each step costs a
``log s`` tree of sends — which is exactly why SUMMA/pdgemm (its panel
generalisation) behaves the way it does.  Untransposed square-grid case, as
in the classical formulation; non-divisible sizes handled by zero padding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..comm.base import RankContext
from ..machines.spec import MachineSpec

__all__ = ["fox_rank", "fox_multiply", "FoxResult"]


@dataclass
class FoxResult:
    elapsed: float
    gflops: float
    m: int
    n: int
    k: int
    nranks: int
    grid: tuple[int, int]
    run: object
    c: Optional[np.ndarray] = None
    max_error: Optional[float] = None


def fox_rank(ctx: RankContext, s: int, m: int, n: int, k: int,
             a_block: Optional[np.ndarray], b_block: Optional[np.ndarray],
             c_block: Optional[np.ndarray]) -> Generator:
    """Per-rank Fox/BMR on an ``s x s`` grid (None blocks = synthetic)."""
    if ctx.rank >= s * s:
        return None
    i, j = divmod(ctx.rank, s)
    real = a_block is not None
    bm = -(-m // s)
    bk = -(-k // s)
    bn = -(-n // s)
    row_group = [i * s + jj for jj in range(s)]

    b_cur = b_block
    a_recv = np.empty((bm, bk)) if real else None

    for step in range(s):
        # 1. Broadcast A_{i, (i+step) mod s} along the process row.
        root_col = (i + step) % s
        root = i * s + root_col
        if real:
            a_pan = a_block if ctx.rank == root else a_recv
            if ctx.rank == root:
                yield from ctx.mpi.bcast(a_block, root=root, group=row_group,
                                         tag=7_000_000 + step)
            else:
                yield from ctx.mpi.bcast(a_recv, root=root, group=row_group,
                                         tag=7_000_000 + step)
        else:
            a_pan = None
            yield from ctx.mpi.bcast(None, root=root, group=row_group,
                                     tag=7_000_000 + step,
                                     nbytes=bm * bk * 8.0)
        # 2. Multiply.
        if real:
            yield from ctx.dgemm(a_pan, b_cur, c_block)
        else:
            yield from ctx.dgemm_flops(bm, bn, bk)
        # 3. Roll B upward.
        if step < s - 1:
            dst = ((i - 1) % s) * s + j
            src = ((i + 1) % s) * s + j
            if real:
                b_new = np.empty_like(b_cur)
                yield from ctx.mpi.sendrecv(dst, b_cur, src, b_new,
                                            send_tag=7_500_000 + step,
                                            recv_tag=7_500_000 + step)
                b_cur = b_new
            else:
                yield from ctx.mpi.sendrecv(dst, None, src, None,
                                            send_tag=7_500_000 + step,
                                            recv_tag=7_500_000 + step,
                                            nbytes=bk * bn * 8.0)
    return None


def fox_multiply(spec: MachineSpec, nranks: int, m: int, n: int, k: int,
                 s: Optional[int] = None, payload: str = "real",
                 verify: bool = True, seed: int = 0,
                 interference=None, faults=None) -> FoxResult:
    """Run ``C = A @ B`` with Fox's algorithm on a simulated machine."""
    import math

    from ..comm.base import run_parallel

    if payload not in ("real", "synthetic"):
        raise ValueError(f"payload must be 'real' or 'synthetic', not {payload!r}")
    if s is None:
        s = int(math.isqrt(nranks))
    if s * s > nranks:
        raise ValueError(f"grid {s}x{s} needs more than {nranks} ranks")
    real = payload == "real"

    bm = -(-m // s)
    bk = -(-k // s)
    bn = -(-n // s)

    if real:
        rng = np.random.default_rng(seed)
        a_ref = rng.standard_normal((m, k))
        b_ref = rng.standard_normal((k, n))
        a_pad = np.zeros((bm * s, bk * s))
        a_pad[:m, :k] = a_ref
        b_pad = np.zeros((bk * s, bn * s))
        b_pad[:k, :n] = b_ref

    c_blocks: dict[int, np.ndarray] = {}
    spans: dict[int, tuple[float, float]] = {}

    def rank_fn(ctx):
        a_blk = b_blk = c_blk = None
        if real and ctx.rank < s * s:
            i, j = divmod(ctx.rank, s)
            a_blk = a_pad[i * bm:(i + 1) * bm, j * bk:(j + 1) * bk].copy()
            b_blk = b_pad[i * bk:(i + 1) * bk, j * bn:(j + 1) * bn].copy()
            c_blk = np.zeros((bm, bn))
            c_blocks[ctx.rank] = c_blk
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        yield from fox_rank(ctx, s, m, n, k, a_blk, b_blk, c_blk)
        spans[ctx.rank] = (t0, ctx.now)

    run = run_parallel(spec, nranks, rank_fn, interference=interference,
                       faults=faults)
    elapsed = (max(sp[1] for sp in spans.values())
               - min(sp[0] for sp in spans.values()))
    gflops = 2.0 * m * n * k / elapsed / 1e9 if elapsed > 0 else float("inf")
    result = FoxResult(elapsed=elapsed, gflops=gflops, m=m, n=n, k=k,
                       nranks=nranks, grid=(s, s), run=run)
    if real:
        c_pad = np.zeros((bm * s, bn * s))
        for rank, blk in c_blocks.items():
            i, j = divmod(rank, s)
            c_pad[i * bm:(i + 1) * bm, j * bn:(j + 1) * bn] = blk
        result.c = c_pad[:m, :n]
        if verify:
            expected = a_ref @ b_ref
            result.max_error = float(np.max(np.abs(result.c - expected)))
            tol = 1e-8 * max(1, k)
            if result.max_error > tol:
                raise AssertionError(
                    f"Fox result wrong: max|err|={result.max_error:.3e}")
    return result
