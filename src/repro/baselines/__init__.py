"""Baseline parallel matrix multiplication algorithms.

- :mod:`repro.baselines.cannon` — Cannon's algorithm (the algorithmic
  reference point, §2);
- :mod:`repro.baselines.fox` — Fox's broadcast-multiply-roll algorithm;
- :mod:`repro.baselines.summa` — SUMMA on the plain block distribution;
- :mod:`repro.baselines.pdgemm` — the ScaLAPACK/PBLAS pdgemm stand-in:
  block-cyclic SUMMA with pdtran-style transpose redistribution (the
  paper's comparison target throughout §4).
"""

from .cannon import CannonResult, cannon_multiply, cannon_rank
from .fox import FoxResult, fox_multiply, fox_rank
from .pdgemm import DEFAULT_NB, PdgemmResult, pdgemm_multiply, pdgemm_rank, pdtran_rank
from .summa import SummaResult, summa_multiply, summa_rank

__all__ = [
    "CannonResult", "cannon_multiply", "cannon_rank",
    "FoxResult", "fox_multiply", "fox_rank",
    "DEFAULT_NB", "PdgemmResult", "pdgemm_multiply", "pdgemm_rank", "pdtran_rank",
    "SummaResult", "summa_multiply", "summa_rank",
]
