"""SUMMA (van de Geijn & Watts 1997) — the algorithm inside pdgemm.

``C (m x n)`` is block-distributed on a ``p x q`` grid.  The inner dimension
is processed in panels of width ``kb``:

- the grid *column* owning panel ``t`` of A broadcasts its local
  ``(local_m x kb)`` piece along each process row;
- the grid *row* owning panel ``t`` of B broadcasts its ``(kb x local_n)``
  piece along each process column;
- every rank runs the rank-``kb`` update ``C_loc += A_pan @ B_pan``.

All data movement is two-sided MPI broadcast — the sender-receiver
synchronisation SRUMMA's one-sided gets avoid; with panels above the eager
threshold each broadcast hop is a rendezvous (no overlap).

This module implements the plain block-distributed variant used for the
SUMMA-vs-SRUMMA comparisons; the block-cyclic production variant is
:mod:`repro.baselines.pdgemm`.  Untransposed case only (the paper's SUMMA
comparisons are untransposed; transpose handling lives in pdgemm via
redistribution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..comm.base import RankContext
from ..distarray.distribution import Block2D, choose_grid
from ..machines.spec import MachineSpec

__all__ = ["summa_rank", "summa_multiply", "SummaResult", "k_panels"]

DEFAULT_KB = 64


@dataclass
class SummaResult:
    elapsed: float
    gflops: float
    m: int
    n: int
    k: int
    nranks: int
    grid: tuple[int, int]
    kb: int
    run: object
    c: Optional[np.ndarray] = None
    max_error: Optional[float] = None


def k_panels(dist_a: Block2D, dist_b: Block2D, kb: int) -> list[tuple[int, int]]:
    """Panel intervals: ownership-aligned cuts subdivided to width <= kb."""
    cuts = sorted(set(dist_a.col_breakpoints()) | set(dist_b.row_breakpoints()))
    panels = []
    for lo, hi in zip(cuts[:-1], cuts[1:]):
        start = lo
        while start < hi:
            stop = min(start + kb, hi)
            panels.append((start, stop))
            start = stop
    return panels


def summa_rank(ctx: RankContext, dist_a: Block2D, dist_b: Block2D,
               dist_c: Block2D, kb: int,
               a_local: Optional[np.ndarray], b_local: Optional[np.ndarray],
               c_local: Optional[np.ndarray]) -> Generator:
    """Per-rank SUMMA.  Pass None locals for a synthetic run."""
    p, q = dist_c.p, dist_c.q
    if ctx.rank >= p * q:
        return None
    pi, pj = dist_c.coords_of(ctx.rank)
    real = c_local is not None
    r0, r1 = dist_c.row_range(pi)
    c0, c1 = dist_c.col_range(pj)
    my_m = r1 - r0
    my_n = c1 - c0
    row_group = [dist_c.rank_of(pi, j) for j in range(q)]
    col_group = [dist_c.rank_of(i, pj) for i in range(p)]

    for t, (k_lo, k_hi) in enumerate(k_panels(dist_a, dist_b, kb)):
        kk = k_hi - k_lo
        # --- A panel: owner column broadcasts along each row -----------------
        a_owner_col = dist_a.owner_of_col(k_lo)
        a_root = dist_a.rank_of(pi, a_owner_col)
        if real:
            a_pan = np.empty((my_m, kk))
            if ctx.rank == a_root and my_m:
                A0, _ = dist_a.col_range(a_owner_col)
                a_pan[...] = a_local[:, k_lo - A0:k_hi - A0]
            if my_m:
                yield from ctx.mpi.bcast(a_pan, root=a_root, group=row_group,
                                         tag=3_000_000 + 2 * t)
        else:
            if my_m:
                yield from ctx.mpi.bcast(None, root=a_root, group=row_group,
                                         tag=3_000_000 + 2 * t,
                                         nbytes=my_m * kk * 8.0)
        # --- B panel: owner row broadcasts along each column -----------------
        b_owner_row = dist_b.owner_of_row(k_lo)
        b_root = dist_b.rank_of(b_owner_row, pj)
        if real:
            b_pan = np.empty((kk, my_n))
            if ctx.rank == b_root and my_n:
                B0, _ = dist_b.row_range(b_owner_row)
                b_pan[...] = b_local[k_lo - B0:k_hi - B0, :]
            if my_n:
                yield from ctx.mpi.bcast(b_pan, root=b_root, group=col_group,
                                         tag=3_000_001 + 2 * t)
        else:
            if my_n:
                yield from ctx.mpi.bcast(None, root=b_root, group=col_group,
                                         tag=3_000_001 + 2 * t,
                                         nbytes=kk * my_n * 8.0)
        # --- local rank-kb update ------------------------------------------------
        if my_m and my_n:
            if real:
                yield from ctx.dgemm(a_pan, b_pan, c_local)
            else:
                yield from ctx.dgemm_flops(my_m, my_n, kk)
    return None


def summa_multiply(spec: MachineSpec, nranks: int, m: int, n: int, k: int,
                   p: Optional[int] = None, q: Optional[int] = None,
                   kb: int = DEFAULT_KB, payload: str = "real",
                   verify: bool = True, seed: int = 0,
                   interference=None, faults=None,
                   tuning: Optional[dict] = None) -> SummaResult:
    """Run ``C = A @ B`` with SUMMA on a simulated machine."""
    from ..comm.base import run_parallel

    if payload not in ("real", "synthetic"):
        raise ValueError(f"payload must be 'real' or 'synthetic', not {payload!r}")
    if kb < 1:
        raise ValueError(f"panel width kb must be >= 1, got {kb}")
    if p is None or q is None:
        p, q = choose_grid(nranks)
    if p * q > nranks:
        raise ValueError(f"grid {p}x{q} needs more than {nranks} ranks")
    real = payload == "real"

    dist_a = Block2D(m, k, p, q)
    dist_b = Block2D(k, n, p, q)
    dist_c = Block2D(m, n, p, q)

    if real:
        rng = np.random.default_rng(seed)
        a_ref = rng.standard_normal((m, k))
        b_ref = rng.standard_normal((k, n))

    c_blocks: dict[int, np.ndarray] = {}
    spans: dict[int, tuple[float, float]] = {}

    def rank_fn(ctx):
        a_loc = b_loc = c_loc = None
        if real and ctx.rank < p * q:
            pi, pj = dist_c.coords_of(ctx.rank)
            a_loc = a_ref[dist_a.block_slices(pi, pj)].copy()
            b_loc = b_ref[dist_b.block_slices(pi, pj)].copy()
            c_loc = np.zeros(dist_c.block_shape(pi, pj))
            c_blocks[ctx.rank] = c_loc
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        yield from summa_rank(ctx, dist_a, dist_b, dist_c, kb,
                              a_loc, b_loc, c_loc)
        spans[ctx.rank] = (t0, ctx.now)

    run = run_parallel(spec, nranks, rank_fn, interference=interference,
                       faults=faults, tuning=tuning)
    elapsed = (max(sp[1] for sp in spans.values())
               - min(sp[0] for sp in spans.values()))
    gflops = 2.0 * m * n * k / elapsed / 1e9 if elapsed > 0 else float("inf")
    result = SummaResult(elapsed=elapsed, gflops=gflops, m=m, n=n, k=k,
                         nranks=nranks, grid=(p, q), kb=kb, run=run)
    if real:
        c_full = np.zeros((m, n))
        for rank, blk in c_blocks.items():
            pi, pj = dist_c.coords_of(rank)
            c_full[dist_c.block_slices(pi, pj)] = blk
        result.c = c_full
        if verify:
            expected = a_ref @ b_ref
            result.max_error = float(np.max(np.abs(c_full - expected)))
            tol = 1e-8 * max(1, k)
            if result.max_error > tol:
                raise AssertionError(
                    f"SUMMA result wrong: max|err|={result.max_error:.3e}")
    return result
