"""pdgemm stand-in: block-cyclic SUMMA, the PBLAS/ScaLAPACK algorithm.

This is the comparison target of the paper's entire evaluation (§4).
Faithful to the production routine in the ways that matter for performance
shape:

- **block-cyclic layout** (:class:`~repro.distarray.distribution.BlockCyclic2D`)
  with square ``nb x nb`` tiles, local tiles packed into one dense array;
- **SUMMA communication structure**: for each k-tile, the owning grid column
  broadcasts its piece of the A panel along process rows and the owning grid
  row broadcasts its piece of the B panel along process columns (binomial
  trees over two-sided MPI — eager/rendezvous protocol costs included);
- **transpose cases via redistribution**: ``C = A^T B`` first materialises
  ``A^T`` in the target layout with an explicit tile-by-tile transpose
  exchange (the role of ``pdtran``), then runs the untransposed kernel.
  This is why pdgemm's transpose cases trail its NN case in Table 1.

Synthetic payload mode mirrors the exact message/compute schedule byte-for-
byte without real numpy data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

import numpy as np

from ..comm.base import RankContext
from ..distarray.distribution import BlockCyclic2D, choose_grid
from ..machines.spec import MachineSpec

__all__ = ["pdgemm_rank", "pdgemm_multiply", "PdgemmResult", "DEFAULT_NB"]

DEFAULT_NB = 64


@dataclass
class PdgemmResult:
    elapsed: float
    gflops: float
    m: int
    n: int
    k: int
    nranks: int
    grid: tuple[int, int]
    nb: int
    run: object
    c: Optional[np.ndarray] = None
    max_error: Optional[float] = None


# --------------------------------------------------------------------------
# local packed-layout helpers
# --------------------------------------------------------------------------

def scatter_local(dist: BlockCyclic2D, rank: int,
                  global_matrix: np.ndarray) -> np.ndarray:
    """This rank's packed local array of a global matrix."""
    pi, pj = dist.coords_of(rank)
    rows = dist.global_rows_of(pi)
    cols = dist.global_cols_of(pj)
    return global_matrix[np.ix_(rows, cols)].copy() if rows and cols else \
        np.zeros((len(rows), len(cols)))


def gather_global(dist: BlockCyclic2D,
                  locals_by_rank: dict[int, np.ndarray]) -> np.ndarray:
    """Reassemble the global matrix from packed local arrays."""
    out = np.zeros((dist.m, dist.n))
    for rank, loc in locals_by_rank.items():
        pi, pj = dist.coords_of(rank)
        rows = dist.global_rows_of(pi)
        cols = dist.global_cols_of(pj)
        if rows and cols:
            out[np.ix_(rows, cols)] = loc
    return out


def _local_col_offset(dist: BlockCyclic2D, pj: int, tile_col: int) -> int:
    """Packed-column offset of tile column ``tile_col`` on grid column pj."""
    off = 0
    for tj in dist.local_col_tiles(pj):
        if tj == tile_col:
            return off
        off += dist.tile_shape(0, tj)[1]
    raise ValueError(f"tile column {tile_col} not owned by grid column {pj}")


def _local_row_offset(dist: BlockCyclic2D, pi: int, tile_row: int) -> int:
    off = 0
    for ti in dist.local_row_tiles(pi):
        if ti == tile_row:
            return off
        off += dist.tile_shape(ti, 0)[0]
    raise ValueError(f"tile row {tile_row} not owned by grid row {pi}")


# --------------------------------------------------------------------------
# pdtran: transpose redistribution (the cost behind pdgemm's T cases)
# --------------------------------------------------------------------------

PDTRAN_WINDOW = 8
"""Outstanding sends/receives per rank during the transpose redistribution.

The real routine stages tiles through a bounded set of communication
buffers rather than posting every exchange at once; the window also keeps
the flow-level network simulation tractable for large tile counts."""


def pdtran_rank(ctx: RankContext, src: BlockCyclic2D, dst: BlockCyclic2D,
                src_local: Optional[np.ndarray],
                tag_base: int = 5_000_000) -> Generator:
    """Redistribute ``src`` (stored k x m) as its transpose in ``dst`` (m x k).

    Every source tile ``(ti, tj)`` is sent (transposed) to the owner of
    destination tile ``(tj, ti)``, at most :data:`PDTRAN_WINDOW` exchanges
    in flight per rank.  Returns this rank's packed local array of the
    transposed matrix (or None in synthetic mode).
    """
    if src.m != dst.n or src.n != dst.m:
        raise ValueError(
            f"pdtran shape mismatch: src {src.m}x{src.n} vs dst {dst.m}x{dst.n}")
    real = src_local is not None
    me = ctx.rank
    if me >= src.nranks:
        return None
    pi, pj = src.coords_of(me)
    dst_local = (np.zeros(dst.local_shape(me)) if real else None)

    recv_tiles = [(ti, tj) for ti in dst.local_row_tiles(pi)
                  for tj in dst.local_col_tiles(pj)]
    send_tiles = [(ti, tj) for ti in src.local_row_tiles(pi)
                  for tj in src.local_col_tiles(pj)]

    def post_recv(ti: int, tj: int):
        # Destination tile (ti, tj) comes from source tile (tj, ti).
        s_owner = src.rank_of(*src.tile_owner(tj, ti))
        tag = tag_base + ti * dst.tiles_n + tj
        if real:
            shape = dst.tile_shape(ti, tj)
            buf = np.empty(shape)
            r0 = _local_row_offset(dst, pi, ti)
            c0 = _local_col_offset(dst, pj, tj)
            return ctx.mpi.irecv(buf, src=s_owner, tag=tag), buf, (r0, c0, shape)
        return ctx.mpi.irecv(None, src=s_owner, tag=tag), None, None

    def post_send(ti: int, tj: int):
        d_owner = dst.rank_of(*dst.tile_owner(tj, ti))
        tag = tag_base + tj * dst.tiles_n + ti  # dest tile is (tj, ti)
        h, w = src.tile_shape(ti, tj)
        if real:
            r0 = _local_row_offset(src, pi, ti)
            c0 = _local_col_offset(src, pj, tj)
            tile = src_local[r0:r0 + h, c0:c0 + w]
            return ctx.mpi.isend(d_owner, tile.T.copy(), tag=tag)
        return ctx.mpi.isend(d_owner, None, tag=tag, nbytes=h * w * 8.0)

    # Post every send, then enter waitall-like progress (rendezvous data
    # may flow as soon as the matching receive appears).  Receives are
    # posted through a sliding window, so each rank grants at most
    # PDTRAN_WINDOW clear-to-sends at a time — that bounds the number of
    # concurrent wire transfers without any deadlock risk (every send's
    # matching receive is eventually posted, in a fixed global order).
    sends = [post_send(ti, tj) for ti, tj in send_tiles]
    ctx.mpi.progress(sends)

    pending_recvs: list = []
    ri = 0
    while ri < len(recv_tiles) or pending_recvs:
        while ri < len(recv_tiles) and len(pending_recvs) < PDTRAN_WINDOW:
            pending_recvs.append(post_recv(*recv_tiles[ri]))
            ri += 1
        req, buf, place = pending_recvs.pop(0)
        yield from ctx.mpi.wait(req)
        if real:
            r0, c0, (h, w) = place
            dst_local[r0:r0 + h, c0:c0 + w] = buf
    yield from ctx.mpi.wait_all(sends)
    return dst_local


# --------------------------------------------------------------------------
# the SUMMA kernel on block-cyclic layout
# --------------------------------------------------------------------------

def _summa_bc_rank(ctx: RankContext, da: BlockCyclic2D, db: BlockCyclic2D,
                   dc: BlockCyclic2D,
                   a_local: Optional[np.ndarray], b_local: Optional[np.ndarray],
                   c_local: Optional[np.ndarray]) -> Generator:
    """Block-cyclic SUMMA main loop (untransposed operands)."""
    p, q = dc.p, dc.q
    me = ctx.rank
    if me >= p * q:
        return None
    pi, pj = dc.coords_of(me)
    real = c_local is not None
    my_m = dc.local_rows(pi)
    my_n = dc.local_cols(pj)
    row_group = [dc.rank_of(pi, j) for j in range(q)]
    col_group = [dc.rank_of(i, pj) for i in range(p)]

    tiles_k = da.tiles_n  # == db.tiles_m
    for t in range(tiles_k):
        kk = da.tile_shape(0, t)[1]
        a_root_col = t % q
        a_root = dc.rank_of(pi, a_root_col)
        b_root_row = t % p
        b_root = dc.rank_of(b_root_row, pj)

        if my_m:
            if real:
                a_pan = np.empty((my_m, kk))
                if me == a_root:
                    c0 = _local_col_offset(da, a_root_col, t)
                    a_pan[...] = a_local[:, c0:c0 + kk]
                yield from ctx.mpi.bcast(a_pan, root=a_root, group=row_group,
                                         tag=6_000_000 + 2 * t)
            else:
                yield from ctx.mpi.bcast(None, root=a_root, group=row_group,
                                         tag=6_000_000 + 2 * t,
                                         nbytes=my_m * kk * 8.0)
        if my_n:
            if real:
                b_pan = np.empty((kk, my_n))
                if me == b_root:
                    r0 = _local_row_offset(db, b_root_row, t)
                    b_pan[...] = b_local[r0:r0 + kk, :]
                yield from ctx.mpi.bcast(b_pan, root=b_root, group=col_group,
                                         tag=6_000_001 + 2 * t)
            else:
                yield from ctx.mpi.bcast(None, root=b_root, group=col_group,
                                         tag=6_000_001 + 2 * t,
                                         nbytes=kk * my_n * 8.0)
        if my_m and my_n:
            if real:
                yield from ctx.dgemm(a_pan, b_pan, c_local)
            else:
                yield from ctx.dgemm_flops(my_m, my_n, kk)
    return None


def pdgemm_rank(ctx: RankContext, m: int, n: int, k: int, nb: int,
                p: int, q: int, transa: bool, transb: bool,
                a_local: Optional[np.ndarray], b_local: Optional[np.ndarray],
                c_local: Optional[np.ndarray]) -> Generator:
    """Per-rank pdgemm: optional pdtran redistributions, then SUMMA.

    ``a_local``/``b_local`` are packed block-cyclic locals of the *stored*
    matrices (``k x m`` when transa, etc.); None for synthetic runs.
    """
    da = BlockCyclic2D(m, k, nb, nb, p, q)
    db = BlockCyclic2D(k, n, nb, nb, p, q)
    dc = BlockCyclic2D(m, n, nb, nb, p, q)
    real = c_local is not None

    if transa:
        stored = BlockCyclic2D(k, m, nb, nb, p, q)
        a_local = yield from pdtran_rank(ctx, stored, da, a_local,
                                         tag_base=5_000_000)
    if transb:
        stored = BlockCyclic2D(n, k, nb, nb, p, q)
        b_local = yield from pdtran_rank(ctx, stored, db, b_local,
                                         tag_base=5_500_000)
    if (transa or transb) and ctx.rank < p * q:
        # pdtran is collective; resynchronise before the SUMMA phase as the
        # library does between redistribution and compute.
        yield from ctx.mpi.barrier(group=list(range(p * q)))

    yield from _summa_bc_rank(ctx, da, db, dc, a_local, b_local, c_local)
    return c_local if real else None


def pdgemm_multiply(spec: MachineSpec, nranks: int, m: int, n: int, k: int,
                    transa: bool = False, transb: bool = False,
                    p: Optional[int] = None, q: Optional[int] = None,
                    nb: int = DEFAULT_NB, payload: str = "real",
                    verify: bool = True, seed: int = 0,
                    interference=None, faults=None) -> PdgemmResult:
    """Run ``C = op(A) @ op(B)`` with the pdgemm stand-in."""
    from ..comm.base import run_parallel

    if payload not in ("real", "synthetic"):
        raise ValueError(f"payload must be 'real' or 'synthetic', not {payload!r}")
    if nb < 1:
        raise ValueError(f"tile size nb must be >= 1, got {nb}")
    if p is None or q is None:
        p, q = choose_grid(nranks)
    if p * q > nranks:
        raise ValueError(f"grid {p}x{q} needs more than {nranks} ranks")
    real = payload == "real"

    dc = BlockCyclic2D(m, n, nb, nb, p, q)
    if real:
        rng = np.random.default_rng(seed)
        a_ref = rng.standard_normal((k, m) if transa else (m, k))
        b_ref = rng.standard_normal((n, k) if transb else (k, n))
        da_stored = BlockCyclic2D(*a_ref.shape, nb, nb, p, q)
        db_stored = BlockCyclic2D(*b_ref.shape, nb, nb, p, q)

    c_locals: dict[int, np.ndarray] = {}
    spans: dict[int, tuple[float, float]] = {}

    def rank_fn(ctx):
        a_loc = b_loc = c_loc = None
        if real and ctx.rank < p * q:
            a_loc = scatter_local(da_stored, ctx.rank, a_ref)
            b_loc = scatter_local(db_stored, ctx.rank, b_ref)
            c_loc = np.zeros(dc.local_shape(ctx.rank))
            c_locals[ctx.rank] = c_loc
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        yield from pdgemm_rank(ctx, m, n, k, nb, p, q, transa, transb,
                               a_loc, b_loc, c_loc)
        spans[ctx.rank] = (t0, ctx.now)

    run = run_parallel(spec, nranks, rank_fn, interference=interference,
                       faults=faults)
    elapsed = (max(sp[1] for sp in spans.values())
               - min(sp[0] for sp in spans.values()))
    gflops = 2.0 * m * n * k / elapsed / 1e9 if elapsed > 0 else float("inf")
    result = PdgemmResult(elapsed=elapsed, gflops=gflops, m=m, n=n, k=k,
                          nranks=nranks, grid=(p, q), nb=nb, run=run)
    if real:
        result.c = gather_global(dc, c_locals)
        if verify:
            expected = (a_ref.T if transa else a_ref) @ (b_ref.T if transb else b_ref)
            result.max_error = float(np.max(np.abs(result.c - expected)))
            tol = 1e-8 * max(1, k)
            if result.max_error > tol:
                raise AssertionError(
                    f"pdgemm result wrong: max|err|={result.max_error:.3e}")
    return result
