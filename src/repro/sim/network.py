"""Flow-level network model with max-min fair bandwidth sharing.

Transfers (flows) traverse a *path* of directed :class:`Link` resources —
typically ``[source NIC egress, fabric, destination NIC ingress]``.  At any
instant the rate of every active flow is the max-min fair allocation computed
by progressive filling; when a flow starts or finishes, all rates are
recomputed and in-flight completion events are rescheduled.

This is the mechanism behind the paper's diagonal-shift experiment
(§3.1, Fig. 4): when all processors of one node fetch from the same remote
node, their flows share that node's NIC and each progresses at ``1/k`` of the
link rate; the diagonal shift spreads flows across distinct NIC pairs so each
gets the full rate.

The model is deliberately flow-level (no packets): transfer time for an
uncontended flow over a path with bottleneck bandwidth ``B`` and latency
``L`` is exactly ``L + nbytes / B``, matching the ``t_s + n * t_w`` cost model
of §2.1.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .engine import Engine, Event, SimulationError, _ScheduledCall

__all__ = ["Link", "Flow", "FlowNetwork"]

# Flows with fewer remaining bytes than this are considered complete; guards
# against float dust keeping a flow alive forever.  The tolerance must scale
# with the flow size: every reallocation event settles remaining-bytes with
# rate*dt arithmetic, so a megabyte flow legitimately accumulates more
# absolute rounding error than a 100-byte one.
_EPS_BYTES = 1e-6


def _flow_eps(flow: "Flow") -> float:
    return _EPS_BYTES + 1e-9 * flow.size


class Link:
    """A directed link with fixed capacity in bytes/second."""

    __slots__ = ("name", "bandwidth", "flows", "_bytes_carried")

    def __init__(self, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError(f"link {name!r} needs positive bandwidth, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        # Insertion-ordered (dict-as-set): iteration order must be
        # deterministic and independent of object addresses, or simulated
        # event ordering would vary with Python allocation history.
        self.flows: dict["Flow", None] = {}
        self._bytes_carried = 0.0

    @property
    def bytes_carried(self) -> float:
        """Total bytes that have crossed this link (for trace/asserts)."""
        return self._bytes_carried

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth:.3g} B/s, {len(self.flows)} flows>"


class Flow:
    """One in-flight transfer across a path of links."""

    __slots__ = (
        "size", "remaining", "path", "rate", "done", "started_at",
        "_sched", "_last_update", "label",
    )

    def __init__(self, size: float, path: Sequence[Link], done: Event, label: str = ""):
        self.size = float(size)
        self.remaining = float(size)
        self.path = tuple(path)
        self.rate = 0.0
        self.done = done
        self.started_at: float = 0.0
        self._sched: Optional[_ScheduledCall] = None
        self._last_update: float = 0.0
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow {self.label!r} {self.remaining:.0f}/{self.size:.0f}B "
                f"@{self.rate:.3g}B/s>")


class FlowNetwork:
    """Tracks active flows and keeps their rates max-min fair."""

    def __init__(self, engine: Engine):
        self.engine = engine
        # Insertion-ordered registry of active flows (see Link.flows).
        self._flows: dict[Flow, None] = {}
        self.completed_flows = 0

    # -- public API -------------------------------------------------------
    def transfer(self, nbytes: float, path: Sequence[Link], latency: float = 0.0,
                 label: str = "") -> Event:
        """Start a transfer; the returned event fires when the last byte lands.

        ``latency`` is a fixed startup delay (the ``t_s`` term) served before
        the bandwidth phase begins; it does not consume link capacity.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        done = self.engine.event(f"xfer:{label}")
        if nbytes == 0:
            if latency > 0:
                self.engine._schedule(latency, lambda: done.succeed(0.0))
            else:
                done.succeed(0.0)
            return done
        if not path:
            raise ValueError("a nonzero transfer needs a non-empty link path")
        flow = Flow(nbytes, path, done, label=label)
        if latency > 0:
            self.engine._schedule(latency, lambda: self._start_flow(flow))
        else:
            self._start_flow(flow)
        return done

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    # -- internals ----------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        flow.started_at = self.engine.now
        flow._last_update = self.engine.now
        self._flows[flow] = None
        for link in flow.path:
            link.flows[flow] = None
        self._reallocate()

    def _finish_flow(self, flow: Flow) -> None:
        if flow not in self._flows:
            return
        self._settle()
        # Tolerate small residue from float arithmetic.
        if flow.remaining > _flow_eps(flow):
            raise SimulationError(
                f"flow {flow.label!r} finished with {flow.remaining} bytes left")
        self._remove(flow)
        flow.done.succeed(flow.size)
        self._reallocate()

    def _remove(self, flow: Flow) -> None:
        self._flows.pop(flow, None)
        for link in flow.path:
            link.flows.pop(flow, None)
        if flow._sched is not None:
            flow._sched.cancelled = True
            flow._sched = None
        self.completed_flows += 1

    def _settle(self) -> None:
        """Advance every flow's remaining-bytes to the current instant."""
        now = self.engine.now
        for flow in self._flows:
            dt = now - flow._last_update
            if dt > 0:
                moved = flow.rate * dt
                flow.remaining -= moved
                for link in flow.path:
                    link._bytes_carried += moved
                flow._last_update = now
            if flow.remaining < 0:
                flow.remaining = 0.0

    def _reallocate(self) -> None:
        """Progressive-filling max-min fair rates, then reschedule finishes."""
        self._settle()

        # Drain any flows that settled to zero before computing new shares.
        drained = [f for f in self._flows if f.remaining <= _flow_eps(f)]
        for f in drained:
            self._remove(f)
            f.done.succeed(f.size)

        unfrozen: dict[Flow, None] = dict(self._flows)
        residual = {link: link.bandwidth
                    for f in unfrozen for link in f.path}
        link_unfrozen: dict[Link, dict[Flow, None]] = {}
        for f in unfrozen:
            for link in f.path:
                link_unfrozen.setdefault(link, {})[f] = None

        rates: dict[Flow, float] = {}
        while unfrozen:
            # Bottleneck link: smallest per-flow fair share among links that
            # still carry unfrozen flows.
            bottleneck = None
            best_share = None
            for link, fset in link_unfrozen.items():
                if not fset:
                    continue
                share = residual[link] / len(fset)
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = link
            if bottleneck is None:
                break  # all remaining flows have no constraining link
            frozen_now = list(link_unfrozen[bottleneck])
            for f in frozen_now:
                rates[f] = best_share
                unfrozen.pop(f, None)
                for link in f.path:
                    link_unfrozen[link].pop(f, None)
                    if link is not bottleneck:
                        residual[link] -= best_share
            residual[bottleneck] = 0.0
            link_unfrozen[bottleneck].clear()

        for flow in self._flows:
            flow.rate = rates.get(flow, 0.0)
            if flow._sched is not None:
                flow._sched.cancelled = True
                flow._sched = None
            if flow.rate <= 0:
                raise SimulationError(
                    f"flow {flow.label!r} allocated zero rate — disconnected path?")
            eta = flow.remaining / flow.rate
            flow._sched = self.engine._schedule(eta, lambda f=flow: self._finish_flow(f))
