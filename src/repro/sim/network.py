"""Flow-level network model with max-min fair bandwidth sharing.

Transfers (flows) traverse a *path* of directed :class:`Link` resources —
typically ``[source NIC egress, fabric, destination NIC ingress]``.  At any
instant the rate of every active flow is the max-min fair allocation computed
by progressive filling; when a flow starts or finishes, affected rates are
recomputed and the corresponding in-flight completion events rescheduled.

This is the mechanism behind the paper's diagonal-shift experiment
(§3.1, Fig. 4): when all processors of one node fetch from the same remote
node, their flows share that node's NIC and each progresses at ``1/k`` of the
link rate; the diagonal shift spreads flows across distinct NIC pairs so each
gets the full rate.

The model is deliberately flow-level (no packets): transfer time for an
uncontended flow over a path with bottleneck bandwidth ``B`` and latency
``L`` is exactly ``L + nbytes / B``, matching the ``t_s + n * t_w`` cost model
of §2.1.

Allocator scaling
-----------------
Recomputing the global allocation on every flow arrival/departure is
quadratic-ish in active flows and floods the engine heap with cancelled
completion entries.  The default ``incremental`` allocator instead:

- restricts each recomputation to the *connected component* of links
  actually touched by the arriving/departing flow (two flows interact only
  if a chain of shared links connects them, so rates outside the component
  provably cannot change);
- skips reallocation entirely when it cannot change any rate (a flow
  joining or leaving an otherwise-empty set of links);
- coalesces all membership changes of one simulated instant into a single
  reallocation pass (a zero-delay flush event);
- settles and reschedules a flow only when its allocated rate actually
  changed, so an undisturbed flow's completion entry stays valid.

``allocator="reference"`` keeps the original full-recompute behaviour
(every pass covers every active flow) under the same settle/reschedule
discipline; the property test in
``tests/sim/test_network_equivalence.py`` cross-checks the two on
randomized workloads bit-for-bit.  The invariants that make the scoped
recomputation exact are written up in ``docs/performance.md``.

Large-rank engine modes
-----------------------
Two further (default-on, individually disableable) mechanisms make the
allocator scale to thousands of ranks; both are *exact*, not approximate
(see "Scaling to thousands of ranks" in ``docs/performance.md``):

- ``aggregation``: progressive filling groups identical-path flows — which
  are symmetric under max-min fairness and provably freeze together at the
  same share — so a round's bookkeeping scales with distinct path classes,
  and the bottleneck link is found through a lazily-invalidated min-heap
  instead of a linear scan over every link in the component.
- ``fast_forward``: flows of one component whose newly allocated rates
  give bitwise-identical completion instants share a single scheduled
  *cohort* entry; the engine jumps straight to the closed-form completion
  time and services the whole cohort in member order, instead of paying a
  heap entry (plus its eventual cancellation) per flow.

``allocator="reference"`` always runs with both modes off — it is the
step-by-step oracle the property tests compare against.
"""

from __future__ import annotations

import heapq
import operator
from typing import Optional, Sequence, Union

from .engine import Engine, Event, SimulationError, _ScheduledCall

_heappush = heapq.heappush
_heappop = heapq.heappop
_SEQ = operator.attrgetter("_seq")

__all__ = ["Link", "Flow", "FlowNetwork"]

# Flows with fewer remaining bytes than this are considered complete; guards
# against float dust keeping a flow alive forever.  The tolerance must scale
# with the flow size: every reallocation event settles remaining-bytes with
# rate*dt arithmetic, so a megabyte flow legitimately accumulates more
# absolute rounding error than a 100-byte one.
_EPS_BYTES = 1e-6


def _flow_eps(flow: "Flow") -> float:
    return _EPS_BYTES + 1e-9 * flow.size


class Link:
    """A directed link with fixed capacity in bytes/second."""

    __slots__ = ("name", "bandwidth", "flows", "_bytes_carried", "_mark")

    def __init__(self, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError(f"link {name!r} needs positive bandwidth, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        # Insertion-ordered (dict-as-set): iteration order must be
        # deterministic and independent of object addresses, or simulated
        # event ordering would vary with Python allocation history.
        self.flows: dict["Flow", None] = {}
        self._bytes_carried = 0.0
        self._mark = 0  # visited stamp for component walks (see _scope_flows)

    @property
    def bytes_carried(self) -> float:
        """Total bytes that have crossed this link (for trace/asserts)."""
        return self._bytes_carried

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth:.3g} B/s, {len(self.flows)} flows>"


class Flow:
    """One in-flight transfer across a path of links.

    A flow normally carries exactly one logical transfer.  Under flow
    aggregation (see :meth:`FlowNetwork._merge_fresh`) one Flow object can
    *carry* several identical transfers — same path, same size, born at
    the same instant — in which case ``weight`` is the member count and
    ``fanout`` lists each member's ``(seq, done-event, label)`` in start
    order.  Every per-member quantity (``remaining``, ``rate``, the
    completion instant) is bitwise identical across members by
    construction, so the carrier stores it once.
    """

    __slots__ = (
        "size", "remaining", "path", "rate", "done", "started_at",
        "_sched", "_last_update", "_seq", "label", "_mark",
        "weight", "fanout",
    )

    def __init__(self, size: float, path: Sequence[Link], done: Event, label: str = ""):
        self.size = float(size)
        self.remaining = float(size)
        self.path = tuple(path)
        self.rate = 0.0
        self.done = done
        self.started_at: float = 0.0
        self._sched: Union[_ScheduledCall, "_Cohort", None] = None
        self._last_update: float = 0.0
        self._seq = 0  # global start order; keys deterministic scope ordering
        self.label = label
        self._mark = 0  # visited stamp for component walks (see _scope_flows)
        self.weight = 1
        self.fanout: Optional[list] = None  # [(seq, done, label), ...] when merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow {self.label!r} {self.remaining:.0f}/{self.size:.0f}B "
                f"@{self.rate:.3g}B/s>")


class _Cohort:
    """One scheduled engine entry servicing a whole completion cohort.

    Members are flows rescheduled in the same allocation pass whose new
    completion instants are bitwise identical.  Their stepped-mode heap
    entries would occupy consecutive seqs with nothing scheduled between
    them, so firing the members in insertion order from a single entry
    reproduces the exact one-entry-per-flow event order.  A member that is
    individually cancelled (abort, re-allocation) just leaves the cohort;
    the engine entry itself is cancelled only when the last member leaves.
    """

    __slots__ = ("net", "members", "call")

    def __init__(self, net: "FlowNetwork"):
        self.net = net
        self.members: dict[Flow, None] = {}
        self.call: Optional[_ScheduledCall] = None

    def fire(self) -> None:
        net = self.net
        if not net._merge:
            if len(self.members) > 1:
                net.ff_jumps += 1
            for flow in list(self.members):
                net._finish_flow(flow)
            return
        # Aggregated fan-out: one entry may finish several carriers, each
        # carrying several logical transfers.  Stepped mode fires the
        # per-member completion entries in scheduling-seq order, which
        # within one cohort is member start order — so emit every member
        # completion sorted by member seq, with carrier bookkeeping done
        # at its first member's position (exactly where stepped mode
        # removes the flow) and byte accounting folded in the same member
        # order stepped settles would have used.
        entries: list[tuple[int, Flow, Event]] = []
        for flow in self.members:
            fo = flow.fanout
            if fo is None:
                entries.append((flow._seq, flow, flow.done))
            else:
                for seq, done, _label in fo:
                    entries.append((seq, flow, done))
        if len(entries) > 1:
            net.ff_jumps += 1
            entries.sort(key=operator.itemgetter(0))
        sink: dict[Link, list] = {}
        finished: set[Flow] = set()
        for seq, flow, done in entries:
            fo = flow.fanout
            if fo is None:
                # A synchronous completion callback may have aborted a
                # later cohort member; _cancel_sched pops it, so honour
                # the live membership exactly like the stepped loop does.
                if flow not in self.members:
                    continue
            else:
                for e in fo:
                    if e[1] is done:
                        break
                else:
                    continue  # member aborted out of the carrier mid-fire
            if flow not in finished:
                finished.add(flow)
                if not net._finish_carrier(flow, sink):
                    continue
                done.succeed(flow.size)
                if any(link.flows for link in flow.path):
                    net._mark_dirty(flow.path)
            else:
                done.succeed(flow.size)
        net._fold_bytes(sink)


class FlowNetwork:
    """Tracks active flows and keeps their rates max-min fair."""

    def __init__(self, engine: Engine, allocator: str = "incremental",
                 fast_forward: bool = True, aggregation: bool = True):
        if allocator not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.engine = engine
        self.allocator = allocator
        # Engine modes (see module docstring).  The reference allocator is
        # the step-by-step oracle, so it always runs with both modes off.
        if allocator == "reference":
            fast_forward = aggregation = False
        self.fast_forward = fast_forward
        self.aggregation = aggregation
        # Flow merging collapses identical same-instant transfers into one
        # carrier Flow with fan-out completion.  It needs cohort entries to
        # reproduce the stepped completion order, so it is active only when
        # both modes are on (the default).
        self._merge = fast_forward and aggregation
        # Flows started since the last flush — the merge candidates.
        self._fresh: list[Flow] = []
        # Cache of per-path (distinct links, has-duplicates) facts; path
        # tuples recur across thousands of passes.
        self._path_info: dict[tuple, tuple[tuple, bool]] = {}
        # Registry insertion order stops matching _seq order once a
        # carrier's first member aborts (the carrier inherits the next
        # member's seq but keeps its registry slot); the _scope_flows
        # filter shortcut is disabled from then on.
        self._seq_order_dirty = False
        # Insertion-ordered registry of active flows (see Link.flows).
        self._flows: dict[Flow, None] = {}
        self.completed_flows = 0
        self.aborted_flows = 0
        self._flow_seq = 0
        # Flows still in their latency phase, keyed by completion event:
        # not yet in _flows, but abort() must be able to cancel them or a
        # timed-out request would leak its scheduled _start_flow call.
        self._latent: dict[Event, _ScheduledCall] = {}
        # Links whose membership changed since the last reallocation pass,
        # awaiting the same-instant flush.
        self._dirty: dict[Link, None] = {}
        self._flush_pending = False
        # Monotone stamp marking flows/links visited by the current
        # component walk — replaces per-pass visited sets, whose hashing
        # dominated _scope_flows at thousands of ranks.
        self._scope_stamp = 0
        # Profiling counters (see docs/performance.md).
        self.reallocations = 0
        self.realloc_flow_touches = 0
        # Mode hit counters: cohort entries that serviced >=2 completions in
        # one jump, and flows that shared a multi-member path class during
        # grouped filling.  Surfaced as engine:* health counters and in the
        # wall-clock bench JSON so future PRs can see when the fast paths
        # stop firing.
        self.ff_jumps = 0
        self.flows_aggregated = 0

    # -- public API -------------------------------------------------------
    def transfer(self, nbytes: float, path: Sequence[Link], latency: float = 0.0,
                 label: str = "") -> Event:
        """Start a transfer; the returned event fires when the last byte lands.

        ``latency`` is a fixed startup delay (the ``t_s`` term) served before
        the bandwidth phase begins; it does not consume link capacity.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        done = self.engine.event(f"xfer:{label}")
        if nbytes == 0:
            if latency > 0:
                # Guarded: a cancelled request may have failed `done` first.
                self.engine._schedule(
                    latency,
                    lambda: done.succeed(0.0) if not done.triggered else None)
            else:
                done.succeed(0.0)
            return done
        if not path:
            raise ValueError("a nonzero transfer needs a non-empty link path")
        flow = Flow(nbytes, path, done, label=label)
        if latency > 0:
            self._latent[done] = self.engine._schedule(
                latency, lambda: self._start_flow(flow))
        else:
            self._start_flow(flow)
        return done

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def flow_rates(self) -> list[tuple[str, float]]:
        """``(label, rate)`` for every logical in-flight transfer.

        Fan-out aware: a carrier flow reports one entry per merged member
        (all bitwise at the carrier's rate), so observers see the same
        logical traffic whether or not aggregation merged anything.
        """
        out: list[tuple[str, float]] = []
        for f in self._flows:
            fo = f.fanout
            if fo is None:
                out.append((f.label, f.rate))
            else:
                rate = f.rate
                for _seq, _done, label in fo:
                    out.append((label, rate))
        return out

    def set_bandwidth(self, link: Link, bandwidth: float) -> None:
        """Change a link's capacity mid-simulation (fault injection).

        In-flight flows are settled at their old rates up to this instant,
        then the link's connected component is re-allocated max-min fairly —
        exactly the arrival/departure machinery, triggered by a capacity
        change instead of a membership change.  A no-op when the bandwidth
        is unchanged, so restoring after a fault window costs nothing if
        nothing else moved the value meanwhile.
        """
        if bandwidth <= 0:
            raise ValueError(
                f"link {link.name!r} needs positive bandwidth, got {bandwidth}")
        bandwidth = float(bandwidth)
        if bandwidth == link.bandwidth:
            return
        link.bandwidth = bandwidth
        # Only flows constrained by this link (directly or through a chain
        # of shared links) can change rate; an idle link just carries the
        # new capacity forward to future joins.
        if link.flows:
            self._mark_dirty([link])

    def abort(self, done: Event) -> bool:
        """Tear down the in-flight flow whose completion event is ``done``.

        Settles the flow's progress to the current instant, removes it from
        its links *without* counting it as completed, and re-settles the
        shares of flows that were contending with it.  A flow still in its
        latency phase is cancelled before it ever joins a link.  Returns
        ``False`` when no flow (latent or active) carries the event —
        i.e. it already finished.
        """
        latent = self._latent.pop(done, None)
        if latent is not None:
            self.engine.cancel(latent)
            self.aborted_flows += 1
            return True
        for flow in self._flows:
            if flow.done is done:
                break
            fo = flow.fanout
            if fo is not None and any(e[1] is done for e in fo):
                break
        else:
            return False
        if flow.weight > 1:
            return self._abort_member(flow, done)
        self._settle_flow(flow)
        self._remove(flow, completed=False)
        self.aborted_flows += 1
        if (self.allocator == "reference"
                or any(link.flows for link in flow.path)):
            self._mark_dirty(flow.path)
        return True

    def _abort_member(self, flow: Flow, done: Event) -> bool:
        """Split one aborted member out of a multi-transfer carrier.

        The member's bytes carried since the last settle are accounted
        exactly as the stepped abort's settle would (same ``rate * dt``
        product), but the carrier itself is *not* settled: the surviving
        members' remaining-bytes arithmetic must stay a single
        ``rate * dt`` step per rate change, exactly as stepped survivors
        — which only settle when their allocation actually changes —
        would accumulate it.
        """
        fo = flow.fanout
        for i, entry in enumerate(fo):
            if entry[1] is done:
                break
        dt = self.engine.now - flow._last_update
        if dt > 0:
            moved = flow.rate * dt
            for link in flow.path:
                link._bytes_carried += moved
        fo.pop(i)
        flow.weight -= 1
        if i == 0:
            # The carrier's identity (seq, done, label) tracks its first
            # surviving member so scope ordering matches stepped mode.
            flow._seq, flow.done, flow.label = fo[0]
            self._seq_order_dirty = True
        self.aborted_flows += 1
        self._mark_dirty(flow.path)
        return True

    # -- internals ----------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        self._latent.pop(flow.done, None)
        now = self.engine.now
        flow.started_at = now
        flow._last_update = now
        flow._seq = self._flow_seq
        self._flow_seq += 1
        self._flows[flow] = None
        if (self.allocator == "incremental"
                and not any(link.flows for link in flow.path)):
            # Disjoint uncontended join: no existing flow shares any link
            # with this one, so no existing rate can change, and this
            # flow's max-min rate is exactly its path's bottleneck
            # bandwidth (the singleton fair share bw/1 == bw).  Skip the
            # reallocation pass entirely.
            for link in flow.path:
                link.flows[flow] = None
            flow.rate = min(link.bandwidth for link in flow.path)
            flow._sched = self.engine._schedule(
                flow.remaining / flow.rate, lambda: self._finish_flow(flow))
            return
        for link in flow.path:
            link.flows[flow] = None
        if self._merge:
            self._fresh.append(flow)
        self._mark_dirty(flow.path)

    def _finish_flow(self, flow: Flow) -> None:
        if flow not in self._flows:
            return
        self._settle_flow(flow)
        # Tolerate small residue from float arithmetic.
        if flow.remaining > _flow_eps(flow):
            raise SimulationError(
                f"flow {flow.label!r} finished with {flow.remaining} bytes left")
        self._remove(flow)
        flow.done.succeed(flow.size)
        if (self.allocator == "reference"
                or any(link.flows for link in flow.path)):
            # Departure frees capacity for whoever shared these links; a
            # flow that was alone on its whole path affects nobody.
            self._mark_dirty(flow.path)

    def _finish_carrier(self, flow: Flow, sink: dict) -> bool:
        """Bookkeep a carrier's completion; the caller emits the fan-out.

        The cohort fire loop owns the per-member ``succeed`` order, so this
        only settles (deferred, into ``sink``) and removes the carrier.
        Returns ``False`` when the flow already left the network.
        """
        if flow not in self._flows:
            return False
        self._settle_deferred(flow, sink)
        if flow.remaining > _flow_eps(flow):
            raise SimulationError(
                f"flow {flow.label!r} finished with {flow.remaining} bytes left")
        self._remove(flow)
        return True

    def _remove(self, flow: Flow, completed: bool = True) -> None:
        self._flows.pop(flow, None)
        for link in flow.path:
            link.flows.pop(flow, None)
        self._cancel_sched(flow)
        if completed:
            self.completed_flows += flow.weight

    def _cancel_sched(self, flow: Flow) -> None:
        """Drop a flow's pending completion, whether solo or cohort-shared.

        Removing one member of a cohort must not cancel the shared engine
        entry while other members still ride it — this is what keeps a
        mid-phase ``set_bandwidth`` (fault brownout) exact under
        fast-forward: the re-allocated flows leave their cohorts and get
        fresh completions, while undisturbed members' jump stays valid.
        """
        sched = flow._sched
        if sched is None:
            return
        flow._sched = None
        if type(sched) is _Cohort:
            sched.members.pop(flow, None)
            if not sched.members and sched.call is not None:
                self.engine.cancel(sched.call)
        else:
            self.engine.cancel(sched)

    def _settle_flow(self, flow: Flow) -> None:
        """Advance one flow's remaining-bytes to the current instant."""
        now = self.engine.now
        dt = now - flow._last_update
        if dt > 0:
            moved = flow.rate * dt
            flow.remaining -= moved
            for link in flow.path:
                link._bytes_carried += moved
            flow._last_update = now
        if flow.remaining < 0:
            flow.remaining = 0.0

    def _settle_deferred(self, flow: Flow, sink: dict) -> None:
        """Settle a flow, deferring its byte accounting into ``sink``.

        Stepped mode adds each member's ``rate * dt`` to its links at the
        member's own position in the pass; with carriers in play the
        additions must be re-interleaved by member seq before touching the
        links' float accumulators, or ``bytes_carried`` would drift by
        association.  ``sink`` maps each link to ``(member seq, moved)``
        contributions; :meth:`_fold_bytes` folds them in seq order at the
        end of the pass.
        """
        now = self.engine.now
        dt = now - flow._last_update
        if dt > 0:
            moved = flow.rate * dt
            flow.remaining -= moved
            fo = flow.fanout
            if fo is None:
                seq = flow._seq
                for link in flow.path:
                    contribs = sink.get(link)
                    if contribs is None:
                        contribs = sink[link] = []
                    contribs.append((seq, moved))
            else:
                for link in flow.path:
                    contribs = sink.get(link)
                    if contribs is None:
                        contribs = sink[link] = []
                    for seq, _done, _label in fo:
                        contribs.append((seq, moved))
            flow._last_update = now
        if flow.remaining < 0:
            flow.remaining = 0.0

    def _fold_bytes(self, sink: dict) -> None:
        """Fold deferred byte contributions in member-seq order (see
        :meth:`_settle_deferred`); bitwise-reproduces the stepped order of
        additions onto each link's accumulator."""
        getter = operator.itemgetter(0)
        for link, contribs in sink.items():
            if len(contribs) > 1:
                contribs.sort(key=getter)
            total = link._bytes_carried
            for _seq, moved in contribs:
                total += moved
            link._bytes_carried = total

    # -- reallocation -------------------------------------------------------
    def _mark_dirty(self, links: Sequence[Link]) -> None:
        for link in links:
            self._dirty[link] = None
        if not self._flush_pending:
            self._flush_pending = True
            if self.engine._running:
                # Coalesce: every membership change of this instant lands in
                # one pass when the zero-delay flush fires.
                self.engine._schedule(0.0, self._flush)
            else:
                # Called outside the event loop (setup code, tests): keep
                # the old synchronous semantics so rates are immediately
                # observable.
                self._flush()

    def _flush(self) -> None:
        self._flush_pending = False
        if self._fresh:
            self._merge_fresh()
        dirty, self._dirty = self._dirty, {}
        while dirty:
            scope = self._scope_flows(dirty)
            drained = self._allocate(scope) if scope else ()
            # A flow that settled to zero during the pass was removed
            # mid-allocation; its departure frees capacity, so re-run on
            # the links it vacated (same instant, usually empty).
            dirty = {}
            for flow in drained:
                for link in flow.path:
                    if link.flows:
                        dirty[link] = None

    def _merge_fresh(self) -> None:
        """Collapse identical fresh transfers into carrier flows.

        Flows started since the last pass with the same path and size are
        indistinguishable under max-min fairness: every future allocation
        hands them bitwise-identical rates, so their remaining-bytes and
        completion instants stay bitwise-identical forever.  Merging them
        into the earliest member (the *carrier*, ``weight`` = member
        count, ``fanout`` = per-member completion bookkeeping) makes every
        later pass and cohort pay per *class* instead of per transfer.
        Only never-allocated same-instant flows merge — anything already
        carrying a rate took part in a pass and stays solo.
        """
        fresh = self._fresh
        self._fresh = []
        now = self.engine.now
        flows = self._flows
        buckets: dict[tuple, list[Flow]] = {}
        for f in fresh:
            if (f.rate == 0.0 and f._sched is None and f.started_at == now
                    and f.weight == 1 and f in flows):
                key = (f.path, f.size)
                group = buckets.get(key)
                if group is None:
                    buckets[key] = [f]
                else:
                    group.append(f)
        for group in buckets.values():
            if len(group) < 2:
                continue
            carrier = group[0]
            carrier.weight = len(group)
            carrier.fanout = [(m._seq, m.done, m.label) for m in group]
            for m in group[1:]:
                del flows[m]
                for link in m.path:
                    del link.flows[m]

    def _scope_flows(self, dirty: dict[Link, None]) -> list[Flow]:
        """Flows whose rates the pending membership changes could affect.

        Reference allocator: every active flow.  Incremental: the connected
        component(s) of the dirty links under the "shares a link with"
        relation, in global start order (``_seq``) so the progressive
        filling visits flows and links in exactly the order the reference
        allocator would, restricted to the component.
        """
        if self.allocator == "reference":
            return list(self._flows)
        self._scope_stamp += 1
        stamp = self._scope_stamp
        stack = list(dirty)
        for link in stack:
            link._mark = stamp
        found: list[Flow] = []
        append = found.append
        while stack:
            link = stack.pop()
            for flow in link.flows:
                if flow._mark != stamp:
                    flow._mark = stamp
                    append(flow)
                    for other in flow.path:
                        if other._mark != stamp:
                            other._mark = stamp
                            stack.append(other)
        if (self.aggregation and not self._seq_order_dirty
                and len(found) * 4 >= len(self._flows)):
            # The registry is insertion-ordered and flows are never
            # re-registered, so filtering it against the component IS the
            # ``_seq`` sort — and for components spanning most of the
            # registry a linear filter beats an O(k log k) sort.
            return [f for f in self._flows if f._mark == stamp]
        found.sort(key=_SEQ)
        return found

    def _allocate(self, scope: list[Flow]) -> list[Flow]:
        """Progressive-filling max-min fair rates over ``scope``.

        Settles and reschedules only flows whose allocation changed; an
        undisturbed flow's completion entry stays valid, so the engine heap
        is not flooded with cancellations.  Returns flows that settled to
        zero and completed during the pass.
        """
        self.reallocations += 1
        self.realloc_flow_touches += len(scope)

        # Grouped filling returns one share per path class (identical-path
        # flows provably share a rate); the flat pass returns per-flow.
        agg = self.aggregation
        shares = self._fill_grouped(scope) if agg else self._fill(scope)
        get_share = shares.get

        engine = self.engine
        drained: list[Flow] = []
        ff = self.fast_forward
        merge = self._merge
        cohorts: dict[float, _Cohort] = {}
        # Deferred byte contributions (see _settle_deferred) and drained
        # carriers' later-member completions, emitted at each member's seq
        # slot so every succeed/_schedule call lands in the exact global
        # order the one-flow-per-member stepped loop would produce.
        sink: dict[Link, list] = {}
        pending: list = []
        for flow in scope:
            while pending and pending[0][0] < flow._seq:
                _s, done, size = _heappop(pending)
                done.succeed(size)
            rate = get_share(flow.path, 0.0) if agg else get_share(flow, 0.0)
            if rate <= 0:
                raise SimulationError(
                    f"flow {flow.label!r} allocated zero rate — disconnected path?")
            if rate == flow.rate and flow._sched is not None:
                # Allocation unchanged: the scheduled completion is still
                # exact, and skipping the settle keeps remaining-bytes
                # arithmetic identical between allocators.
                continue
            if merge:
                self._settle_deferred(flow, sink)
            else:
                self._settle_flow(flow)
            flow.rate = rate
            self._cancel_sched(flow)
            if flow.remaining <= _flow_eps(flow):
                # Settled to zero at this very instant (its completion was
                # due now): complete it here rather than re-scheduling.
                self._remove(flow)
                flow.done.succeed(flow.size)
                fo = flow.fanout
                if fo is not None:
                    for seq, done, _label in fo[1:]:
                        _heappush(pending, (seq, done, flow.size))
                drained.append(flow)
                continue
            eta = flow.remaining / flow.rate
            if ff:
                # Flows completing at the bitwise-same instant share one
                # engine entry.  Keyed by the absolute time the engine
                # would file the entry under (now + eta, the same sum
                # _schedule computes), so members whose etas differ in the
                # last bit but land on the same heap key still coalesce in
                # scheduling order.
                at = engine.now + eta
                cohort = cohorts.get(at)
                if cohort is None:
                    cohort = _Cohort(self)
                    cohort.call = engine._schedule(eta, cohort.fire)
                    cohorts[at] = cohort
                cohort.members[flow] = None
                flow._sched = cohort
            else:
                flow._sched = engine._schedule(
                    eta, lambda f=flow: self._finish_flow(f))
        while pending:
            _s, done, size = _heappop(pending)
            done.succeed(size)
        if sink:
            self._fold_bytes(sink)
        return drained

    def _fill(self, scope: list[Flow]) -> dict[Flow, float]:
        """One progressive-filling pass: the step-by-step round loop."""
        unfrozen: dict[Flow, None] = dict.fromkeys(scope)
        residual: dict[Link, float] = {}
        link_unfrozen: dict[Link, dict[Flow, None]] = {}
        for f in unfrozen:
            for link in f.path:
                if link not in residual:
                    residual[link] = link.bandwidth
                link_unfrozen.setdefault(link, {})[f] = None

        rates: dict[Flow, float] = {}
        while unfrozen:
            # Bottleneck link: smallest per-flow fair share among links that
            # still carry unfrozen flows.
            bottleneck = None
            best_share = None
            for link, fset in link_unfrozen.items():
                if not fset:
                    continue
                share = residual[link] / len(fset)
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = link
            if bottleneck is None:
                break  # all remaining flows have no constraining link
            frozen_now = list(link_unfrozen[bottleneck])
            for f in frozen_now:
                rates[f] = best_share
                unfrozen.pop(f, None)
                for link in f.path:
                    link_unfrozen[link].pop(f, None)
                    if link is not bottleneck:
                        residual[link] -= best_share
            residual[bottleneck] = 0.0
            link_unfrozen[bottleneck].clear()
        return rates

    def _fill_grouped(self, scope: list[Flow]) -> dict[tuple, float]:
        """Progressive filling over identical-path groups; exact vs ``_fill``.

        Identical-path flows are symmetric under max-min fairness — same
        constraint set, so they freeze in the same round at the same share
        — which lets *all* per-round bookkeeping run per path class
        instead of per flow: the return value maps each path class to its
        share, and the only per-flow work in the whole pass is the initial
        two-dict-op grouping.  Bitwise equivalence to :meth:`_fill` rests
        on four facts: (1) shares are computed as ``residual / count``
        with ``count`` the same per-flow membership total the flat pass
        uses; (2) within one round every frozen flow subtracts the *same*
        ``best_share``, so regrouping the per-member subtractions by path
        class leaves each link's (sequential, same-value) subtraction
        chain — and hence its residual bits — unchanged; (3) the
        bottleneck is chosen by min ``(share, first-occurrence index)``
        through a lazily re-keyed heap, which is exactly the flat pass's
        first-strict-win linear scan; (4) registering links per group in
        group-insertion order reproduces the flat pass's first-occurrence
        order, because a link's earliest carrier group is by definition
        the group of the earliest scope flow whose path contains it.
        """
        if len(scope) == 1:
            # Singleton component: one path class, so the bottleneck is
            # min over links of bandwidth/weight.  Division by a positive
            # count is monotone and ties share one value, so taking min
            # before dividing is bitwise the flat pass's scan.
            f0 = scope[0]
            w = f0.weight
            bw = min(link.bandwidth for link in f0.path)
            if w > 1:
                self.flows_aggregated += w
                return {f0.path: bw / w}
            return {f0.path: bw}

        groups: dict[tuple[Link, ...], int] = {}
        total = 0
        for f in scope:
            p = f.path
            w = f.weight
            total += w
            groups[p] = groups.get(p, 0) + w

        # Link tables in the flat pass's first-occurrence order, built per
        # path class (weight ``w``), never per flow.
        residual: dict[Link, float] = {}
        order: dict[Link, int] = {}
        link_count: dict[Link, int] = {}
        link_groups: dict[Link, dict[tuple[Link, ...], None]] = {}
        ginfo: dict[tuple[Link, ...], tuple[int, tuple, bool]] = {}
        path_info = self._path_info
        aggregated = 0
        for path, w in groups.items():
            if w > 1:
                aggregated += w
            cached = path_info.get(path)
            if cached is None:
                distinct = path
                dups = False
                if len(path) > 1 and len(set(path)) != len(path):
                    distinct = tuple(dict.fromkeys(path))
                    dups = True
                cached = path_info[path] = (distinct, dups)
            distinct, dups = cached
            ginfo[path] = (w, distinct, dups)
            for link in distinct:
                cnt = link_count.get(link)
                if cnt is None:
                    residual[link] = link.bandwidth
                    order[link] = len(order)
                    link_count[link] = w
                    link_groups[link] = {path: None}
                else:
                    link_count[link] = cnt + w
                    link_groups[link][path] = None
        self.flows_aggregated += aggregated

        heap: list[tuple[float, int, int, Link]] = []
        version: dict[Link, int] = {}
        for link, cnt in link_count.items():
            version[link] = 0
            _heappush(heap, (residual[link] / cnt, order[link], 0, link))

        shares: dict[tuple, float] = {}
        remaining = total
        while remaining:
            bottleneck = None
            while heap:
                best_share, _idx, ver, link = _heappop(heap)
                if ver == version[link] and link_count[link] > 0:
                    bottleneck = link
                    break
            if bottleneck is None:
                break  # all remaining flows have no constraining link
            changed: dict[Link, None] = {}
            for path in list(link_groups[bottleneck]):
                w, distinct, dups = ginfo[path]
                shares[path] = best_share
                if dups:
                    # Raw path order, one subtraction per member per
                    # occurrence — the same count of identical-value
                    # subtractions the flat pass applies.
                    for link in path:
                        if link is not bottleneck:
                            r = residual[link]
                            for _ in range(w):
                                r -= best_share
                            residual[link] = r
                    for link in distinct:
                        if link is not bottleneck:
                            link_count[link] -= w
                            del link_groups[link][path]
                            changed[link] = None
                elif w == 1:
                    for link in distinct:
                        if link is not bottleneck:
                            residual[link] -= best_share
                            link_count[link] -= 1
                            del link_groups[link][path]
                            changed[link] = None
                else:
                    for link in distinct:
                        if link is not bottleneck:
                            r = residual[link]
                            for _ in range(w):
                                r -= best_share
                            residual[link] = r
                            link_count[link] -= w
                            del link_groups[link][path]
                            changed[link] = None
                remaining -= w
            residual[bottleneck] = 0.0
            link_count[bottleneck] = 0
            link_groups[bottleneck].clear()
            for link in changed:
                cnt = link_count[link]
                if cnt > 0:
                    ver = version[link] + 1
                    version[link] = ver
                    _heappush(heap,
                              (residual[link] / cnt, order[link], ver, link))
        return shares
