"""Flow-level network model with max-min fair bandwidth sharing.

Transfers (flows) traverse a *path* of directed :class:`Link` resources —
typically ``[source NIC egress, fabric, destination NIC ingress]``.  At any
instant the rate of every active flow is the max-min fair allocation computed
by progressive filling; when a flow starts or finishes, affected rates are
recomputed and the corresponding in-flight completion events rescheduled.

This is the mechanism behind the paper's diagonal-shift experiment
(§3.1, Fig. 4): when all processors of one node fetch from the same remote
node, their flows share that node's NIC and each progresses at ``1/k`` of the
link rate; the diagonal shift spreads flows across distinct NIC pairs so each
gets the full rate.

The model is deliberately flow-level (no packets): transfer time for an
uncontended flow over a path with bottleneck bandwidth ``B`` and latency
``L`` is exactly ``L + nbytes / B``, matching the ``t_s + n * t_w`` cost model
of §2.1.

Allocator scaling
-----------------
Recomputing the global allocation on every flow arrival/departure is
quadratic-ish in active flows and floods the engine heap with cancelled
completion entries.  The default ``incremental`` allocator instead:

- restricts each recomputation to the *connected component* of links
  actually touched by the arriving/departing flow (two flows interact only
  if a chain of shared links connects them, so rates outside the component
  provably cannot change);
- skips reallocation entirely when it cannot change any rate (a flow
  joining or leaving an otherwise-empty set of links);
- coalesces all membership changes of one simulated instant into a single
  reallocation pass (a zero-delay flush event);
- settles and reschedules a flow only when its allocated rate actually
  changed, so an undisturbed flow's completion entry stays valid.

``allocator="reference"`` keeps the original full-recompute behaviour
(every pass covers every active flow) under the same settle/reschedule
discipline; the property test in
``tests/sim/test_network_equivalence.py`` cross-checks the two on
randomized workloads bit-for-bit.  The invariants that make the scoped
recomputation exact are written up in ``docs/performance.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .engine import Engine, Event, SimulationError, _ScheduledCall

__all__ = ["Link", "Flow", "FlowNetwork"]

# Flows with fewer remaining bytes than this are considered complete; guards
# against float dust keeping a flow alive forever.  The tolerance must scale
# with the flow size: every reallocation event settles remaining-bytes with
# rate*dt arithmetic, so a megabyte flow legitimately accumulates more
# absolute rounding error than a 100-byte one.
_EPS_BYTES = 1e-6


def _flow_eps(flow: "Flow") -> float:
    return _EPS_BYTES + 1e-9 * flow.size


class Link:
    """A directed link with fixed capacity in bytes/second."""

    __slots__ = ("name", "bandwidth", "flows", "_bytes_carried")

    def __init__(self, name: str, bandwidth: float):
        if bandwidth <= 0:
            raise ValueError(f"link {name!r} needs positive bandwidth, got {bandwidth}")
        self.name = name
        self.bandwidth = float(bandwidth)
        # Insertion-ordered (dict-as-set): iteration order must be
        # deterministic and independent of object addresses, or simulated
        # event ordering would vary with Python allocation history.
        self.flows: dict["Flow", None] = {}
        self._bytes_carried = 0.0

    @property
    def bytes_carried(self) -> float:
        """Total bytes that have crossed this link (for trace/asserts)."""
        return self._bytes_carried

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.name} {self.bandwidth:.3g} B/s, {len(self.flows)} flows>"


class Flow:
    """One in-flight transfer across a path of links."""

    __slots__ = (
        "size", "remaining", "path", "rate", "done", "started_at",
        "_sched", "_last_update", "_seq", "label",
    )

    def __init__(self, size: float, path: Sequence[Link], done: Event, label: str = ""):
        self.size = float(size)
        self.remaining = float(size)
        self.path = tuple(path)
        self.rate = 0.0
        self.done = done
        self.started_at: float = 0.0
        self._sched: Optional[_ScheduledCall] = None
        self._last_update: float = 0.0
        self._seq = 0  # global start order; keys deterministic scope ordering
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow {self.label!r} {self.remaining:.0f}/{self.size:.0f}B "
                f"@{self.rate:.3g}B/s>")


class FlowNetwork:
    """Tracks active flows and keeps their rates max-min fair."""

    def __init__(self, engine: Engine, allocator: str = "incremental"):
        if allocator not in ("incremental", "reference"):
            raise ValueError(f"unknown allocator {allocator!r}")
        self.engine = engine
        self.allocator = allocator
        # Insertion-ordered registry of active flows (see Link.flows).
        self._flows: dict[Flow, None] = {}
        self.completed_flows = 0
        self.aborted_flows = 0
        self._flow_seq = 0
        # Flows still in their latency phase, keyed by completion event:
        # not yet in _flows, but abort() must be able to cancel them or a
        # timed-out request would leak its scheduled _start_flow call.
        self._latent: dict[Event, _ScheduledCall] = {}
        # Links whose membership changed since the last reallocation pass,
        # awaiting the same-instant flush.
        self._dirty: dict[Link, None] = {}
        self._flush_pending = False
        # Profiling counters (see docs/performance.md).
        self.reallocations = 0
        self.realloc_flow_touches = 0

    # -- public API -------------------------------------------------------
    def transfer(self, nbytes: float, path: Sequence[Link], latency: float = 0.0,
                 label: str = "") -> Event:
        """Start a transfer; the returned event fires when the last byte lands.

        ``latency`` is a fixed startup delay (the ``t_s`` term) served before
        the bandwidth phase begins; it does not consume link capacity.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        done = self.engine.event(f"xfer:{label}")
        if nbytes == 0:
            if latency > 0:
                # Guarded: a cancelled request may have failed `done` first.
                self.engine._schedule(
                    latency,
                    lambda: done.succeed(0.0) if not done.triggered else None)
            else:
                done.succeed(0.0)
            return done
        if not path:
            raise ValueError("a nonzero transfer needs a non-empty link path")
        flow = Flow(nbytes, path, done, label=label)
        if latency > 0:
            self._latent[done] = self.engine._schedule(
                latency, lambda: self._start_flow(flow))
        else:
            self._start_flow(flow)
        return done

    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def set_bandwidth(self, link: Link, bandwidth: float) -> None:
        """Change a link's capacity mid-simulation (fault injection).

        In-flight flows are settled at their old rates up to this instant,
        then the link's connected component is re-allocated max-min fairly —
        exactly the arrival/departure machinery, triggered by a capacity
        change instead of a membership change.  A no-op when the bandwidth
        is unchanged, so restoring after a fault window costs nothing if
        nothing else moved the value meanwhile.
        """
        if bandwidth <= 0:
            raise ValueError(
                f"link {link.name!r} needs positive bandwidth, got {bandwidth}")
        bandwidth = float(bandwidth)
        if bandwidth == link.bandwidth:
            return
        link.bandwidth = bandwidth
        # Only flows constrained by this link (directly or through a chain
        # of shared links) can change rate; an idle link just carries the
        # new capacity forward to future joins.
        if link.flows:
            self._mark_dirty([link])

    def abort(self, done: Event) -> bool:
        """Tear down the in-flight flow whose completion event is ``done``.

        Settles the flow's progress to the current instant, removes it from
        its links *without* counting it as completed, and re-settles the
        shares of flows that were contending with it.  A flow still in its
        latency phase is cancelled before it ever joins a link.  Returns
        ``False`` when no flow (latent or active) carries the event —
        i.e. it already finished.
        """
        latent = self._latent.pop(done, None)
        if latent is not None:
            self.engine.cancel(latent)
            self.aborted_flows += 1
            return True
        for flow in self._flows:
            if flow.done is done:
                break
        else:
            return False
        self._settle_flow(flow)
        self._remove(flow, completed=False)
        self.aborted_flows += 1
        if (self.allocator == "reference"
                or any(link.flows for link in flow.path)):
            self._mark_dirty(flow.path)
        return True

    # -- internals ----------------------------------------------------------
    def _start_flow(self, flow: Flow) -> None:
        self._latent.pop(flow.done, None)
        now = self.engine.now
        flow.started_at = now
        flow._last_update = now
        flow._seq = self._flow_seq
        self._flow_seq += 1
        self._flows[flow] = None
        if (self.allocator == "incremental"
                and not any(link.flows for link in flow.path)):
            # Disjoint uncontended join: no existing flow shares any link
            # with this one, so no existing rate can change, and this
            # flow's max-min rate is exactly its path's bottleneck
            # bandwidth (the singleton fair share bw/1 == bw).  Skip the
            # reallocation pass entirely.
            for link in flow.path:
                link.flows[flow] = None
            flow.rate = min(link.bandwidth for link in flow.path)
            flow._sched = self.engine._schedule(
                flow.remaining / flow.rate, lambda: self._finish_flow(flow))
            return
        for link in flow.path:
            link.flows[flow] = None
        self._mark_dirty(flow.path)

    def _finish_flow(self, flow: Flow) -> None:
        if flow not in self._flows:
            return
        self._settle_flow(flow)
        # Tolerate small residue from float arithmetic.
        if flow.remaining > _flow_eps(flow):
            raise SimulationError(
                f"flow {flow.label!r} finished with {flow.remaining} bytes left")
        self._remove(flow)
        flow.done.succeed(flow.size)
        if (self.allocator == "reference"
                or any(link.flows for link in flow.path)):
            # Departure frees capacity for whoever shared these links; a
            # flow that was alone on its whole path affects nobody.
            self._mark_dirty(flow.path)

    def _remove(self, flow: Flow, completed: bool = True) -> None:
        self._flows.pop(flow, None)
        for link in flow.path:
            link.flows.pop(flow, None)
        if flow._sched is not None:
            self.engine.cancel(flow._sched)
            flow._sched = None
        if completed:
            self.completed_flows += 1

    def _settle_flow(self, flow: Flow) -> None:
        """Advance one flow's remaining-bytes to the current instant."""
        now = self.engine.now
        dt = now - flow._last_update
        if dt > 0:
            moved = flow.rate * dt
            flow.remaining -= moved
            for link in flow.path:
                link._bytes_carried += moved
            flow._last_update = now
        if flow.remaining < 0:
            flow.remaining = 0.0

    # -- reallocation -------------------------------------------------------
    def _mark_dirty(self, links: Sequence[Link]) -> None:
        for link in links:
            self._dirty[link] = None
        if not self._flush_pending:
            self._flush_pending = True
            if self.engine._running:
                # Coalesce: every membership change of this instant lands in
                # one pass when the zero-delay flush fires.
                self.engine._schedule(0.0, self._flush)
            else:
                # Called outside the event loop (setup code, tests): keep
                # the old synchronous semantics so rates are immediately
                # observable.
                self._flush()

    def _flush(self) -> None:
        self._flush_pending = False
        dirty, self._dirty = self._dirty, {}
        while dirty:
            scope = self._scope_flows(dirty)
            drained = self._allocate(scope) if scope else ()
            # A flow that settled to zero during the pass was removed
            # mid-allocation; its departure frees capacity, so re-run on
            # the links it vacated (same instant, usually empty).
            dirty = {}
            for flow in drained:
                for link in flow.path:
                    if link.flows:
                        dirty[link] = None

    def _scope_flows(self, dirty: dict[Link, None]) -> list[Flow]:
        """Flows whose rates the pending membership changes could affect.

        Reference allocator: every active flow.  Incremental: the connected
        component(s) of the dirty links under the "shares a link with"
        relation, in global start order (``_seq``) so the progressive
        filling visits flows and links in exactly the order the reference
        allocator would, restricted to the component.
        """
        if self.allocator == "reference":
            return list(self._flows)
        seen_links = set(dirty)
        stack = list(dirty)
        found: dict[Flow, None] = {}
        while stack:
            link = stack.pop()
            for flow in link.flows:
                if flow not in found:
                    found[flow] = None
                    for other in flow.path:
                        if other not in seen_links:
                            seen_links.add(other)
                            stack.append(other)
        return sorted(found, key=lambda f: f._seq)

    def _allocate(self, scope: list[Flow]) -> list[Flow]:
        """Progressive-filling max-min fair rates over ``scope``.

        Settles and reschedules only flows whose allocation changed; an
        undisturbed flow's completion entry stays valid, so the engine heap
        is not flooded with cancellations.  Returns flows that settled to
        zero and completed during the pass.
        """
        self.reallocations += 1
        self.realloc_flow_touches += len(scope)

        unfrozen: dict[Flow, None] = dict.fromkeys(scope)
        residual: dict[Link, float] = {}
        link_unfrozen: dict[Link, dict[Flow, None]] = {}
        for f in unfrozen:
            for link in f.path:
                if link not in residual:
                    residual[link] = link.bandwidth
                link_unfrozen.setdefault(link, {})[f] = None

        rates: dict[Flow, float] = {}
        while unfrozen:
            # Bottleneck link: smallest per-flow fair share among links that
            # still carry unfrozen flows.
            bottleneck = None
            best_share = None
            for link, fset in link_unfrozen.items():
                if not fset:
                    continue
                share = residual[link] / len(fset)
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck = link
            if bottleneck is None:
                break  # all remaining flows have no constraining link
            frozen_now = list(link_unfrozen[bottleneck])
            for f in frozen_now:
                rates[f] = best_share
                unfrozen.pop(f, None)
                for link in f.path:
                    link_unfrozen[link].pop(f, None)
                    if link is not bottleneck:
                        residual[link] -= best_share
            residual[bottleneck] = 0.0
            link_unfrozen[bottleneck].clear()

        engine = self.engine
        drained: list[Flow] = []
        for flow in scope:
            rate = rates.get(flow, 0.0)
            if rate <= 0:
                raise SimulationError(
                    f"flow {flow.label!r} allocated zero rate — disconnected path?")
            if rate == flow.rate and flow._sched is not None:
                # Allocation unchanged: the scheduled completion is still
                # exact, and skipping the settle keeps remaining-bytes
                # arithmetic identical between allocators.
                continue
            self._settle_flow(flow)
            flow.rate = rate
            if flow._sched is not None:
                engine.cancel(flow._sched)
                flow._sched = None
            if flow.remaining <= _flow_eps(flow):
                # Settled to zero at this very instant (its completion was
                # due now): complete it here rather than re-scheduling.
                self._remove(flow)
                flow.done.succeed(flow.size)
                drained.append(flow)
                continue
            eta = flow.remaining / flow.rate
            flow._sched = engine._schedule(eta, lambda f=flow: self._finish_flow(f))
        return drained
