"""Machine instance: nodes, CPUs, NICs, memory controllers, and paths.

A :class:`Machine` turns a :class:`~repro.machines.spec.MachineSpec` plus a
rank count into live simulation objects:

- one :class:`~repro.sim.resources.Resource` per CPU (rank) — compute and
  host-copy work serialises here, which is how a non-zero-copy get steals
  cycles from the remote rank's computation;
- per node: NIC egress and ingress :class:`~repro.sim.network.Link`\\ s and a
  memory-controller link, all shared max-min fairly by concurrent flows;
- path helpers mapping (source rank, destination rank, protocol) to the link
  path a transfer crosses.

Ranks are assigned to nodes in blocks: ranks ``[i*cpn, (i+1)*cpn)`` live on
node ``i``.  *Shared-memory domains* equal nodes on clusters and the whole
machine on scalable shared-memory systems (SGI Altix, Cray X1) — matching the
paper's note that the Altix was treated as a single 128-CPU domain even
though it is built from 2-CPU bricks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..machines.spec import MachineSpec
from .engine import Engine, Event
from .network import FlowNetwork, Link
from .resources import Resource
from .trace import Tracer

__all__ = ["Node", "Machine"]


class Node:
    """One SMP node (or NUMA brick): CPUs + NIC + memory controller."""

    def __init__(self, engine: Engine, index: int, ncpus: int,
                 nic_bandwidth: float, mem_bandwidth: float):
        self.index = index
        self.cpus = [Resource(engine, capacity=1, name=f"node{index}.cpu{i}")
                     for i in range(ncpus)]
        self.nic_out = Link(f"node{index}.nic_out", nic_bandwidth)
        self.nic_in = Link(f"node{index}.nic_in", nic_bandwidth)
        self.mem = Link(f"node{index}.mem", mem_bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} cpus={len(self.cpus)}>"


class Machine:
    """A running simulated machine hosting ``nranks`` processes."""

    def __init__(self, spec: MachineSpec, nranks: int,
                 engine: Optional[Engine] = None,
                 tracer: Optional[Tracer] = None,
                 batched_dispatch: bool = True,
                 fast_forward: bool = True,
                 aggregation: bool = True):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.spec = spec
        self.nranks = nranks
        # Engine-mode switches (all exact; see docs/performance.md,
        # "Scaling to thousands of ranks").  Passing False restores the
        # corresponding step-by-step code path; an externally supplied
        # engine keeps whatever dispatch mode it was built with.
        self.engine = (engine if engine is not None
                       else Engine(batched_dispatch=batched_dispatch))
        self.tracer = tracer if tracer is not None else Tracer()
        self.net = FlowNetwork(self.engine, fast_forward=fast_forward,
                               aggregation=aggregation)
        # OS timeslice for CPU occupancy, set by interference injection
        # (None = compute holds the CPU uninterrupted; daemons then cannot
        # preempt, which is unrealistic under contention).
        self.preemption_quantum: Optional[float] = None
        # Fault injector installed by repro.sim.faults.install_faults
        # (None = healthy machine; every fault hook checks this first so
        # the healthy path schedules the exact pre-fault event sequence).
        self.faults = None
        # Hard-failure state: nodes killed by a NodeCrash plan event, plus
        # listeners (comm runtime, rank supervisor) notified at the kill
        # instant so they can fail in-flight work and interrupt dead ranks.
        self.dead_nodes: set[int] = set()
        self._crash_listeners: list = []
        self._crash_base_bw: dict[int, tuple[float, float, float]] = {}
        # Failure-detection state, installed by install_faults when the
        # plan carries a DetectorConfig / watchdog_grace.  None keeps every
        # caller on the oracle code path (exact pre-detection behaviour).
        self.membership = None  # repro.sim.membership.Membership
        self.watchdog = None    # repro.sim.engine.ProgressWatchdog

        cpn = spec.cpus_per_node
        nnodes = spec.nodes_for(nranks)
        self.nodes: list[Node] = []
        for i in range(nnodes):
            ncpus = min(cpn, nranks - i * cpn)
            self.nodes.append(Node(
                self.engine, i, ncpus,
                nic_bandwidth=spec.network.bandwidth,
                mem_bandwidth=spec.memory.node_bandwidth,
            ))

    # -- topology queries ----------------------------------------------------
    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.spec.cpus_per_node

    def domain_of(self, rank: int) -> int:
        """Shared-memory domain id of ``rank`` (paper: 'cluster locality')."""
        self._check_rank(rank)
        if self.spec.shared_memory_scope == "machine":
            return 0
        return self.node_of(rank)

    def same_domain(self, a: int, b: int) -> bool:
        """True when ranks a and b can reach each other via load/store."""
        return self.domain_of(a) == self.domain_of(b)

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def ranks_in_domain(self, domain: int) -> list[int]:
        """All ranks belonging to a shared-memory domain."""
        if self.spec.shared_memory_scope == "machine":
            if domain != 0:
                raise ValueError("machine-scope has a single domain 0")
            return list(range(self.nranks))
        cpn = self.spec.cpus_per_node
        return [r for r in range(domain * cpn, min((domain + 1) * cpn, self.nranks))]

    @property
    def n_domains(self) -> int:
        if self.spec.shared_memory_scope == "machine":
            return 1
        return len(self.nodes)

    def domain_leader(self, domain: int) -> int:
        """The leader rank of a shared-memory domain (lowest rank).

        The hierarchical algorithm's leader tier and membership
        dissemination both address domains through this rank.
        """
        return self.ranks_in_domain(domain)[0]

    def cpu(self, rank: int) -> Resource:
        """The CPU resource owned by ``rank``."""
        node = self.nodes[self.node_of(rank)]
        return node.cpus[rank % self.spec.cpus_per_node]

    # -- transfer paths ------------------------------------------------------
    def network_path(self, src_rank: int, dst_rank: int) -> list[Link]:
        """Links crossed by a NIC-level transfer from src's memory to dst's."""
        sn, dn = self.node_of(src_rank), self.node_of(dst_rank)
        if sn == dn:
            # Loopback through the node's memory system.
            return [self.nodes[sn].mem]
        return [self.nodes[sn].nic_out, self.nodes[dn].nic_in]

    def shmem_path(self, src_rank: int, dst_rank: int) -> list[Link]:
        """Links crossed by a direct load/store block copy within a domain.

        Same node: the memory controller.  Different nodes of a machine-wide
        shared-memory system: the NUMA fabric between the bricks.
        """
        if not self.same_domain(src_rank, dst_rank):
            raise ValueError(
                f"ranks {src_rank} and {dst_rank} are not in one shared-memory "
                f"domain on {self.spec.name}")
        sn, dn = self.node_of(src_rank), self.node_of(dst_rank)
        if sn == dn:
            return [self.nodes[sn].mem]
        return [self.nodes[sn].nic_out, self.nodes[dn].nic_in]

    # -- cost helpers ----------------------------------------------------------
    def dgemm_time(self, m: int, n: int, k: int, remote_uncached: bool = False) -> float:
        """Seconds one rank spends in the serial kernel for an m*k @ k*n block."""
        return self.spec.cpu.dgemm_time(m, n, k, remote_uncached=remote_uncached)

    def transfer(self, nbytes: float, path: Sequence[Link], latency: float = 0.0,
                 label: str = "") -> Event:
        """Start a flow on the machine's network; returns its completion event.

        Completions feed the progress watchdog when one is armed.  (The
        detector's heartbeat/dissemination flows deliberately bypass this
        method: a stalled computation with a live heartbeat plane must
        still be diagnosed as a stall.)
        """
        ev = self.net.transfer(nbytes, path, latency=latency, label=label)
        if self.watchdog is not None:
            ev.add_callback(self.watchdog.beat)
        return ev

    def cpu_busy(self, rank: int, seconds: float):
        """Occupy simulated time for CPU work ``rank`` performs *now*.

        The single dilation point for straggler injection: with no fault
        plan this is exactly ``yield engine.timeout(seconds)``; with one,
        the plan's straggler windows stretch the wall time.  Returns the
        wall seconds actually spent, so callers can account real elapsed
        time into trace buckets (equal to ``seconds`` when healthy).
        """
        faults = self.faults
        if faults is None:
            yield self.engine.timeout(seconds)
            return seconds
        wall = faults.wall_time(rank, self.engine.now, seconds)
        yield self.engine.timeout(wall)
        if self.watchdog is not None:
            self.watchdog.beat()
        return wall

    # -- hard node failure ---------------------------------------------------
    def on_node_crash(self, fn) -> None:
        """Register ``fn(node_index)`` to run at each node-kill instant.

        Listeners fire in registration order, synchronously inside the
        injector's crash process — before any event scheduled after the
        crash — so they can cancel in-flight transfers deterministically.
        """
        self._crash_listeners.append(fn)

    def kill_node(self, node: int, residual: float = 1e-4) -> None:
        """Hard-fail ``node``: its links crawl at ``residual``, ranks die.

        The links cannot carry literal zero bandwidth (in-flight bytes
        must land so survivors' timeouts race something finite), so the
        NIC and memory controller drop to ``base * residual``.  The CPUs
        are not freed here — the crash listeners interrupt the rank
        processes, whose unwinding releases them.
        """
        if node in self.dead_nodes:
            return
        n = self.nodes[node]
        self._crash_base_bw[node] = (
            n.nic_out.bandwidth, n.nic_in.bandwidth, n.mem.bandwidth)
        self.dead_nodes.add(node)
        for link, base in zip((n.nic_out, n.nic_in, n.mem),
                              self._crash_base_bw[node]):
            self.net.set_bandwidth(link, base * residual)
        for fn in list(self._crash_listeners):
            fn(node)

    def revive_node(self, node: int) -> None:
        """Restore a dead node's links (its ranks stay dead — recovery has
        already reassigned their work; late hardware only helps routing)."""
        if node not in self.dead_nodes:
            return
        self.dead_nodes.discard(node)
        n = self.nodes[node]
        base = self._crash_base_bw.pop(node)
        for link, bw in zip((n.nic_out, n.nic_in, n.mem), base):
            self.net.set_bandwidth(link, bw)

    def node_is_dead(self, node: int) -> bool:
        return node in self.dead_nodes

    def rank_is_dead(self, rank: int) -> bool:
        """True when ``rank`` lives on a node that has hard-failed."""
        return bool(self.dead_nodes) and self.node_of(rank) in self.dead_nodes

    def presumed_dead(self, caller: int, target: int) -> bool:
        """Does ``caller`` *believe* ``target``'s node is gone?

        Without a detector this is the oracle truth (`rank_is_dead`) —
        exactly the PR 5 behaviour.  With one it is ``caller``'s possibly
        stale, possibly wrong membership view: a confirmed-dead node is
        routed around even if it is actually alive (false suspicion), and
        a dead node keeps receiving traffic until detection catches up.
        """
        if self.membership is None:
            return bool(self.dead_nodes) and self.node_of(target) in self.dead_nodes
        return self.membership.sees_unreachable(
            self.node_of(caller), self.node_of(target))

    def notify_confirmed(self, node: int) -> None:
        """Membership confirmed ``node`` dead: act on that *belief*.

        If the node really crashed, the crash listeners fire now — at
        detection time, not the oracle kill instant — failing in-flight
        transfers and releasing robust waits.  If the confirmation is
        false (partitioned-but-alive node), nothing is swept: its traffic
        is slow, not lost, and must be left to complete after heal.
        Listeners are idempotent, so a listener that already ran for this
        node is a no-op.
        """
        if node in self.dead_nodes:
            for fn in list(self._crash_listeners):
                fn(node)

    def replica_of(self, rank: int, spread: int = 0) -> int:
        """A live rank standing in for ``rank``'s data after a crash.

        Replication is *declustered* (chained-declustering style): a dead
        rank's panels have a copy reachable from every surviving node, so
        reconstruction reads spread machine-wide instead of funnelling
        through one buddy NIC.  ``spread`` selects which shard serves a
        particular reader — callers pass their own rank, giving each
        reader a distinct (but deterministic) replica node while keeping
        ``spread=0`` the canonical one-node-over mirror.  Walks
        node-by-node (``+cpus_per_node`` mod nranks) from the selected
        start to the first rank on a live node.
        """
        return self._replica_walk(rank, spread, self.rank_is_dead)

    def replica_for(self, caller: int, rank: int, spread: int = 0) -> int:
        """Like :meth:`replica_of`, but judged by ``caller``'s belief.

        With no detector installed this is oracle :meth:`replica_of`.
        With one, the walk skips nodes ``caller`` presumes dead — so a
        falsely-confirmed node's data is served from replicas, and a
        rejoined node is a valid replica home again.
        """
        if self.membership is None:
            return self._replica_walk(rank, spread, self.rank_is_dead)
        return self._replica_walk(
            rank, spread, lambda r: self.presumed_dead(caller, r))

    def _replica_walk(self, rank: int, spread: int, is_dead) -> int:
        if not is_dead(rank):
            return rank
        cpn = self.spec.cpus_per_node
        r = (rank + cpn * (spread % len(self.nodes))) % self.nranks
        for _ in range(len(self.nodes)):
            r = (r + cpn) % self.nranks
            if not is_dead(r):
                return r
        raise RuntimeError("no live node remains to serve replicas")

    def _check_rank(self, rank: int) -> None:
        if not (0 <= rank < self.nranks):
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Machine {self.spec.name} nranks={self.nranks} "
                f"nodes={len(self.nodes)}>")
