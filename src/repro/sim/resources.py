"""Shared resources for simulated hardware components.

Three primitives cover everything the machine model needs:

- :class:`Resource` — a counted FIFO resource (a CPU core, a DMA engine).
  Requests are granted strictly in arrival order, which models the
  "remote host CPU must stop computing to service a copy" effect that the
  zero-copy experiments (paper Fig. 9) depend on.
- :class:`Mailbox` — an unbounded FIFO channel of messages with blocking
  receive; the MPI layer's matching queues are built on it.
- :class:`TokenBucket` — a counter that processes can wait on to reach a
  threshold; used for barriers and collective completion.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from .engine import Engine, Event, SimulationError

__all__ = ["Resource", "Mailbox", "TokenBucket", "acquire_run_release"]


class Resource:
    """A counted FIFO resource.

    ``capacity`` concurrent holders are allowed; further requests queue in
    strict FIFO order.  A request is an :class:`Event` that succeeds when the
    slot is granted; the holder must call :meth:`release` exactly once.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: deque[Event] = deque()
        # Utilisation accounting: integral of busy slots over time.
        self._busy_integral = 0.0
        self._last_change = engine.now

    # -- accounting ------------------------------------------------------
    def _account(self) -> None:
        now = self.engine.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    def busy_time(self) -> float:
        """Slot-seconds of occupancy so far (capacity-1 → busy seconds)."""
        self._account()
        return self._busy_integral

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # -- protocol ---------------------------------------------------------
    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        self._account()
        ev = self.engine.event(f"{self.name}.request")
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._queue.append(ev)
        return ev

    def cancel(self, ev: Event) -> bool:
        """Withdraw a queued, not-yet-granted request; True if it was queued.

        Needed when the requester is torn down (node crash, cancelled
        protocol): a granted-to-nobody slot would otherwise leak capacity
        the moment a release transfers it to the stale event.
        """
        try:
            self._queue.remove(ev)
            return True
        except ValueError:
            return False

    def release(self) -> None:
        """Release one held slot, granting the next queued request if any."""
        self._account()
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(self)  # slot transfers directly; _in_use unchanged
        else:
            self._in_use -= 1

    def occupy(self, duration: float) -> Generator:
        """Process helper: acquire, hold for ``duration``, release."""
        yield self.request()
        try:
            yield self.engine.timeout(duration)
        finally:
            self.release()


def acquire_run_release(resource: Resource, duration: float) -> Generator:
    """Convenience alias of :meth:`Resource.occupy` usable as a subprocess."""
    yield from resource.occupy(duration)


class Mailbox:
    """Unbounded FIFO message channel with blocking receive and peeking.

    ``recv(match)`` returns the first queued message satisfying ``match``
    (or any message when ``match`` is None); if none is queued, the caller
    blocks until a matching message is put.  Match order follows MPI
    semantics: queued messages are scanned oldest-first.
    """

    def __init__(self, engine: Engine, name: str = "mailbox"):
        self.engine = engine
        self.name = name
        self._messages: deque[Any] = deque()
        self._waiters: deque[tuple[Optional[Callable[[Any], bool]], Event]] = deque()

    def put(self, message: Any) -> None:
        """Deposit a message, waking the oldest matching waiter if any."""
        for i, (match, ev) in enumerate(self._waiters):
            if match is None or match(message):
                del self._waiters[i]
                ev.succeed(message)
                return
        self._messages.append(message)

    def recv(self, match: Optional[Callable[[Any], bool]] = None) -> Event:
        """Return an event yielding the first matching message."""
        for i, msg in enumerate(self._messages):
            if match is None or match(msg):
                del self._messages[i]
                ev = self.engine.event(f"{self.name}.recv")
                ev.succeed(msg)
                return ev
        ev = self.engine.event(f"{self.name}.recv")
        self._waiters.append((match, ev))
        return ev

    def poll(self, match: Optional[Callable[[Any], bool]] = None) -> Optional[Any]:
        """Non-blocking receive: pop and return a match, or None."""
        for i, msg in enumerate(self._messages):
            if match is None or match(msg):
                del self._messages[i]
                return msg
        return None

    def __len__(self) -> int:
        return len(self._messages)


class TokenBucket:
    """A monotone counter processes can wait on.

    Used for barrier/collective completion: each participant ``add``s a
    token; ``wait_for(n)`` fires when the count reaches ``n``.
    """

    def __init__(self, engine: Engine, name: str = "tokens"):
        self.engine = engine
        self.name = name
        self.count = 0
        self._thresholds: list[tuple[int, Event]] = []

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("cannot add negative tokens")
        self.count += n
        fired = [(t, ev) for (t, ev) in self._thresholds if self.count >= t]
        self._thresholds = [(t, ev) for (t, ev) in self._thresholds if self.count < t]
        for _t, ev in fired:
            ev.succeed(self.count)

    def wait_for(self, threshold: int) -> Event:
        ev = self.engine.event(f"{self.name}.wait_for({threshold})")
        if self.count >= threshold:
            ev.succeed(self.count)
        else:
            self._thresholds.append((threshold, ev))
        return ev
