"""Structured tracing and per-rank time accounting.

The tracer answers "where did the time go" questions the paper's analysis
asks: how much of each rank's wall-clock went to computing, to waiting on
communication, to copying buffers.  The overlap benchmarks and the
ablation reports are built on these buckets.

Tracing of individual events is off by default (zero overhead besides the
accounting adds); enable it to get an ordered event log for debugging or
for the example scripts that visualise the pipeline.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["TraceEvent", "Tracer", "TimeBuckets"]

# Canonical accounting buckets; anything else is accepted but not summarised.
BUCKETS = ("compute", "comm_wait", "copy", "mpi_overhead", "sync_wait")


@dataclass
class TraceEvent:
    """One logged happening in the simulation."""

    time: float
    rank: int
    kind: str
    detail: str = ""
    data: Any = None


@dataclass
class TimeBuckets:
    """Accumulated seconds per activity for one rank."""

    compute: float = 0.0
    comm_wait: float = 0.0
    copy: float = 0.0
    mpi_overhead: float = 0.0
    sync_wait: float = 0.0
    other: float = 0.0

    def total(self) -> float:
        return (self.compute + self.comm_wait + self.copy
                + self.mpi_overhead + self.sync_wait + self.other)

    def add(self, bucket: str, dt: float) -> None:
        if bucket in BUCKETS:
            setattr(self, bucket, getattr(self, bucket) + dt)
        else:
            self.other += dt


class Tracer:
    """Collects accounting buckets and (optionally) an ordered event log."""

    def __init__(self, record_events: bool = False):
        self.record_events = record_events
        self.events: list[TraceEvent] = []
        self._buckets: dict[int, TimeBuckets] = defaultdict(TimeBuckets)
        self.counters: dict[str, int] = defaultdict(int)

    # -- accounting --------------------------------------------------------
    def account(self, rank: int, bucket: str, dt: float) -> None:
        """Charge ``dt`` seconds of ``bucket`` activity to ``rank``."""
        if dt < 0:
            raise ValueError(f"negative accounting interval {dt}")
        self._buckets[rank].add(bucket, dt)

    def bump(self, counter: str, n: int = 1) -> None:
        """Increment a named counter (messages sent, gets issued, ...)."""
        self.counters[counter] += n

    def health(self) -> dict[str, int]:
        """Health counters: the ``fault:*`` namespace plus the watchdog's
        ``engine:stalls_diagnosed``.

        Populated only when fault machinery is active: injected get
        failures, retries, reliable-protocol fallbacks, window
        activations, and — with a failure detector installed —
        suspicion/confirmation transitions, epoch-fence rejections, and
        watchdog-diagnosed stalls.  The always-on engine-mode counters
        (``engine:ff_jumps`` etc.) stay out, so an empty dict still
        certifies a run saw no fault machinery at all.
        """
        out = {name[len("fault:"):]: val
               for name, val in self.counters.items()
               if name.startswith("fault:")}
        if "engine:stalls_diagnosed" in self.counters:
            out["stalls_diagnosed"] = self.counters["engine:stalls_diagnosed"]
        return out

    def buckets(self, rank: int) -> TimeBuckets:
        return self._buckets[rank]

    def all_buckets(self) -> dict[int, TimeBuckets]:
        return dict(self._buckets)

    def total(self, bucket: str) -> float:
        """Sum of one bucket across all ranks."""
        return sum(getattr(b, bucket) for b in self._buckets.values())

    # -- event log -----------------------------------------------------------
    def log(self, time: float, rank: int, kind: str, detail: str = "",
            data: Any = None) -> None:
        if self.record_events:
            self.events.append(TraceEvent(time, rank, kind, detail, data))

    def events_of(self, rank: Optional[int] = None,
                  kind: Optional[str] = None) -> list[TraceEvent]:
        """Filter the event log (requires record_events=True)."""
        out: Iterable[TraceEvent] = self.events
        if rank is not None:
            out = (e for e in out if e.rank == rank)
        if kind is not None:
            out = (e for e in out if e.kind == kind)
        return list(out)

    def summary(self) -> dict[str, float]:
        """Machine-wide totals per bucket, plus counters."""
        out: dict[str, float] = {b: self.total(b) for b in BUCKETS}
        out["other"] = sum(b.other for b in self._buckets.values())
        for name, val in self.counters.items():
            out[f"count:{name}"] = val
        return out
