"""Discrete-event simulation substrate.

Public surface:

- :class:`~repro.sim.engine.Engine`, :class:`~repro.sim.engine.Event`,
  :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.Process` —
  the event loop and awaitables.
- :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Mailbox`,
  :class:`~repro.sim.resources.TokenBucket` — hardware-ish shared resources.
- :class:`~repro.sim.network.FlowNetwork`, :class:`~repro.sim.network.Link` —
  max-min fair flow-level network.
- :class:`~repro.sim.cluster.Machine`, :class:`~repro.sim.cluster.Node` —
  a full machine instance built from a :class:`~repro.machines.spec.MachineSpec`.
- :class:`~repro.sim.trace.Tracer` — time accounting and event logs.
- :class:`~repro.sim.faults.FaultPlan`,
  :class:`~repro.sim.faults.FaultInjector` — deterministic fault injection
  (brownouts, outages, stragglers, crashes, partitions, rejoins, seeded
  RMA get failures) plus the heartbeat failure detector.
- :class:`~repro.sim.membership.Membership` — the cluster's imperfect
  failure knowledge (suspicion, confirmation, epochs) when a detector is
  configured.
"""

from .engine import (
    AllOf, AnyOf, Engine, Event, Interrupt, Process, ProgressWatchdog,
    SimulationError, StallError, Timeout,
)
from .network import Flow, FlowNetwork, Link
from .resources import Mailbox, Resource, TokenBucket
from .cluster import Machine, Node
from .interference import InterferencePattern, spawn_daemons
from .faults import (
    DetectorConfig,
    FaultInjector,
    FaultPlan,
    LinkBrownout,
    NetworkPartition,
    NicOutage,
    NodeCrash,
    NodeRejoin,
    StragglerWindow,
    install_faults,
    standard_degraded_plan,
    unit_uniform,
)
from .membership import Membership
from .trace import TimeBuckets, TraceEvent, Tracer

__all__ = [
    "AllOf", "AnyOf", "Engine", "Event", "Interrupt", "Process",
    "ProgressWatchdog", "SimulationError", "StallError", "Timeout",
    "Flow", "FlowNetwork", "Link",
    "Mailbox", "Resource", "TokenBucket",
    "Machine", "Node",
    "InterferencePattern", "spawn_daemons",
    "DetectorConfig", "FaultInjector", "FaultPlan", "LinkBrownout",
    "NetworkPartition", "NicOutage", "NodeCrash", "NodeRejoin",
    "StragglerWindow", "install_faults", "standard_degraded_plan",
    "unit_uniform",
    "Membership",
    "TimeBuckets", "TraceEvent", "Tracer",
]
