"""Discrete-event simulation substrate.

Public surface:

- :class:`~repro.sim.engine.Engine`, :class:`~repro.sim.engine.Event`,
  :class:`~repro.sim.engine.Timeout`, :class:`~repro.sim.engine.Process` —
  the event loop and awaitables.
- :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Mailbox`,
  :class:`~repro.sim.resources.TokenBucket` — hardware-ish shared resources.
- :class:`~repro.sim.network.FlowNetwork`, :class:`~repro.sim.network.Link` —
  max-min fair flow-level network.
- :class:`~repro.sim.cluster.Machine`, :class:`~repro.sim.cluster.Node` —
  a full machine instance built from a :class:`~repro.machines.spec.MachineSpec`.
- :class:`~repro.sim.trace.Tracer` — time accounting and event logs.
"""

from .engine import AllOf, AnyOf, Engine, Event, Interrupt, Process, SimulationError, Timeout
from .network import Flow, FlowNetwork, Link
from .resources import Mailbox, Resource, TokenBucket
from .cluster import Machine, Node
from .interference import InterferencePattern, spawn_daemons
from .trace import TimeBuckets, TraceEvent, Tracer

__all__ = [
    "AllOf", "AnyOf", "Engine", "Event", "Interrupt", "Process",
    "SimulationError", "Timeout",
    "Flow", "FlowNetwork", "Link",
    "Mailbox", "Resource", "TokenBucket",
    "Machine", "Node",
    "InterferencePattern", "spawn_daemons",
    "TimeBuckets", "TraceEvent", "Tracer",
]
