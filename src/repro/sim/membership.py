"""Failure detection and membership: suspicion, confirmation, epochs.

PR 5's crash protocol worked off *oracle* knowledge: the instant a node
died, every survivor knew.  Real clusters only ever **suspect** failure
through missed heartbeats.  This module holds the cluster's imperfect
knowledge — who is suspected, who has been confirmed dead, which
membership *epoch* we are in — separately from the oracle hardware state
(`Machine.dead_nodes`), so the two can disagree: a live node can be
falsely confirmed dead (heartbeats lost or partitioned away), and a dead
node can go undetected for a detection interval.

State machine (per node, at the monitor):

    alive --missed heartbeats--> suspected --confirm_grace more
      ^                            |          silence--> confirmed-dead
      |<--heartbeat arrives--------+  (false suspicion)      |
                                                   rejoin    v
                                          rejoined <--- (sticky: the
                                       (replica target    node's ranks
                                        again, ranks      never return)
                                        stay dead)

Knowledge is **per observer**: the monitor (the leader tier's node-0
leader) detects transitions and disseminates them as real flows on the
simulated network, so each node's *view* lags the monitor by the
dissemination latency and ranks can transiently disagree — exactly the
window in which duplicate work arises.

Epoch fencing makes that duplicate work safe.  Every confirmation (and
rejoin) bumps the membership ``epoch``.  A C-block write-back is stamped
with the **ownership generation** under which the writer's work on that
block began: the original owner stamps the generation it observed at
start (0, normally), and a recovery participant stamps the generation the
recovery *claim* recorded.  Claiming a dead rank's block
(:meth:`Membership.claim`) fences it to the current epoch; an
:meth:`admit_write` with a stale stamp is rejected and counted
(``fault:stale_epoch_rejected``).  Fencing at claim time — not at
confirmation — means a false confirmation that *nobody acts on* leaves
the original owner's commit admissible, so the run stays correct even
when every survivor has already left the recovery phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Machine

__all__ = ["Membership", "ALIVE", "SUSPECTED", "DEAD", "REJOINED"]

ALIVE = "alive"
SUSPECTED = "suspected"
DEAD = "confirmed-dead"
REJOINED = "rejoined"


class _View:
    """One node's (possibly stale) copy of the monitor's membership map."""

    __slots__ = ("version", "epoch", "confirmed", "suspected", "rejoined")

    def __init__(self) -> None:
        self.version = 0
        self.epoch = 0
        self.confirmed: frozenset[int] = frozenset()
        self.suspected: frozenset[int] = frozenset()
        self.rejoined: frozenset[int] = frozenset()


class Membership:
    """The cluster's imperfect failure knowledge and its epoch fence.

    One instance per :class:`~repro.sim.cluster.Machine` when a detector
    is configured (``machine.membership``); ``None`` keeps every caller on
    the exact oracle code path.
    """

    def __init__(self, machine: "Machine", monitor_node: int = 0):
        self.machine = machine
        self.monitor_node = monitor_node
        nnodes = len(machine.nodes)
        #: Authoritative state at the monitor.
        self.state: dict[int, str] = {j: ALIVE for j in range(nnodes)}
        self.version = 0
        self.epoch = 0
        #: Per-rank ownership-generation fence set by recovery claims.
        self._fence: dict[int, int] = {}
        #: Per-node views, updated by dissemination flows.
        self.views: list[_View] = [_View() for _ in range(nnodes)]
        #: Monitor-side transition tallies keyed by node (for RankStats).
        self.suspect_counts: dict[int, int] = {}
        self.false_suspicion_counts: dict[int, int] = {}
        #: Stale write-backs rejected, keyed by the fenced owner rank.
        self.rejected_counts: dict[int, int] = {}

    # -- monitor-side transitions -----------------------------------------
    def suspect(self, node: int) -> bool:
        """alive -> suspected (monitor).  Returns True if it transitioned."""
        if self.state.get(node) != ALIVE:
            return False
        self.state[node] = SUSPECTED
        self.version += 1
        self.suspect_counts[node] = self.suspect_counts.get(node, 0) + 1
        self.machine.tracer.bump("fault:suspected")
        return True

    def clear_suspicion(self, node: int) -> bool:
        """suspected -> alive: a heartbeat arrived; the suspicion was false."""
        if self.state.get(node) != SUSPECTED:
            return False
        self.state[node] = ALIVE
        self.version += 1
        self.false_suspicion_counts[node] = (
            self.false_suspicion_counts.get(node, 0) + 1)
        self.machine.tracer.bump("fault:false_suspicions")
        return True

    def confirm(self, node: int) -> bool:
        """suspected -> confirmed-dead; bumps the membership epoch.

        Sticky: the node's ranks are written off whether or not the node
        actually died (the machine decides what physically follows — see
        :meth:`Machine.notify_confirmed`).
        """
        if self.state.get(node) != SUSPECTED:
            return False
        self.state[node] = DEAD
        self.version += 1
        self.epoch += 1
        self.machine.tracer.bump("fault:confirmed_dead")
        return True

    def rejoin(self, node: int) -> bool:
        """confirmed-dead -> rejoined: the hardware is back as a replica
        target; the ranks stay dead and the epoch bumps again."""
        if self.state.get(node) != DEAD:
            return False
        self.state[node] = REJOINED
        self.version += 1
        self.epoch += 1
        self.machine.tracer.bump("fault:node_rejoin")
        return True

    def snapshot(self) -> tuple[int, int, frozenset, frozenset, frozenset]:
        """The monitor's map, frozen for a dissemination flow's payload."""
        confirmed = frozenset(j for j, s in self.state.items()
                              if s in (DEAD, REJOINED))
        suspected = frozenset(j for j, s in self.state.items()
                              if s == SUSPECTED)
        rejoined = frozenset(j for j, s in self.state.items()
                             if s == REJOINED)
        return (self.version, self.epoch, confirmed, suspected, rejoined)

    # -- dissemination ------------------------------------------------------
    def deliver(self, observer_node: int,
                payload: tuple[int, int, frozenset, frozenset, frozenset]
                ) -> None:
        """Land a dissemination message at ``observer_node``'s view.

        Monotone in ``version``: a reordered older message never rolls a
        view back.
        """
        version, epoch, confirmed, suspected, rejoined = payload
        view = self.views[observer_node]
        if version <= view.version:
            return
        view.version = version
        view.epoch = epoch
        view.confirmed = confirmed
        view.suspected = suspected
        view.rejoined = rejoined

    # -- observer-side queries ---------------------------------------------
    def sees_confirmed(self, observer_node: int, target_node: int) -> bool:
        """Does ``observer_node`` currently believe ``target_node``'s ranks
        are confirmed dead?  (Sticky through rejoin: the ranks stay gone.)"""
        return target_node in self.views[observer_node].confirmed

    def sees_suspected(self, observer_node: int, target_node: int) -> bool:
        return target_node in self.views[observer_node].suspected

    def sees_unreachable(self, observer_node: int, target_node: int) -> bool:
        """Should transfers from ``observer_node`` avoid ``target_node``?

        Confirmed-dead nodes are routed around; a **rejoined** node is a
        valid transfer target again (fresh checkpoint-replica home), and a
        merely *suspected* node keeps receiving traffic — the retry ladder,
        not rerouting, is the answer to suspicion.
        """
        view = self.views[observer_node]
        return (target_node in view.confirmed
                and target_node not in view.rejoined)

    def view_epoch(self, observer_node: int) -> int:
        return self.views[observer_node].epoch

    # -- epoch fencing ------------------------------------------------------
    def claim(self, rank: int) -> int:
        """Fence ``rank``'s block to the current epoch; recovery owns it now.

        Returns the generation (epoch) recovery write-backs must stamp.
        Idempotent: a second claim returns the existing fence.
        """
        if rank not in self._fence:
            self._fence[rank] = self.epoch
        return self._fence[rank]

    def generation(self, rank: int) -> int:
        """The ownership generation a writer starting now would observe."""
        return self._fence.get(rank, 0)

    def admit_write(self, rank: int, stamp: int) -> bool:
        """Epoch fence: admit a write-back for ``rank``'s block iff its
        stamp is not stale.  Rejections are counted — they are the duplicate
        write-backs the fence exists to absorb."""
        if stamp >= self._fence.get(rank, 0):
            return True
        self.rejected_counts[rank] = self.rejected_counts.get(rank, 0) + 1
        self.machine.tracer.bump("fault:stale_epoch_rejected")
        return False

    def fenced_ranks(self) -> list[int]:
        return sorted(self._fence)
