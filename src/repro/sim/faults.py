"""Deterministic, seeded fault injection: brownouts, outages, stragglers.

The paper's overlap claim has a flip side the healthy-machine simulator
cannot show: a pipeline that hides communication behind computation also
*absorbs* transient network degradation and slow CPUs, while synchronous
broadcast pipelines amplify them (every panel waits for the unluckiest
rank).  This module injects that degradation deterministically so the
comparison is exact:

- :class:`FaultPlan` is pure data — frozen dataclasses of absolute-time
  windows plus a seed — picklable across worker processes and canonical
  enough to participate in the content-addressed result-cache key.
- :class:`FaultInjector` applies the plan on the engine clock: brownout /
  outage windows rescale NIC :class:`~repro.sim.network.Link` bandwidth
  (re-settling in-flight flows max-min fairly via
  :meth:`~repro.sim.network.FlowNetwork.set_bandwidth`), straggler windows
  dilate CPU work issued through :meth:`~repro.sim.cluster.Machine.cpu_busy`,
  and seeded draws fail individual remote RMA gets
  (:class:`~repro.comm.base.GetFailedError`, retried by the SRUMMA layer).

Determinism guarantees (``docs/resilience.md``):

1. Same plan + seed => bit-identical simulation, across runs and across
   ``--jobs`` values: every fault event is a function of the plan and the
   engine clock, never of wall time or interpreter state.
2. ``machine.faults is None`` (no plan) is the *exact* pre-fault code
   path: every hook is guarded, so healthy runs schedule the identical
   event sequence they did before fault injection existed.
3. Get-failure and corruption draws hash a per-*(kind, rank)* issue
   counter with splitmix64 (:func:`unit_uniform`) — no ``random.Random``
   state, so each rank's stream is platform-independent, unaffected by
   unrelated code drawing numbers, and unaffected by how many draws any
   *other* rank made.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .engine import Interrupt, Process, ProgressWatchdog
from .membership import ALIVE, SUSPECTED, Membership

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import Machine
    from .network import Link

__all__ = [
    "LinkBrownout",
    "NicOutage",
    "StragglerWindow",
    "NodeCrash",
    "NetworkPartition",
    "NodeRejoin",
    "DetectorConfig",
    "FaultPlan",
    "FaultInjector",
    "install_faults",
    "standard_degraded_plan",
    "unit_uniform",
]

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def unit_uniform(seed: int, n: int) -> float:
    """Deterministic uniform in ``[0, 1)`` for draw ``n`` of stream ``seed``.

    A stateless splitmix64 hash: the value depends only on ``(seed, n)``,
    so fault draws are reproducible whatever else the process computed.
    """
    z = _splitmix64((seed & _MASK64) ^ _splitmix64(n & _MASK64))
    return (z >> 11) * (1.0 / (1 << 53))


def _check_window(what: str, t_start: float, t_end: float) -> None:
    if t_start < 0:
        raise ValueError(f"{what} starts before t=0: {t_start}")
    if t_end <= t_start:
        raise ValueError(f"{what} window [{t_start}, {t_end}] is empty")


@dataclass(frozen=True)
class LinkBrownout:
    """One node's NIC bandwidth multiplied by ``factor`` over a window."""

    node: int
    t_start: float
    t_end: float
    factor: float
    direction: str = "both"
    """``"out"`` (egress), ``"in"`` (ingress), or ``"both"``."""

    def __post_init__(self):
        _check_window("brownout", self.t_start, self.t_end)
        if not (0.0 < self.factor <= 1.0):
            raise ValueError(f"brownout factor must be in (0, 1], got {self.factor}")
        if self.direction not in ("out", "in", "both"):
            raise ValueError(f"unknown brownout direction {self.direction!r}")


@dataclass(frozen=True)
class NicOutage:
    """A (near-)total NIC failure: both directions drop to ``residual``.

    The flow model cannot carry literal zero bandwidth (an in-flight byte
    must land eventually), so an outage is a brownout to a tiny residual
    fraction — transfers crawl rather than stall forever, which also gives
    retry/backoff something to time out against.
    """

    node: int
    t_start: float
    t_end: float
    residual: float = 1e-4

    def __post_init__(self):
        _check_window("outage", self.t_start, self.t_end)
        if not (0.0 < self.residual <= 1.0):
            raise ValueError(f"outage residual must be in (0, 1], got {self.residual}")


@dataclass(frozen=True)
class StragglerWindow:
    """One rank's CPU runs ``slowdown`` times slower over a window."""

    rank: int
    t_start: float
    t_end: float
    slowdown: float

    def __post_init__(self):
        _check_window("straggler", self.t_start, self.t_end)
        if self.slowdown < 1.0:
            raise ValueError(f"straggler slowdown must be >= 1, got {self.slowdown}")


@dataclass(frozen=True)
class NodeCrash:
    """A hard node failure: CPUs, NIC, and memory die at ``t_fail``.

    Unlike an outage, a crash is *permanent* from the algorithms' point of
    view (``t_recover`` optionally revives the links late, but the ranks
    that lived on the node never come back — the run must survive without
    them).  The links drop to a tiny ``residual`` bandwidth rather than
    literal zero for the same reason outages do: the flow model needs
    in-flight bytes to land eventually so survivors' timeouts can race
    something finite.
    """

    node: int
    t_fail: float
    t_recover: Optional[float] = None
    residual: float = 1e-4

    def __post_init__(self):
        if self.t_fail <= 0:
            raise ValueError(f"crash t_fail must be positive, got {self.t_fail}")
        if self.t_recover is not None and self.t_recover <= self.t_fail:
            raise ValueError(
                f"crash t_recover {self.t_recover} must follow t_fail {self.t_fail}")
        if not (0.0 < self.residual <= 1.0):
            raise ValueError(f"crash residual must be in (0, 1], got {self.residual}")


@dataclass(frozen=True)
class NetworkPartition:
    """A link-set cut: the listed nodes lose the network, *nobody dies*.

    The nodes' NIC links drop to ``residual`` bandwidth from ``t_start``
    and heal at ``t_heal``.  On this NIC-level topology that isolates the
    listed nodes from the rest of the machine (and from each other);
    intra-node memory traffic is untouched, so the nodes' ranks keep
    computing.  Unlike a crash nothing is swept: in-flight transfers
    crawl through the residual and complete after heal.  Under a failure
    detector a long enough partition manufactures *false* suspicions —
    the canonical imperfect-detection scenario.
    """

    nodes: tuple[int, ...]
    t_start: float
    t_heal: float
    residual: float = 1e-4

    def __post_init__(self):
        _check_window("partition", self.t_start, self.t_heal)
        if not self.nodes:
            raise ValueError("partition needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"partition lists a node twice: {self.nodes}")
        if not (0.0 < self.residual <= 1.0):
            raise ValueError(
                f"partition residual must be in (0, 1], got {self.residual}")


@dataclass(frozen=True)
class NodeRejoin:
    """A crashed node's hardware returns at ``t_rejoin`` as a *fresh* node.

    The ranks that lived on it never come back (their work was
    reassigned); what rejoins is capacity — the node becomes a valid
    checkpoint-replica and transfer target again.  Requires a detector:
    the rejoin is observed through resumed heartbeats and bumps the
    membership epoch, so write-backs fenced before the rejoin stay
    rejected.  The matching :class:`NodeCrash` must not set
    ``t_recover`` (rejoin supersedes it).
    """

    node: int
    t_rejoin: float

    def __post_init__(self):
        if self.t_rejoin <= 0:
            raise ValueError(
                f"rejoin t_rejoin must be positive, got {self.t_rejoin}")


@dataclass(frozen=True)
class DetectorConfig:
    """Failure-detector knobs: heartbeats, suspicion, confirmation.

    Every node sends a ``heartbeat_bytes`` flow to the monitor (the node-0
    leader) every ``period`` simulated seconds.  The monitor suspects a
    node when its silence exceeds the detector's bound — a fixed
    ``timeout`` in ``"timeout"`` mode, or an adaptive phi-accrual bound in
    ``"phi"`` mode (``phi = silence / (mean_interarrival * ln 10)``
    against ``phi_threshold``, so congestion that slows *everyone's*
    heartbeats raises the bar instead of firing it).  A suspected node
    that stays silent ``confirm_grace`` longer is confirmed dead; a
    heartbeat arriving first clears the (false) suspicion.  Every
    transition is disseminated to all node leaders as real flows, so
    views disagree transiently.
    """

    mode: str = "timeout"
    period: float = 0.002
    timeout: float = 0.01
    confirm_grace: float = 0.005
    phi_threshold: float = 8.0
    heartbeat_bytes: float = 64.0
    dissemination_bytes: float = 64.0
    heartbeat_loss_prob: float = 0.0
    """Per-heartbeat seeded drop probability (per-node splitmix64 stream)
    — the false-positive-rate knob for the detection experiment."""

    def __post_init__(self):
        if self.mode not in ("timeout", "phi"):
            raise ValueError(f"unknown detector mode {self.mode!r}")
        if self.period <= 0:
            raise ValueError(f"detector period must be positive, got {self.period}")
        if self.timeout <= self.period:
            raise ValueError(
                f"detector timeout {self.timeout} must exceed the heartbeat "
                f"period {self.period}")
        if self.confirm_grace < 0:
            raise ValueError(
                f"confirm_grace must be >= 0, got {self.confirm_grace}")
        if self.phi_threshold <= 0:
            raise ValueError(
                f"phi_threshold must be positive, got {self.phi_threshold}")
        if self.heartbeat_bytes <= 0 or self.dissemination_bytes <= 0:
            raise ValueError("heartbeat/dissemination bytes must be positive")
        if not (0.0 <= self.heartbeat_loss_prob < 1.0):
            raise ValueError(
                f"heartbeat_loss_prob must be in [0, 1), got "
                f"{self.heartbeat_loss_prob}")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic description of injected degradation.

    Pure data: nested frozen dataclasses and scalars only, so a plan is
    hashable, picklable (crosses ``run_points`` worker boundaries), and
    canonicalises field-by-field into the result-cache key — a degraded
    run can never collide with a healthy one.
    """

    brownouts: tuple[LinkBrownout, ...] = ()
    outages: tuple[NicOutage, ...] = ()
    stragglers: tuple[StragglerWindow, ...] = ()
    crashes: tuple[NodeCrash, ...] = ()

    get_fail_prob: float = 0.0
    """Per-get probability that a remote-domain RMA get fails (seeded draw
    per issue, not true randomness)."""

    seed: int = 0
    """Stream seed for the get-failure draws."""

    max_retries: int = 3
    """Failed gets are re-issued up to this many times with exponential
    backoff before falling back to the reliable blocking-copy protocol."""

    backoff_base: float = 1e-4
    backoff_factor: float = 2.0
    """Retry ``i`` sleeps ``backoff_base * backoff_factor**i`` simulated
    seconds before re-issuing — deterministic exponential backoff."""

    detect_timeout: float = 1e-4
    """Simulated seconds before an injected get failure is observable (the
    NIC/driver error-detection delay)."""

    get_timeout: Optional[float] = None
    """Optional per-wait bound: a robust wait treats a get still pending
    after this many simulated seconds as failed (None = wait forever)."""

    corruption_rate: float = 0.0
    """Per-get probability that a remote-domain RMA get delivers silently
    corrupted data (a seeded bit flip), detectable only by the ABFT
    checksum layer."""

    checkpoint_interval: int = 4
    """Tasks between in-simulation C-block checkpoints when a crash plan
    is active (lower = less re-execution after a crash, more put traffic)."""

    partitions: tuple[NetworkPartition, ...] = ()
    rejoins: tuple[NodeRejoin, ...] = ()

    detector: Optional[DetectorConfig] = None
    """None = oracle failure knowledge (exact PR 5 behaviour); a config
    replaces it with heartbeat-driven suspicion/confirmation."""

    watchdog_grace: Optional[float] = None
    """Arm the engine progress watchdog: a supervised wait that sees no
    simulation progress at all for this many simulated seconds raises a
    diagnosed StallError instead of hanging (None = no watchdog)."""

    def __post_init__(self):
        if not (0.0 <= self.get_fail_prob <= 1.0):
            raise ValueError(f"get_fail_prob must be in [0, 1], got {self.get_fail_prob}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.detect_timeout < 0:
            raise ValueError(f"detect_timeout must be >= 0, got {self.detect_timeout}")
        if self.get_timeout is not None and self.get_timeout <= 0:
            raise ValueError(f"get_timeout must be positive, got {self.get_timeout}")
        if not (0.0 <= self.corruption_rate <= 1.0):
            raise ValueError(
                f"corruption_rate must be in [0, 1], got {self.corruption_rate}")
        if self.checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}")
        if self.watchdog_grace is not None and self.watchdog_grace <= 0:
            raise ValueError(
                f"watchdog_grace must be positive, got {self.watchdog_grace}")
        seen_crash_nodes = set()
        for c in self.crashes:
            if c.node in seen_crash_nodes:
                raise ValueError(f"node {c.node} crashes more than once")
            seen_crash_nodes.add(c.node)
        for p in self.partitions:
            clash = set(p.nodes) & seen_crash_nodes
            if clash:
                raise ValueError(
                    f"node(s) {sorted(clash)} appear in both a partition and "
                    f"a crash — partition models link loss without death")
        seen_rejoin_nodes = set()
        for rj in self.rejoins:
            if self.detector is None:
                raise ValueError(
                    "node rejoin requires a detector: the rejoin is observed "
                    "through resumed heartbeats and bumps the membership epoch")
            if rj.node in seen_rejoin_nodes:
                raise ValueError(f"node {rj.node} rejoins more than once")
            seen_rejoin_nodes.add(rj.node)
            match = [c for c in self.crashes if c.node == rj.node]
            if not match:
                raise ValueError(
                    f"rejoin node {rj.node} has no matching crash")
            crash = match[0]
            if crash.t_recover is not None:
                raise ValueError(
                    f"rejoin node {rj.node} also sets crash t_recover — "
                    f"rejoin supersedes it; drop t_recover")
            if rj.t_rejoin <= crash.t_fail:
                raise ValueError(
                    f"rejoin at {rj.t_rejoin} must follow the node's crash "
                    f"at {crash.t_fail}")
        if self.detector is not None:
            # The monitor hosts the detector; losing it would mean electing
            # a new one, which this model does not simulate.
            if 0 in seen_crash_nodes:
                raise ValueError(
                    "the monitor node (0) cannot crash while a detector is "
                    "configured")
            for p in self.partitions:
                if 0 in p.nodes:
                    raise ValueError(
                        "the monitor node (0) cannot be partitioned while a "
                        "detector is configured")
        # Straggler windows on one rank must not overlap: the piecewise
        # wall-time walk assumes at most one active slowdown per rank.
        by_rank: dict[int, list[StragglerWindow]] = {}
        for w in self.stragglers:
            by_rank.setdefault(w.rank, []).append(w)
        for rank, windows in by_rank.items():
            windows = sorted(windows, key=lambda w: w.t_start)
            for prev, nxt in zip(windows, windows[1:]):
                if nxt.t_start < prev.t_end:
                    raise ValueError(
                        f"straggler windows overlap on rank {rank}: "
                        f"[{prev.t_start}, {prev.t_end}] and "
                        f"[{nxt.t_start}, {nxt.t_end}]")

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (not self.brownouts and not self.outages
                and not self.stragglers and not self.crashes
                and not self.partitions and not self.rejoins
                and self.detector is None
                and self.watchdog_grace is None
                and self.get_fail_prob == 0.0
                and self.corruption_rate == 0.0)

    def backoff(self, attempt: int) -> float:
        """Backoff delay before re-issue ``attempt`` (0-based)."""
        return self.backoff_base * self.backoff_factor ** attempt

    def describe(self) -> str:
        parts = []
        if self.brownouts:
            parts.append(f"{len(self.brownouts)} brownout(s)")
        if self.outages:
            parts.append(f"{len(self.outages)} outage(s)")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler(s)")
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash(es)")
        if self.partitions:
            parts.append(f"{len(self.partitions)} partition(s)")
        if self.rejoins:
            parts.append(f"{len(self.rejoins)} rejoin(s)")
        if self.detector is not None:
            parts.append(f"detector={self.detector.mode}")
        if self.watchdog_grace is not None:
            parts.append(f"watchdog={self.watchdog_grace:g}s")
        if self.get_fail_prob > 0:
            parts.append(f"get_fail_prob={self.get_fail_prob:g}")
        if self.corruption_rate > 0:
            parts.append(f"corruption_rate={self.corruption_rate:g}")
        return ", ".join(parts) if parts else "no faults"

    # -- JSON round-trip (--fault-plan FILE) -------------------------------
    def to_json_dict(self) -> dict:
        return {
            "brownouts": [dataclasses.asdict(b) for b in self.brownouts],
            "outages": [dataclasses.asdict(o) for o in self.outages],
            "stragglers": [dataclasses.asdict(s) for s in self.stragglers],
            "crashes": [dataclasses.asdict(c) for c in self.crashes],
            "partitions": [{**dataclasses.asdict(p), "nodes": list(p.nodes)}
                           for p in self.partitions],
            "rejoins": [dataclasses.asdict(rj) for rj in self.rejoins],
            "detector": (None if self.detector is None
                         else dataclasses.asdict(self.detector)),
            "watchdog_grace": self.watchdog_grace,
            "get_fail_prob": self.get_fail_prob,
            "seed": self.seed,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "detect_timeout": self.detect_timeout,
            "get_timeout": self.get_timeout,
            "corruption_rate": self.corruption_rate,
            "checkpoint_interval": self.checkpoint_interval,
        }

    @staticmethod
    def _nested(cls_, blob, what: str):
        """Build a nested plan dataclass, rejecting unknown keys clearly
        (a bare ``cls(**blob)`` would raise an opaque TypeError)."""
        if not isinstance(blob, dict):
            raise ValueError(f"a {what} must be a JSON object, got "
                             f"{type(blob).__name__}")
        known = {f.name for f in dataclasses.fields(cls_)}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(f"unknown {what} fields: {sorted(unknown)}")
        kwargs = dict(blob)
        if cls_ is NetworkPartition and "nodes" in kwargs:
            if not isinstance(kwargs["nodes"], (list, tuple)):
                raise ValueError(f"partition nodes must be a list, got "
                                 f"{type(kwargs['nodes']).__name__}")
            kwargs["nodes"] = tuple(kwargs["nodes"])
        return cls_(**kwargs)

    @classmethod
    def from_json_dict(cls, blob: dict) -> "FaultPlan":
        if not isinstance(blob, dict):
            raise ValueError("a fault plan must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {sorted(unknown)}")
        kwargs = dict(blob)
        kwargs["brownouts"] = tuple(
            cls._nested(LinkBrownout, b, "brownout")
            for b in blob.get("brownouts", ()))
        kwargs["outages"] = tuple(
            cls._nested(NicOutage, o, "outage")
            for o in blob.get("outages", ()))
        kwargs["stragglers"] = tuple(
            cls._nested(StragglerWindow, s, "straggler")
            for s in blob.get("stragglers", ()))
        kwargs["crashes"] = tuple(
            cls._nested(NodeCrash, c, "crash")
            for c in blob.get("crashes", ()))
        kwargs["partitions"] = tuple(
            cls._nested(NetworkPartition, p, "partition")
            for p in blob.get("partitions", ()))
        kwargs["rejoins"] = tuple(
            cls._nested(NodeRejoin, rj, "rejoin")
            for rj in blob.get("rejoins", ()))
        det = blob.get("detector")
        kwargs["detector"] = (None if det is None
                              else cls._nested(DetectorConfig, det, "detector"))
        return cls(**kwargs)

    def save(self, path: os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: os.PathLike) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json_dict(json.load(fh))


def standard_degraded_plan(horizon: float, seed: int = 0) -> "FaultPlan":
    """The resilience experiment's canonical brownout+straggler plan.

    ``horizon`` is the slowest algorithm's *healthy* completion time; the
    windows are fractions of it so one plan stresses every algorithm over
    comparable phases of its run.  The brownout deliberately outlives the
    horizon: the degraded runs finish later than the healthy ones, and a
    window that lapsed mid-run would dilute the comparison.  ``seed``
    jitters the window edges (a few percent) so distinct ``--fault-seed``
    values produce visibly distinct — but equally deterministic — plans.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")

    def jit(i: int, width: float = 0.06) -> float:
        return 1.0 + width * (unit_uniform(seed, 0x5EED + i) - 0.5)

    return FaultPlan(
        brownouts=(
            LinkBrownout(node=0, t_start=0.05 * horizon * jit(0),
                         t_end=4.0 * horizon, factor=0.25 * jit(1)),
        ),
        outages=(
            NicOutage(node=1, t_start=0.20 * horizon * jit(2),
                      t_end=0.35 * horizon * jit(3), residual=1e-3),
        ),
        stragglers=(
            StragglerWindow(rank=3, t_start=0.10 * horizon * jit(4),
                            t_end=0.80 * horizon * jit(5),
                            slowdown=1.3 * jit(6)),
        ),
        get_fail_prob=0.01,
        seed=seed,
    )


class FaultInjector:
    """Live plan application: window processes + seeded draws + dilation.

    Created by :func:`install_faults` (one per :class:`Machine`), which
    also sets ``machine.faults`` — the flag every hook in the comm and
    compute layers checks before deviating from the healthy code path.
    """

    def __init__(self, machine: "Machine", plan: FaultPlan):
        nnodes = len(machine.nodes)
        for b in plan.brownouts:
            if not (0 <= b.node < nnodes):
                raise ValueError(f"brownout node {b.node} out of range [0, {nnodes})")
        for o in plan.outages:
            if not (0 <= o.node < nnodes):
                raise ValueError(f"outage node {o.node} out of range [0, {nnodes})")
        for c in plan.crashes:
            if not (0 <= c.node < nnodes):
                raise ValueError(f"crash node {c.node} out of range [0, {nnodes})")
        for p in plan.partitions:
            for node in p.nodes:
                if not (0 <= node < nnodes):
                    raise ValueError(
                        f"partition node {node} out of range [0, {nnodes})")
            if len(set(p.nodes)) >= nnodes:
                raise ValueError("a partition must leave at least one node "
                                 "on the majority side")
        for rj in plan.rejoins:
            if not (0 <= rj.node < nnodes):
                raise ValueError(f"rejoin node {rj.node} out of range [0, {nnodes})")
        for s in plan.stragglers:
            machine._check_rank(s.rank)
        if plan.crashes and len({c.node for c in plan.crashes}) >= nnodes:
            raise ValueError("a crash plan must leave at least one node alive")
        self.machine = machine
        self.plan = plan
        # Detector bookkeeping (monitor side), populated when a detector
        # is configured: last heartbeat-arrival instant and a short window
        # of recent inter-arrival intervals per node (for phi mode), plus
        # the instant each current suspicion was raised.
        self._hb_last: dict[int, float] = {}
        self._hb_intervals: dict[int, list[float]] = {}
        self._suspected_at: dict[int, float] = {}
        # Per-(kind, rank) draw counters: each rank consumes its own
        # splitmix64 stream, so adding draws on one rank never perturbs
        # another rank's failure sequence (stable under --jobs reordering
        # and under topology changes that shift issue interleaving).
        self._draws: dict[tuple[int, int], int] = {}
        # Window bookkeeping: base bandwidth captured at first touch, plus
        # the multiset of active factors per link.  Restoring recomputes
        # base * prod(active) from scratch, so when the last window closes
        # the link is back at its *exact* original bandwidth (no drift from
        # repeated multiply/divide).
        self._base_bw: dict["Link", float] = {}
        self._active: dict["Link", list[float]] = {}
        self._straggle: dict[int, tuple[StragglerWindow, ...]] = {}
        for w in plan.stragglers:
            self._straggle.setdefault(w.rank, ())
        for rank in self._straggle:
            self._straggle[rank] = tuple(sorted(
                (w for w in plan.stragglers if w.rank == rank),
                key=lambda w: w.t_start))

    # -- injector processes ------------------------------------------------
    def start(self) -> list[Process]:
        """Spawn one engine process per fault window; returns them so the
        run's supervisor can interrupt leftovers when the last rank ends."""
        engine = self.machine.engine
        procs = []
        for i, b in enumerate(self.plan.brownouts):
            links = self._nic_links(b.node, b.direction)
            procs.append(engine.spawn(
                self._window(links, b.t_start, b.t_end, b.factor, "brownout"),
                name=f"fault-brownout{i}@node{b.node}"))
        for i, o in enumerate(self.plan.outages):
            links = self._nic_links(o.node, "both")
            procs.append(engine.spawn(
                self._window(links, o.t_start, o.t_end, o.residual, "outage"),
                name=f"fault-outage{i}@node{o.node}"))
        for i, c in enumerate(self.plan.crashes):
            procs.append(engine.spawn(
                self._crash(c), name=f"fault-crash{i}@node{c.node}"))
        for i, p in enumerate(self.plan.partitions):
            procs.append(engine.spawn(
                self._partition(p), name=f"fault-partition{i}"))
        for i, rj in enumerate(self.plan.rejoins):
            procs.append(engine.spawn(
                self._rejoin(rj), name=f"fault-rejoin{i}@node{rj.node}"))
        if self.plan.detector is not None:
            monitor = self.machine.membership.monitor_node
            for node in range(len(self.machine.nodes)):
                if node == monitor:
                    continue
                procs.append(engine.spawn(
                    self._heartbeat(node), name=f"fault-heartbeat@node{node}"))
            procs.append(engine.spawn(self._monitor(), name="fault-monitor"))
        return procs

    @property
    def has_crashes(self) -> bool:
        return bool(self.plan.crashes)

    @property
    def has_detection(self) -> bool:
        return self.plan.detector is not None

    def _crash(self, crash: NodeCrash):
        engine = self.machine.engine
        try:
            yield engine.timeout(crash.t_fail - engine.now)
        except Interrupt:
            return  # run ended before the node died
        self.machine.kill_node(crash.node, residual=crash.residual)
        self.machine.tracer.bump("fault:node_crash")
        if crash.t_recover is None:
            return
        try:
            yield engine.timeout(crash.t_recover - crash.t_fail)
        except Interrupt:
            return  # run ended before recovery; the node stays dead
        self.machine.revive_node(crash.node)
        self.machine.tracer.bump("fault:node_recover")

    def _partition(self, part: NetworkPartition):
        """Cut the listed nodes' NICs to residual; heal on schedule.

        Reuses the multiplicative window machinery (`_apply`/`_clear`), so
        a partition composes with brownouts/outages and restores exact
        base bandwidth when the last window closes.  Never touches
        ``dead_nodes`` or the crash listeners: nothing is swept, ranks
        keep computing, and in-flight transfers crawl through the
        residual until heal.
        """
        engine = self.machine.engine
        links: list["Link"] = []
        for node in part.nodes:
            links.extend(self._nic_links(node, "both"))
        try:
            yield engine.timeout(part.t_start - engine.now)
        except Interrupt:
            return  # run ended before the cut
        for link in links:
            self._apply(link, part.residual)
        self.machine.tracer.bump("fault:partition")
        healed = False
        try:
            yield engine.timeout(part.t_heal - part.t_start)
            healed = True
        except Interrupt:
            pass  # run ended mid-partition; still restore below
        finally:
            for link in links:
                self._clear(link, part.residual)
        if healed:
            self.machine.tracer.bump("fault:partition_healed")

    def _rejoin(self, rejoin: NodeRejoin):
        """Bring a crashed node's hardware back at ``t_rejoin``.

        Only the links revive here; the membership transition (and its
        epoch bump) happens when the monitor hears the node's *resumed
        heartbeats* — rejoin is detected the same imperfect way death is.
        """
        engine = self.machine.engine
        try:
            yield engine.timeout(rejoin.t_rejoin - engine.now)
        except Interrupt:
            return  # run ended before the rejoin
        if not self.machine.node_is_dead(rejoin.node):
            return  # the crash never fired (run ended first)
        self.machine.revive_node(rejoin.node)
        self.machine.tracer.bump("fault:node_recover")

    # -- failure detector ----------------------------------------------------
    def _hb_path(self, src_node: int, dst_node: int):
        """The link path a heartbeat/dissemination flow crosses; flows go
        leader-to-leader (first rank of each node, the leader tier)."""
        cpn = self.machine.spec.cpus_per_node
        return self.machine.network_path(src_node * cpn, dst_node * cpn)

    def _heartbeat(self, node: int):
        """Daemon: ``node``'s leader sends a heartbeat flow every period.

        Fire-and-forget — the sender never blocks on delivery, so a
        partitioned node keeps emitting heartbeats that crawl through the
        residual bandwidth and arrive (very) late.  Flows bypass
        ``Machine.transfer`` so they never feed the progress watchdog: a
        stalled computation with a healthy heartbeat plane is still a
        stall.
        """
        machine = self.machine
        det = self.plan.detector
        monitor = machine.membership.monitor_node
        lat = machine.spec.network.latency
        while True:
            try:
                yield machine.engine.timeout(det.period)
            except Interrupt:
                return  # run ended
            if machine.node_is_dead(node):
                continue  # dead hardware is silent (resumes after rejoin)
            if self._draw(self._HBLOSS_KIND, node, det.heartbeat_loss_prob):
                machine.tracer.bump("fault:heartbeat_lost")
                continue
            ev = machine.net.transfer(
                det.heartbeat_bytes, self._hb_path(node, monitor),
                latency=lat, label=f"heartbeat node{node}")
            ev.add_callback(
                lambda _ev, node=node: self._hb_arrived(node)
                if _ev.ok else None)

    def _hb_arrived(self, node: int) -> None:
        """Monitor-side heartbeat arrival: record it, undo false states."""
        machine = self.machine
        membership = machine.membership
        now = machine.engine.now
        last = self._hb_last.get(node)
        if last is not None:
            window = self._hb_intervals.setdefault(node, [])
            window.append(now - last)
            if len(window) > 16:
                del window[0]
        self._hb_last[node] = now
        if membership.clear_suspicion(node):
            # The node spoke while suspected: the suspicion was false.
            self._suspected_at.pop(node, None)
            self._disseminate()
        elif membership.rejoin(node):
            # A confirmed-dead node spoke: it is back (really rejoined, or
            # falsely confirmed and now healed) — fresh capacity, new epoch.
            self._disseminate()

    def _silence_bound(self, node: int) -> float:
        """Silence (seconds since last heartbeat) that triggers suspicion."""
        det = self.plan.detector
        if det.mode == "timeout":
            return det.timeout
        # Phi-accrual with an exponential inter-arrival model:
        # phi(t) = t_silence / (mean_interarrival * ln 10); suspicion at
        # phi >= threshold.  Congestion that slows everyone's heartbeats
        # grows the observed mean and raises the bound instead of firing.
        window = self._hb_intervals.get(node)
        mean = (sum(window) / len(window)) if window else det.period
        return max(det.phi_threshold * mean * math.log(10.0),
                   2.0 * det.period)

    def _monitor(self):
        """Daemon: the node-0 leader's detector sweep, one pass per period.

        alive -> suspected when silence exceeds the detector bound;
        suspected -> confirmed-dead after ``confirm_grace`` more seconds
        without an arrival (arrivals clear suspicion asynchronously via
        :meth:`_hb_arrived`).  Every transition re-disseminates the map.
        """
        machine = self.machine
        membership = machine.membership
        det = self.plan.detector
        monitor = membership.monitor_node
        engine = machine.engine
        while True:
            try:
                yield engine.timeout(det.period)
            except Interrupt:
                return  # run ended
            now = engine.now
            changed = False
            for node in range(len(machine.nodes)):
                if node == monitor:
                    continue
                silence = now - self._hb_last.get(node, 0.0)
                state = membership.state.get(node)
                if state == ALIVE:
                    if silence > self._silence_bound(node):
                        if membership.suspect(node):
                            self._suspected_at[node] = now
                            changed = True
                elif state == SUSPECTED:
                    held = now - self._suspected_at.get(node, now)
                    if held >= det.confirm_grace:
                        if membership.confirm(node):
                            self._suspected_at.pop(node, None)
                            # Act on the belief (sweep in-flight work) only
                            # if the node actually died — see
                            # Machine.notify_confirmed.
                            machine.notify_confirmed(node)
                            changed = True
            if changed:
                self._disseminate()

    def _disseminate(self) -> None:
        """Push the monitor's membership map to every node leader.

        The monitor's own view updates instantly; every other leader gets
        a real flow, so views lag by network latency (much more for a
        partitioned observer) and ranks disagree transiently.  Delivery
        is version-monotone, so reordered updates cannot roll back.
        """
        machine = self.machine
        membership = machine.membership
        det = self.plan.detector
        monitor = membership.monitor_node
        payload = membership.snapshot()
        membership.deliver(monitor, payload)
        lat = machine.spec.network.latency
        for node in range(len(machine.nodes)):
            if node == monitor or machine.node_is_dead(node):
                continue
            ev = machine.net.transfer(
                det.dissemination_bytes, self._hb_path(monitor, node),
                latency=lat, label=f"membership node{node}")
            ev.add_callback(
                lambda _ev, node=node, payload=payload:
                membership.deliver(node, payload) if _ev.ok else None)

    def _nic_links(self, node: int, direction: str) -> list["Link"]:
        n = self.machine.nodes[node]
        if direction == "out":
            return [n.nic_out]
        if direction == "in":
            return [n.nic_in]
        return [n.nic_out, n.nic_in]

    def _window(self, links, t_start: float, t_end: float, factor: float,
                kind: str):
        engine = self.machine.engine
        try:
            yield engine.timeout(t_start - engine.now)
        except Interrupt:
            return  # run ended before the window opened
        for link in links:
            self._apply(link, factor)
        self.machine.tracer.bump(f"fault:{kind}")
        try:
            yield engine.timeout(t_end - t_start)
        except Interrupt:
            pass  # run ended mid-window; still restore below
        finally:
            for link in links:
                self._clear(link, factor)

    def _apply(self, link: "Link", factor: float) -> None:
        base = self._base_bw.setdefault(link, link.bandwidth)
        active = self._active.setdefault(link, [])
        active.append(factor)
        bw = base
        for f in active:
            bw *= f
        self.machine.net.set_bandwidth(link, bw)

    def _clear(self, link: "Link", factor: float) -> None:
        active = self._active.get(link, [])
        if factor in active:
            active.remove(factor)
        bw = self._base_bw.get(link, link.bandwidth)
        for f in active:
            bw *= f
        self.machine.net.set_bandwidth(link, bw)

    # -- seeded get failures & corruptions ---------------------------------
    _GET_FAIL_KIND = 0xFA11
    _CORRUPT_KIND = 0xC0DE
    _HBLOSS_KIND = 0x4EA7  # heartbeat-drop stream, keyed per *node*

    def _draw(self, kind: int, rank: int, p: float) -> bool:
        """One seeded draw from ``rank``'s private ``kind`` stream.

        The counter always advances (even when ``p`` is zero) so the
        stream position is a pure function of how many draws this rank
        made, never of the probability knobs.  The stream seed folds
        ``(kind, rank)`` into the plan seed with splitmix64, so streams
        are mutually independent: draws on one rank cannot perturb
        another rank's sequence.
        """
        key = (kind, rank)
        n = self._draws.get(key, 0)
        self._draws[key] = n + 1
        if p <= 0.0:
            return False
        stream = _splitmix64(
            (self.plan.seed & _MASK64) ^ _splitmix64((kind << 32) | (rank & 0xFFFFFFFF)))
        return unit_uniform(stream, n) < p

    def draw_get_failure(self, rank: int) -> bool:
        """Seeded per-``rank`` draw for one failable get issue."""
        return self._draw(self._GET_FAIL_KIND, rank, self.plan.get_fail_prob)

    def draw_corruption(self, rank: int) -> bool:
        """Seeded per-``rank`` draw: does this get deliver flipped bits?"""
        return self._draw(self._CORRUPT_KIND, rank, self.plan.corruption_rate)

    # -- straggler dilation -------------------------------------------------
    def wall_time(self, rank: int, start: float, work: float) -> float:
        """Wall seconds ``rank`` needs for ``work`` CPU-seconds from ``start``.

        Walks the rank's (non-overlapping, sorted) straggler windows: work
        inside a window progresses at ``1/slowdown``.  The plan is static,
        so this closed-form walk is equivalent to rescaling the busy
        timeout at every window edge — with one engine event instead of
        one per edge.
        """
        windows = self._straggle.get(rank)
        if not windows or work <= 0.0:
            return work
        t = start
        remaining = work
        wall = 0.0
        for w in windows:
            if remaining <= 0.0:
                break
            if t < w.t_start:
                healthy = min(remaining, w.t_start - t)
                wall += healthy
                t += healthy
                remaining -= healthy
                if remaining <= 0.0:
                    break
            if t < w.t_end:
                # CPU-work achievable before the window closes.
                cap = (w.t_end - t) / w.slowdown
                done = min(remaining, cap)
                wall += done * w.slowdown
                t += done * w.slowdown
                remaining -= done
        return wall + remaining


def install_faults(machine: "Machine", plan: FaultPlan) -> FaultInjector:
    """Attach a plan to a machine; hooks activate via ``machine.faults``.

    A detector config also installs a :class:`~repro.sim.membership.Membership`
    on the machine (switching every failure-knowledge query from the
    oracle to heartbeat-driven views), and ``watchdog_grace`` arms the
    engine :class:`~repro.sim.engine.ProgressWatchdog`.
    """
    if machine.faults is not None:
        raise ValueError("machine already has a fault plan installed")
    injector = FaultInjector(machine, plan)
    machine.faults = injector
    if plan.detector is not None:
        machine.membership = Membership(machine)
    if plan.watchdog_grace is not None:
        machine.watchdog = ProgressWatchdog(
            machine.engine, plan.watchdog_grace, tracer=machine.tracer)
    return injector
