"""Deterministic discrete-event simulation engine.

The engine is the substrate every other subsystem runs on: simulated
processors, NICs, memory controllers and the communication protocols are all
expressed as *processes* — plain Python generators that ``yield`` awaitable
objects (:class:`Timeout`, :class:`Event`, another :class:`Process`, or
combinators such as :class:`AllOf`).  The engine advances a virtual clock and
resumes processes in a deterministic order: events scheduled for the same
simulated time fire in the order they were scheduled (a stable ``(time, seq)``
heap).  Two identical runs are therefore bit-identical, which the property
tests rely on.

This is intentionally SimPy-flavoured but written from scratch so the network
layer can cancel and reschedule in-flight completions when max-min fair
bandwidth shares change (see :mod:`repro.sim.network`).

Example
-------
>>> eng = Engine()
>>> log = []
>>> def worker(name, delay):
...     yield Timeout(delay)
...     log.append((eng.now, name))
...     return name
>>> p1 = eng.spawn(worker("a", 2.0))
>>> p2 = eng.spawn(worker("b", 1.0))
>>> eng.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
>>> p1.value
'a'
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

# Hoisted once: the engine hot loop calls these per scheduled event, and a
# module-global load is measurably cheaper than attribute lookup there.
_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StallError",
    "ProgressWatchdog",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (double-triggering events, etc.)."""


class StallError(SimulationError):
    """A supervised wait saw no simulation progress for a full grace window.

    Raised by :meth:`ProgressWatchdog.supervised_wait` instead of letting a
    livelocked wait (e.g. a reliable-fallback get whose target link crawls
    at residual bandwidth forever) spin silently until ``max_steps``.  The
    message carries the blocked wait's label and, when the watchdog was
    given a ``describe`` hook, a per-rank blocked-state dump.
    """

    def __init__(self, what: str, grace: float, details: list[str]):
        self.what = what
        self.grace = grace
        self.details = list(details)
        dump = ("; ".join(self.details)) if self.details else "<no rank dump>"
        super().__init__(
            f"stall diagnosed: {what or 'wait'} made no progress and nothing "
            f"else in the simulation completed for {grace:g}s — {dump}")


class ProgressWatchdog:
    """Engine-level progress monitor backing the supervised waits.

    ``beat()`` is called by the machine layers whenever *semantic* progress
    happens (a transfer delivered, a CPU busy period retired).  A
    supervised wait races its event against a ``grace`` timeout; if the
    timeout fires **and** no beat landed anywhere in the machine during the
    window, the wait is livelocked — every rank is spinning or crawling —
    and a diagnosed :class:`StallError` replaces the silent hang.

    The watchdog never cancels the supervised event: a reliable-fallback
    transfer must stay in flight (cancelling it would break its cannot-fail
    guarantee); the watchdog only bounds how long the simulation may sit
    with *zero* global progress before failing loudly.
    """

    def __init__(self, engine: "Engine", grace: float,
                 describe: Optional[Callable[[], list[str]]] = None,
                 tracer: Any = None):
        if grace <= 0:
            raise ValueError(f"watchdog grace must be positive, got {grace}")
        self.engine = engine
        self.grace = float(grace)
        self.describe = describe
        self.tracer = tracer
        self.beats = 0
        self.stalls = 0

    def beat(self, _ev: Any = None) -> None:
        """Record one unit of machine progress (usable as an event callback)."""
        self.beats += 1

    def supervised_wait(self, event: Event, what: str = "") -> Generator:
        """Wait on ``event`` under stall supervision (generator).

        Returns the event's value; re-raises its failure.  Raises
        :class:`StallError` if a full grace window passes with the event
        still pending and zero beats machine-wide.
        """
        engine = self.engine
        while True:
            seen = self.beats
            # AnyOf fails fast, so a failing event raises here directly.
            yield engine.any_of([event, engine.timeout(self.grace)])
            if event.triggered:
                if not event.ok:
                    raise event.value
                return event.value
            if self.beats == seen:
                raise self.diagnose(what)

    def diagnose(self, what: str = "") -> StallError:
        """Build (and count) the stall diagnosis without raising it."""
        self.stalls += 1
        if self.tracer is not None:
            self.tracer.bump("engine:stalls_diagnosed")
        details = self.describe() if self.describe is not None else []
        return StallError(what, self.grace, details)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _ScheduledCall:
    """A cancellable callback sitting in the engine's event heap."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn
        self.cancelled = False


class Event:
    """A one-shot event processes can wait on.

    An event starts *pending*; it is completed exactly once with
    :meth:`succeed` (delivering a value) or :meth:`fail` (delivering an
    exception).  Processes yielding a pending event are suspended until it
    completes; yielding an already-completed event resumes the process on the
    next engine step without advancing time.
    """

    __slots__ = ("engine", "_callbacks", "_done", "_ok", "_value", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._callbacks: list[Callable[[Event], None]] = []
        self._done = False
        self._ok = False
        self._value: Any = None

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._done

    @property
    def ok(self) -> bool:
        """True when the event completed via :meth:`succeed`."""
        return self._done and self._ok

    @property
    def value(self) -> Any:
        """The success value, or the failure exception."""
        if not self._done:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._value

    # -- completion ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Complete the event successfully, waking all waiters."""
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._ok = True
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Complete the event with an exception; waiters see it raised."""
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._done = True
        self._ok = False
        self._value = exc
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            # Callbacks run immediately at the current simulated instant; the
            # processes they resume re-enter via the engine scheduler so
            # ordering stays deterministic.
            cb(self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event completes (or now if done)."""
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay.

    Unlike plain events, a timeout schedules itself as soon as a process
    yields it (lazily, so constructing one costs nothing until used).
    """

    __slots__ = ("delay", "_armed")

    def __init__(self, delay: float, value: Any = None, name: str = "timeout"):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Engine binding happens at arm time so Timeout(d) can be written
        # inside process bodies without threading the engine through.
        super().__init__(engine=None, name=name)  # type: ignore[arg-type]
        self.delay = float(delay)
        self._value = value
        self._armed = False

    def _arm(self, engine: "Engine") -> None:
        if self._armed:
            return
        self._armed = True
        self.engine = engine
        # Bound method, not a closure: timeouts are the most common heap
        # entry, and each closure allocation in the hot path costs more
        # than the whole _schedule call.
        engine._schedule(self.delay, self._fire)

    def _fire(self) -> None:
        if not self._done:
            self._done = True
            self._ok = True
            self._dispatch()


class Process(Event):
    """A running generator; completes when the generator returns.

    The generator's ``return`` value becomes the process's event value, so
    ``result = yield some_process`` both joins and collects the result.
    """

    __slots__ = ("gen", "_waiting_on", "_wake_value", "_wake_exc")

    def __init__(self, engine: "Engine", gen: Generator, name: str = "proc"):
        super().__init__(engine, name=name)
        self.gen = gen
        self._waiting_on: Optional[Event] = None
        self._wake_value: Any = None
        self._wake_exc: Optional[BaseException] = None
        engine._schedule(0.0, self._start)

    def _start(self) -> None:
        self._resume(None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A process blocked on an event is detached from it and resumed with
        the interrupt; the event itself is unaffected and may still fire.
        """
        if self._done:
            return
        target = self._waiting_on
        if target is not None:
            self._waiting_on = None
            # Leave a tombstone: when the original event fires, this process
            # is no longer resumed by it.
        self.engine._schedule(0.0, lambda: self._resume(None, Interrupt(cause)))

    def _resume(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self._done:
            return
        engine = self.engine
        engine._active = self
        try:
            while True:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    target = self.gen.throw(exc)
                else:
                    target = self.gen.send(send_value)
                target = _as_event(engine, target)
                if target.triggered:
                    if target.ok:
                        send_value = target.value
                        continue
                    throw_exc = target.value
                    continue
                self._waiting_on = target
                # Bound methods, not closures: one wait used to allocate an
                # ``on_done`` closure plus a resume lambda; the wake payload
                # now travels through two slots instead.  A process waits on
                # one event at a time and the stored payload is consumed by
                # the very next _wake, so the slots cannot be clobbered.
                target.add_callback(self._on_wait_done)
                return
        except StopIteration as stop:
            self._done = True
            self._ok = True
            self._value = stop.value
            self._dispatch()
        except BaseException as exc:  # noqa: BLE001 - failure is the payload
            self._done = True
            self._ok = False
            self._value = exc
            had_observers = bool(self._callbacks)
            self._dispatch()
            if not had_observers and not engine._suppress_crash(self):
                raise
        finally:
            engine._active = None

    def _on_wait_done(self, ev: Event) -> None:
        if self._waiting_on is not ev:
            return  # interrupted while waiting; stale wakeup
        self._waiting_on = None
        if ev.ok:
            self._wake_value = ev.value
            self._wake_exc = None
        else:
            self._wake_value = None
            self._wake_exc = ev.value
        self.engine._schedule(0.0, self._wake)

    def _wake(self) -> None:
        value, exc = self._wake_value, self._wake_exc
        self._wake_value = self._wake_exc = None
        self._resume(value, exc)


class AllOf(Event):
    """Succeeds when all child events succeed; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = "all_of"):
        super().__init__(engine, name=name)
        self._children = [_as_event(engine, ev) for ev in events]
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._children:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._done:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds when the first child completes; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, engine: "Engine", events: Iterable[Event], name: str = "any_of"):
        super().__init__(engine, name=name)
        self._children = [_as_event(engine, ev) for ev in events]
        if not self._children:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._children):
            ev.add_callback(lambda e, i=i: self._child_done(i, e))

    def _child_done(self, index: int, ev: Event) -> None:
        if self._done:
            return
        if ev.ok:
            self.succeed((index, ev.value))
        else:
            self.fail(ev.value)


def _as_event(engine: "Engine", target: Any) -> Event:
    """Coerce a yielded object to an engine-bound event."""
    if isinstance(target, Timeout):
        target._arm(engine)
        return target
    if isinstance(target, Event):
        if target.engine is None:
            target.engine = engine
        return target
    if isinstance(target, Generator):
        return engine.spawn(target)
    raise TypeError(f"process yielded non-awaitable {target!r}")


class Engine:
    """The event loop: a stable priority queue over ``(time, seq)``.

    Parameters
    ----------
    trace:
        Optional callable ``(time, kind, detail)`` invoked for engine-level
        happenings; the richer structured tracing lives in
        :mod:`repro.sim.trace`.
    """

    #: Compaction is considered once the heap holds more dead entries than
    #: this floor; below it the garbage is too small to be worth a rebuild.
    COMPACT_FLOOR = 64

    def __init__(self, trace: Optional[Callable[[float, str, str], None]] = None,
                 batched_dispatch: bool = True):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, _ScheduledCall]] = []
        self._seq = 0
        self._active: Optional[Process] = None
        self._trace = trace
        self._crashed: list[Process] = []
        self._step_count = 0
        self._live = 0          # non-cancelled entries currently in the heap
        self._compactions = 0
        self._running = False   # True while run() is executing callbacks
        # Batched dispatch: drain every entry sharing the top timestamp in
        # one loop pass instead of one peek-pop round trip per event.  Seqs
        # are globally monotone, so anything a cohort callback schedules at
        # the same instant sorts after every drained entry — firing the
        # drained run to completion and then re-checking the heap preserves
        # the exact (time, seq) order of one-at-a-time dispatch.
        self._batched = batched_dispatch
        self._batches = 0

    # -- scheduling ------------------------------------------------------
    def _schedule(self, delay: float, fn: Callable[[], None]) -> _ScheduledCall:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        call = _ScheduledCall(fn)
        seq = self._seq + 1
        self._seq = seq
        _heappush(self._heap, (self.now + delay, seq, call))
        self._live += 1
        return call

    def cancel(self, call: _ScheduledCall) -> None:
        """Cancel a scheduled callback.

        The heap entry is left in place as a tombstone and skipped on pop;
        when tombstones outnumber live entries the heap is compacted in one
        O(n) rebuild, so a cancel-heavy workload (the flow network
        rescheduling completions) cannot grow the heap without bound.
        """
        if call.cancelled:
            return
        call.cancelled = True
        self._live -= 1
        dead = len(self._heap) - self._live
        if dead > self.COMPACT_FLOOR and dead > self._live:
            self._compact()

    def _compact(self) -> None:
        # (time, seq) keys are unique, so heapify of the filtered list pops
        # in exactly the same order as the original heap would have.  The
        # list is filtered *in place* (slice assignment) because run()
        # holds a local alias to it across callback invocations.
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._compactions += 1

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event bound to this engine."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create (and arm) a timeout bound to this engine."""
        t = Timeout(delay, value)
        t._arm(self)
        return t

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a generator as a process; returns its completion event."""
        if not isinstance(gen, Generator):
            raise TypeError(f"spawn() needs a generator, got {type(gen).__name__}")
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def _suppress_crash(self, proc: Process) -> bool:
        # A process that dies with no observers is a hard error by default;
        # run(raise_crashes=False) collects them instead (used by failure-
        # injection tests).
        self._crashed.append(proc)
        return self._collect_crashes

    _collect_crashes = False

    # -- running ----------------------------------------------------------
    def run(self, until: Optional[float] = None, max_steps: int = 50_000_000,
            raise_crashes: bool = True) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the final simulated time.  ``max_steps`` is a runaway guard:
        exceeding it raises :class:`SimulationError`.
        """
        self._collect_crashes = not raise_crashes
        self._running = True
        # Hot-loop hoists: the heap list is aliased once (_compact filters
        # it in place, so the alias survives compaction), heappop is a
        # module global, and the step counter runs in a local that is
        # written back in the finally block.  ``self.now`` and ``_live``
        # stay attribute-resident because callbacks read them mid-run.
        heap = self._heap
        pop = _heappop
        steps = self._step_count
        batched = self._batched
        try:
            while heap:
                t, _seq, call = heap[0]
                if until is not None and t > until:
                    self.now = until
                    break
                pop(heap)
                if call.cancelled:
                    continue
                if t < self.now - 1e-12:
                    raise SimulationError("event heap time went backwards")
                self.now = t
                if batched and heap and heap[0][0] == t:
                    # Same-timestamp cohort: drain it with consecutive pops
                    # now, then fire in (already sorted) seq order.  Entries
                    # are NOT pre-marked dead — a cohort member may cancel a
                    # later member, and that cancel must still take effect —
                    # so each is claimed (cancelled + live decrement) just
                    # before its callback runs.
                    batch = [call]
                    while heap and heap[0][0] == t:
                        nxt = pop(heap)[2]
                        if not nxt.cancelled:
                            batch.append(nxt)
                    self._batches += 1
                    for c in batch:
                        if c.cancelled:
                            continue
                        c.cancelled = True
                        self._live -= 1
                        steps += 1
                        if steps > max_steps:
                            raise SimulationError(
                                f"exceeded {max_steps} engine steps"
                                + self._crash_detail())
                        c.fn()
                    continue
                # Mark the entry dead *before* firing: it has left the heap,
                # so a later cancel() of this call must be a no-op (it would
                # otherwise corrupt the live-entry counter).
                call.cancelled = True
                self._live -= 1
                steps += 1
                if steps > max_steps:
                    raise SimulationError(
                        f"exceeded {max_steps} engine steps"
                        + self._crash_detail())
                call.fn()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._step_count = steps
            self._running = False
            self._collect_crashes = False
        return self.now

    def _crash_detail(self) -> str:
        """Debug suffix for runaway-guard errors: a simulation that spins
        past ``max_steps`` after a process crashed unobserved almost always
        spins *because* of that crash (e.g. a fault-injection test whose
        peers poll for a rank that died), so surface the first crash's name
        and traceback instead of leaving only a step count."""
        if not self._crashed:
            return ""
        import traceback

        first = self._crashed[0]
        exc = first.value
        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        others = (f" (and {len(self._crashed) - 1} more)"
                  if len(self._crashed) > 1 else "")
        return (f"; process {first.name!r} crashed unobserved{others}:\n{tb}")

    @property
    def crashed_processes(self) -> list[Process]:
        """Processes that died unobserved during ``run(raise_crashes=False)``."""
        return list(self._crashed)

    @property
    def pending_events(self) -> int:
        """Number of live entries in the heap (cancelled entries excluded).

        O(1): backed by a counter maintained at schedule/cancel/pop time.
        """
        return self._live

    @property
    def steps(self) -> int:
        """Callbacks executed so far (profiling/test counter)."""
        return self._step_count

    @property
    def compactions(self) -> int:
        """Lazy heap compactions performed so far."""
        return self._compactions

    @property
    def dispatch_batches(self) -> int:
        """Same-timestamp cohorts drained in one loop pass (batched mode)."""
        return self._batches
