"""System-daemon interference injection (paper §2's asynchrony claim).

The paper argues SRUMMA's lack of sender-receiver synchronisation makes it
"more suited for the execution environments where the computational threads
share a CPU with other processes and system daemons (e.g., on commodity
clusters)", because "synchronization amplifies performance degradations due
to the nonexclusive use of the processor".

This module injects that environment: per-CPU *daemon* processes that
periodically seize the CPU resource for short bursts, FIFO-preempting
whatever computation is queued behind them.  Burst arrival is a
deterministic pseudo-Poisson process seeded per CPU, so different CPUs
stall at different instants — which is exactly what synchronised
algorithms amplify (every barrier or shift waits for the unluckiest rank
of that round) and an asynchronous one-sided algorithm merely absorbs.

Usage::

    pattern = InterferencePattern(load=0.05, mean_burst=1e-3, seed=1)
    run = run_parallel(spec, nranks, rank_fn, interference=pattern)

The injected daemons live only while application ranks run; a supervisor
interrupts them when the last rank finishes so the simulation drains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional

from .cluster import Machine
from .engine import Interrupt, Process

__all__ = ["InterferencePattern", "spawn_daemons"]


@dataclass(frozen=True)
class InterferencePattern:
    """Statistical description of per-CPU daemon activity."""

    load: float = 0.02
    """Fraction of each CPU stolen on average (0.02 = 2%, a realistic
    commodity-cluster daemon load)."""

    mean_burst: float = 1e-3
    """Mean CPU seconds per daemon burst (exponentially distributed)."""

    seed: int = 0
    """Base seed; each CPU derives its own stream, so bursts across CPUs
    are independent (the variance synchronised algorithms amplify)."""

    quantum: float = 2e-3
    """OS timeslice: computation re-queues for its CPU every ``quantum``
    seconds so daemons can actually preempt (FIFO interleave)."""

    def __post_init__(self):
        if not (0.0 <= self.load < 1.0):
            raise ValueError(f"load must be in [0, 1), got {self.load}")
        if self.mean_burst <= 0:
            raise ValueError(f"mean_burst must be positive, got {self.mean_burst}")
        if self.quantum <= 0:
            raise ValueError(f"quantum must be positive, got {self.quantum}")

    @property
    def mean_gap(self) -> float:
        """Mean idle seconds between bursts for the requested load."""
        if self.load == 0:
            return float("inf")
        return self.mean_burst * (1.0 - self.load) / self.load


def _daemon(machine: Machine, rank: int,
            pattern: InterferencePattern) -> Generator:
    """One CPU's daemon: exponential(gap) sleep, exponential(burst) steal."""
    rng = random.Random((pattern.seed << 20) ^ (rank * 2654435761 % 2**31))
    engine = machine.engine
    cpu = machine.cpu(rank)
    try:
        while True:
            yield engine.timeout(rng.expovariate(1.0 / pattern.mean_gap))
            burst = rng.expovariate(1.0 / pattern.mean_burst)
            yield cpu.request()
            try:
                yield engine.timeout(burst)
            finally:
                cpu.release()
    except Interrupt:
        return


def spawn_daemons(machine: Machine,
                  pattern: Optional[InterferencePattern]) -> list[Process]:
    """Start one daemon per CPU; returns their processes (for interrupts).

    ``pattern=None`` or zero load spawns nothing.
    """
    if pattern is None or pattern.load == 0.0:
        return []
    machine.preemption_quantum = pattern.quantum
    return [
        machine.engine.spawn(_daemon(machine, rank, pattern),
                             name=f"daemon@{rank}")
        for rank in range(machine.nranks)
    ]
