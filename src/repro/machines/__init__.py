"""Platform models: machine specification dataclasses and the paper's four machines."""

from .spec import CpuSpec, MachineSpec, MemorySpec, NetworkSpec
from .platforms import (
    CRAY_X1,
    IBM_SP,
    IDEAL,
    INFINIBAND,
    LINUX_MYRINET,
    PLATFORMS,
    SGI_ALTIX,
    get_platform,
)

__all__ = [
    "CpuSpec", "MachineSpec", "MemorySpec", "NetworkSpec",
    "CRAY_X1", "IBM_SP", "IDEAL", "INFINIBAND", "LINUX_MYRINET", "PLATFORMS", "SGI_ALTIX",
    "get_platform",
]
