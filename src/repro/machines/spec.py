"""Machine specification dataclasses.

A :class:`MachineSpec` captures everything the simulator needs to know about
a platform: how fast its serial ``dgemm`` kernel runs, how its nodes are laid
out, what the interconnect costs, and which communication protocols the
hardware supports (zero-copy NICs, cacheable remote loads, machine-wide
shared memory).

The four platform instances from the paper live in
:mod:`repro.machines.platforms`; the fields here are what their calibration
notes refer to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

__all__ = ["CpuSpec", "NetworkSpec", "MemorySpec", "MachineSpec"]


@dataclass(frozen=True)
class CpuSpec:
    """Serial kernel model for one processor.

    ``dgemm`` time for an ``m x k`` by ``k x n`` product is::

        2*m*n*k / (flops * efficiency(min_dim))

    where ``efficiency(b) = peak_efficiency * b / (b + small_block_knee)`` —
    a saturating curve: tiny blocks run far below peak (loop overhead, no
    cache blocking), large blocks approach ``peak_efficiency`` of ``flops``.
    """

    flops: float
    """Peak floating-point rate of one processor, FLOP/s."""

    peak_efficiency: float = 0.90
    """Fraction of peak the vendor dgemm reaches on large blocks."""

    small_block_knee: int = 32
    """Block dimension at which efficiency is half of peak_efficiency."""

    uncached_remote_factor: float = 1.0
    """Kernel speed multiplier when operands live in remote non-cacheable
    memory (Cray X1 direct-access flavour). 1.0 = no penalty."""

    def dgemm_rate(self, m: int, n: int, k: int, remote_uncached: bool = False) -> float:
        """Effective FLOP/s for a single block product."""
        b = max(1, min(m, n, k))
        eff = self.peak_efficiency * b / (b + self.small_block_knee)
        rate = self.flops * eff
        if remote_uncached:
            rate *= self.uncached_remote_factor
        return rate

    def dgemm_time(self, m: int, n: int, k: int, remote_uncached: bool = False) -> float:
        """Seconds to run one ``m x k @ k x n`` block product."""
        if min(m, n, k) == 0:
            return 0.0
        return (2.0 * m * n * k) / self.dgemm_rate(m, n, k, remote_uncached)


@dataclass(frozen=True)
class NetworkSpec:
    """Interconnect model between nodes (or NUMA bricks)."""

    latency: float
    """One-way message latency in seconds (the t_s of §2.1) for MPI send."""

    bandwidth: float
    """Per-NIC (per node, per direction) bandwidth in bytes/s."""

    rma_latency: float = 0.0
    """Startup latency of an RMA get (request + reply makes it higher than a
    send for short messages — paper §4.1). Defaults to 2x latency if 0."""

    zero_copy: bool = True
    """True when the NIC moves payload without host CPU involvement
    (Myrinet GM); False when the remote host must copy (IBM LAPI)."""

    host_copy_bandwidth: float = 0.0
    """Bytes/s the host CPU achieves when copying payload between user and
    DMA buffers (used when zero_copy is False, or when the zero-copy
    protocol is explicitly disabled, paper Fig. 9)."""

    eager_threshold: int = 16 * 1024
    """MPI eager->rendezvous protocol switch in bytes (paper Fig. 7)."""

    mpi_overhead: float = 1e-6
    """Per-message MPI software overhead in seconds on top of latency."""

    rendezvous_handshake: float = 0.0
    """Extra round-trip cost of the rendezvous RTS/CTS; defaults to
    2x latency if 0."""

    sg_overhead: float = 0.0
    """Per-segment startup cost of *strided* (non-contiguous) RMA
    transfers, seconds per additional segment.  Zero models a NIC with
    full hardware scatter/gather; software-descriptor NICs pay per row of
    a sub-block section (ARMCI's strided get/put, the 'Aggregate' in its
    name)."""

    def __post_init__(self):
        if self.rma_latency == 0.0:
            object.__setattr__(self, "rma_latency", 2.0 * self.latency)
        if self.rendezvous_handshake == 0.0:
            object.__setattr__(self, "rendezvous_handshake", 2.0 * self.latency)
        if self.host_copy_bandwidth == 0.0:
            object.__setattr__(self, "host_copy_bandwidth", 2.0 * self.bandwidth)


@dataclass(frozen=True)
class MemorySpec:
    """Intra-node memory system."""

    copy_bandwidth: float
    """Single-stream memcpy bandwidth within a node, bytes/s."""

    node_bandwidth: float = 0.0
    """Aggregate per-node memory bandwidth shared by concurrent copies;
    defaults to copy_bandwidth * 2 if 0."""

    remote_cacheable: bool = True
    """Whether remote shared memory can be cached locally. True on SGI Altix
    (direct access works well), False on Cray X1 (copy first, paper §3.2)."""

    shmem_latency: float = 5e-7
    """Startup cost of an intra-domain block copy (cache-line fill etc.)."""

    def __post_init__(self):
        if self.node_bandwidth == 0.0:
            object.__setattr__(self, "node_bandwidth", 2.0 * self.copy_bandwidth)


@dataclass(frozen=True)
class MachineSpec:
    """One platform: topology + CPU + network + memory models."""

    name: str
    cpus_per_node: int
    cpu: CpuSpec
    network: NetworkSpec
    memory: MemorySpec

    shared_memory_scope: Literal["node", "machine"] = "node"
    """'node': shared memory domains are the SMP nodes (clusters).
    'machine': the whole machine is one shared-memory domain (SGI Altix,
    Cray X1) — every rank can load/store every other rank's memory."""

    mpi_shared_memory_aware: bool = True
    """Whether the MPI library routes intra-node messages through shared
    memory (still with copy overheads) instead of the NIC."""

    description: str = ""

    def __post_init__(self):
        if self.cpus_per_node < 1:
            raise ValueError("cpus_per_node must be >= 1")

    # -- convenience -----------------------------------------------------
    def nodes_for(self, nranks: int) -> int:
        """Number of nodes needed to host ``nranks`` processes."""
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        return -(-nranks // self.cpus_per_node)

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Return a copy with top-level fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def with_network(self, **kwargs) -> "MachineSpec":
        """Return a copy with network fields replaced (for ablations)."""
        return replace(self, network=replace(self.network, **kwargs))

    def with_cpu(self, **kwargs) -> "MachineSpec":
        return replace(self, cpu=replace(self.cpu, **kwargs))

    def with_memory(self, **kwargs) -> "MachineSpec":
        return replace(self, memory=replace(self.memory, **kwargs))
