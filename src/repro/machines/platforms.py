"""Calibrated models of the paper's four platforms.

Calibration notes
-----------------
Absolute rates are set from the hardware the paper names (§4) and from
published microbenchmark numbers of the era; they put simulated GFLOP/s in
the right magnitude, but the reproduction asserts *shape* (who wins, ratios,
crossovers), not absolute numbers — see EXPERIMENTS.md.

- **Linux cluster**: dual 2.4 GHz Intel Xeon nodes (peak 4.8 GFLOP/s/CPU,
  MKL dgemm ~70% of peak), Myrinet-2000 (~240 MB/s per NIC, ~8 us latency,
  GM zero-copy RMA).  ARMCI get has a request/reply startup, hence the
  higher rma_latency (paper §4.1 notes get latency exceeds send/recv for
  short messages).
- **IBM SP**: 16-way 375 MHz Power3 nodes (peak 1.5 GFLOP/s/CPU, ESSL close
  to peak), Colony switch (~350 MB/s/node, ~17 us).  LAPI is *not*
  zero-copy: the remote host CPU copies between user and DMA buffers
  (paper §4.1), and AIX interrupt processing makes LAPI get latency high.
- **Cray X1**: 4 MSPs per node, 12.8 GFLOP/s peak per MSP, very fast
  partitioned global memory.  Remote memory is load/store-accessible but
  NOT cacheable (paper §3.2), so the direct-access kernel runs far below
  peak — the copy-based flavour wins (Fig. 5).  Vector dgemm needs large
  blocks (large efficiency knee).
- **SGI Altix 3000**: 128 x 1.5 GHz Itanium-2 (6 GFLOP/s peak), NUMAlink
  fabric between 2-CPU bricks (~1.6 GB/s per link, ~1.5 us).  Remote memory
  IS cacheable, so direct access is the better flavour (Fig. 5), with a
  mild NUMA penalty on kernel rate for remote operands.
"""

from __future__ import annotations

from .spec import CpuSpec, MachineSpec, MemorySpec, NetworkSpec

__all__ = [
    "LINUX_MYRINET",
    "IBM_SP",
    "CRAY_X1",
    "SGI_ALTIX",
    "INFINIBAND",
    "PLATFORMS",
    "IDEAL",
    "get_platform",
]

KB = 1024
MB = 1e6
GB = 1e9

LINUX_MYRINET = MachineSpec(
    name="linux-myrinet",
    description="Beowulf cluster: dual 2.4 GHz Xeon nodes, Myrinet-2000 (GM)",
    cpus_per_node=2,
    cpu=CpuSpec(
        flops=4.8 * GB,
        peak_efficiency=0.70,
        small_block_knee=24,
    ),
    network=NetworkSpec(
        latency=8e-6,
        bandwidth=240 * MB,
        rma_latency=15e-6,
        zero_copy=True,
        host_copy_bandwidth=600 * MB,
        eager_threshold=16 * KB,
        mpi_overhead=1.5e-6,
        sg_overhead=0.4e-6,  # GM: one descriptor per row of a sub-block
    ),
    memory=MemorySpec(
        copy_bandwidth=1.2 * GB,
        node_bandwidth=2.4 * GB,
        remote_cacheable=True,
    ),
    shared_memory_scope="node",
)

IBM_SP = MachineSpec(
    name="ibm-sp",
    description="IBM SP: 16-way 375 MHz Power3 nodes, Colony switch, LAPI",
    cpus_per_node=16,
    cpu=CpuSpec(
        flops=1.5 * GB,
        peak_efficiency=0.87,
        small_block_knee=16,
    ),
    network=NetworkSpec(
        latency=17e-6,
        bandwidth=350 * MB,
        # AIX interrupt processing makes LAPI get startup expensive (§4.1).
        rma_latency=45e-6,
        zero_copy=False,
        host_copy_bandwidth=500 * MB,
        eager_threshold=16 * KB,
        mpi_overhead=2.0e-6,
        sg_overhead=1.0e-6,  # LAPI vector transfers: per-segment software cost
    ),
    memory=MemorySpec(
        copy_bandwidth=1.0 * GB,
        node_bandwidth=8.0 * GB,
        remote_cacheable=True,
    ),
    shared_memory_scope="node",
)

CRAY_X1 = MachineSpec(
    name="cray-x1",
    description="Cray X1: 4 MSPs/node, globally addressable non-cacheable memory",
    cpus_per_node=4,
    cpu=CpuSpec(
        flops=12.8 * GB,
        peak_efficiency=0.85,
        small_block_knee=150,  # vector pipes want long vectors
        uncached_remote_factor=0.25,  # direct access to remote memory bypasses cache
    ),
    network=NetworkSpec(
        latency=3e-6,
        bandwidth=12.0 * GB,
        rma_latency=4e-6,  # a remote load/store engine, not request/reply software
        zero_copy=True,
        host_copy_bandwidth=8.0 * GB,
        eager_threshold=16 * KB,
        # MPI on the X1 layers software messaging over the global memory:
        # per-message cost is high relative to direct load/store (§4, Fig. 6),
        # and the scalar unit running the MPI stack is slow relative to the
        # vector pipes.
        mpi_overhead=25e-6,
    ),
    memory=MemorySpec(
        # Vectorised block copies run near the streams rate; the MPI
        # library's scalar staging copies (host_copy_bandwidth above) are
        # far slower — the Fig. 6 gap.
        copy_bandwidth=16.0 * GB,
        node_bandwidth=40.0 * GB,
        remote_cacheable=False,  # the Fig. 5 mechanism: copy flavour wins
    ),
    shared_memory_scope="machine",
)

SGI_ALTIX = MachineSpec(
    name="sgi-altix",
    description="SGI Altix 3000: 128x 1.5 GHz Itanium-2, NUMAlink, ccNUMA",
    cpus_per_node=2,  # 2-CPU bricks; the whole machine is one shmem domain
    cpu=CpuSpec(
        flops=6.0 * GB,
        peak_efficiency=0.85,
        small_block_knee=24,
        # Remote data IS cacheable: after first touch the kernel runs near
        # local speed, so direct access pays only a small NUMA penalty —
        # less than what explicit copies through the fabric cost (Fig. 5).
        uncached_remote_factor=0.95,
    ),
    network=NetworkSpec(
        latency=1.5e-6,
        bandwidth=1.6 * GB,
        rma_latency=2e-6,
        zero_copy=True,
        host_copy_bandwidth=1.6 * GB,
        eager_threshold=16 * KB,
        # SGI MPT per-message software cost at 128-way scale (progression,
        # shared-buffer management, cache pollution on the ccNUMA fabric);
        # dominates pdgemm at small N on many CPUs (the 20x headline case,
        # §4/Table 1).
        mpi_overhead=20e-6,
    ),
    memory=MemorySpec(
        copy_bandwidth=2.0 * GB,
        node_bandwidth=6.4 * GB,
        remote_cacheable=True,  # direct access wins on the Altix (Fig. 5)
    ),
    shared_memory_scope="machine",
)

INFINIBAND = MachineSpec(
    name="infiniband",
    description="Extension platform: 4-way nodes, 4x InfiniBand HCA "
                "(zero-copy RDMA, the other NIC class the paper names in §1)",
    cpus_per_node=4,
    cpu=CpuSpec(
        flops=5.6 * GB,          # ~2.8 GHz Xeon of the era
        peak_efficiency=0.80,
        small_block_knee=24,
    ),
    network=NetworkSpec(
        latency=5e-6,
        bandwidth=900 * MB,      # 4x IB payload rate
        rma_latency=9e-6,
        zero_copy=True,          # RDMA read/write, like Myrinet GM
        host_copy_bandwidth=1.5 * GB,
        eager_threshold=16 * KB,
        mpi_overhead=1.2e-6,
        sg_overhead=0.2e-6,
    ),
    memory=MemorySpec(
        copy_bandwidth=1.6 * GB,
        node_bandwidth=5.0 * GB,
        remote_cacheable=True,
    ),
    shared_memory_scope="node",
)

IDEAL = MachineSpec(
    name="ideal",
    description="Idealised flat machine for model-validation tests: uniform "
                "nodes, zero-copy network, analytic-friendly parameters",
    cpus_per_node=1,
    cpu=CpuSpec(flops=1.0 * GB, peak_efficiency=1.0, small_block_knee=0),
    network=NetworkSpec(
        latency=1e-6,
        bandwidth=1.0 * GB,
        rma_latency=1e-6,
        zero_copy=True,
        mpi_overhead=0.0,
    ),
    memory=MemorySpec(copy_bandwidth=10.0 * GB, node_bandwidth=20.0 * GB),
    shared_memory_scope="node",
)

PLATFORMS: dict[str, MachineSpec] = {
    spec.name: spec
    for spec in (LINUX_MYRINET, IBM_SP, CRAY_X1, SGI_ALTIX, INFINIBAND, IDEAL)
}


def get_platform(name: str) -> MachineSpec:
    """Look up a platform model by name (see :data:`PLATFORMS`)."""
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
