"""Command-line interface: run experiments without writing a script.

Subcommands
-----------
``platforms``
    List the built-in machine models and their key parameters.
``run``
    One multiplication: algorithm x platform x shape, with verification.
``sweep``
    Square-size sweep comparing algorithms on one platform.
``bandwidth`` / ``overlap``
    The §4.1 protocol microbenchmarks.
``reproduce``
    Regenerate one or more of the paper's figures/tables (``--experiment
    fig5,table1`` or ``--experiment all``).
``cache``
    Inspect (``stats``) or empty (``clear``) the simulation result cache.

``sweep`` and ``reproduce`` memoise simulation points in a
content-addressed result cache (default ``~/.cache/repro-srumma``,
``$REPRO_CACHE_DIR`` or ``--cache-dir`` override) so repeated and shared
points are simulated once; ``--no-cache`` runs the exact uncached path.
Results are identical either way; a hit/miss summary goes to stderr.

Both commands are also crash-safe and policy-driven: ``--resume``
journals each completed point durably so an interrupted run picks up
from its last completed point (byte-identical output), ``--on-error
skip|retry`` survives individual point failures (collected in a
``[sweep]`` stderr summary, exit status 1), ``--point-timeout`` bounds
each point, ``--cache-max-bytes`` bounds the disk tier with LRU
eviction, and ``--chaos`` injects seeded harness faults (worker kills,
cache I/O errors, corruption) for reproducible resilience drills.

Examples::

    python -m repro run --platform linux-myrinet --nranks 16 --size 512
    python -m repro run --platform sgi-altix --nranks 128 --size 4000 \\
        --algorithm pdgemm --payload synthetic
    python -m repro sweep --platform cray-x1 --nranks 64 \\
        --sizes 600,1000,2000 --algorithms srumma,pdgemm
    python -m repro bandwidth --platform ibm-sp --protocol armci_get
    python -m repro overlap --platform linux-myrinet --protocol mpi
    python -m repro reproduce --experiment all --jobs 4
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .bench.microbench import PROTOCOLS, bandwidth_sweep, overlap_sweep
from .bench.report import fmt_bytes, format_table
from .bench.runner import ALGORITHMS, run_matmul, sweep
from .machines import PLATFORMS, get_platform

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SRUMMA reproduction: simulated parallel matrix "
                    "multiplication experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list built-in machine models")

    p_run = sub.add_parser("run", help="run one multiplication")
    _common(p_run)
    p_run.add_argument("--algorithm", default="srumma", choices=ALGORITHMS)
    p_run.add_argument("--size", type=int, help="square size N (= m = n = k)")
    p_run.add_argument("--m", type=int)
    p_run.add_argument("--n", type=int)
    p_run.add_argument("--k", type=int)
    p_run.add_argument("--transa", action="store_true")
    p_run.add_argument("--transb", action="store_true")
    p_run.add_argument("--payload", default="real",
                       choices=("real", "synthetic"))
    p_run.add_argument("--no-verify", action="store_true")
    p_run.add_argument("--daemon-load", type=float, default=0.0,
                       help="inject system-daemon CPU interference at this "
                            "fractional load (e.g. 0.05)")

    p_sweep = sub.add_parser("sweep", help="size sweep across algorithms")
    _common(p_sweep)
    p_sweep.add_argument("--sizes", default="600,1000,2000",
                         help="comma-separated square sizes")
    p_sweep.add_argument("--algorithms", default="srumma,pdgemm",
                         help=f"comma-separated subset of {ALGORITHMS}")
    _jobs(p_sweep)
    _cache_flags(p_sweep)
    _resilience_flags(p_sweep)

    p_bw = sub.add_parser("bandwidth", help="protocol bandwidth microbench")
    _common(p_bw, nranks=False)
    p_bw.add_argument("--protocol", default="armci_get", choices=PROTOCOLS)

    p_ov = sub.add_parser("overlap", help="communication overlap microbench")
    _common(p_ov, nranks=False)
    p_ov.add_argument("--protocol", default="armci_get",
                      choices=("armci_get", "mpi"))

    p_rep = sub.add_parser(
        "reproduce", help="regenerate one or more of the paper's "
                          "figures/tables")
    from .bench.experiments import EXPERIMENTS
    p_rep.add_argument("--experiment", required=True, type=_experiment_list,
                       metavar="NAME[,NAME...]",
                       help="comma-separated subset of "
                            f"{{{','.join(sorted(EXPERIMENTS))}}}, or 'all'; "
                            "points shared between figures are simulated "
                            "once per run")
    p_rep.add_argument("--full", action="store_true",
                       help="full-scale sweep (slow); default is quick scale")
    p_rep.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault-injecting experiments' "
                            "standard degraded plan (resilience); the same "
                            "seed reproduces the run byte-for-byte")
    p_rep.add_argument("--fault-plan", default=None, metavar="FILE",
                       help="JSON FaultPlan file overriding the standard "
                            "degraded plan (see repro.sim.faults)")
    _jobs(p_rep)
    _cache_flags(p_rep)
    _resilience_flags(p_rep)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the simulation result cache")
    p_cache.add_argument("action", choices=("stats", "clear"))
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache directory (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro-srumma)")

    return parser


def _experiment_list(value: str) -> list[str]:
    """Parse ``--experiment``: comma-separated names, or ``all``."""
    from .bench.experiments import EXPERIMENTS

    if value.strip() == "all":
        return sorted(EXPERIMENTS)
    names = [n.strip() for n in value.split(",") if n.strip()]
    if not names:
        raise argparse.ArgumentTypeError("no experiment names given")
    for name in names:
        if name not in EXPERIMENTS:
            known = ", ".join(sorted(EXPERIMENTS))
            raise argparse.ArgumentTypeError(
                f"unknown experiment {name!r}; known: {known}, all")
    return names


def _common(p: argparse.ArgumentParser, nranks: bool = True) -> None:
    p.add_argument("--platform", default="linux-myrinet",
                   help=f"one of: {', '.join(sorted(PLATFORMS))}")
    if nranks:
        p.add_argument("--nranks", type=int, default=16)


def _jobs(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for independent simulation points "
                        "(default: all CPU cores; 1 = serial in-process). "
                        "Results are identical for any value.")


def _cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="memoise simulation points in the result cache "
                        "(--no-cache = the exact uncached execution path; "
                        "results are identical either way)")
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: $REPRO_CACHE_DIR or "
                        "~/.cache/repro-srumma)")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="bound the disk tier: least-recently-used entries "
                        "are evicted past this size (default: unbounded)")
    p.add_argument("--verbose", action="store_true",
                   help="print one progress line per simulation point "
                        "(label, wall seconds, cache hit/miss) to stderr")


def _resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--resume", action="store_true",
                   help="journal each completed point durably and resume an "
                        "interrupted identical run from its last completed "
                        "point (output is byte-identical to an "
                        "uninterrupted run)")
    p.add_argument("--on-error", default="raise",
                   choices=("raise", "skip", "retry"),
                   help="per-point error policy: abort the sweep (default), "
                        "skip failed points (reported, shown as nan), or "
                        "retry them with bounded backoff")
    p.add_argument("--retries", type=int, default=2,
                   help="bounded re-executions per point under "
                        "--on-error retry (default: 2)")
    p.add_argument("--point-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="wall-clock bound per point when running with "
                        "worker processes (handled per --on-error)")
    p.add_argument("--chaos", default=None, metavar="SPEC",
                   help="deterministic harness-fault injection: inline JSON "
                        "ChaosPlan, or @FILE / a path to one (e.g. "
                        "'{\"seed\":7,\"worker_kill_prob\":0.2}')")


def _make_chaos(args):
    if getattr(args, "chaos", None) is None:
        return None
    from .bench.chaos import ChaosPlan

    return ChaosPlan.parse(args.chaos)


def _make_cache(args, chaos=None):
    """Build the ResultCache for a sweep/reproduce invocation (or None)."""
    if not args.cache:
        return None
    from .bench.cache import ResultCache

    return ResultCache(directory=args.cache_dir,
                       max_bytes=args.cache_max_bytes, chaos=chaos)


def _make_policy(args, chaos):
    """Build the ExecutionPolicy (or None: the exact legacy path)."""
    resume = getattr(args, "resume", False)
    if (not resume and args.on_error == "raise"
            and args.point_timeout is None and chaos is None):
        return None
    from .bench.cache import default_cache_dir
    from .bench.parallel import ExecutionPolicy

    journal_dir = None
    if resume:
        journal_dir = args.cache_dir or default_cache_dir()
    return ExecutionPolicy(on_error=args.on_error, retries=args.retries,
                           point_timeout=args.point_timeout,
                           journal_dir=journal_dir, chaos=chaos)


def _report_cache(cache) -> None:
    if cache is not None:
        print(f"[cache] {cache.stats.summary()}", file=sys.stderr)


def _report_sweep(report) -> int:
    """Print the sweep outcome; exit status 1 if any point failed."""
    interesting = (report.failed or report.from_journal or report.deduped
                   or report.coalesced or report.health)
    if interesting:
        print(f"[sweep] {report.summary()}", file=sys.stderr)
    for fp in report.failed:
        print(f"[sweep] failed: {fp.spec.describe()} after {fp.attempts} "
              f"attempt(s): {fp.error}", file=sys.stderr)
    return 1 if report.failed else 0


def _cmd_platforms() -> int:
    rows = []
    for name, spec in sorted(PLATFORMS.items()):
        rows.append((
            name,
            spec.cpus_per_node,
            spec.cpu.flops / 1e9,
            spec.network.bandwidth / 1e6,
            spec.network.latency * 1e6,
            "yes" if spec.network.zero_copy else "no",
            spec.shared_memory_scope,
        ))
    print(format_table(
        ["platform", "cpus/node", "GF/s per CPU", "net MB/s",
         "latency us", "zero-copy", "shmem scope"],
        rows, title="built-in machine models"))
    return 0


def _cmd_run(args) -> int:
    spec = get_platform(args.platform)
    if args.size is not None:
        m = n = k = args.size
    elif args.m is not None:
        m = args.m
        n = args.n if args.n is not None else m
        k = args.k if args.k is not None else m
    else:
        print("error: give --size or --m/--n/--k", file=sys.stderr)
        return 2
    interference = None
    if args.daemon_load:
        from .sim import InterferencePattern

        interference = InterferencePattern(load=args.daemon_load)
    point = run_matmul(args.algorithm, spec, args.nranks, m, n, k,
                       transa=args.transa, transb=args.transb,
                       payload=args.payload,
                       verify=(args.payload == "real" and not args.no_verify),
                       interference=interference)
    t = ("T" if args.transa else "N") + ("T" if args.transb else "N")
    print(f"{args.algorithm} on {spec.name}: {m}x{n}x{k} {t}, "
          f"{args.nranks} CPUs")
    print(f"  virtual elapsed : {point.elapsed * 1e3:.3f} ms")
    print(f"  aggregate rate  : {point.gflops:.2f} GFLOP/s")
    if args.payload == "real" and not args.no_verify:
        print("  verified numerically against numpy")
    return 0


def _cmd_sweep(args) -> int:
    spec = get_platform(args.platform)
    sizes = [int(s) for s in args.sizes.split(",") if s]
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    for alg in algorithms:
        if alg not in ALGORITHMS:
            print(f"error: unknown algorithm {alg!r}", file=sys.stderr)
            return 2
    chaos = _make_chaos(args)
    cache = _make_cache(args, chaos=chaos)
    from .bench.parallel import SweepReport

    report = SweepReport()
    points = sweep(algorithms, spec, sizes, args.nranks, jobs=args.jobs,
                   cache=cache, verbose=args.verbose,
                   policy=_make_policy(args, chaos), report=report)
    rows = []
    for i, size in enumerate(sizes):
        block = points[i * len(algorithms):(i + 1) * len(algorithms)]
        rows.append([size, *((p.gflops if p is not None else float("nan"))
                             for p in block)])
    print(format_table(
        ["N", *(f"{a} GF/s" for a in algorithms)], rows,
        title=f"{spec.name}, {args.nranks} CPUs (synthetic payload)"))
    _report_cache(cache)
    return _report_sweep(report)


def _cmd_bandwidth(args) -> int:
    spec = get_platform(args.platform)
    series = bandwidth_sweep(spec, args.protocol)
    rows = [(fmt_bytes(s), bw / 1e6) for s, bw in series]
    print(format_table(["msg size", "MB/s"], rows,
                       title=f"{args.protocol} bandwidth on {spec.name}"))
    return 0


def _cmd_overlap(args) -> int:
    spec = get_platform(args.platform)
    series = overlap_sweep(spec, args.protocol)
    rows = [(fmt_bytes(s), ov) for s, ov in series]
    print(format_table(["msg size", "overlap"], rows,
                       title=f"{args.protocol} comm/compute overlap on {spec.name}"))
    return 0


def _cmd_reproduce(args) -> int:
    from .bench.experiments import run_experiment

    fault_plan = None
    if args.fault_plan is not None:
        from .sim.faults import FaultPlan
        fault_plan = FaultPlan.load(args.fault_plan)
    from .bench.parallel import SweepReport

    chaos = _make_chaos(args)
    cache = _make_cache(args, chaos=chaos)
    policy = _make_policy(args, chaos)
    report = SweepReport()
    scale = "full" if args.full else "quick"
    for name in args.experiment:
        title, headers, rows = run_experiment(name, full=args.full,
                                              jobs=args.jobs, cache=cache,
                                              verbose=args.verbose,
                                              policy=policy, report=report,
                                              fault_seed=args.fault_seed,
                                              fault_plan=fault_plan)
        print(format_table(headers, rows, title=f"{title} [{scale} scale]"))
    if not args.full:
        print("(quick scale; run with --full, or `pytest benchmarks/`, "
              "for the complete shape-asserted sweep)")
    _report_cache(cache)
    return _report_sweep(report)


def _cmd_cache(args) -> int:
    from .bench.cache import ResultCache

    cache = ResultCache(directory=args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
        return 0
    info = cache.disk_stats()
    print(f"cache directory : {info['directory']}")
    print(f"entries         : {info['entries']} ({fmt_bytes(info['bytes'])})")
    bound = (fmt_bytes(info["max_bytes"]) if info.get("max_bytes")
             else "unbounded")
    print(f"size bound      : {bound}")
    print(f"namespace       : {info['namespace']} (schema + code fingerprint)")
    if info["namespaces"]:
        for name, ns in info["namespaces"].items():
            mark = "  <- current" if ns["current"] else "  (stale)"
            print(f"  {name}: {ns['entries']} entries, "
                  f"{fmt_bytes(ns['bytes'])}{mark}")
    else:
        print("  (empty)")
    print(f"locks           : {info['locks_live']} live, "
          f"{info['locks_stale']} stale")
    print(f"journals        : {info['journals']} interrupted sweep(s) "
          f"awaiting --resume")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "platforms":
            return _cmd_platforms()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "bandwidth":
            return _cmd_bandwidth(args)
        if args.command == "overlap":
            return _cmd_overlap(args)
        if args.command == "reproduce":
            return _cmd_reproduce(args)
        if args.command == "cache":
            return _cmd_cache(args)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        from .bench.chaos import ChaosInterrupt

        if isinstance(exc, ChaosInterrupt):
            print(f"error: {exc} (rerun with --resume to pick up from the "
                  "last journaled point)", file=sys.stderr)
            return 3
        raise
    raise AssertionError(f"unhandled command {args.command!r}")
