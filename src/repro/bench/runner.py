"""Experiment driver: run any algorithm at any configuration, sweep, record.

The per-figure benchmarks are thin loops over :func:`run_matmul` /
:func:`sweep`; this module owns algorithm dispatch, block-size defaults
("optimum block sizes were chosen empirically", §4 — here a simple
size-scaled rule), and the result records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..baselines.cannon import cannon_multiply
from ..baselines.fox import fox_multiply
from ..baselines.pdgemm import pdgemm_multiply
from ..baselines.summa import summa_multiply
from ..core.api import srumma_multiply
from ..core.hierarchical import hierarchical_multiply
from ..core.srumma import SrummaOptions
from ..machines.spec import MachineSpec

__all__ = ["ALGORITHMS", "MatmulPoint", "run_matmul", "sweep", "default_nb"]

ALGORITHMS = ("srumma", "hierarchical", "pdgemm", "summa", "cannon", "fox")


@dataclass
class MatmulPoint:
    """One measured configuration."""

    algorithm: str
    platform: str
    m: int
    n: int
    k: int
    nranks: int
    gflops: float
    elapsed: float
    transa: bool = False
    transb: bool = False
    extra: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        t = ("T" if self.transa else "N") + ("T" if self.transb else "N")
        return (f"{self.algorithm}/{self.platform} {self.m}x{self.n}x{self.k} "
                f"{t} P={self.nranks}")


def default_nb(n: int, nranks: int) -> int:
    """pdgemm/SUMMA panel size: 'chosen empirically' in the paper; here a
    rule that keeps both the panel count and the per-message size sane."""
    q = max(1, int(math.isqrt(nranks)))
    # Aim for ~2 panels per owner block, floored at 32, capped at 256.
    nb = max(32, min(256, n // (2 * q)))
    return max(1, min(nb, n))


def run_matmul(algorithm: str, spec: MachineSpec, nranks: int,
               m: int, n: Optional[int] = None, k: Optional[int] = None,
               transa: bool = False, transb: bool = False,
               payload: str = "synthetic", verify: bool = False,
               options: Optional[SrummaOptions] = None,
               nb: Optional[int] = None, seed: int = 0,
               interference=None, faults=None) -> MatmulPoint:
    """Run one algorithm at one configuration; returns a :class:`MatmulPoint`.

    ``n``/``k`` default to ``m`` (square).  Benchmarks default to synthetic
    payload (identical schedule, no real data — tested elsewhere to match
    real-payload timing exactly).
    """
    n = m if n is None else n
    k = m if k is None else k
    if algorithm == "srumma":
        res = srumma_multiply(spec, nranks, m, n, k, transa=transa,
                              transb=transb, options=options, payload=payload,
                              verify=verify, seed=seed,
                              interference=interference, faults=faults)
        extra = {"grid": res.grid}
    elif algorithm == "hierarchical":
        if transa or transb:
            raise ValueError("hierarchical SRUMMA supports only the NN case")
        res = hierarchical_multiply(spec, nranks, m, n, k, payload=payload,
                                    verify=verify, kb=nb, seed=seed,
                                    interference=interference, faults=faults)
        extra = {"node_grid": res.node_grid, "kb": res.kb}
    elif algorithm == "pdgemm":
        res = pdgemm_multiply(spec, nranks, m, n, k, transa=transa,
                              transb=transb, payload=payload, verify=verify,
                              nb=nb if nb is not None else default_nb(n, nranks),
                              seed=seed, interference=interference,
                              faults=faults)
        extra = {"grid": res.grid, "nb": res.nb}
    elif algorithm == "summa":
        if transa or transb:
            raise ValueError("the SUMMA baseline supports only the NN case")
        res = summa_multiply(spec, nranks, m, n, k, payload=payload,
                             verify=verify,
                             kb=nb if nb is not None else default_nb(n, nranks),
                             seed=seed, interference=interference,
                             faults=faults)
        extra = {"grid": res.grid, "kb": res.kb}
    elif algorithm == "cannon":
        if transa or transb:
            raise ValueError("the Cannon baseline supports only the NN case")
        res = cannon_multiply(spec, nranks, m, n, k, payload=payload,
                              verify=verify, seed=seed,
                              interference=interference, faults=faults)
        extra = {"grid": res.grid}
    elif algorithm == "fox":
        if transa or transb:
            raise ValueError("the Fox baseline supports only the NN case")
        res = fox_multiply(spec, nranks, m, n, k, payload=payload,
                           verify=verify, seed=seed,
                           interference=interference, faults=faults)
        extra = {"grid": res.grid}
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; know {ALGORITHMS}")

    # Detection/watchdog runs carry their health counters with the point,
    # so sweeps and cached replays can report suspicion/fence/stall
    # activity without re-simulating.
    run = getattr(res, "run", None)
    if (run is not None and faults is not None
            and (getattr(faults, "detector", None) is not None
                 or getattr(faults, "watchdog_grace", None) is not None)):
        extra["health"] = dict(run.tracer.health())

    return MatmulPoint(
        algorithm=algorithm, platform=spec.name, m=m, n=n, k=k,
        nranks=nranks, gflops=res.gflops, elapsed=res.elapsed,
        transa=transa, transb=transb, extra=extra,
    )


def sweep(algorithms: Sequence[str], spec: MachineSpec,
          sizes: Iterable[int], nranks: int, jobs: Optional[int] = 1,
          cache=None, verbose: bool = False, policy=None, report=None,
          **kwargs: Any) -> list[MatmulPoint]:
    """Cross product of algorithms x square sizes at one rank count.

    ``jobs`` fans the points across worker processes (``None``/``0`` = all
    CPU cores); the default ``1`` keeps the in-process serial path.
    ``cache`` is an optional :class:`~repro.bench.cache.ResultCache`:
    already-simulated points are served from it and fresh ones written
    back (``None`` = the exact uncached path).  ``policy`` is an optional
    :class:`~repro.bench.parallel.ExecutionPolicy` (per-point error
    handling, the durable resume journal, chaos injection) and ``report``
    an optional :class:`~repro.bench.parallel.SweepReport` accumulating
    outcomes.  The result order — size-major, algorithm-minor — and every
    field of every point are identical for any ``jobs`` value and for
    cached vs uncached execution (each point's simulation is seeded and
    self-contained).
    """
    from .parallel import PointSpec, run_points

    specs = [PointSpec(algorithm=alg, machine=spec, nranks=nranks, m=size,
                       **kwargs)
             for size in sizes for alg in algorithms]
    return run_points(specs, jobs=jobs, cache=cache, verbose=verbose,
                      policy=policy, report=report)
