"""Registry of the paper's experiments, runnable from the CLI.

``python -m repro reproduce --experiment fig7`` regenerates one figure's
series at *quick* scale (reduced sweeps, minutes -> seconds); the benchmark
suite under ``benchmarks/`` remains the full-scale, shape-asserting source
of record.  Each entry returns ``(title, headers, rows)`` ready for
:func:`repro.bench.report.format_table`.

Every matmul-based driver builds its full list of independent simulation
points first and executes it through
:func:`repro.bench.parallel.run_points`, so ``--jobs N`` fans the points
across worker processes.  Results are merged back in submission order and
each point's simulation is seeded and self-contained, so the emitted rows
are identical for any ``jobs`` value (the microbenchmark figures 6–8 run
in-process; their sweeps are too cheap to be worth a pool).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..core.srumma import SrummaOptions
from ..machines import CRAY_X1, IBM_SP, LINUX_MYRINET, SGI_ALTIX
from .microbench import bandwidth_sweep, measure_overlap
from .parallel import PointSpec, run_points
from .report import fmt_bytes

__all__ = ["EXPERIMENTS", "run_experiment"]

Result = tuple[str, list[str], list[list]]


def _gf(p) -> float:
    """GFLOP/s of a point; NaN for one skipped by the error policy."""
    return p.gflops if p is not None else math.nan


def _el(p) -> float:
    """Elapsed seconds of a point; NaN for one skipped by the error policy."""
    return p.elapsed if p is not None else math.nan


def _require_complete(points, what: str):
    """Fault experiments derive their plans from healthy baselines; a
    baseline hole (a point skipped by ``on_error``) would poison every
    window edge downstream, so fail loudly instead."""
    if any(p is None for p in points):
        raise RuntimeError(
            f"the {what} experiment needs a complete healthy baseline; "
            f"rerun it without on_error=skip/retry losses")
    return points


def _fig5(full: bool, jobs: Optional[int] = 1,
          cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    cases = [(spec, transa)
             for spec in (CRAY_X1, SGI_ALTIX)
             for transa in ((False, True) if full else (False,))]
    points = run_points(
        [PointSpec("srumma", spec, 16, 2000, transa=transa,
                   options=SrummaOptions(flavor=flavor))
         for spec, transa in cases for flavor in ("direct", "copy")],
        jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report)
    rows = []
    for i, (spec, transa) in enumerate(cases):
        case = "C=A^T B" if transa else "C=AB"
        d = _gf(points[2 * i])
        c = _gf(points[2 * i + 1])
        rows.append([spec.name, case, d, c, d / c])
    return ("Fig. 5 — direct vs copy flavour, N=2000, 16 CPUs",
            ["platform", "case", "direct GF/s", "copy GF/s", "ratio"], rows)


def _fig6(full: bool, jobs: Optional[int] = 1,
          cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    sizes = tuple(1 << s for s in range(10, 23, 1 if full else 2))
    shm = dict(bandwidth_sweep(CRAY_X1, "shmem", sizes))
    mpi = dict(bandwidth_sweep(CRAY_X1, "mpi", sizes))
    rows = [[fmt_bytes(s), shm[s] / 1e6, mpi[s] / 1e6] for s in sizes]
    return ("Fig. 6 — bandwidth on the Cray X1",
            ["msg size", "shmem MB/s", "MPI MB/s"], rows)


def _fig7(full: bool, jobs: Optional[int] = 1,
          cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    sizes = tuple(1 << s for s in range(10, 23, 1 if full else 2))
    specs = (IBM_SP, LINUX_MYRINET) if full else (LINUX_MYRINET,)
    rows = []
    for s in sizes:
        row = [fmt_bytes(s)]
        for spec in specs:
            row.append(measure_overlap(spec, "armci_get", s))
            row.append(measure_overlap(spec, "mpi", s))
        rows.append(row)
    headers = ["msg size"] + [f"{sp.name[:5]} {p}"
                              for sp in specs for p in ("armci", "mpi")]
    return ("Fig. 7 — communication/computation overlap", headers, rows)


def _fig8(full: bool, jobs: Optional[int] = 1,
          cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    sizes = tuple(1 << s for s in range(8, 23, 1 if full else 2))
    sp_get = dict(bandwidth_sweep(IBM_SP, "armci_get", sizes))
    sp_mpi = dict(bandwidth_sweep(IBM_SP, "mpi", sizes))
    my_get = dict(bandwidth_sweep(LINUX_MYRINET, "armci_get", sizes))
    my_mpi = dict(bandwidth_sweep(LINUX_MYRINET, "mpi", sizes))
    rows = [[fmt_bytes(s), sp_get[s] / 1e6, sp_mpi[s] / 1e6,
             my_get[s] / 1e6, my_mpi[s] / 1e6] for s in sizes]
    return ("Fig. 8 — get vs MPI bandwidth (MB/s)",
            ["msg size", "SP get", "SP mpi", "myri get", "myri mpi"], rows)


def _fig9(full: bool, jobs: Optional[int] = 1,
          cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    sizes = (600, 1000, 2000, 4000) if full else (1000, 2000)
    specs = []
    for n in sizes:
        for zc in (True, False):
            spec = (LINUX_MYRINET if zc
                    else LINUX_MYRINET.with_network(zero_copy=False))
            for nonblocking in (True, False):
                opts = SrummaOptions(flavor="cluster", nonblocking=nonblocking)
                specs.append(PointSpec("srumma", spec, 16, n, options=opts))
    points = run_points(specs, jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report)
    rows = [[n] + [_gf(p) for p in points[4 * i:4 * i + 4]]
            for i, n in enumerate(sizes)]
    return ("Fig. 9 — zero-copy/nonblocking impact (GFLOP/s, 16 CPUs)",
            ["N", "zc+nb", "zc+blk", "nozc+nb", "nozc+blk"], rows)


def _fig10(full: bool, jobs: Optional[int] = 1,
           cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    sizes = (600, 1000, 2000, 4000, 8000, 12000) if full else (600, 2000)
    platforms = ([(LINUX_MYRINET, 128), (IBM_SP, 256),
                  (CRAY_X1, 128), (SGI_ALTIX, 128)] if full
                 else [(LINUX_MYRINET, 64), (SGI_ALTIX, 64)])
    cases = [(spec, nranks, n) for spec, nranks in platforms for n in sizes]
    points = run_points(
        [PointSpec(alg, spec, nranks, n)
         for spec, nranks, n in cases for alg in ("srumma", "pdgemm")],
        jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report)
    rows = []
    for i, (spec, nranks, n) in enumerate(cases):
        s, p = _gf(points[2 * i]), _gf(points[2 * i + 1])
        rows.append([spec.name, nranks, n, s, p, s / p])
    return ("Fig. 10 — SRUMMA vs pdgemm",
            ["platform", "CPUs", "N", "SRUMMA GF/s", "pdgemm GF/s", "ratio"],
            rows)


def _table1(full: bool, jobs: Optional[int] = 1,
            cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    cases = [
        (4000, 4000, 4000, 128, False, False, SGI_ALTIX),
        (2000, 2000, 2000, 128, False, False, CRAY_X1),
        (600, 600, 600, 128, True, True, LINUX_MYRINET),
        (1000, 1000, 2000, 64, False, False, SGI_ALTIX),
    ]
    if full:
        cases += [
            (12000, 12000, 12000, 128, False, False, LINUX_MYRINET),
            (8000, 8000, 8000, 256, False, False, IBM_SP),
            (16000, 16000, 16000, 128, True, False, IBM_SP),
            (4000, 4000, 4000, 128, True, True, SGI_ALTIX),
            (4000, 4000, 1000, 128, False, False, LINUX_MYRINET),
        ]
    points = run_points(
        [PointSpec(alg, spec, cpus, m, n, k, transa=ta, transb=tb)
         for m, n, k, cpus, ta, tb, spec in cases
         for alg in ("srumma", "pdgemm")],
        jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report)
    rows = []
    for i, (m, n, k, cpus, ta, tb, spec) in enumerate(cases):
        s, p = _gf(points[2 * i]), _gf(points[2 * i + 1])
        case = f"C=A{'^T' if ta else ''} B{'^T' if tb else ''}"
        rows.append([f"{m}x{n}x{k}", cpus, case, spec.name, s, p, s / p])
    return ("Table 1 — best cases (GFLOP/s)",
            ["size", "CPUs", "case", "platform", "SRUMMA", "pdgemm", "ratio"],
            rows)


def _diag_shift(full: bool, jobs: Optional[int] = 1,
                cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    from ..core.schedule import ScheduleOptions

    sizes = (1000, 2000, 4000) if full else (1000, 2000)
    cases = [(spec, nranks, n)
             for spec, nranks in ((IBM_SP, 64), (LINUX_MYRINET, 16))
             for n in sizes]
    points = run_points(
        [PointSpec("srumma", spec, nranks, n,
                   options=SrummaOptions(
                       flavor="cluster",
                       schedule=ScheduleOptions(diagonal_shift=shift)))
         for spec, nranks, n in cases for shift in (True, False)],
        jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report)
    rows = []
    for i, (spec, nranks, n) in enumerate(cases):
        on, off = _gf(points[2 * i]), _gf(points[2 * i + 1])
        rows.append([spec.name, nranks, n, on, off, on / off])
    return ("§3.1 ablation — diagonal shift (GFLOP/s)",
            ["platform", "CPUs", "N", "with shift", "without", "speedup"],
            rows)


def _resilience(full: bool, jobs: Optional[int] = 1,
                cache=None, verbose: bool = False,
                policy=None, report=None,
                fault_seed: int = 0, fault_plan=None) -> Result:
    """Degraded-mode completion time under the standard fault plan.

    Runs SRUMMA, SUMMA and pdgemm healthy, sizes the fault plan's windows
    to the slowest healthy run (so every algorithm experiences the same
    absolute fault timeline), then re-runs every algorithm under that plan.
    Each algorithm's inflation is measured against *its own* healthy
    baseline, so the comparison is fair despite very different absolute
    speeds.  SRUMMA runs with dynamic scheduling (paper §2: block order
    'determined dynamically at run time') — under faults, local filler
    tasks compute while browned-out prefetches trickle in, and failed gets
    are re-issued with backoff; that is the resilience mechanism under
    test.  The asserted shape (``benchmarks/test_resilience.py``):
    SRUMMA's completion-time inflation is strictly the smallest, while
    SUMMA's broadcast trees and pdgemm's panel broadcasts serialise behind
    the degraded links.

    Deterministic end to end: the plan is pure data derived from
    ``fault_seed`` (or loaded from ``fault_plan``), every failure draw is
    counter-indexed, and each point is an independent seeded simulation —
    so output is byte-identical across runs and ``--jobs`` values.
    """
    from ..sim.faults import standard_degraded_plan

    # Both scales sit in the regime where overlap has slack to absorb the
    # degradation (enough compute per rank to hide browned-out prefetches);
    # at small N / large P SRUMMA's healthy schedule is slack-free and any
    # perturbation lands on its critical path 1:1 while the comm-bound
    # baselines hide CPU faults entirely — the paper's claim is about the
    # absorbing regime, so that is what the experiment pins.
    n, nranks = (4000, 64) if full else (1024, 16)
    spec = LINUX_MYRINET
    algs = ("srumma", "summa", "pdgemm")
    opts = {"srumma": SrummaOptions(dynamic=True)}

    def specs(faults=None):
        return [PointSpec(alg, spec, nranks, n, options=opts.get(alg),
                          faults=faults) for alg in algs]

    healthy = _require_complete(
        run_points(specs(), jobs=jobs, cache=cache, verbose=verbose,
                   policy=policy, report=report), "resilience")
    horizon = max(p.elapsed for p in healthy)
    plan = (fault_plan if fault_plan is not None
            else standard_degraded_plan(horizon, seed=fault_seed))
    degraded = run_points(specs(plan), jobs=jobs, cache=cache,
                          verbose=verbose, policy=policy, report=report)
    rows = [[alg, h.elapsed * 1e3, _el(d) * 1e3, _el(d) / h.elapsed]
            for alg, h, d in zip(algs, healthy, degraded)]
    return (f"Resilience — degraded-mode completion, N={n}, {nranks} CPUs, "
            f"{spec.name}",
            ["algorithm", "healthy ms", "degraded ms", "inflation"], rows)


def _crash(full: bool, jobs: Optional[int] = 1,
           cache=None, verbose: bool = False,
           policy=None, report=None,
           fault_seed: int = 0, fault_plan=None) -> Result:
    """Completion time when a whole node dies mid-run.

    The last node is killed at 25/50/75 % of SRUMMA's healthy runtime.
    SRUMMA is *simulated* through the crash: in-flight transfers touching
    the dead node fail, survivors redirect gets to declustered replicas,
    and the first survivor to drain its own task list deals the dead
    ranks' unfinished tasks (from their last durable buddy checkpoint)
    round-robin over the live grid — see ``docs/resilience.md``.

    SUMMA and Cannon have no such protocol: their synchronous pipelines
    deadlock the moment a peer stops answering, so the honest baseline is
    the classic *restart-from-checkpoint* model, charged analytically
    against each algorithm's own healthy runtime ``h``:

    - periodic coordinated checkpoints every ``0.25 h``, each writing the
      C panels (``n^2 * 8 / nnodes`` bytes per node) at wire bandwidth;
    - crash detection at ``0.05 h`` (a generous failure-detector sweep);
    - reload of A, B and C from the checkpoint store in parallel across
      the surviving nodes;
    - re-execution from the last completed checkpoint with the work
      re-balanced over ``nnodes - 1`` survivors.

    Every algorithm is compared against its own healthy baseline, so the
    verdict is about *recovery overhead*, not raw speed.  Deterministic
    end to end: the crash instant is derived from the healthy SRUMMA
    elapsed (itself deterministic), the plan is pure data, and each point
    is an independent seeded simulation — output is byte-identical across
    runs and ``--jobs`` values.
    """
    from ..sim.faults import FaultPlan, NodeCrash

    n, nranks = (4000, 64) if full else (1024, 16)
    spec = LINUX_MYRINET
    nnodes = -(-nranks // spec.cpus_per_node)
    fracs = (0.25, 0.5, 0.75)
    algs = ("srumma", "summa", "cannon")
    opts = {"srumma": SrummaOptions(dynamic=True)}

    healthy = _require_complete(run_points(
        [PointSpec(alg, spec, nranks, n, options=opts.get(alg))
         for alg in algs], jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report), "crash")
    h = {alg: p.elapsed for alg, p in zip(algs, healthy)}

    def plan_for(frac: float) -> FaultPlan:
        if fault_plan is not None:
            return fault_plan  # explicit plan overrides the frac sweep
        # get_timeout is a last-resort detector: in the common case the
        # crash sweep fails in-flight transfers synchronously, so the
        # timeout must sit well above contended healthy transfer times
        # (a tight timeout would cancel *healthy* gets and re-pay them).
        return FaultPlan(
            crashes=(NodeCrash(node=nnodes - 1, t_fail=frac * h["srumma"]),),
            checkpoint_interval=2,
            get_timeout=0.25 * h["srumma"],
            seed=fault_seed)

    degraded = run_points(
        [PointSpec("srumma", spec, nranks, n, options=opts["srumma"],
                   faults=plan_for(f)) for f in fracs],
        jobs=jobs, cache=cache, verbose=verbose,
        policy=policy, report=report)

    bw = spec.network.bandwidth

    def restart_completion(healthy_t: float, frac: float) -> float:
        ckpt = (n * n * 8) / nnodes / bw
        reload_ = 3 * (n * n * 8) / nnodes / bw  # A, B and C come back
        period = 0.25 * healthy_t
        t_fail = frac * healthy_t
        n_ckpts = int(t_fail / period - 1e-9)
        rework = (healthy_t - n_ckpts * period) * nnodes / (nnodes - 1)
        return (t_fail + n_ckpts * ckpt + 0.05 * healthy_t
                + reload_ + rework)

    rows = []
    for frac, d in zip(fracs, degraded):
        rows.append(["srumma", f"{int(frac * 100)}%", h["srumma"] * 1e3,
                     _el(d) * 1e3, _el(d) / h["srumma"]])
    for alg in ("summa", "cannon"):
        for frac in fracs:
            c = restart_completion(h[alg], frac)
            rows.append([alg, f"{int(frac * 100)}%", h[alg] * 1e3,
                         c * 1e3, c / h[alg]])
    return (f"Resilience — hard node crash, N={n}, {nranks} CPUs, "
            f"{spec.name}",
            ["algorithm", "fail at", "healthy ms", "completion ms",
             "inflation"], rows)


def _detection(full: bool, jobs: Optional[int] = 1,
               cache=None, verbose: bool = False,
               policy=None, report=None,
               fault_seed: int = 0, fault_plan=None) -> Result:
    """Completion inflation under *imperfect* failure detection.

    A node dies at 50 % of SRUMMA's healthy runtime, but — unlike the
    ``crash`` experiment — nobody gets oracle knowledge: a heartbeat
    detector (period = timeout/4, confirmation after timeout/2 more
    silence) must notice, confirm, and disseminate the failure before
    survivors reassign the dead ranks' work.  The sweep crosses the
    detection timeout with a per-heartbeat loss probability (the
    false-positive knob: lost heartbeats can get *live* nodes suspected
    and even falsely confirmed; the membership epoch fence then rejects
    the duplicate write-backs, counted in the ``stale rejected`` column).

    The analytic baseline is the ``crash`` experiment's SUMMA
    restart-from-checkpoint model with its generic 5 % detection sweep
    replaced by this detector's actual delay (timeout + confirm grace) —
    restart pays the same imperfect detection, then throws away the run.

    Deterministic end to end: heartbeats ride seeded counter-indexed
    draw streams, detector parameters hash into the cache keys, and each
    point is an independent seeded simulation, so rows are byte-identical
    across runs and ``--jobs`` values.
    """
    from ..sim.faults import DetectorConfig, FaultPlan, NodeCrash

    n, nranks = (4000, 64) if full else (1024, 16)
    spec = LINUX_MYRINET
    nnodes = -(-nranks // spec.cpus_per_node)
    opts = SrummaOptions(dynamic=True)

    healthy = _require_complete(run_points(
        [PointSpec("srumma", spec, nranks, n, options=opts),
         PointSpec("summa", spec, nranks, n)],
        jobs=jobs, cache=cache, verbose=verbose, policy=policy,
        report=report), "detection")
    h_srumma, h_summa = (p.elapsed for p in healthy)
    t_fail = 0.5 * h_srumma

    timeouts = (0.025, 0.05, 0.1)   # detection timeout, fraction of healthy
    fp_rates = (0.0, 0.2, 0.3)      # per-heartbeat loss probability

    def plan_for(tmo_frac: float, fp: float) -> FaultPlan:
        if fault_plan is not None:
            return fault_plan  # explicit plan overrides the sweep
        tmo = tmo_frac * h_srumma
        return FaultPlan(
            crashes=(NodeCrash(node=nnodes - 1, t_fail=t_fail),),
            checkpoint_interval=2,
            get_timeout=0.25 * h_srumma,
            detector=DetectorConfig(
                period=tmo / 4, timeout=tmo, confirm_grace=tmo / 2,
                heartbeat_loss_prob=fp),
            watchdog_grace=5.0 * h_srumma,
            seed=fault_seed)

    cases = [(t, fp) for t in timeouts for fp in fp_rates]
    degraded = run_points(
        [PointSpec("srumma", spec, nranks, n, options=opts,
                   faults=plan_for(t, fp)) for t, fp in cases],
        jobs=jobs, cache=cache, verbose=verbose, policy=policy,
        report=report)

    bw = spec.network.bandwidth

    def restart_completion(healthy_t: float, tmo_frac: float) -> float:
        # The crash experiment's model with the failure at 50 % of the
        # restart system's own run (same convention as its inflation
        # column) and the flat 5 % detection sweep replaced by this
        # detector's actual delay.  The detector is configured in
        # absolute time (fractions of SRUMMA's healthy run), so the
        # delay term is the same wall-clock on both sides.
        ckpt = (n * n * 8) / nnodes / bw
        reload_ = 3 * (n * n * 8) / nnodes / bw
        period = 0.25 * healthy_t
        t_fail_b = 0.5 * healthy_t
        n_ckpts = int(t_fail_b / period - 1e-9)
        detect = 1.5 * tmo_frac * h_srumma  # timeout + confirm grace
        rework = (healthy_t - n_ckpts * period) * nnodes / (nnodes - 1)
        return t_fail_b + n_ckpts * ckpt + detect + reload_ + rework

    rows = []
    for (t, fp), d in zip(cases, degraded):
        el = _el(d)
        health = d.extra.get("health", {}) if d is not None else {}
        restart = restart_completion(h_summa, t)
        rows.append([f"{t:g}", f"{fp:g}", el * 1e3, el / h_srumma,
                     restart * 1e3, restart / h_summa,
                     health.get("suspected", 0),
                     health.get("false_suspicions", 0),
                     health.get("stale_epoch_rejected", 0)])
    return (f"Resilience — imperfect failure detection, N={n}, {nranks} "
            f"CPUs, node {nnodes - 1} dies at 50% (detection timeout x "
            f"heartbeat-loss rate), {spec.name}",
            ["timeout (xh)", "fp rate", "srumma ms", "srumma inflation",
             "restart ms", "restart inflation", "suspected",
             "false suspicions", "stale rejected"],
            rows)


def _comm_bound(full: bool, jobs: Optional[int] = 1,
                cache=None, verbose: bool = False,
          policy=None, report=None) -> Result:
    """Measured per-rank network volume vs the communication lower bound.

    COSMA (arXiv 1908.09606, after Ballard et al.) proves any schedule of
    the ``mnk`` multiplication cube moves at least

        ``Q >= 2*m*n*k / (P * sqrt(S))``   words per processor,

    where ``S`` is the local memory, with the memory-independent floor
    from Loomis-Whitney (Irony-Toledo-Tiskin): a processor covering
    ``mnk/P`` elementary products must touch at least ``3*(mnk/P)^(2/3)``
    distinct words, so its wire traffic is at least that minus what it
    already holds.  The measurement here is NIC bytes per *node*
    (intra-node loopback and shared-memory loads never touch the network),
    so the bound treats each node as one processor of the node grid, with
    the node's aggregate resident blocks of A, B and C as both its ``S``
    and its subtracted resident set — the tightest statement about
    unavoidable wire traffic.

    The hierarchical two-level algorithm is built to approach exactly this
    bound: only its leaders touch the NICs, so its volume follows the
    domain grid, while the flat algorithms pay rank-grid volume from every
    CPU of the node.  Runs in-process (the points are read for their
    machine byte counters, not just timings), so ``jobs`` is ignored;
    every simulation is seeded and deterministic.
    """
    from ..baselines.summa import summa_multiply
    from ..core.api import srumma_multiply
    from ..core.hierarchical import hierarchical_multiply
    from .runner import default_nb

    n, ranks = (2048, (64, 256)) if full else (768, (16, 64))
    algs = ("srumma", "summa", "hierarchical")
    rows = []
    for nranks in ranks:
        measured = {}
        nnodes = None
        for alg in algs:
            if alg == "srumma":
                res = srumma_multiply(LINUX_MYRINET, nranks, n, n, n,
                                      payload="synthetic", verify=False)
            elif alg == "summa":
                res = summa_multiply(LINUX_MYRINET, nranks, n, n, n,
                                     payload="synthetic", verify=False,
                                     kb=default_nb(n, nranks))
            else:
                res = hierarchical_multiply(LINUX_MYRINET, nranks, n, n, n,
                                            payload="synthetic", verify=False)
            machine = res.run.machine
            nnodes = len(machine.nodes)
            nic_bytes = sum(node.nic_out.bytes_carried
                            for node in machine.nodes)
            measured[alg] = nic_bytes / nnodes
        mnk = float(n) ** 3
        resident = 3.0 * n * n / nnodes  # this node's blocks of A, B, C
        bound_words = max(
            2.0 * mnk / (nnodes * math.sqrt(resident)) - 2.0 * resident,
            3.0 * (mnk / nnodes) ** (2.0 / 3.0) - resident,
            0.0)
        bound = 8.0 * bound_words
        rows.append([nranks, nnodes]
                    + [measured[a] / 1e6 for a in algs]
                    + [bound / 1e6, measured["hierarchical"] / bound])
    return (f"Communication lower bound — N={n}, {LINUX_MYRINET.name} "
            f"(MB per node)",
            ["CPUs", "nodes", "srumma", "summa", "hierarchical",
             "lower bound", "hier/bound"], rows)


EXPERIMENTS: dict[str, Callable[..., Result]] = {
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "table1": _table1,
    "diag-shift": _diag_shift,
    "comm-bound": _comm_bound,
    "resilience": _resilience,
    "crash": _crash,
    "detection": _detection,
}


def run_experiment(name: str, full: bool = False,
                   jobs: Optional[int] = 1,
                   cache=None, verbose: bool = False,
                   policy=None, report=None,
                   fault_seed: int = 0, fault_plan=None) -> Result:
    """Run one registered experiment; see :data:`EXPERIMENTS` for names.

    ``jobs`` is the worker-process count for the experiment's independent
    simulation points (``None``/``0`` = all CPU cores, ``1`` = serial).
    ``cache`` is an optional :class:`~repro.bench.cache.ResultCache`; a
    cache shared across several ``run_experiment`` calls simulates each
    point once per process tree, however many figures it appears in (the
    microbenchmark figures 6-8 carry no matmul points and ignore it).  The
    emitted rows are identical regardless of either knob.

    ``fault_seed``/``fault_plan`` parameterise experiments that inject
    faults (``resilience`` and ``crash``); they are forwarded only to
    drivers whose signature declares them, so the fault-free experiments
    stay byte-for-byte on their pre-existing call path.

    ``policy``/``report`` are the harness-resilience knobs
    (:class:`~repro.bench.parallel.ExecutionPolicy` /
    :class:`~repro.bench.parallel.SweepReport`): per-point error
    handling, the durable ``--resume`` journal, chaos injection, and the
    structured record of skipped points.  ``None``/``None`` (the
    default) is the exact historical execution path.
    """
    import inspect

    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") from None
    kwargs = dict(jobs=jobs, cache=cache, verbose=verbose,
                  policy=policy, report=report)
    params = inspect.signature(fn).parameters
    if "fault_seed" in params:
        kwargs["fault_seed"] = fault_seed
    if "fault_plan" in params:
        kwargs["fault_plan"] = fault_plan
    return fn(full, **kwargs)
