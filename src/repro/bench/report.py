"""Table and CSV emitters for benchmark results.

Every benchmark prints the series it regenerates in fixed-width tables (the
rows the paper's figures plot), and can dump CSV next to the repo for
post-processing.  ``paper_vs_measured`` renders the EXPERIMENTS.md-style
comparison rows.
"""

from __future__ import annotations

import io
from typing import Any, Optional, Sequence

__all__ = ["format_table", "print_table", "to_csv", "paper_vs_measured", "fmt_bytes"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render a fixed-width text table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(f"== {title} ==\n")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out.write(line.rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip() + "\n")
    return out.getvalue()


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                title: Optional[str] = None) -> None:
    print(format_table(headers, rows, title=title))


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Minimal CSV (no quoting needed for our numeric tables)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("CSV row width mismatch")
        lines.append(",".join(_fmt(v) for v in row))
    return "\n".join(lines) + "\n"


def paper_vs_measured(label: str, paper_value: float, measured: float,
                      unit: str = "x") -> str:
    """One EXPERIMENTS.md comparison row."""
    return (f"{label}: paper={_fmt(paper_value)}{unit} "
            f"measured={_fmt(measured)}{unit}")


def fmt_bytes(nbytes: float) -> str:
    """Human-readable message size (8B, 16KB, 4MB)."""
    if nbytes >= 1 << 20:
        return f"{nbytes / (1 << 20):g}MB"
    if nbytes >= 1 << 10:
        return f"{nbytes / (1 << 10):g}KB"
    return f"{nbytes:g}B"
