"""Communication microbenchmarks (paper §4.1, Figs. 6–8).

Three measurements, each run on a two-node slice of a machine model:

- :func:`measure_bandwidth` — time one transfer of ``nbytes`` between ranks
  on different nodes, for a given protocol; returns achieved bytes/s.
- :func:`measure_overlap` — the COMB-style potential-overlap test: post a
  nonblocking operation, compute for exactly the operation's standalone
  duration, then wait.  Full overlap means the compute was free
  (total == standalone time); zero overlap means total == 2x standalone.
- :func:`bandwidth_sweep` / :func:`overlap_sweep` — the message-size sweeps
  the figures plot.

Protocols: ``"armci_get"`` (one-sided get, honouring the spec's zero-copy
flag), ``"mpi"`` (blocking send/recv pair — half of a round-trip exchange,
as the paper measures), ``"shmem"`` (direct memory copy within a
shared-memory domain, Fig. 6's shared-memory series), and ``"mpi2_get"``
(an MPI-2 style get: lock/get/unlock synchronisation on every access, the
poorly-performing third series of Fig. 8).
"""

from __future__ import annotations

from typing import Sequence

from ..comm.base import run_parallel
from ..machines.spec import MachineSpec

__all__ = [
    "PROTOCOLS",
    "measure_bandwidth",
    "measure_overlap",
    "bandwidth_sweep",
    "overlap_sweep",
    "DEFAULT_SIZES",
]

PROTOCOLS = ("armci_get", "mpi", "shmem", "mpi2_get")

# 1 KB .. 4 MB, the range the paper's figures cover.
DEFAULT_SIZES = tuple(1 << s for s in range(10, 23))


def _remote_pair(spec: MachineSpec) -> tuple[int, int, int]:
    """(nranks, src, dst) with src/dst on different nodes."""
    cpn = spec.cpus_per_node
    return cpn + 1, 0, cpn  # dst = first rank of the second node


def _shmem_pair(spec: MachineSpec) -> tuple[int, int, int]:
    """(nranks, src, dst) reachable by direct load/store.

    On machine-scope systems that is a cross-node pair (the interesting
    NUMA case); on clusters it must be a same-node pair.
    """
    if spec.shared_memory_scope == "machine":
        return _remote_pair(spec)
    if spec.cpus_per_node < 2:
        raise ValueError(
            f"{spec.name} has single-CPU nodes: no intra-node shmem pair")
    return 2, 0, 1


def _transfer_once(ctx, spec: MachineSpec, protocol: str, peer: int,
                   nbytes: float, window=None):
    """One blocking transfer of ``nbytes`` from ``peer`` to rank 0."""
    if protocol == "armci_get":
        yield from ctx.armci.get_bytes(peer, nbytes)
    elif protocol == "shmem":
        yield from ctx.shmem.copy_bytes(peer, nbytes)
    elif protocol == "mpi":
        yield from ctx.mpi.recv(None, src=peer, tag=1)
    elif protocol == "mpi2_get":
        # Real MPI-2 passive-target epoch over the window created below:
        # lock round trip, deferred get executed at unlock through staging
        # buffers, unlock round trip.
        import numpy as np

        out = np.empty(int(nbytes) // 8)
        yield from window.lock(peer)
        window.get(peer, out)
        yield from window.unlock(peer)
    else:
        raise ValueError(f"unknown protocol {protocol!r}; know {PROTOCOLS}")


def measure_bandwidth(spec: MachineSpec, protocol: str, nbytes: float) -> float:
    """Achieved bandwidth (bytes/s) of one inter-node transfer."""
    spec_used = spec
    if protocol == "shmem":
        nranks, src, dst = _shmem_pair(spec_used)
    else:
        nranks, src, dst = _remote_pair(spec_used)
    times: dict[str, float] = {}

    def prog(ctx):
        window = None
        if protocol == "mpi2_get":
            import numpy as np

            from ..comm.mpi_rma import MpiWindow

            window = MpiWindow.create(
                ctx, "bw", local=np.zeros(max(1, int(nbytes) // 8)))
        yield from ctx.mpi.barrier()
        if ctx.rank == src:
            t0 = ctx.now
            yield from _transfer_once(ctx, spec_used, protocol, dst, nbytes,
                                      window=window)
            times["dt"] = ctx.now - t0
        elif ctx.rank == dst and protocol == "mpi":
            yield from ctx.mpi.send(src, None, tag=1, nbytes=nbytes)

    run_parallel(spec_used, nranks, prog)
    return nbytes / times["dt"]


def measure_overlap(spec: MachineSpec, protocol: str, nbytes: float) -> float:
    """Potential communication/computation overlap fraction in [0, 1].

    The COMB-style sender-side availability test: post the nonblocking
    operation, compute for exactly the operation's standalone completion
    time, then complete it.  For MPI, "completion" is end-to-end — the
    sender additionally waits for a zero-byte ack from the receiver, so an
    eager isend that merely buffered locally does not count as done.

    Full overlap -> total time == standalone time -> returns ~1.
    No overlap (rendezvous with no progress thread) -> total == 2x -> ~0.
    """
    if protocol not in ("armci_get", "mpi"):
        raise ValueError(f"overlap defined for 'armci_get'/'mpi', not {protocol!r}")
    base = _timed_nonblocking(spec, protocol, nbytes, compute_for=0.0)
    total = _timed_nonblocking(spec, protocol, nbytes, compute_for=base)
    if base <= 0:
        return 1.0
    overlap = 2.0 - total / base
    return min(1.0, max(0.0, overlap))


def _timed_nonblocking(spec: MachineSpec, protocol: str, nbytes: float,
                       compute_for: float) -> float:
    nranks, src, dst = _remote_pair(spec)
    times: dict[str, float] = {}

    def prog(ctx):
        yield from ctx.mpi.barrier()
        if ctx.rank == src:
            t0 = ctx.now
            if protocol == "armci_get":
                req = ctx.armci.nb_get_bytes(dst, nbytes)
                if compute_for > 0:
                    yield from ctx.compute(compute_for)
                yield from ctx.wait(req)
            else:  # mpi isend availability, end-to-end via a 0-byte ack
                req = ctx.mpi.isend(dst, None, tag=2, nbytes=nbytes)
                if compute_for > 0:
                    yield from ctx.compute(compute_for)
                yield from ctx.mpi.wait(req)
                yield from ctx.mpi.recv(None, src=dst, tag=3)
            times["dt"] = ctx.now - t0
        elif ctx.rank == dst and protocol == "mpi":
            yield from ctx.mpi.recv(None, src=src, tag=2)
            yield from ctx.mpi.send(src, None, tag=3, nbytes=0)

    run_parallel(spec, nranks, prog)
    return times["dt"]


def bandwidth_sweep(spec: MachineSpec, protocol: str,
                    sizes: Sequence[float] = DEFAULT_SIZES) -> list[tuple[float, float]]:
    """[(nbytes, bytes_per_second), ...] across message sizes."""
    return [(s, measure_bandwidth(spec, protocol, s)) for s in sizes]


def overlap_sweep(spec: MachineSpec, protocol: str,
                  sizes: Sequence[float] = DEFAULT_SIZES) -> list[tuple[float, float]]:
    """[(nbytes, overlap_fraction), ...] across message sizes."""
    return [(s, measure_overlap(spec, protocol, s)) for s in sizes]
