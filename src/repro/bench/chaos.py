"""Deterministic harness-chaos layer: seeded failures for the *harness*.

PR 4's :class:`~repro.sim.faults.FaultPlan` degrades the *simulated*
machine; this module is its mirror one level up.  The sweep harness —
worker pools, the result cache, the journal — has its own failure modes
(OOM-killed workers, a full disk, a corrupted cache entry, the whole
process dying mid-sweep), and every recovery path that claims to handle
them must be *exercised*, not just written.  :class:`ChaosPlan` makes
those failures injectable and reproducible:

- **worker kills** — a seeded draw per ``(point index, attempt)`` makes
  the worker process ``os._exit`` instead of returning, so the parent
  sees a real ``BrokenProcessPool``, exactly like an OOM kill.  Retried
  attempts draw independently, so a bounded-retry policy converges.
- **harness kill** — ``kill_after=N`` raises :class:`ChaosInterrupt` in
  the parent after the Nth *executed* point has been journaled, modeling
  Ctrl-C / OOM / reboot at a deterministic instant; the sweep journal
  must then make ``--resume`` byte-identical to an uninterrupted run.
- **cache I/O errors** — a seeded draw per cache disk operation raises
  ``OSError`` inside the cache, driving the graceful-degradation ladder
  (the sweep must complete uncached, never fail).
- **cache corruption** — a seeded draw per disk write garbles the entry
  just after it lands, so a later read exercises the corrupt-discard
  path.

Determinism is the whole point: a plan is pure frozen data, every draw
comes from the same stateless splitmix64 streams as the fault layer
(:func:`repro.sim.faults.unit_uniform`), keyed per *kind* so adding one
chaos kind never perturbs another's schedule.  Same seed => same kill
and corruption schedule, asserted in ``tests/bench/test_chaos.py``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..sim.faults import unit_uniform

__all__ = ["ChaosPlan", "ChaosInterrupt"]

# Distinct stream salts per draw kind, mirroring the per-(kind, rank)
# streams of the fault layer: a worker-kill draw can never consume (or
# shift) a cache-corruption draw.
_KIND_SALT = {
    "worker_kill": 0x9E97_0001,
    "cache_io": 0x9E97_0002,
    "cache_corrupt": 0x9E97_0003,
}

# One attempt slot per point is bounded well below this; keeping the
# stride fixed makes the draw for (index, attempt) a pure function of the
# plan, independent of any retry policy in force.
_ATTEMPT_STRIDE = 1024


class ChaosInterrupt(RuntimeError):
    """The plan's ``kill_after`` fired: the harness 'died' mid-sweep."""


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded schedule of harness failures; pure picklable data."""

    seed: int = 0
    worker_kill_prob: float = 0.0
    """Probability that a pool worker ``os._exit``\\ s instead of returning
    a given (point, attempt) execution.  Only the pool path can kill a
    worker; the serial path has no worker process to lose."""
    kill_after: Optional[int] = None
    """Raise :class:`ChaosInterrupt` in the parent after this many points
    have been *executed* (journaled if a journal is active) this run."""
    cache_io_error_prob: float = 0.0
    """Probability that one cache disk operation raises ``OSError``."""
    cache_corrupt_prob: float = 0.0
    """Probability that one cache disk write is garbled after landing."""

    def __post_init__(self):
        for name in ("worker_kill_prob", "cache_io_error_prob",
                     "cache_corrupt_prob"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.kill_after is not None and self.kill_after < 1:
            raise ValueError(
                f"kill_after must be >= 1, got {self.kill_after}")

    # -- draws -------------------------------------------------------------
    def _draw(self, kind: str, n: int) -> float:
        return unit_uniform(self.seed ^ _KIND_SALT[kind], n)

    def kills_worker(self, index: int, attempt: int) -> bool:
        """Does the worker running (point ``index``, ``attempt``) die?"""
        if self.worker_kill_prob <= 0.0:
            return False
        n = index * _ATTEMPT_STRIDE + min(attempt, _ATTEMPT_STRIDE - 1)
        return self._draw("worker_kill", n) < self.worker_kill_prob

    def cache_io_fails(self, op_counter: int) -> bool:
        if self.cache_io_error_prob <= 0.0:
            return False
        return self._draw("cache_io", op_counter) < self.cache_io_error_prob

    def corrupts_entry(self, write_counter: int) -> bool:
        if self.cache_corrupt_prob <= 0.0:
            return False
        return (self._draw("cache_corrupt", write_counter)
                < self.cache_corrupt_prob)

    def kill_schedule(self, npoints: int, attempts: int = 4) -> list[tuple]:
        """The full (index, attempt) worker-kill schedule — pure data, for
        the same-seed determinism test and for sizing retry budgets."""
        return [(i, a) for i in range(npoints) for a in range(attempts)
                if self.kills_worker(i, a)]

    # -- worker-side hook --------------------------------------------------
    def maybe_kill_worker(self, index: int, attempt: int) -> None:
        """Die like an OOM kill would: no exception, no traceback, just a
        vanished process (the parent sees ``BrokenProcessPool``)."""
        if self.kills_worker(index, attempt):
            os._exit(137)

    # -- (de)serialisation -------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        blob = json.loads(text)
        if not isinstance(blob, dict):
            raise ValueError("chaos plan JSON must be an object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(blob) - known
        if unknown:
            raise ValueError(f"unknown chaos plan fields: {sorted(unknown)}")
        return cls(**blob)

    @classmethod
    def parse(cls, value: str) -> "ChaosPlan":
        """CLI entry: inline JSON, or ``@file`` / a path to a JSON file."""
        text = value.strip()
        if text.startswith("@"):
            text = Path(text[1:]).read_text()
        elif not text.startswith("{"):
            text = Path(text).read_text()
        return cls.from_json(text)
