"""Durable sweep journal: every completed point survives the process.

A 1024-rank sweep spends 25-40 s *per point*; losing point k's
predecessors to a Ctrl-C, an OOM kill, or a worker death is the
difference between "resume in seconds" and "repeat the afternoon".  The
journal records each completed :class:`~repro.bench.runner.MatmulPoint`
durably (append + flush + fsync) the moment it finishes, so an
interrupted ``repro reproduce``/``sweep --resume`` picks up from the last
completed point and produces **byte-identical** output to an
uninterrupted run.

Anatomy
-------
One JSONL file per ``run_points`` batch under ``<dir>/journal/``:

- line 0 — a header: journal schema, the *sweep key*, the point count;
- line 1.. — one record per completed point:
  ``{"i": index, "key": point_key, "point": encoded MatmulPoint}``.

The **sweep key** is a sha256 over the ordered canonical spec list
(:func:`repro.bench.cache.canonical_spec` — the same normalisation the
result cache trusts) plus the cache schema and code fingerprint, and it
names the file.  Resume is therefore exact by construction: a journal
can only ever be replayed against the *identical* batch run by the
*identical* code; any drift (edited source, different sizes, different
fault plan) silently starts a fresh journal instead of replaying stale
results.

Point payloads round-trip through the cache's encoder, which is exact
for every field (tuples tagged, floats via shortest-repr JSON), so a
resumed point is field-identical to a freshly simulated one.

Crash tolerance: a process dying *mid-append* leaves a truncated final
line; :meth:`SweepJournal.open` tolerates and drops it (that point
re-simulates on resume).  A journal that completes is deleted; one that
does not stays on disk awaiting ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from .cache import (
    CACHE_SCHEMA_VERSION,
    canonical_spec,
    code_fingerprint,
    decode_point,
    encode_point,
    point_key,
)
from .runner import MatmulPoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .parallel import PointSpec

__all__ = ["JOURNAL_SCHEMA_VERSION", "SweepJournal", "sweep_key"]

JOURNAL_SCHEMA_VERSION = 1


def sweep_key(specs: Sequence["PointSpec"]) -> str:
    """Content address of one ordered batch of points (hex sha256).

    Hashes the ordered canonical spec list, the cache schema, and the
    code fingerprint: two batches share a journal iff they would simulate
    the same points in the same order with the same code.
    """
    blob = {
        "journal_schema": JOURNAL_SCHEMA_VERSION,
        "cache_schema": CACHE_SCHEMA_VERSION,
        "code": code_fingerprint()[:16],
        "specs": [canonical_spec(s) for s in specs],
    }
    raw = json.dumps(blob, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(raw).hexdigest()


class SweepJournal:
    """Append-only completion log for one ``run_points`` batch.

    Use :meth:`open`; it loads any surviving records for this exact batch
    (``resume=True``) or starts clean, then :meth:`record` each completed
    point and :meth:`finish` when the batch fully resolves.  All disk
    failures degrade: a journal that cannot be written warns-by-counter
    and the sweep runs on unjournaled (``io_errors``), never fails.
    """

    def __init__(self, path: Path, key: str, npoints: int):
        self.path = path
        self.key = key
        self.npoints = npoints
        self.completed: dict[int, MatmulPoint] = {}
        self.resumed_points = 0
        self.io_errors = 0
        self._point_keys: dict[int, str] = {}
        self._fh = None

    # -- construction ------------------------------------------------------
    @classmethod
    def open(cls, directory: os.PathLike, specs: Sequence["PointSpec"],
             *, resume: bool = True) -> "SweepJournal":
        """Open (and on ``resume`` replay) the journal for this batch."""
        key = sweep_key(specs)
        path = Path(directory).expanduser() / "journal" / f"{key[:32]}.jsonl"
        journal = cls(path, key, len(specs))
        if resume:
            journal._load(specs)
        journal.resumed_points = len(journal.completed)
        journal._start()
        return journal

    def _load(self, specs: Sequence["PointSpec"]) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        lines = raw.split(b"\n")
        try:
            header = json.loads(lines[0])
            if (header.get("journal_schema") != JOURNAL_SCHEMA_VERSION
                    or header.get("sweep_key") != self.key
                    or header.get("npoints") != self.npoints):
                return  # a different batch's journal: start fresh
        except (ValueError, IndexError):
            return
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                i = rec["i"]
                if not (isinstance(i, int) and 0 <= i < self.npoints):
                    raise ValueError("record index out of range")
                if rec.get("key") != point_key(specs[i]):
                    raise ValueError("record key mismatch")
                self.completed[i] = decode_point(rec["point"])
                self._point_keys[i] = rec["key"]
            except (ValueError, KeyError, TypeError):
                # A truncated or damaged trailing record (the process died
                # mid-append): drop it — that point just re-simulates.
                break

    def _start(self) -> None:
        """(Re)write the journal as header + every known-good record.

        Rewriting on open keeps the file canonical — truncated trailing
        lines from a crash never accumulate — at the cost of one small
        sequential write per batch.
        """
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("w") as fh:
                fh.write(json.dumps({
                    "journal_schema": JOURNAL_SCHEMA_VERSION,
                    "sweep_key": self.key,
                    "npoints": self.npoints,
                }, sort_keys=True) + "\n")
                for i in sorted(self.completed):
                    fh.write(self._record_line(
                        i, self._point_keys[i], self.completed[i]))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self._fh = self.path.open("a")
        except OSError:
            self.io_errors += 1
            self._fh = None

    @staticmethod
    def _record_line(index: int, key: str, point: MatmulPoint) -> str:
        return json.dumps(
            {"i": index, "key": key, "point": encode_point(point)},
            sort_keys=True, separators=(",", ":")) + "\n"

    # -- recording ---------------------------------------------------------
    def record(self, index: int, spec: "PointSpec",
               point: MatmulPoint) -> None:
        """Durably append one completed point (no-op if already known)."""
        if index in self.completed:
            return
        self.completed[index] = point
        self._point_keys[index] = point_key(spec)
        if self._fh is None:
            return
        try:
            self._fh.write(self._record_line(
                index, self._point_keys[index], point))
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):
            self.io_errors += 1

    # -- lifecycle ---------------------------------------------------------
    def finish(self) -> None:
        """The batch fully resolved: the journal has served its purpose."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        """Stop journaling but *keep* the file (interrupted / failed runs)."""
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                self.io_errors += 1
            self._fh = None
