"""Engine-level replay of SRUMMA phase traffic at large rank counts.

The figure-level benchmarks drive full per-rank protocol processes, whose
generator bookkeeping dominates host time at 1024+ ranks and is identical
whatever the allocator does.  This module replays only the *communication
pattern* of a contended SRUMMA phase schedule straight into the
:class:`~repro.sim.network.FlowNetwork`, which is the regime the
large-rank engine modes (fast-forward, per-class aggregation, batched
dispatch) exist for: allocation cost is the workload.

The pattern mirrors the paper's no-diagonal-shift access order, the worst
case Figure 10 measures.  In phase ``t`` every rank ``(i, j)`` of the
``p x q`` grid fetches its A panel from the phase's owner column ``(i, t
mod q)`` and its B panel from the owner row ``(t mod p, j)`` — hub-and-
spoke contention on the owners' NICs.  Two SRUMMA realities shape the
flows:

- **Pipelined sub-panel gets.**  A rank does not issue one monolithic get
  per panel; it pipelines ``subpanels`` equal-size gets to the same owner
  in a burst (the paper's overlap mechanism).  Every flow in a burst has
  an identical (path, size, start) signature — exactly what per-class
  aggregation collapses into one carrier flow, and, with ``cpus_per_node``
  ranks per node requesting from the same hub, class multiplicity is
  ``subpanels * cpus_per_node``.
- **Ragged block sizes.**  Dimensions never divide the grid evenly, so
  panel bytes vary per (owner node, requester node) pair.  Sizes are
  raggedised by a deterministic hash of the node pair, which staggers
  completions: each departure re-triggers the fairness allocator over the
  whole contended component, the cost the modes must keep sublinear in
  flow count.

Everything is deterministic — the virtual end time is asserted bitwise
identical across reps and across engine-mode settings by the wall-clock
benchmark and the unit tests.
"""

from __future__ import annotations

from ..distarray.distribution import choose_grid
from ..sim.cluster import Machine
from ..sim.engine import AllOf

__all__ = ["srumma_phase_traffic"]


def srumma_phase_traffic(machine: Machine, phases: int = 2,
                         subpanels: int = 8,
                         base_bytes: float = float(1 << 20)) -> dict:
    """Replay ``phases`` contended SRUMMA phases on ``machine``.

    Runs the machine's engine to completion and returns a stats dict:
    ``virtual_elapsed`` (bitwise-deterministic simulated seconds),
    ``flows`` issued, and the engine-mode counters.
    """
    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    if subpanels < 1:
        raise ValueError(f"subpanels must be >= 1, got {subpanels}")
    eng = machine.engine
    net = machine.net
    p, q = choose_grid(machine.nranks)
    flows = 0

    def size_for(src: int, dst: int) -> float:
        # Ragged-edge panel bytes: deterministic per (owner, requester)
        # node pair, shared by the ranks of one node so bursts stay
        # class-identical (Knuth multiplicative hash).
        pair = machine.node_of(src) * 1_000_003 + machine.node_of(dst)
        return base_bytes * (1.0 + ((pair * 2654435761) % 4096) / 4096.0)

    def driver():
        nonlocal flows
        for t in range(phases):
            events = []
            for r in range(p * q):
                i, j = divmod(r, q)
                a_src = i * q + (t % q)
                b_src = (t % p) * q + j
                for src in (a_src, b_src):
                    path = machine.network_path(src, r)
                    size = size_for(src, r) / subpanels
                    for _ in range(subpanels):
                        events.append(net.transfer(size, path))
            flows += len(events)
            # Phase fence: SRUMMA's shared-memory flavour barriers between
            # phases, so the next burst starts at one instant.
            yield AllOf(eng, events)

    eng.spawn(driver())
    eng.run()
    return {
        "virtual_elapsed": eng.now,
        "flows": flows,
        "grid": (p, q),
        "reallocations": net.reallocations,
        "ff_jumps": net.ff_jumps,
        "flows_aggregated": net.flows_aggregated,
        "dispatch_batches": machine.engine.dispatch_batches,
    }
