"""Benchmark harness: experiment drivers, microbenchmarks, reporting."""

from .microbench import (
    DEFAULT_SIZES,
    PROTOCOLS,
    bandwidth_sweep,
    measure_bandwidth,
    measure_overlap,
    overlap_sweep,
)
from .chaos import ChaosInterrupt, ChaosPlan
from .journal import SweepJournal, sweep_key
from .parallel import (
    ExecutionPolicy,
    FailedPoint,
    PointExecutionError,
    PointSpec,
    SweepReport,
    resolve_jobs,
    run_points,
)
from .report import fmt_bytes, format_table, paper_vs_measured, print_table, to_csv
from .runner import ALGORITHMS, MatmulPoint, default_nb, run_matmul, sweep

__all__ = [
    "DEFAULT_SIZES", "PROTOCOLS", "bandwidth_sweep", "measure_bandwidth",
    "measure_overlap", "overlap_sweep",
    "fmt_bytes", "format_table", "paper_vs_measured", "print_table", "to_csv",
    "ALGORITHMS", "MatmulPoint", "default_nb", "run_matmul", "sweep",
    "PointExecutionError", "PointSpec", "resolve_jobs", "run_points",
    "ExecutionPolicy", "FailedPoint", "SweepReport",
    "SweepJournal", "sweep_key", "ChaosPlan", "ChaosInterrupt",
]
