"""Parallel experiment executor: fan independent points across CPU cores.

Every figure reproduction and sweep is a list of *independent* simulation
points — (machine, algorithm, shape, nranks) configurations whose runs
share no state and are fully determined by their inputs (each simulation
is seeded and self-contained, see ``tests/core/test_determinism.py``).
This module exploits that embarrassing parallelism: :func:`run_points`
serialises each point as a picklable :class:`PointSpec`, fans the specs
across a :class:`~concurrent.futures.ProcessPoolExecutor`, and merges the
:class:`~repro.bench.runner.MatmulPoint` results back **in submission
order**.

Determinism is the load-bearing invariant: because each point's simulation
depends only on its spec, the result list is field-identical whatever the
worker count — ``jobs=1`` (the exact old serial path), ``jobs=4``, or one
worker per point.  ``tests/bench/test_parallel.py`` gates this with a
serial-vs-parallel property test.

Caching: ``run_points`` accepts a
:class:`~repro.bench.cache.ResultCache`.  Lookups happen in the parent
*before* pool submission (hits and in-batch duplicates never reach a
worker), and freshly simulated points are **streamed** back — each
point's result is merged, written back to the cache, and journaled *the
moment it finishes*, so a failure at point k can never discard the
results of the k-1 points that already completed.  ``cache=None`` is the
exact uncached path: no key is ever computed.

Resilience (all opt-in; the defaults are the exact historical behaviour):

- A point that raises inside a worker surfaces as
  :class:`PointExecutionError` carrying the originating spec *and* the
  worker-side traceback (a bare pickled exception would lose it).
- When worker processes cannot be created — restricted sandboxes that
  forbid ``fork``/``spawn`` — the executor falls back to in-process serial
  execution with a :class:`RuntimeWarning`, so sweeps still complete
  everywhere.
- When a worker process *dies* mid-run (segfault, OOM kill), the broken
  pool is torn down and the point that was being collected is retried
  exactly once in a fresh pool; only a second death raises
  :class:`PointExecutionError` with the originating spec.
- ``point_timeout`` bounds the wall-clock wait for each point's result;
  exceeding it raises :class:`PointExecutionError` without waiting for the
  stuck worker.  The serial path is unchanged by either mechanism.
- :class:`ExecutionPolicy` upgrades all of the above from "abort the
  batch" to a per-point **error policy** (``on_error="raise"|"skip"|
  "retry"``, bounded retry with exponential wall-clock backoff), a
  durable :class:`~repro.bench.journal.SweepJournal` (``--resume``), and
  a seeded :class:`~repro.bench.chaos.ChaosPlan` that injects the very
  failures these paths exist to absorb.  Skipped/exhausted failures are
  collected into a structured :class:`SweepReport` instead of aborting.
- With a disk-backed cache, concurrent *processes* sharing one cache
  directory coordinate through per-key single-flight lock files: each
  unique point is simulated by exactly one process and the others
  coalesce onto its result (see ``ResultCache.try_lock``/``wait_for``).
"""

from __future__ import annotations

import os
import sys
import time
import traceback
import warnings
from copy import deepcopy
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

from ..machines.spec import MachineSpec
from .runner import MatmulPoint, run_matmul

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import ResultCache
    from .chaos import ChaosPlan
    from .journal import SweepJournal

__all__ = [
    "PointSpec",
    "PointExecutionError",
    "ExecutionPolicy",
    "FailedPoint",
    "SweepReport",
    "run_points",
    "resolve_jobs",
]


@dataclass(frozen=True)
class PointSpec:
    """A picklable description of one simulation point.

    Field names deliberately mirror the keyword signature of
    :func:`repro.bench.runner.run_matmul`, so ``spec.run()`` is exactly
    ``run_matmul(algorithm, machine, nranks, m, ...)``.  Every field is a
    value object (frozen dataclasses, ints, bools), so specs cross process
    boundaries by pickle without touching simulator state.
    """

    algorithm: str
    machine: MachineSpec
    nranks: int
    m: int
    n: Optional[int] = None
    k: Optional[int] = None
    transa: bool = False
    transb: bool = False
    payload: str = "synthetic"
    verify: bool = False
    options: Any = None
    nb: Optional[int] = None
    seed: int = 0
    interference: Any = None
    faults: Any = None

    def run(self) -> MatmulPoint:
        """Execute this point in the current process."""
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)
                  if f.name not in ("algorithm", "machine", "nranks", "m")}
        return run_matmul(self.algorithm, self.machine, self.nranks, self.m,
                          **kwargs)

    def describe(self) -> str:
        t = ("T" if self.transa else "N") + ("T" if self.transb else "N")
        n = self.n if self.n is not None else self.m
        k = self.k if self.k is not None else self.m
        return (f"{self.algorithm}/{self.machine.name} "
                f"m={self.m} n={n} k={k} {t} P={self.nranks}")


class PointExecutionError(RuntimeError):
    """One point failed inside a worker; carries spec + remote traceback."""

    def __init__(self, spec: PointSpec, remote_traceback: str):
        self.spec = spec
        self.remote_traceback = remote_traceback
        super().__init__(
            f"simulation point failed: {spec.describe()}\n"
            f"--- worker traceback ---\n{remote_traceback}")

    def __reduce__(self):
        # pickle rebuilds exceptions as ``cls(*self.args)``, but args holds
        # only the rendered message; a two-argument __init__ would explode
        # the moment this error crosses a process or service boundary.
        return (type(self), (self.spec, self.remote_traceback))


@dataclass
class ExecutionPolicy:
    """How a batch responds to per-point failure and interruption.

    The default instance is behaviour-identical to passing no policy at
    all: errors abort the batch (after the historical single worker-death
    retry), nothing is journaled, and no chaos is injected.
    """

    on_error: str = "raise"
    """``"raise"``: the first failing point aborts the batch (historical
    behaviour).  ``"skip"``: the failing point becomes ``None`` in the
    result list and is collected into the :class:`SweepReport`.
    ``"retry"``: re-execute the point up to :attr:`retries` times with
    exponential backoff, then collect it like ``"skip"``."""
    retries: int = 2
    """Bounded re-executions per point under ``on_error="retry"``."""
    retry_backoff: float = 0.05
    """Base wall-clock backoff in seconds; doubles per attempt (capped)."""
    point_timeout: Optional[float] = None
    """Per-point result-collection bound; see :func:`run_points`."""
    journal_dir: Optional[os.PathLike] = None
    """Enable the durable sweep journal under this directory: completed
    points are recorded as they finish and replayed on the next run of
    the identical batch (the CLI's ``--resume``)."""
    chaos: Optional["ChaosPlan"] = None
    """Deterministic harness-fault injection (tests / chaos drills)."""

    def __post_init__(self):
        if self.on_error not in ("raise", "skip", "retry"):
            raise ValueError(
                f"on_error must be 'raise', 'skip' or 'retry', "
                f"got {self.on_error!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}")


@dataclass
class FailedPoint:
    """One spec that failed permanently under a skip/retry policy."""

    index: int
    spec: PointSpec
    error: str
    attempts: int = 1


@dataclass
class SweepReport:
    """Structured outcome of one or more ``run_points`` batches.

    Pass one instance through several batches (the CLI threads one
    through every experiment of a ``reproduce`` invocation) and it
    accumulates; ``failed`` holds every spec that was skipped or
    exhausted its retries instead of aborting the sweep.
    """

    total: int = 0
    executed: int = 0
    from_cache: int = 0
    from_journal: int = 0
    deduped: int = 0
    coalesced: int = 0
    failed: list[FailedPoint] = field(default_factory=list)
    health: dict[str, int] = field(default_factory=dict)
    """Accumulated health counters (suspicions, fence rejections,
    diagnosed stalls, ...) from every completed point that carried them —
    detection/watchdog runs attach theirs via ``MatmulPoint.extra``."""

    @property
    def ok(self) -> bool:
        return not self.failed

    def merge_health(self, counters: Optional[dict]) -> None:
        if not counters:
            return
        for name, val in counters.items():
            self.health[name] = self.health.get(name, 0) + int(val)

    def summary(self) -> str:
        out = (f"points={self.total} executed={self.executed} "
               f"cache={self.from_cache} journal={self.from_journal} "
               f"dedup={self.deduped} coalesced={self.coalesced} "
               f"failed={len(self.failed)}")
        if self.health:
            body = " ".join(f"{k}={self.health[k]}"
                            for k in sorted(self.health))
            out += f" health[{body}]"
        return out


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPU cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def _run_point_payload(spec: PointSpec, chaos: Optional["ChaosPlan"] = None,
                       index: int = 0, attempt: int = 0):
    """Worker entry: run one spec, shipping failures back as data.

    Exceptions are converted to ``("err", spec, traceback_text)`` tuples in
    the worker so the parent can re-raise with the *remote* traceback; a
    pickled exception alone arrives stripped of it.  Successes carry the
    worker-side wall seconds for ``--verbose`` progress lines.  A chaos
    plan may kill this worker outright (``os._exit``) before the spec
    runs — the parent then sees a real ``BrokenProcessPool``.
    """
    if chaos is not None:
        chaos.maybe_kill_worker(index, attempt)
    t0 = time.perf_counter()
    try:
        return ("ok", spec.run(), time.perf_counter() - t0)
    except Exception:  # noqa: BLE001 - shipped to the parent
        return ("err", spec, traceback.format_exc())


def _make_pool(max_workers: int):
    """Create the process pool, preferring ``fork`` where available.

    ``fork`` inherits the parent's imported modules and warm plan caches,
    so worker start-up is near-free; platforms without it (Windows, macOS
    spawn default) fall back to the interpreter default.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    ctx = None
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def _backoff_sleep(policy: ExecutionPolicy, attempt: int) -> None:
    if policy.retry_backoff > 0:
        time.sleep(min(policy.retry_backoff * (2 ** max(attempt - 1, 0)),
                       5.0))


def _serial_stream(specs: Sequence[PointSpec], start: int,
                   policy: ExecutionPolicy,
                   ) -> Iterator[tuple[int, str, Any, float]]:
    """In-process execution of ``specs[start:]``; yields as each finishes.

    Under the default ``on_error="raise"`` this is byte-for-byte the old
    serial path: ``spec.run()`` with no wrapper, original exceptions
    propagating untouched.
    """
    for offset in range(start, len(specs)):
        spec = specs[offset]
        if policy.on_error == "raise":
            t0 = time.perf_counter()
            yield offset, "ok", spec.run(), time.perf_counter() - t0
            continue
        attempt = 0
        while True:
            try:
                t0 = time.perf_counter()
                point = spec.run()
                wall = time.perf_counter() - t0
            except Exception:  # noqa: BLE001 - collected per policy
                attempt += 1
                err = PointExecutionError(spec, traceback.format_exc())
                if policy.on_error == "retry" and attempt <= policy.retries:
                    _backoff_sleep(policy, attempt)
                    continue
                yield offset, "failed", (err, attempt), 0.0
                break
            else:
                yield offset, "ok", point, wall
                break


def _execute_stream(specs: Sequence[PointSpec], indices: Sequence[int],
                    njobs: int, point_timeout: Optional[float],
                    policy: ExecutionPolicy,
                    ) -> Iterator[tuple[int, str, Any, float]]:
    """Run every spec; yield ``(i, "ok", point, wall_s)`` or
    ``(i, "failed", (error, attempts), 0.0)`` in submission order, *as
    each point resolves* — the caller merges, caches and journals one
    point at a time, so nothing already computed can be lost to a later
    failure.

    Pool hardening: results are collected in submission order with
    ``point_timeout`` bounding each wait.  A worker death
    (``BrokenProcessPool``) or a timed-out point tears the pool down and
    execution continues in a fresh pool — retrying or skipping the
    affected point per ``policy``; under the default ``on_error="raise"``
    a death is retried exactly once and a timeout raises immediately
    (the historical behaviour).  Every error path shuts the pool down
    with ``wait=False`` — blocking on a hung or dead worker is exactly
    what the timeout exists to avoid.  ``failed`` events are emitted only
    under ``skip``/``retry`` policies.
    """
    if njobs <= 1 or len(specs) <= 1:
        yield from _serial_stream(specs, 0, policy)
        return

    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    chaos = policy.chaos
    chaos_kills = chaos is not None and chaos.worker_kill_prob > 0
    done = 0
    blames = [0] * len(specs)   # errors attributed to each point
    submits = [0] * len(specs)  # times each point was handed to a worker
    while done < len(specs):
        start = done
        try:
            pool = _make_pool(min(njobs, len(specs) - start))
        except (OSError, PermissionError, ValueError, ImportError,
                NotImplementedError) as exc:
            warnings.warn(
                f"worker processes unavailable ({exc!r}); running "
                f"{len(specs) - start} points serially",
                RuntimeWarning, stacklevel=3)
            yield from _serial_stream(specs, start, policy)
            return
        futures = []
        for offset, spec in enumerate(specs[start:]):
            i = start + offset
            if chaos_kills:
                futures.append(pool.submit(_run_point_payload, spec, chaos,
                                           indices[i], submits[i]))
            else:
                futures.append(pool.submit(_run_point_payload, spec))
            submits[i] += 1
        try:
            for offset, fut in enumerate(futures):
                i = start + offset
                try:
                    payload = fut.result(timeout=point_timeout)
                except FuturesTimeout:
                    blames[i] += 1
                    err = PointExecutionError(
                        specs[i],
                        f"no result within the per-point timeout of "
                        f"{point_timeout:g}s (worker abandoned, not joined)")
                    if policy.on_error == "raise":
                        raise err from None
                    if (policy.on_error == "retry"
                            and blames[i] <= policy.retries):
                        _backoff_sleep(policy, blames[i])
                        done = i
                    else:
                        yield i, "failed", (err, blames[i]), 0.0
                        done = i + 1
                    break  # the pool has a stuck worker: rebuild it
                except BrokenProcessPool as exc:
                    blames[i] += 1
                    if policy.on_error == "raise":
                        if blames[i] > 1:
                            raise PointExecutionError(
                                specs[i],
                                f"worker process died twice running this "
                                f"point ({exc!r})") from exc
                        warnings.warn(
                            f"worker pool broke at point {i + 1}/"
                            f"{len(specs)} ({specs[i].describe()}); "
                            f"retrying once in a fresh pool",
                            RuntimeWarning, stacklevel=4)
                        done = i
                    elif (policy.on_error == "retry"
                          and blames[i] <= policy.retries):
                        _backoff_sleep(policy, blames[i])
                        done = i
                    else:
                        err = PointExecutionError(
                            specs[i],
                            f"worker process died running this point "
                            f"({exc!r})")
                        yield i, "failed", (err, blames[i]), 0.0
                        done = i + 1
                    break  # the pool is gone either way: rebuild it
                else:
                    if payload[0] == "err":
                        _, bad_spec, tb = payload
                        err = PointExecutionError(bad_spec, tb)
                        if policy.on_error == "raise":
                            raise err
                        blames[i] += 1
                        if (policy.on_error == "retry"
                                and blames[i] <= policy.retries):
                            _backoff_sleep(policy, blames[i])
                            done = i
                        else:
                            yield i, "failed", (err, blames[i]), 0.0
                            done = i + 1
                        break  # resubmit the remainder in a fresh pool
                    yield i, "ok", payload[1], payload[2]
                    done = i + 1
        finally:
            pool.shutdown(wait=False, cancel_futures=True)


def _emit(index: int, total: int, spec: PointSpec, status: str,
          wall_s: float, health: Optional[dict] = None) -> None:
    tail = ""
    if health:
        body = " ".join(f"{k}={health[k]}" for k in sorted(health))
        tail = f" health[{body}]"
    print(f"[point {index + 1}/{total}] {spec.describe()}: "
          f"{wall_s:.3f}s ({status}){tail}", file=sys.stderr, flush=True)


_DEFAULT_POLICY = ExecutionPolicy()


def run_points(specs: Sequence[PointSpec], jobs: Optional[int] = None,
               cache: Optional["ResultCache"] = None,
               verbose: bool = False,
               point_timeout: Optional[float] = None,
               policy: Optional[ExecutionPolicy] = None,
               report: Optional[SweepReport] = None) -> list[MatmulPoint]:
    """Run independent simulation points, possibly across worker processes.

    Parameters
    ----------
    specs:
        The points to run.  Results come back in the same order.
    jobs:
        Worker process count; ``None``/``0`` means ``os.cpu_count()``,
        ``1`` runs the exact in-process serial path (no pool, no pickling).
    cache:
        Optional :class:`~repro.bench.cache.ResultCache`.  Each spec is
        looked up *before* pool submission; hits and duplicate specs in the
        same batch never reach a worker, and freshly simulated points are
        written back **as each one finishes**.  With a disk tier, per-key
        single-flight locks coordinate concurrent processes sharing the
        cache directory: one process simulates each unique point, the
        others wait and coalesce onto its entry.  ``None`` (the default)
        is the exact uncached execution path — no key is ever computed.
    verbose:
        Emit one progress line per point to stderr (index, point label,
        wall seconds, hit/miss/dedup/journal/coalesced status).
    point_timeout:
        Optional wall-clock bound (seconds) on collecting each point's
        result from the pool; exceeding it raises
        :class:`PointExecutionError` for that point (or retries/skips it
        per ``policy``).  Ignored on the serial path (``jobs=1``), which
        stays exactly the old behaviour.  Overrides
        ``policy.point_timeout`` when both are given.
    policy:
        Optional :class:`ExecutionPolicy`: per-point error handling
        (``on_error``), bounded retry with backoff, the durable sweep
        journal (``journal_dir``; an interrupted batch resumes from its
        last completed point), and deterministic chaos injection.  The
        default is behaviour-identical to passing ``None``.
    report:
        Optional :class:`SweepReport` accumulating totals and permanent
        failures across batches.  Under ``on_error="skip"``/``"retry"``
        a permanently failed point returns as ``None`` in the result list
        and is described here.

    Returns the :class:`MatmulPoint` list in submission order.  Results are
    bit-identical for every ``jobs`` value, for cached vs uncached
    execution, and for interrupted-then-resumed vs uninterrupted runs:
    each point's simulation is seeded and self-contained, so neither
    process placement nor result provenance can affect it.

    Raises :class:`PointExecutionError` for the earliest (in submission
    order) failing point under ``on_error="raise"``.  If worker processes
    cannot be created, falls back to serial execution with a
    :class:`RuntimeWarning`; if a worker *dies* mid-run, the affected
    point is retried once in a fresh pool before the error is raised.
    """
    specs = list(specs)
    njobs = resolve_jobs(jobs)
    total = len(specs)
    pol = policy if policy is not None else _DEFAULT_POLICY
    if point_timeout is None:
        point_timeout = pol.point_timeout
    rep = report if report is not None else SweepReport()
    rep.total += total
    chaos = pol.chaos

    journal: Optional["SweepJournal"] = None
    if pol.journal_dir is not None and total:
        from .journal import SweepJournal

        journal = SweepJournal.open(pol.journal_dir, specs)

    results: list[Optional[MatmulPoint]] = [None] * total
    held: dict[int, str] = {}       # point index -> single-flight lock key
    executed = 0                    # points actually simulated this run
    clean_exit = False

    def _note_executed() -> None:
        nonlocal executed
        executed += 1
        if chaos is not None and chaos.kill_after is not None \
                and executed >= chaos.kill_after:
            from .chaos import ChaosInterrupt

            raise ChaosInterrupt(
                f"chaos: harness killed after {executed} executed points")

    def _complete(i: int, point: MatmulPoint, wall_s: float,
                  status: str) -> None:
        """One point resolved: merge, write back, journal, then count it."""
        results[i] = point
        point_health = (point.extra.get("health")
                        if point is not None else None)
        rep.merge_health(point_health)
        if status in ("run", "miss") and cache is not None:
            cache.put(specs[i], point, key=held.get(i))
        if i in held:
            cache.release(held.pop(i))
        if journal is not None:
            journal.record(i, specs[i], point)
        if verbose:
            _emit(i, total, specs[i], status, wall_s, health=point_health)
        if status in ("run", "miss"):
            rep.executed += 1
            _note_executed()

    def _fail(i: int, err: PointExecutionError, attempts: int) -> None:
        results[i] = None
        if i in held:
            cache.release(held.pop(i))
        rep.failed.append(FailedPoint(index=i, spec=specs[i],
                                      error=str(err), attempts=attempts))
        if verbose:
            _emit(i, total, specs[i], "failed", 0.0)

    try:
        if journal is not None:
            for i in sorted(journal.completed):
                if results[i] is None:
                    results[i] = journal.completed[i]
                    rep.from_journal += 1
                    if verbose:
                        _emit(i, total, specs[i], "journal", 0.0)

        pending: list[int] = []        # indices this process will simulate
        waiters: list[tuple[int, str]] = []  # in flight in another process
        dup_of: dict[int, int] = {}    # duplicate index -> first index
        first_of_key: dict[str, int] = {}
        if cache is None:
            pending = [i for i in range(total) if results[i] is None]
        else:
            for i, spec in enumerate(specs):
                if results[i] is not None:
                    continue
                key = cache.key(spec)
                hit = cache.get(spec, key=key, count_miss=False)
                if hit is not None:
                    results[i] = hit
                    rep.from_cache += 1
                    if journal is not None:
                        journal.record(i, spec, hit)
                    if verbose:
                        _emit(i, total, spec, "hit", 0.0)
                elif key in first_of_key:
                    dup_of[i] = first_of_key[key]
                    cache.note_dedup()
                    rep.deduped += 1
                elif cache.try_lock(key):
                    first_of_key[key] = i
                    held[i] = key
                    cache.note_miss()
                    pending.append(i)
                else:
                    first_of_key[key] = i
                    waiters.append((i, key))

        status = "run" if cache is None else "miss"
        for sub_i, kind, payload, wall_s in _execute_stream(
                [specs[i] for i in pending], pending, njobs,
                point_timeout, pol):
            i = pending[sub_i]
            if kind == "ok":
                _complete(i, payload, wall_s, status)
            else:
                err, attempts = payload
                _fail(i, err, attempts)

        # Points another process was already simulating: wait for its
        # entry (coalesce) or, if its lock went stale or the wait timed
        # out, take the point over ourselves.
        takeover: list[int] = []
        for i, key in waiters:
            point = cache.wait_for(key)
            if point is not None:
                results[i] = point
                rep.coalesced += 1
                if journal is not None:
                    journal.record(i, specs[i], point)
                if verbose:
                    _emit(i, total, specs[i], "coalesced", 0.0)
            else:
                if cache.try_lock(key):
                    held[i] = key
                cache.note_miss()
                takeover.append(i)
        for sub_i, kind, payload, wall_s in _execute_stream(
                [specs[i] for i in takeover], takeover, njobs,
                point_timeout, pol):
            i = takeover[sub_i]
            if kind == "ok":
                _complete(i, payload, wall_s, "miss")
            else:
                err, attempts = payload
                _fail(i, err, attempts)

        for i, j in sorted(dup_of.items()):
            if results[j] is None:
                _fail(i, PointExecutionError(
                    specs[i],
                    f"duplicate of point {j + 1}/{total}, which failed"), 0)
                continue
            results[i] = deepcopy(results[j])
            if journal is not None:
                journal.record(i, specs[i], results[i])
            if verbose:
                _emit(i, total, specs[i], "dedup", 0.0)
        clean_exit = all(r is not None for r in results)
    finally:
        if cache is not None:
            for key in held.values():
                cache.release(key)
        if journal is not None:
            if clean_exit:
                journal.finish()
            else:
                journal.close()

    return results
