"""Parallel experiment executor: fan independent points across CPU cores.

Every figure reproduction and sweep is a list of *independent* simulation
points — (machine, algorithm, shape, nranks) configurations whose runs
share no state and are fully determined by their inputs (each simulation
is seeded and self-contained, see ``tests/core/test_determinism.py``).
This module exploits that embarrassing parallelism: :func:`run_points`
serialises each point as a picklable :class:`PointSpec`, fans the specs
across a :class:`~concurrent.futures.ProcessPoolExecutor`, and merges the
:class:`~repro.bench.runner.MatmulPoint` results back **in submission
order**.

Determinism is the load-bearing invariant: because each point's simulation
depends only on its spec, the result list is field-identical whatever the
worker count — ``jobs=1`` (the exact old serial path), ``jobs=4``, or one
worker per point.  ``tests/bench/test_parallel.py`` gates this with a
serial-vs-parallel property test.

Caching: ``run_points`` accepts a
:class:`~repro.bench.cache.ResultCache`.  Lookups happen in the parent
*before* pool submission (hits and in-batch duplicates never reach a
worker), results are written back on merge, and the returned list is in
submission order with every field identical to an uncached run — the cache
changes wall-clock, never results.  ``cache=None`` is the exact uncached
path: no key is ever computed.

Failure handling:

- A point that raises inside a worker surfaces as
  :class:`PointExecutionError` carrying the originating spec *and* the
  worker-side traceback (a bare pickled exception would lose it).
- When worker processes cannot be created — restricted sandboxes that
  forbid ``fork``/``spawn`` — the executor falls back to in-process serial
  execution with a :class:`RuntimeWarning`, so sweeps still complete
  everywhere.
- When a worker process *dies* mid-run (segfault, OOM kill), the broken
  pool is torn down and the point that was being collected is retried
  exactly once in a fresh pool; only a second death raises
  :class:`PointExecutionError` with the originating spec.
- ``point_timeout`` bounds the wall-clock wait for each point's result;
  exceeding it raises :class:`PointExecutionError` without waiting for the
  stuck worker.  The serial path is unchanged by either mechanism.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
import warnings
from copy import deepcopy
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..machines.spec import MachineSpec
from .runner import MatmulPoint, run_matmul

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cache import ResultCache

__all__ = ["PointSpec", "PointExecutionError", "run_points", "resolve_jobs"]


@dataclass(frozen=True)
class PointSpec:
    """A picklable description of one simulation point.

    Field names deliberately mirror the keyword signature of
    :func:`repro.bench.runner.run_matmul`, so ``spec.run()`` is exactly
    ``run_matmul(algorithm, machine, nranks, m, ...)``.  Every field is a
    value object (frozen dataclasses, ints, bools), so specs cross process
    boundaries by pickle without touching simulator state.
    """

    algorithm: str
    machine: MachineSpec
    nranks: int
    m: int
    n: Optional[int] = None
    k: Optional[int] = None
    transa: bool = False
    transb: bool = False
    payload: str = "synthetic"
    verify: bool = False
    options: Any = None
    nb: Optional[int] = None
    seed: int = 0
    interference: Any = None
    faults: Any = None

    def run(self) -> MatmulPoint:
        """Execute this point in the current process."""
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)
                  if f.name not in ("algorithm", "machine", "nranks", "m")}
        return run_matmul(self.algorithm, self.machine, self.nranks, self.m,
                          **kwargs)

    def describe(self) -> str:
        t = ("T" if self.transa else "N") + ("T" if self.transb else "N")
        n = self.n if self.n is not None else self.m
        k = self.k if self.k is not None else self.m
        return (f"{self.algorithm}/{self.machine.name} "
                f"m={self.m} n={n} k={k} {t} P={self.nranks}")


class PointExecutionError(RuntimeError):
    """One point failed inside a worker; carries spec + remote traceback."""

    def __init__(self, spec: PointSpec, remote_traceback: str):
        self.spec = spec
        self.remote_traceback = remote_traceback
        super().__init__(
            f"simulation point failed: {spec.describe()}\n"
            f"--- worker traceback ---\n{remote_traceback}")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPU cores."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    return jobs


def _run_point_payload(spec: PointSpec):
    """Worker entry: run one spec, shipping failures back as data.

    Exceptions are converted to ``("err", spec, traceback_text)`` tuples in
    the worker so the parent can re-raise with the *remote* traceback; a
    pickled exception alone arrives stripped of it.  Successes carry the
    worker-side wall seconds for ``--verbose`` progress lines.
    """
    t0 = time.perf_counter()
    try:
        return ("ok", spec.run(), time.perf_counter() - t0)
    except Exception:  # noqa: BLE001 - shipped to the parent
        return ("err", spec, traceback.format_exc())


def _unwrap(payload) -> tuple[MatmulPoint, float]:
    if payload[0] == "err":
        _, spec, tb = payload
        raise PointExecutionError(spec, tb)
    return payload[1], payload[2]


def _run_serial(specs: Sequence[PointSpec]) -> list[tuple[MatmulPoint, float]]:
    out = []
    for spec in specs:
        t0 = time.perf_counter()
        out.append((spec.run(), time.perf_counter() - t0))
    return out


def _make_pool(max_workers: int):
    """Create the process pool, preferring ``fork`` where available.

    ``fork`` inherits the parent's imported modules and warm plan caches,
    so worker start-up is near-free; platforms without it (Windows, macOS
    spawn default) fall back to the interpreter default.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    ctx = None
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def _execute(specs: Sequence[PointSpec], njobs: int,
             point_timeout: Optional[float] = None,
             ) -> list[tuple[MatmulPoint, float]]:
    """Run every spec (pool or serial); returns ``(point, wall_s)`` pairs.

    Pool hardening: results are collected in submission order with
    ``point_timeout`` bounding each wait; a worker death
    (``BrokenProcessPool``) tears the pool down and retries the affected
    point (and everything after it) once in a fresh pool.  Every error
    path shuts the pool down with ``wait=False`` — blocking on a hung or
    dead worker is exactly what the timeout exists to avoid.
    """
    if njobs <= 1 or len(specs) <= 1:
        return _run_serial(specs)

    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    results: list[tuple[MatmulPoint, float]] = []
    retried: set[int] = set()
    while len(results) < len(specs):
        start = len(results)
        try:
            pool = _make_pool(min(njobs, len(specs) - start))
        except (OSError, PermissionError, ValueError, ImportError,
                NotImplementedError) as exc:
            warnings.warn(
                f"worker processes unavailable ({exc!r}); running "
                f"{len(specs) - start} points serially",
                RuntimeWarning, stacklevel=3)
            results.extend(_run_serial(specs[start:]))
            return results
        futures = [pool.submit(_run_point_payload, spec)
                   for spec in specs[start:]]
        try:
            for offset, fut in enumerate(futures):
                i = start + offset
                try:
                    payload = fut.result(timeout=point_timeout)
                except FuturesTimeout:
                    raise PointExecutionError(
                        specs[i],
                        f"no result within the per-point timeout of "
                        f"{point_timeout:g}s (worker abandoned, not joined)",
                    ) from None
                except BrokenProcessPool as exc:
                    if i in retried:
                        raise PointExecutionError(
                            specs[i],
                            f"worker process died twice running this point "
                            f"({exc!r})") from exc
                    retried.add(i)
                    warnings.warn(
                        f"worker pool broke at point {i + 1}/{len(specs)} "
                        f"({specs[i].describe()}); retrying once in a "
                        f"fresh pool", RuntimeWarning, stacklevel=4)
                    break  # outer loop resubmits from point i in a new pool
                results.append(_unwrap(payload))
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
    return results


def _emit(index: int, total: int, spec: PointSpec, status: str,
          wall_s: float) -> None:
    print(f"[point {index + 1}/{total}] {spec.describe()}: "
          f"{wall_s:.3f}s ({status})", file=sys.stderr, flush=True)


def run_points(specs: Sequence[PointSpec], jobs: Optional[int] = None,
               cache: Optional["ResultCache"] = None,
               verbose: bool = False,
               point_timeout: Optional[float] = None) -> list[MatmulPoint]:
    """Run independent simulation points, possibly across worker processes.

    Parameters
    ----------
    specs:
        The points to run.  Results come back in the same order.
    jobs:
        Worker process count; ``None``/``0`` means ``os.cpu_count()``,
        ``1`` runs the exact in-process serial path (no pool, no pickling).
    cache:
        Optional :class:`~repro.bench.cache.ResultCache`.  Each spec is
        looked up *before* pool submission; hits and duplicate specs in the
        same batch never reach a worker, and freshly simulated points are
        written back on merge.  ``None`` (the default) is the exact
        uncached execution path — no key is ever computed.
    verbose:
        Emit one progress line per point to stderr (index, point label,
        wall seconds, hit/miss/dedup status).
    point_timeout:
        Optional wall-clock bound (seconds) on collecting each point's
        result from the pool; exceeding it raises
        :class:`PointExecutionError` for that point.  Ignored on the
        serial path (``jobs=1``), which stays exactly the old behaviour.

    Returns the :class:`MatmulPoint` list in submission order.  Results are
    bit-identical for every ``jobs`` value and for cached vs uncached
    execution: each point's simulation is seeded and self-contained, so
    neither process placement nor result provenance can affect it.

    Raises :class:`PointExecutionError` for the earliest (in submission
    order) failing point.  If worker processes cannot be created, falls
    back to serial execution with a :class:`RuntimeWarning`; if a worker
    *dies* mid-run, the affected point is retried once in a fresh pool
    before the error is raised.
    """
    specs = list(specs)
    njobs = resolve_jobs(jobs)
    total = len(specs)

    if cache is None:
        executed = _execute(specs, njobs, point_timeout)
        if verbose:
            for i, (point, wall_s) in enumerate(executed):
                _emit(i, total, specs[i], "run", wall_s)
        return [point for point, _ in executed]

    results: list[Optional[MatmulPoint]] = [None] * total
    pending: list[int] = []        # indices that must actually simulate
    dup_of: dict[int, int] = {}    # duplicate index -> first index, same key
    first_of_key: dict[str, int] = {}
    for i, spec in enumerate(specs):
        key = cache.key(spec)
        hit = cache.get(spec, key=key, count_miss=False)
        if hit is not None:
            results[i] = hit
            if verbose:
                _emit(i, total, spec, "hit", 0.0)
        elif key in first_of_key:
            dup_of[i] = first_of_key[key]
            cache.note_dedup()
        else:
            first_of_key[key] = i
            cache.note_miss()
            pending.append(i)

    for i, (point, wall_s) in zip(pending,
                                  _execute([specs[i] for i in pending], njobs,
                                           point_timeout)):
        results[i] = point
        cache.put(specs[i], point)
        if verbose:
            _emit(i, total, specs[i], "miss", wall_s)
    for i, j in sorted(dup_of.items()):
        results[i] = deepcopy(results[j])
        if verbose:
            _emit(i, total, specs[i], "dedup", 0.0)
    return results
