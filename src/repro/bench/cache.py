"""Content-addressed simulation result cache (memory + disk tiers).

The paper's evaluation (Figs. 5-10, Table 1) is a grid of overlapping
(machine, algorithm, N, P, protocol) points, and every simulation point is
a pure function of its :class:`~repro.bench.parallel.PointSpec` — seeded,
self-contained, deterministic (``tests/core/test_determinism.py``).  That
makes results *content-addressable*: a canonical fingerprint of the spec
identifies the result completely, so a point shared by several figures (or
by successive ``repro reproduce`` invocations) only ever needs to be
simulated once.  Task-based MM systems make the same move of memoizing
repeated block-level work rather than re-executing it (Calvin & Valeev,
arXiv:1504.05046).

Key anatomy
-----------
:func:`point_key` hashes the *normalized* spec — machine model fingerprint
(every calibration constant, floats rendered via ``float.hex`` so the key
is exact and platform-independent), algorithm + options (nested dataclasses
walked field by field), ``m/n/k`` with the square-default applied,
``nranks``, transposes, payload mode, ``nb``, ``seed``, interference — plus
:data:`CACHE_SCHEMA_VERSION`.  Canonicalisation is a sorted-keys compact
JSON dump, so the key is stable across Python versions and dict orderings.

Invalidation is by *namespace*, not per entry: disk entries live under
``<dir>/v<schema>-<code_fingerprint>/`` where the code fingerprint hashes
every ``repro`` source file.  Any change to the simulator silently starts a
fresh namespace; stale entries are never consulted and ``repro cache
clear`` reaps them.

Tiers
-----
- **memory**: a bounded LRU (:class:`ResultCache` ``memory_entries``) for
  intra-run hits — figures sharing points inside one ``repro reproduce``
  invocation pay for each point once.
- **disk**: one JSON file per entry (atomic ``os.replace`` writes) for
  cross-run hits.  A damaged or mismatched entry is discarded and the
  point recomputed — corruption is never fatal.

Concurrency and robustness
--------------------------
The disk tier assumes *nothing* about who else is using it:

- **single-flight locks** — per-key ``.lock`` files (``O_CREAT|O_EXCL``)
  let concurrent processes sharing one cache directory elect exactly one
  simulator per unique point; the others :meth:`ResultCache.wait_for` the
  entry and coalesce onto it.  A lock whose holder died (pid probe, then
  an age bound for unprobeable holders) is reaped as stale, so a crashed
  process can never wedge its peers.
- **size bound** — ``max_bytes`` caps the current namespace; after each
  write the least-recently-used entries (mtime, refreshed on every read)
  are evicted until the namespace fits.
- **graceful degradation** — every disk failure (ENOSPC, EACCES, a
  corrupt entry, an unwritable lock) is counted, warned about once, and
  answered by running *uncached*; after ``disable_after_io_errors``
  consecutive failures the disk tier switches off for the rest of the
  run.  No cache I/O failure mode can fail a sweep.
- **chaos hooks** — a :class:`~repro.bench.chaos.ChaosPlan` injects
  seeded I/O errors and entry corruption so all of the above is
  exercised by deterministic tests, not just claimed.

Stored payloads round-trip exactly: JSON encodes floats via ``repr``,
which is shortest-round-trip in CPython, and tuples are tagged so decoded
:class:`~repro.bench.runner.MatmulPoint` objects are field-identical to
freshly simulated ones (``tests/bench/test_cache.py`` gates this).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import warnings
from collections import OrderedDict
from copy import deepcopy
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from .runner import MatmulPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .chaos import ChaosPlan
    from .parallel import PointSpec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "canonical_spec",
    "code_fingerprint",
    "default_cache_dir",
    "point_key",
]

CACHE_SCHEMA_VERSION = 4
"""Bump when the key anatomy or the entry format changes; old disk
namespaces become unreachable (and reapable) rather than misread.
History: 2 added the ``faults`` field (fault-injection plans) to the key
anatomy, so degraded runs can never collide with healthy ones; 3 covers
the crash/ABFT fault-plan extension (``crashes``, ``corruption_rate``,
``checkpoint_interval`` — picked up automatically by the dataclass walk
in ``_canon``) plus the per-rank draw-stream change, which shifts every
degraded-run result; 4 covers the failure-detection extension
(``partitions``, ``rejoins``, ``detector``, ``watchdog_grace`` — again
picked up by the ``_canon`` dataclass walk), so detector parameters hash
into point keys and detection runs never collide with oracle ones."""

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Disk store location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-srumma``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-srumma"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, so stale entries self-invalidate.

    Computed once per process; any edit to the simulator, the algorithms,
    or the machine models changes the namespace under which disk entries
    are stored and looked up.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


# -- canonicalisation ---------------------------------------------------------

def _canon(value: Any) -> Any:
    """Reduce a spec field to a deterministic JSON-serialisable form.

    Floats become ``float.hex`` strings (exact, no shortest-repr
    dependence), dataclasses become name-tagged sorted dicts, tuples become
    lists.  Unknown objects fall back to ``repr`` — good enough to *key*
    on, never used to reconstruct anything.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {f.name: _canon(getattr(value, f.name))
               for f in dataclasses.fields(value)}
        out["__dataclass__"] = type(value).__name__
        return out
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    return repr(value)


def canonical_spec(spec: "PointSpec") -> dict:
    """The normalized, canonical form of a spec that the key hashes.

    ``n``/``k`` have the square default applied, so ``PointSpec(m=32)`` and
    ``PointSpec(m=32, n=32, k=32)`` — the same simulation — share a key.
    """
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "algorithm": spec.algorithm,
        "machine": _canon(spec.machine),
        "nranks": spec.nranks,
        "m": spec.m,
        "n": spec.n if spec.n is not None else spec.m,
        "k": spec.k if spec.k is not None else spec.m,
        "transa": spec.transa,
        "transb": spec.transb,
        "payload": spec.payload,
        "verify": spec.verify,
        "options": _canon(spec.options),
        "nb": spec.nb,
        "seed": spec.seed,
        "interference": _canon(spec.interference),
        # FaultPlan is nested frozen dataclasses all the way down, so
        # _canon walks it field-by-field: every window edge, slowdown
        # factor, probability, and retry knob lands in the key.  A
        # degraded run can therefore never alias a healthy one (None).
        "faults": _canon(spec.faults),
    }


def _canonical_json(blob: dict) -> str:
    return json.dumps(blob, sort_keys=True, separators=(",", ":"))


def point_key(spec: "PointSpec") -> str:
    """Content address of one simulation point (hex sha256)."""
    return hashlib.sha256(
        _canonical_json(canonical_spec(spec)).encode()).hexdigest()


# -- payload (de)serialisation ------------------------------------------------

_TUPLE_TAG = "__tuple__"


def _encode(value: Any) -> Any:
    """JSON-safe encoding of a MatmulPoint field tree; tuples are tagged so
    decoding restores them exactly (``extra['grid']`` is a tuple)."""
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        if any(not isinstance(k, str) for k in value):
            raise TypeError("cache payloads need string dict keys")
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value  # json uses repr(): exact round-trip for finite floats
    raise TypeError(f"uncacheable value of type {type(value).__name__}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode(v) for v in value[_TUPLE_TAG])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def encode_point(point: MatmulPoint) -> dict:
    return _encode(dataclasses.asdict(point))


def decode_point(payload: dict) -> MatmulPoint:
    fields = _decode(payload)
    if (not isinstance(fields, dict)
            or set(fields) != {f.name for f in dataclasses.fields(MatmulPoint)}):
        raise ValueError("cache entry does not describe a MatmulPoint")
    return MatmulPoint(**fields)


# -- the cache ----------------------------------------------------------------

@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance; reported at the end of each sweep."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    deduped: int = 0
    """Duplicate specs inside one ``run_points`` batch, served from the
    first occurrence's result instead of being resimulated."""
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    corrupt_discarded: int = 0
    uncacheable: int = 0
    write_errors: int = 0
    evictions: int = 0
    """Disk entries removed to keep the namespace under ``max_bytes``."""
    lock_waits: int = 0
    """Times another process already held a point's single-flight lock."""
    lock_timeouts: int = 0
    """Lock waits that expired; the point was simulated locally instead."""
    stale_locks_reaped: int = 0
    """Locks whose holder was dead (or silent past the age bound)."""
    coalesced: int = 0
    """Points served from another process's concurrent simulation."""
    io_errors: int = 0
    """Disk failures absorbed by the degradation ladder (never fatal)."""

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits + self.deduped + self.coalesced

    def summary(self) -> str:
        return (f"hits={self.hits} (memory={self.memory_hits} "
                f"disk={self.disk_hits} dedup={self.deduped} "
                f"coalesced={self.coalesced}) "
                f"misses={self.misses} writes={self.writes} "
                f"bytes_read={self.bytes_read} "
                f"bytes_written={self.bytes_written} "
                f"corrupt={self.corrupt_discarded} "
                f"evictions={self.evictions} lock_waits={self.lock_waits} "
                f"stale_reaped={self.stale_locks_reaped} "
                f"io_errors={self.io_errors}")


class ResultCache:
    """Two-tier (LRU memory + JSON disk) store of simulated MatmulPoints.

    Parameters
    ----------
    directory:
        Disk store root; defaults to :func:`default_cache_dir`.
    memory_entries:
        LRU bound of the in-memory tier.
    use_disk:
        ``False`` keeps the cache purely in-memory (intra-run dedup only).
    max_bytes:
        Disk-tier size bound for the *current* namespace (stale namespaces
        are ``repro cache clear``'s business); least-recently-used entries
        are evicted after each write until the namespace fits.  ``None``
        (default) means unbounded — the historical behaviour.
    single_flight:
        Per-key cross-process lock files electing one simulator per
        unique point (:meth:`try_lock` / :meth:`wait_for`).  ``False``
        makes :meth:`try_lock` trivially succeed (no coordination).
    lock_timeout:
        Default bound (seconds) on waiting for another process's
        in-flight point before simulating it locally.
    stale_lock_after:
        Age (seconds) past which a lock whose holder cannot be probed is
        presumed dead and reaped.
    disable_after_io_errors:
        Consecutive disk failures after which the disk tier is switched
        off for the remainder of the run (memory tier keeps working).
    chaos:
        Optional :class:`~repro.bench.chaos.ChaosPlan` injecting seeded
        I/O errors and entry corruption (tests / chaos drills).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 memory_entries: int = 4096, use_disk: bool = True,
                 max_bytes: Optional[int] = None,
                 single_flight: bool = True,
                 lock_timeout: float = 600.0,
                 stale_lock_after: float = 120.0,
                 disable_after_io_errors: int = 8,
                 chaos: Optional["ChaosPlan"] = None):
        self.directory = (Path(directory).expanduser() if directory is not None
                          else default_cache_dir())
        self.memory_entries = max(1, int(memory_entries))
        self.use_disk = use_disk
        self.max_bytes = max_bytes
        self.single_flight = single_flight
        self.lock_timeout = lock_timeout
        self.stale_lock_after = stale_lock_after
        self.disable_after_io_errors = max(1, int(disable_after_io_errors))
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, MatmulPoint]" = OrderedDict()
        self._chaos = chaos
        self._chaos_ops = 0
        self._chaos_writes = 0
        self._disk_disabled = False
        self._io_error_streak = 0
        self._warned_io = False
        self._held_locks: set[str] = set()

    # -- degradation ladder ------------------------------------------------
    def _disk_ok(self) -> bool:
        return self.use_disk and not self._disk_disabled

    def _io_failure(self, op: str, exc: Exception) -> None:
        """Count, warn once, and possibly downgrade — never raise.

        The ladder: one failure degrades that operation to uncached
        behaviour; :attr:`disable_after_io_errors` *consecutive* failures
        switch the disk tier off entirely (an unwritable or vanished
        cache directory should not cost a stat per point forever).
        """
        self.stats.io_errors += 1
        self._io_error_streak += 1
        if not self._warned_io:
            self._warned_io = True
            warnings.warn(
                f"result cache degraded: {op} failed ({exc!r}); affected "
                f"points run uncached", RuntimeWarning, stacklevel=4)
        if (self._io_error_streak >= self.disable_after_io_errors
                and not self._disk_disabled):
            self._disk_disabled = True
            warnings.warn(
                f"result cache disk tier disabled after "
                f"{self._io_error_streak} consecutive I/O errors; "
                f"continuing with the memory tier only",
                RuntimeWarning, stacklevel=4)

    def _io_ok(self) -> None:
        self._io_error_streak = 0

    def _chaos_io(self, op: str) -> None:
        """Raise a seeded injected OSError inside a disk operation."""
        if self._chaos is not None:
            self._chaos_ops += 1
            if self._chaos.cache_io_fails(self._chaos_ops):
                raise OSError(f"chaos: injected I/O error on cache {op}")

    # -- key plumbing ------------------------------------------------------
    @property
    def namespace(self) -> str:
        return f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()[:16]}"

    @property
    def namespace_dir(self) -> Path:
        return self.directory / self.namespace

    def key(self, spec: "PointSpec") -> str:
        return point_key(spec)

    def _entry_path(self, key: str) -> Path:
        return self.namespace_dir / key[:2] / f"{key}.json"

    # -- lookup ------------------------------------------------------------
    def get(self, spec: "PointSpec" = None, *, key: Optional[str] = None,
            count_miss: bool = True) -> Optional[MatmulPoint]:
        """Return the cached point for ``spec`` (or precomputed ``key``).

        Counts a memory or disk hit on success; counts a miss on failure
        unless ``count_miss=False`` (used by ``run_points`` to classify
        in-batch duplicates separately).
        """
        if key is None:
            key = self.key(spec)
        point = self._memory.get(key)
        if point is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return deepcopy(point)
        point = self._read_disk(key)
        if point is not None:
            self.stats.disk_hits += 1
            self._remember(key, point)
            return deepcopy(point)
        if count_miss:
            self.stats.misses += 1
        return None

    def note_miss(self) -> None:
        self.stats.misses += 1

    def note_dedup(self) -> None:
        self.stats.deduped += 1

    def _read_disk(self, key: str) -> Optional[MatmulPoint]:
        if not self._disk_ok():
            return None
        path = self._entry_path(key)
        try:
            self._chaos_io("read")
            raw = path.read_bytes()
        except FileNotFoundError:
            return None  # the common miss: not an I/O *failure*
        except OSError as exc:
            self._io_failure("read", exc)
            return None
        self._io_ok()
        try:
            entry = json.loads(raw)
            if (not isinstance(entry, dict)
                    or entry.get("entry_schema") != CACHE_SCHEMA_VERSION
                    or entry.get("key") != key):
                raise ValueError("entry header mismatch")
            point = decode_point(entry["point"])
        except (ValueError, KeyError, TypeError):
            # Damaged entry: discard and let the caller recompute.
            self.stats.corrupt_discarded += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.bytes_read += len(raw)
        try:
            os.utime(path)  # refresh LRU recency for the eviction scan
        except OSError:
            pass
        return point

    # -- store -------------------------------------------------------------
    def put(self, spec: "PointSpec", point: MatmulPoint,
            *, key: Optional[str] = None) -> None:
        """Store one simulated point in both tiers (best-effort on disk)."""
        if key is None:
            key = self.key(spec)
        try:
            payload = encode_point(point)
        except TypeError:
            self.stats.uncacheable += 1
            return
        self._remember(key, deepcopy(point))
        if not self._disk_ok():
            return
        entry = {
            "entry_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "spec": canonical_spec(spec),
            "point": payload,
        }
        data = (_canonical_json(entry) + "\n").encode()
        path = self._entry_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            self._chaos_io("write")
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)  # atomic: concurrent writers can race safely
        except OSError as exc:
            self.stats.write_errors += 1
            self._io_failure("write", exc)
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self._io_ok()
        self.stats.writes += 1
        self.stats.bytes_written += len(data)
        if self._chaos is not None:
            self._chaos_writes += 1
            if self._chaos.corrupts_entry(self._chaos_writes):
                try:  # garble the landed entry; the memory tier keeps the
                    with open(path, "r+b") as fh:  # good copy for this run
                        fh.truncate(max(1, len(data) // 2))
                except OSError:
                    pass
        self._evict_if_needed(protect=key)

    # -- single-flight locks -----------------------------------------------
    def _lock_path(self, key: str) -> Path:
        return self.namespace_dir / key[:2] / f"{key}.lock"

    def try_lock(self, key: str) -> bool:
        """Claim the right to simulate ``key``; ``False`` = someone has it.

        ``True`` means this process should simulate the point (and later
        :meth:`release`); that includes every degraded case — locking
        switched off, disk tier down, or the lock file unwritable —
        because simulating without coordination is always safe, merely
        less deduplicated.  A lock whose holder is dead (pid probe) or
        silent past ``stale_lock_after`` is reaped and re-contested.
        """
        if not self._disk_ok() or not self.single_flight:
            return True
        path = self._lock_path(key)
        for _ in range(2):  # second pass re-contests a reaped stale lock
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                with os.fdopen(fd, "w") as fh:
                    fh.write(f"{os.getpid()} {time.time():.3f}\n")
                self._held_locks.add(key)
                return True
            except FileExistsError:
                if self._lock_is_stale(path):
                    self.stats.stale_locks_reaped += 1
                    try:
                        path.unlink()
                    except OSError:
                        pass
                    continue
                self.stats.lock_waits += 1
                return False
            except OSError as exc:
                self._io_failure("lock", exc)
                return True
        self.stats.lock_waits += 1
        return False

    def release(self, key: str) -> None:
        """Drop a lock taken by :meth:`try_lock` (idempotent)."""
        if key in self._held_locks:
            self._held_locks.discard(key)
            try:
                self._lock_path(key).unlink()
            except OSError:
                pass

    def _lock_is_stale(self, path: Path) -> bool:
        try:
            st = path.stat()
        except OSError:
            return True  # vanished under us: free to (re-)contest
        age = time.time() - st.st_mtime
        try:
            pid = int(path.read_text().split()[0])
        except (OSError, ValueError, IndexError):
            return age > self.stale_lock_after
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)  # liveness probe, signal 0 delivers nothing
        except ProcessLookupError:
            return True      # the holder is gone on this host
        except OSError:
            pass             # cross-host / unprobeable: age decides
        return age > self.stale_lock_after

    def wait_for(self, key: str, timeout: Optional[float] = None,
                 poll: float = 0.05) -> Optional[MatmulPoint]:
        """Wait out another process's in-flight simulation of ``key``.

        Returns the coalesced point when its entry lands, or ``None``
        when the caller should simulate locally: the lock vanished with
        no entry (the holder failed), went stale (the holder died), or
        the wait timed out.  Never raises.
        """
        if not self._disk_ok():
            return None
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.lock_timeout)
        lock = self._lock_path(key)
        while True:
            point = self._read_disk(key)
            if point is not None:
                self.stats.coalesced += 1
                self._remember(key, point)
                return deepcopy(point)
            try:
                present = lock.exists()
            except OSError as exc:
                self._io_failure("lock poll", exc)
                return None
            if not present:
                return None
            if self._lock_is_stale(lock):
                self.stats.stale_locks_reaped += 1
                try:
                    lock.unlink()
                except OSError:
                    pass
                return None
            if time.monotonic() >= deadline:
                self.stats.lock_timeouts += 1
                return None
            time.sleep(poll)

    # -- eviction ----------------------------------------------------------
    def _evict_if_needed(self, protect: str) -> None:
        """LRU-evict current-namespace entries until under ``max_bytes``.

        Recency is file mtime (refreshed on every read).  The entry just
        written (``protect``) is exempt — a bound smaller than one entry
        must still let the current point cache.  Runs after each write;
        the scan is a few stats per cached point, noise next to the
        25-40 s simulations the entries memoise.
        """
        if self.max_bytes is None or not self._disk_ok():
            return
        try:
            entries = []
            total = 0
            for f in self.namespace_dir.rglob("*.json"):
                st = f.stat()
                total += st.st_size
                entries.append((st.st_mtime, st.st_size, f))
            if total <= self.max_bytes:
                return
            entries.sort(key=lambda e: (e[0], str(e[2])))
            for _, size, f in entries:
                if f.name == f"{protect}.json":
                    continue
                try:
                    f.unlink()
                except FileNotFoundError:
                    continue  # a concurrent evictor got there first
                self.stats.evictions += 1
                total -= size
                if total <= self.max_bytes:
                    break
        except OSError as exc:
            self._io_failure("evict", exc)

    def _remember(self, key: str, point: MatmulPoint) -> None:
        self._memory[key] = point
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- maintenance -------------------------------------------------------
    def disk_stats(self) -> dict:
        """Entry/byte counts per namespace under :attr:`directory`,
        plus single-flight lock and sweep-journal surveys."""
        namespaces: dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        locks_live = 0
        locks_stale = 0
        if self.directory.is_dir():
            for ns_dir in sorted(p for p in self.directory.iterdir()
                                 if p.is_dir() and p.name != "journal"):
                entries = 0
                nbytes = 0
                for f in ns_dir.rglob("*.json"):
                    entries += 1
                    try:
                        nbytes += f.stat().st_size
                    except OSError:
                        pass
                for f in ns_dir.rglob("*.lock"):
                    if self._lock_is_stale(f):
                        locks_stale += 1
                    else:
                        locks_live += 1
                namespaces[ns_dir.name] = {
                    "entries": entries,
                    "bytes": nbytes,
                    "current": ns_dir.name == self.namespace,
                }
                total_entries += entries
                total_bytes += nbytes
        journal_dir = self.directory / "journal"
        journals = (len(list(journal_dir.glob("*.jsonl")))
                    if journal_dir.is_dir() else 0)
        return {
            "directory": str(self.directory),
            "namespace": self.namespace,
            "entries": total_entries,
            "bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "locks_live": locks_live,
            "locks_stale": locks_stale,
            "journals": journals,
            "namespaces": namespaces,
        }

    def clear(self) -> int:
        """Delete every disk entry (all namespaces), every lock, every
        journal, and the memory tier.

        Returns the number of entries removed (locks and journals are
        reaped but not counted).  Directories are pruned best-effort; a
        concurrent writer can safely recreate them.
        """
        removed = 0
        self._memory.clear()
        if self.directory.is_dir():
            for f in self.directory.rglob("*.json"):
                try:
                    f.unlink()
                    removed += 1
                except OSError:
                    pass
            for pattern in ("*.lock", "journal/*.jsonl"):
                for f in self.directory.rglob(pattern):
                    try:
                        f.unlink()
                    except OSError:
                        pass
            for d in sorted(self.directory.rglob("*"), reverse=True):
                if d.is_dir():
                    try:
                        d.rmdir()
                    except OSError:
                        pass
        return removed
