"""Content-addressed simulation result cache (memory + disk tiers).

The paper's evaluation (Figs. 5-10, Table 1) is a grid of overlapping
(machine, algorithm, N, P, protocol) points, and every simulation point is
a pure function of its :class:`~repro.bench.parallel.PointSpec` — seeded,
self-contained, deterministic (``tests/core/test_determinism.py``).  That
makes results *content-addressable*: a canonical fingerprint of the spec
identifies the result completely, so a point shared by several figures (or
by successive ``repro reproduce`` invocations) only ever needs to be
simulated once.  Task-based MM systems make the same move of memoizing
repeated block-level work rather than re-executing it (Calvin & Valeev,
arXiv:1504.05046).

Key anatomy
-----------
:func:`point_key` hashes the *normalized* spec — machine model fingerprint
(every calibration constant, floats rendered via ``float.hex`` so the key
is exact and platform-independent), algorithm + options (nested dataclasses
walked field by field), ``m/n/k`` with the square-default applied,
``nranks``, transposes, payload mode, ``nb``, ``seed``, interference — plus
:data:`CACHE_SCHEMA_VERSION`.  Canonicalisation is a sorted-keys compact
JSON dump, so the key is stable across Python versions and dict orderings.

Invalidation is by *namespace*, not per entry: disk entries live under
``<dir>/v<schema>-<code_fingerprint>/`` where the code fingerprint hashes
every ``repro`` source file.  Any change to the simulator silently starts a
fresh namespace; stale entries are never consulted and ``repro cache
clear`` reaps them.

Tiers
-----
- **memory**: a bounded LRU (:class:`ResultCache` ``memory_entries``) for
  intra-run hits — figures sharing points inside one ``repro reproduce``
  invocation pay for each point once.
- **disk**: one JSON file per entry (atomic ``os.replace`` writes) for
  cross-run hits.  A damaged or mismatched entry is discarded and the
  point recomputed — corruption is never fatal.

Stored payloads round-trip exactly: JSON encodes floats via ``repr``,
which is shortest-round-trip in CPython, and tuples are tagged so decoded
:class:`~repro.bench.runner.MatmulPoint` objects are field-identical to
freshly simulated ones (``tests/bench/test_cache.py`` gates this).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from copy import deepcopy
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from .runner import MatmulPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .parallel import PointSpec

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "ResultCache",
    "canonical_spec",
    "code_fingerprint",
    "default_cache_dir",
    "point_key",
]

CACHE_SCHEMA_VERSION = 3
"""Bump when the key anatomy or the entry format changes; old disk
namespaces become unreachable (and reapable) rather than misread.
History: 2 added the ``faults`` field (fault-injection plans) to the key
anatomy, so degraded runs can never collide with healthy ones; 3 covers
the crash/ABFT fault-plan extension (``crashes``, ``corruption_rate``,
``checkpoint_interval`` — picked up automatically by the dataclass walk
in ``_canon``) plus the per-rank draw-stream change, which shifts every
degraded-run result."""

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Disk store location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-srumma``."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-srumma"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, so stale entries self-invalidate.

    Computed once per process; any edit to the simulator, the algorithms,
    or the machine models changes the namespace under which disk entries
    are stored and looked up.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


# -- canonicalisation ---------------------------------------------------------

def _canon(value: Any) -> Any:
    """Reduce a spec field to a deterministic JSON-serialisable form.

    Floats become ``float.hex`` strings (exact, no shortest-repr
    dependence), dataclasses become name-tagged sorted dicts, tuples become
    lists.  Unknown objects fall back to ``repr`` — good enough to *key*
    on, never used to reconstruct anything.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {f.name: _canon(getattr(value, f.name))
               for f in dataclasses.fields(value)}
        out["__dataclass__"] = type(value).__name__
        return out
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    return repr(value)


def canonical_spec(spec: "PointSpec") -> dict:
    """The normalized, canonical form of a spec that the key hashes.

    ``n``/``k`` have the square default applied, so ``PointSpec(m=32)`` and
    ``PointSpec(m=32, n=32, k=32)`` — the same simulation — share a key.
    """
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "algorithm": spec.algorithm,
        "machine": _canon(spec.machine),
        "nranks": spec.nranks,
        "m": spec.m,
        "n": spec.n if spec.n is not None else spec.m,
        "k": spec.k if spec.k is not None else spec.m,
        "transa": spec.transa,
        "transb": spec.transb,
        "payload": spec.payload,
        "verify": spec.verify,
        "options": _canon(spec.options),
        "nb": spec.nb,
        "seed": spec.seed,
        "interference": _canon(spec.interference),
        # FaultPlan is nested frozen dataclasses all the way down, so
        # _canon walks it field-by-field: every window edge, slowdown
        # factor, probability, and retry knob lands in the key.  A
        # degraded run can therefore never alias a healthy one (None).
        "faults": _canon(spec.faults),
    }


def _canonical_json(blob: dict) -> str:
    return json.dumps(blob, sort_keys=True, separators=(",", ":"))


def point_key(spec: "PointSpec") -> str:
    """Content address of one simulation point (hex sha256)."""
    return hashlib.sha256(
        _canonical_json(canonical_spec(spec)).encode()).hexdigest()


# -- payload (de)serialisation ------------------------------------------------

_TUPLE_TAG = "__tuple__"


def _encode(value: Any) -> Any:
    """JSON-safe encoding of a MatmulPoint field tree; tuples are tagged so
    decoding restores them exactly (``extra['grid']`` is a tuple)."""
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        if any(not isinstance(k, str) for k in value):
            raise TypeError("cache payloads need string dict keys")
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return value  # json uses repr(): exact round-trip for finite floats
    raise TypeError(f"uncacheable value of type {type(value).__name__}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode(v) for v in value[_TUPLE_TAG])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def encode_point(point: MatmulPoint) -> dict:
    return _encode(dataclasses.asdict(point))


def decode_point(payload: dict) -> MatmulPoint:
    fields = _decode(payload)
    if (not isinstance(fields, dict)
            or set(fields) != {f.name for f in dataclasses.fields(MatmulPoint)}):
        raise ValueError("cache entry does not describe a MatmulPoint")
    return MatmulPoint(**fields)


# -- the cache ----------------------------------------------------------------

@dataclasses.dataclass
class CacheStats:
    """Counters for one cache instance; reported at the end of each sweep."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    deduped: int = 0
    """Duplicate specs inside one ``run_points`` batch, served from the
    first occurrence's result instead of being resimulated."""
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    corrupt_discarded: int = 0
    uncacheable: int = 0
    write_errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits + self.deduped

    def summary(self) -> str:
        return (f"hits={self.hits} (memory={self.memory_hits} "
                f"disk={self.disk_hits} dedup={self.deduped}) "
                f"misses={self.misses} writes={self.writes} "
                f"bytes_read={self.bytes_read} "
                f"bytes_written={self.bytes_written} "
                f"corrupt={self.corrupt_discarded}")


class ResultCache:
    """Two-tier (LRU memory + JSON disk) store of simulated MatmulPoints.

    Parameters
    ----------
    directory:
        Disk store root; defaults to :func:`default_cache_dir`.
    memory_entries:
        LRU bound of the in-memory tier.
    use_disk:
        ``False`` keeps the cache purely in-memory (intra-run dedup only).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 memory_entries: int = 4096, use_disk: bool = True):
        self.directory = (Path(directory).expanduser() if directory is not None
                          else default_cache_dir())
        self.memory_entries = max(1, int(memory_entries))
        self.use_disk = use_disk
        self.stats = CacheStats()
        self._memory: "OrderedDict[str, MatmulPoint]" = OrderedDict()

    # -- key plumbing ------------------------------------------------------
    @property
    def namespace(self) -> str:
        return f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()[:16]}"

    @property
    def namespace_dir(self) -> Path:
        return self.directory / self.namespace

    def key(self, spec: "PointSpec") -> str:
        return point_key(spec)

    def _entry_path(self, key: str) -> Path:
        return self.namespace_dir / key[:2] / f"{key}.json"

    # -- lookup ------------------------------------------------------------
    def get(self, spec: "PointSpec" = None, *, key: Optional[str] = None,
            count_miss: bool = True) -> Optional[MatmulPoint]:
        """Return the cached point for ``spec`` (or precomputed ``key``).

        Counts a memory or disk hit on success; counts a miss on failure
        unless ``count_miss=False`` (used by ``run_points`` to classify
        in-batch duplicates separately).
        """
        if key is None:
            key = self.key(spec)
        point = self._memory.get(key)
        if point is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return deepcopy(point)
        point = self._read_disk(key)
        if point is not None:
            self.stats.disk_hits += 1
            self._remember(key, point)
            return deepcopy(point)
        if count_miss:
            self.stats.misses += 1
        return None

    def note_miss(self) -> None:
        self.stats.misses += 1

    def note_dedup(self) -> None:
        self.stats.deduped += 1

    def _read_disk(self, key: str) -> Optional[MatmulPoint]:
        if not self.use_disk:
            return None
        path = self._entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
            if (not isinstance(entry, dict)
                    or entry.get("entry_schema") != CACHE_SCHEMA_VERSION
                    or entry.get("key") != key):
                raise ValueError("entry header mismatch")
            point = decode_point(entry["point"])
        except (ValueError, KeyError, TypeError):
            # Damaged entry: discard and let the caller recompute.
            self.stats.corrupt_discarded += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.bytes_read += len(raw)
        return point

    # -- store -------------------------------------------------------------
    def put(self, spec: "PointSpec", point: MatmulPoint,
            *, key: Optional[str] = None) -> None:
        """Store one simulated point in both tiers (best-effort on disk)."""
        if key is None:
            key = self.key(spec)
        try:
            payload = encode_point(point)
        except TypeError:
            self.stats.uncacheable += 1
            return
        self._remember(key, deepcopy(point))
        if not self.use_disk:
            return
        entry = {
            "entry_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "spec": canonical_spec(spec),
            "point": payload,
        }
        data = (_canonical_json(entry) + "\n").encode()
        path = self._entry_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(data)
            os.replace(tmp, path)  # atomic: concurrent writers can race safely
        except OSError:
            self.stats.write_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stats.writes += 1
        self.stats.bytes_written += len(data)

    def _remember(self, key: str, point: MatmulPoint) -> None:
        self._memory[key] = point
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- maintenance -------------------------------------------------------
    def disk_stats(self) -> dict:
        """Entry/byte counts per namespace under :attr:`directory`."""
        namespaces: dict[str, dict] = {}
        total_entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for ns_dir in sorted(p for p in self.directory.iterdir()
                                 if p.is_dir()):
                entries = 0
                nbytes = 0
                for f in ns_dir.rglob("*.json"):
                    entries += 1
                    try:
                        nbytes += f.stat().st_size
                    except OSError:
                        pass
                namespaces[ns_dir.name] = {
                    "entries": entries,
                    "bytes": nbytes,
                    "current": ns_dir.name == self.namespace,
                }
                total_entries += entries
                total_bytes += nbytes
        return {
            "directory": str(self.directory),
            "namespace": self.namespace,
            "entries": total_entries,
            "bytes": total_bytes,
            "namespaces": namespaces,
        }

    def clear(self) -> int:
        """Delete every disk entry (all namespaces) and the memory tier.

        Returns the number of entries removed.  Directories are pruned
        best-effort; a concurrent writer can safely recreate them.
        """
        removed = 0
        self._memory.clear()
        if self.directory.is_dir():
            for f in self.directory.rglob("*.json"):
                try:
                    f.unlink()
                    removed += 1
                except OSError:
                    pass
            for d in sorted(self.directory.rglob("*"), reverse=True):
                if d.is_dir():
                    try:
                        d.rmdir()
                    except OSError:
                        pass
        return removed
