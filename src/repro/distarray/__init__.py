"""Distributed dense matrices: distributions, GA handles, GA operations."""

from .abft import checksums_match, panel_checksums, verify_cost
from .distribution import Block2D, BlockCyclic2D, IrregularBlock2D, choose_grid
from .global_array import GlobalArray
from .ga_ops import (
    ga_add,
    ga_copy,
    ga_dgemm,
    ga_dot,
    ga_fill,
    ga_norm_inf,
    ga_scale,
    ga_transpose,
)

__all__ = [
    "Block2D", "BlockCyclic2D", "IrregularBlock2D", "choose_grid", "GlobalArray",
    "checksums_match", "panel_checksums", "verify_cost",
    "ga_add", "ga_copy", "ga_dgemm", "ga_dot", "ga_fill", "ga_norm_inf",
    "ga_scale", "ga_transpose",
]
