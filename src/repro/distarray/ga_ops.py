"""Global Arrays-style collective operations on distributed matrices.

SRUMMA was built as the ``ga_dgemm`` of the Global Arrays toolkit (the
paper's home, used by NWChem); this module supplies the surrounding GA
vocabulary so the examples can look like real GA programs.  Every function
is a *collective generator*: all ranks call it with the same arguments, the
local parts execute with simulated CPU/memory cost, and reductions ride the
MPI layer.

Costs: elementwise work is charged at one flop per element on the rank's
CPU; fills/copies are charged at the node memcpy rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..comm.base import CommError, RankContext
from .global_array import GlobalArray

__all__ = [
    "ga_fill", "ga_scale", "ga_copy", "ga_add", "ga_dot", "ga_norm_inf",
    "ga_transpose", "ga_dgemm",
]


def _elementwise_time(ctx: RankContext, n_elements: int, flops_per: float = 1.0) -> float:
    spec = ctx.machine.spec.cpu
    return (flops_per * n_elements) / (spec.flops * spec.peak_efficiency)


def _memcpy_time(ctx: RankContext, nbytes: float) -> float:
    return nbytes / ctx.machine.spec.memory.copy_bandwidth


def _check_same_dist(a: GlobalArray, b: GlobalArray, what: str) -> None:
    if a.dist != b.dist:
        raise CommError(f"{what} requires identically distributed arrays "
                        f"({a.name}: {a.dist} vs {b.name}: {b.dist})")


def ga_fill(ctx: RankContext, ga: GlobalArray, value: float):
    """Set every element to ``value`` (collective generator)."""
    local = ga.local()
    if local.size:
        yield from ctx.compute(_memcpy_time(ctx, local.nbytes))
    local[...] = value


def ga_scale(ctx: RankContext, ga: GlobalArray, alpha: float):
    """Multiply every element by ``alpha`` (collective generator)."""
    local = ga.local()
    if local.size:
        yield from ctx.compute(_elementwise_time(ctx, local.size))
    local *= alpha


def ga_copy(ctx: RankContext, src: GlobalArray, dst: GlobalArray):
    """Copy ``src`` into ``dst`` (same distribution; collective generator)."""
    _check_same_dist(src, dst, "ga_copy")
    s, d = src.local(), dst.local()
    if s.size:
        yield from ctx.compute(_memcpy_time(ctx, s.nbytes))
    d[...] = s


def ga_add(ctx: RankContext, alpha: float, a: GlobalArray,
           beta: float, b: GlobalArray, c: GlobalArray):
    """``C = alpha*A + beta*B`` elementwise (collective generator)."""
    _check_same_dist(a, c, "ga_add")
    _check_same_dist(b, c, "ga_add")
    la, lb, lc = a.local(), b.local(), c.local()
    if lc.size:
        yield from ctx.compute(_elementwise_time(ctx, lc.size, flops_per=3.0))
    lc[...] = alpha * la + beta * lb


def ga_dot(ctx: RankContext, a: GlobalArray, b: GlobalArray):
    """Global inner product ``sum(A * B)`` (collective generator).

    Every rank returns the same scalar (local partials + MPI allreduce).
    """
    _check_same_dist(a, b, "ga_dot")
    la, lb = a.local(), b.local()
    if la.size:
        yield from ctx.compute(_elementwise_time(ctx, la.size, flops_per=2.0))
    partial = np.array([float(np.sum(la * lb))])
    yield from ctx.mpi.allreduce(partial, op="sum")
    return float(partial[0])


def ga_norm_inf(ctx: RankContext, a: GlobalArray):
    """Global max |a_ij| (collective generator); same value on all ranks."""
    la = a.local()
    if la.size:
        yield from ctx.compute(_elementwise_time(ctx, la.size))
    partial = np.array([float(np.max(np.abs(la))) if la.size else 0.0])
    yield from ctx.mpi.allreduce(partial, op="max")
    return float(partial[0])


def ga_transpose(ctx: RankContext, src: GlobalArray, dst: GlobalArray):
    """``dst = src^T`` (collective generator).

    ``dst`` must be ``n x m`` for an ``m x n`` source, on the same grid.
    Each rank one-sidedly fetches the transpose of its destination block
    (patch by patch from the source owners) — the GA idiom of building the
    result from gets rather than coordinated sends.
    """
    ds, dd = src.dist, dst.dist
    if (ds.m, ds.n) != (dd.n, dd.m) or (ds.p, ds.q) != (dd.p, dd.q):
        raise CommError(
            f"ga_transpose needs dst {ds.n}x{ds.m} on the same {ds.p}x{ds.q} "
            f"grid; got {dd.m}x{dd.n} on {dd.p}x{dd.q}")
    coords = dst.my_coords()
    if coords is None:
        return
    r0, r1 = dd.row_range(coords[0])
    c0, c1 = dd.col_range(coords[1])
    if r0 == r1 or c0 == c1:
        return
    local = dst.local()
    # The needed source region is [c0:c1, r0:r1]; split it along source
    # ownership boundaries so each fetch is a single-owner patch.
    row_cuts = [p for p in ds.row_breakpoints() if c0 < p < c1]
    col_cuts = [p for p in ds.col_breakpoints() if r0 < p < r1]
    row_edges = [c0] + row_cuts + [c1]
    col_edges = [r0] + col_cuts + [r1]
    for sr0, sr1 in zip(row_edges[:-1], row_edges[1:]):
        for sc0, sc1 in zip(col_edges[:-1], col_edges[1:]):
            buf = np.empty((sr1 - sr0, sc1 - sc0), dtype=src.dtype)
            yield from src.get_patch((sr0, sr1), (sc0, sc1), buf)
            local[sc0 - r0:sc1 - r0, sr0 - c0:sr1 - c0] = buf.T


def ga_dgemm(ctx: RankContext, transa: bool, transb: bool, alpha: float,
             a: GlobalArray, b: GlobalArray, beta: float, c: GlobalArray,
             options=None):
    """``C = alpha * op(A) @ op(B) + beta * C`` — the GA front door.

    This is SRUMMA in its natural habitat: the routine Global Arrays
    exposes as ``ga_dgemm`` dispatches to exactly this algorithm.
    Collective generator; returns this rank's :class:`RankStats`.
    """
    from ..core.srumma import srumma_rank

    stats = yield from srumma_rank(ctx, a, b, c, transa=transa,
                                   transb=transb, options=options,
                                   alpha=alpha, beta=beta)
    return stats
