"""Matrix distributions over a 2D process grid.

Two distributions cover the paper:

- :class:`Block2D` — the regular block distribution SRUMMA assumes (§2, Fig. 2):
  the global ``m x n`` matrix is cut into a ``p x q`` grid of contiguous
  blocks, block ``(i, j)`` owned by the rank at grid position ``(i, j)``.
- :class:`BlockCyclic2D` — the ScaLAPACK-style distribution `pdgemm` uses:
  ``mb x nb`` tiles dealt round-robin to the grid.

Both use row-major rank numbering: rank = ``i * q + j``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["choose_grid", "Block2D", "IrregularBlock2D", "BlockCyclic2D"]


def choose_grid(nranks: int) -> tuple[int, int]:
    """Pick the most-square ``p x q`` factorisation with ``p >= q``.

    128 -> (16, 8); 16 -> (4, 4); 6 -> (3, 2); primes degrade to (P, 1).
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    q = int(math.isqrt(nranks))
    while nranks % q != 0:
        q -= 1
    return nranks // q, q


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class Block2D:
    """Regular 2D block distribution of an ``m x n`` matrix on a ``p x q`` grid.

    Rows are cut into ``p`` contiguous chunks of ``ceil(m/p)`` (the last
    chunks may be smaller or empty when ``p`` does not divide ``m``);
    columns likewise into ``q`` chunks of ``ceil(n/q)``.
    """

    m: int
    n: int
    p: int
    q: int

    def __post_init__(self):
        if self.m < 0 or self.n < 0:
            raise ValueError(f"negative matrix dims {self.m}x{self.n}")
        if self.p < 1 or self.q < 1:
            raise ValueError(f"grid must be positive, got {self.p}x{self.q}")

    # -- grid <-> rank ------------------------------------------------------
    @property
    def nranks(self) -> int:
        return self.p * self.q

    def rank_of(self, pi: int, pj: int) -> int:
        """Row-major rank of grid position (pi, pj)."""
        if not (0 <= pi < self.p and 0 <= pj < self.q):
            raise IndexError(f"grid position ({pi},{pj}) outside {self.p}x{self.q}")
        return pi * self.q + pj

    def coords_of(self, rank: int) -> tuple[int, int]:
        """Grid position (pi, pj) of a row-major rank."""
        if not (0 <= rank < self.nranks):
            raise IndexError(f"rank {rank} outside grid of {self.nranks}")
        return divmod(rank, self.q)

    # -- block geometry --------------------------------------------------------
    @property
    def block_rows(self) -> int:
        """Nominal block height ceil(m/p)."""
        return _ceil_div(self.m, self.p) if self.m else 0

    @property
    def block_cols(self) -> int:
        """Nominal block width ceil(n/q)."""
        return _ceil_div(self.n, self.q) if self.n else 0

    def row_range(self, pi: int) -> tuple[int, int]:
        """Global row interval [lo, hi) owned by grid row pi."""
        if not (0 <= pi < self.p):
            raise IndexError(f"grid row {pi} outside {self.p}")
        b = self.block_rows
        lo = min(pi * b, self.m)
        hi = min((pi + 1) * b, self.m)
        return lo, hi

    def col_range(self, pj: int) -> tuple[int, int]:
        """Global column interval [lo, hi) owned by grid column pj."""
        if not (0 <= pj < self.q):
            raise IndexError(f"grid col {pj} outside {self.q}")
        b = self.block_cols
        lo = min(pj * b, self.n)
        hi = min((pj + 1) * b, self.n)
        return lo, hi

    def block_shape(self, pi: int, pj: int) -> tuple[int, int]:
        r0, r1 = self.row_range(pi)
        c0, c1 = self.col_range(pj)
        return r1 - r0, c1 - c0

    def block_slices(self, pi: int, pj: int) -> tuple[slice, slice]:
        """Global-index slices of block (pi, pj)."""
        r0, r1 = self.row_range(pi)
        c0, c1 = self.col_range(pj)
        return slice(r0, r1), slice(c0, c1)

    # -- ownership -----------------------------------------------------------
    def owner_of_row(self, i: int) -> int:
        if not (0 <= i < self.m):
            raise IndexError(f"row {i} outside matrix of {self.m}")
        return i // self.block_rows

    def owner_of_col(self, j: int) -> int:
        if not (0 <= j < self.n):
            raise IndexError(f"col {j} outside matrix of {self.n}")
        return j // self.block_cols

    def owner_of(self, i: int, j: int) -> int:
        """Rank owning global element (i, j)."""
        return self.rank_of(self.owner_of_row(i), self.owner_of_col(j))

    # -- patch addressing ------------------------------------------------------
    def patch_owner(self, rows: tuple[int, int], cols: tuple[int, int]) -> int:
        """Rank owning the patch ``[r0,r1) x [c0,c1)``; must be one block."""
        r0, r1 = rows
        c0, c1 = cols
        if not (0 <= r0 < r1 <= self.m and 0 <= c0 < c1 <= self.n):
            raise IndexError(
                f"patch [{r0}:{r1}, {c0}:{c1}] outside or empty in "
                f"{self.m}x{self.n}")
        pi = self.owner_of_row(r0)
        pj = self.owner_of_col(c0)
        if self.owner_of_row(r1 - 1) != pi or self.owner_of_col(c1 - 1) != pj:
            raise ValueError(
                f"patch [{r0}:{r1}, {c0}:{c1}] spans multiple owner blocks")
        return self.rank_of(pi, pj)

    def local_index(self, owner: int, rows: tuple[int, int],
                    cols: tuple[int, int]) -> tuple[slice, slice]:
        """Slices of a patch inside the owner's stored block."""
        pi, pj = self.coords_of(owner)
        r_lo, _ = self.row_range(pi)
        c_lo, _ = self.col_range(pj)
        return (slice(rows[0] - r_lo, rows[1] - r_lo),
                slice(cols[0] - c_lo, cols[1] - c_lo))

    # -- partitions (for task construction) -------------------------------------
    def row_breakpoints(self) -> list[int]:
        """Sorted global row indices where ownership changes: 0..m inclusive."""
        pts = {0, self.m}
        for pi in range(self.p):
            lo, hi = self.row_range(pi)
            pts.add(lo)
            pts.add(hi)
        return sorted(pts)

    def col_breakpoints(self) -> list[int]:
        pts = {0, self.n}
        for pj in range(self.q):
            lo, hi = self.col_range(pj)
            pts.add(lo)
            pts.add(hi)
        return sorted(pts)

    def iter_blocks(self) -> Iterator[tuple[int, int]]:
        for pi in range(self.p):
            for pj in range(self.q):
                yield pi, pj


@dataclass(frozen=True)
class IrregularBlock2D:
    """Non-uniform 2D block distribution with explicit cut points.

    The Global Arrays toolkit supports irregular distributions (different
    processes owning different-sized blocks — e.g. to match basis-function
    shells in NWChem); SRUMMA's task construction only relies on ownership
    *breakpoints*, so it runs unchanged on this class.  The paper's claim
    that the algorithm is "more general" than Cannon-style shifting rests
    exactly on this: one-sided gets need no matching send schedule, so
    blocks of unequal size cost nothing extra in coordination.

    ``row_edges``/``col_edges`` are strictly increasing tuples starting at
    0 and ending at ``m``/``n``; grid row ``i`` owns global rows
    ``[row_edges[i], row_edges[i+1])``.
    """

    m: int
    n: int
    row_edges: tuple
    col_edges: tuple

    def __post_init__(self):
        object.__setattr__(self, "row_edges", tuple(self.row_edges))
        object.__setattr__(self, "col_edges", tuple(self.col_edges))
        for name, edges, total in (("row_edges", self.row_edges, self.m),
                                   ("col_edges", self.col_edges, self.n)):
            if len(edges) < 2 or edges[0] != 0 or edges[-1] != total:
                raise ValueError(
                    f"{name} must run from 0 to {total}, got {edges}")
            if any(b < a for a, b in zip(edges, edges[1:])):
                raise ValueError(f"{name} must be non-decreasing: {edges}")

    # -- grid geometry ------------------------------------------------------
    @property
    def p(self) -> int:
        return len(self.row_edges) - 1

    @property
    def q(self) -> int:
        return len(self.col_edges) - 1

    @property
    def nranks(self) -> int:
        return self.p * self.q

    def rank_of(self, pi: int, pj: int) -> int:
        if not (0 <= pi < self.p and 0 <= pj < self.q):
            raise IndexError(f"grid position ({pi},{pj}) outside {self.p}x{self.q}")
        return pi * self.q + pj

    def coords_of(self, rank: int) -> tuple[int, int]:
        if not (0 <= rank < self.nranks):
            raise IndexError(f"rank {rank} outside grid of {self.nranks}")
        return divmod(rank, self.q)

    # -- block geometry ---------------------------------------------------------
    def row_range(self, pi: int) -> tuple[int, int]:
        if not (0 <= pi < self.p):
            raise IndexError(f"grid row {pi} outside {self.p}")
        return self.row_edges[pi], self.row_edges[pi + 1]

    def col_range(self, pj: int) -> tuple[int, int]:
        if not (0 <= pj < self.q):
            raise IndexError(f"grid col {pj} outside {self.q}")
        return self.col_edges[pj], self.col_edges[pj + 1]

    def block_shape(self, pi: int, pj: int) -> tuple[int, int]:
        r0, r1 = self.row_range(pi)
        c0, c1 = self.col_range(pj)
        return r1 - r0, c1 - c0

    def block_slices(self, pi: int, pj: int) -> tuple[slice, slice]:
        r0, r1 = self.row_range(pi)
        c0, c1 = self.col_range(pj)
        return slice(r0, r1), slice(c0, c1)

    # -- ownership ---------------------------------------------------------------
    def owner_of_row(self, i: int) -> int:
        if not (0 <= i < self.m):
            raise IndexError(f"row {i} outside matrix of {self.m}")
        # Rightmost edge <= i; empty blocks are skipped automatically since
        # bisect lands past zero-width intervals.
        import bisect

        return bisect.bisect_right(self.row_edges, i) - 1

    def owner_of_col(self, j: int) -> int:
        if not (0 <= j < self.n):
            raise IndexError(f"col {j} outside matrix of {self.n}")
        import bisect

        return bisect.bisect_right(self.col_edges, j) - 1

    def owner_of(self, i: int, j: int) -> int:
        return self.rank_of(self.owner_of_row(i), self.owner_of_col(j))

    # -- patch addressing (same contract as Block2D) -------------------------------
    def patch_owner(self, rows: tuple[int, int], cols: tuple[int, int]) -> int:
        r0, r1 = rows
        c0, c1 = cols
        if not (0 <= r0 < r1 <= self.m and 0 <= c0 < c1 <= self.n):
            raise IndexError(
                f"patch [{r0}:{r1}, {c0}:{c1}] outside or empty in "
                f"{self.m}x{self.n}")
        pi = self.owner_of_row(r0)
        pj = self.owner_of_col(c0)
        if self.owner_of_row(r1 - 1) != pi or self.owner_of_col(c1 - 1) != pj:
            raise ValueError(
                f"patch [{r0}:{r1}, {c0}:{c1}] spans multiple owner blocks")
        return self.rank_of(pi, pj)

    def local_index(self, owner: int, rows: tuple[int, int],
                    cols: tuple[int, int]) -> tuple[slice, slice]:
        pi, pj = self.coords_of(owner)
        r_lo, _ = self.row_range(pi)
        c_lo, _ = self.col_range(pj)
        return (slice(rows[0] - r_lo, rows[1] - r_lo),
                slice(cols[0] - c_lo, cols[1] - c_lo))

    # -- partitions -----------------------------------------------------------------
    def row_breakpoints(self) -> list[int]:
        return sorted(set(self.row_edges))

    def col_breakpoints(self) -> list[int]:
        return sorted(set(self.col_edges))

    def iter_blocks(self) -> Iterator[tuple[int, int]]:
        for pi in range(self.p):
            for pj in range(self.q):
                yield pi, pj


@dataclass(frozen=True)
class BlockCyclic2D:
    """ScaLAPACK block-cyclic distribution: ``mb x nb`` tiles dealt cyclically.

    Tile (I, J) (tile-grid indices) lives on grid position
    ``(I mod p, J mod q)``.  Local storage is packed: a rank's tiles are
    concatenated in tile order, giving a ``local_rows x local_cols`` array
    whose row ``r`` corresponds to global row :meth:`to_global_row`.
    """

    m: int
    n: int
    mb: int
    nb: int
    p: int
    q: int

    def __post_init__(self):
        if self.mb < 1 or self.nb < 1:
            raise ValueError(f"tile dims must be positive, got {self.mb}x{self.nb}")
        if self.p < 1 or self.q < 1:
            raise ValueError(f"grid must be positive, got {self.p}x{self.q}")
        if self.m < 0 or self.n < 0:
            raise ValueError(f"negative matrix dims {self.m}x{self.n}")

    @property
    def nranks(self) -> int:
        return self.p * self.q

    def rank_of(self, pi: int, pj: int) -> int:
        return pi * self.q + pj

    def coords_of(self, rank: int) -> tuple[int, int]:
        if not (0 <= rank < self.nranks):
            raise IndexError(f"rank {rank} outside grid of {self.nranks}")
        return divmod(rank, self.q)

    # -- tile grid ------------------------------------------------------------
    @property
    def tiles_m(self) -> int:
        return _ceil_div(self.m, self.mb) if self.m else 0

    @property
    def tiles_n(self) -> int:
        return _ceil_div(self.n, self.nb) if self.n else 0

    def tile_owner(self, ti: int, tj: int) -> tuple[int, int]:
        return ti % self.p, tj % self.q

    def tile_shape(self, ti: int, tj: int) -> tuple[int, int]:
        rows = min(self.mb, self.m - ti * self.mb)
        cols = min(self.nb, self.n - tj * self.nb)
        return rows, cols

    def tile_slices(self, ti: int, tj: int) -> tuple[slice, slice]:
        r0 = ti * self.mb
        c0 = tj * self.nb
        rows, cols = self.tile_shape(ti, tj)
        return slice(r0, r0 + rows), slice(c0, c0 + cols)

    # -- local packed layout ------------------------------------------------------
    def local_row_tiles(self, pi: int) -> list[int]:
        """Tile-row indices owned by grid row pi, in order."""
        return list(range(pi, self.tiles_m, self.p))

    def local_col_tiles(self, pj: int) -> list[int]:
        return list(range(pj, self.tiles_n, self.q))

    def local_rows(self, pi: int) -> int:
        return sum(self.tile_shape(ti, 0)[0] for ti in self.local_row_tiles(pi))

    def local_cols(self, pj: int) -> int:
        return sum(self.tile_shape(0, tj)[1] for tj in self.local_col_tiles(pj))

    def local_shape(self, rank: int) -> tuple[int, int]:
        pi, pj = self.coords_of(rank)
        return self.local_rows(pi), self.local_cols(pj)

    def global_rows_of(self, pi: int) -> list[int]:
        """Global row indices owned by grid row pi, in packed order."""
        out = []
        for ti in self.local_row_tiles(pi):
            r0 = ti * self.mb
            out.extend(range(r0, min(r0 + self.mb, self.m)))
        return out

    def global_cols_of(self, pj: int) -> list[int]:
        out = []
        for tj in self.local_col_tiles(pj):
            c0 = tj * self.nb
            out.extend(range(c0, min(c0 + self.nb, self.n)))
        return out
