"""Global Arrays-style distributed dense matrix over ARMCI segments.

A :class:`GlobalArray` is created *collectively*: every rank calls
:meth:`GlobalArray.create` with identical arguments (mirroring
``ARMCI_Malloc`` / ``GA_Create``), each registering its own block of the
regular 2D block distribution.  The handle then offers:

- one-sided patch access (``get_patch`` / ``nb_get_patch`` — ARMCI gets from
  whichever rank owns the patch),
- direct shared-memory views of patches inside the caller's domain
  (``view_patch`` — the zero-copy access path of the shared-memory SRUMMA
  flavour),
- local-block access and initialisation helpers.

A *patch* here is a rectangular section of the global index space that lies
entirely inside one owner's block — which is all SRUMMA and the baselines
ever need, since their task decompositions follow block boundaries.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from ..comm.armci import ArmciRuntime
from ..comm.base import CommError, RankContext, Request
from .distribution import Block2D

__all__ = ["GlobalArray"]


class GlobalArray:
    """Per-rank handle to one distributed matrix."""

    def __init__(self, ctx: RankContext, name: str, dist: Block2D,
                 dtype: Any = np.float64):
        if dist.nranks > ctx.nranks:
            raise ValueError(
                f"distribution needs {dist.nranks} ranks, machine has {ctx.nranks}")
        self.ctx = ctx
        self.name = name
        self.dist = dist
        self.dtype = np.dtype(dtype)
        self._key = f"ga:{name}"

    # -- creation ---------------------------------------------------------
    @classmethod
    def create(cls, ctx: RankContext, name: str, m: int, n: int,
               p: Optional[int] = None, q: Optional[int] = None,
               dtype: Any = np.float64, dist=None) -> "GlobalArray":
        """Collectively create an ``m x n`` array on a ``p x q`` grid.

        Every rank must call this with the same arguments.  Defaults to the
        most-square grid over all ranks (:func:`choose_grid`).  Pass an
        explicit ``dist`` (e.g. an
        :class:`~repro.distarray.distribution.IrregularBlock2D`) to
        override the regular distribution entirely; ``m``/``n`` must then
        match it.
        """
        from .distribution import choose_grid

        if dist is not None:
            if (dist.m, dist.n) != (m, n):
                raise ValueError(
                    f"dist is {dist.m}x{dist.n} but m,n = {m},{n}")
        else:
            if p is None or q is None:
                p, q = choose_grid(ctx.nranks)
            dist = Block2D(m, n, p, q)
        ga = cls(ctx, name, dist, dtype)
        pi, pj = dist.coords_of(ctx.rank) if ctx.rank < dist.nranks else (None, None)
        if pi is not None:
            shape = dist.block_shape(pi, pj)
        else:
            shape = (0, 0)  # ranks beyond the grid hold nothing
        ctx.armci.malloc(ga._key, shape, dtype=dtype)
        return ga

    # -- identity -----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.dist.m, self.dist.n)

    @property
    def grid(self) -> tuple[int, int]:
        return (self.dist.p, self.dist.q)

    def my_coords(self) -> Optional[tuple[int, int]]:
        """This rank's grid position, or None if outside the grid."""
        if self.ctx.rank >= self.dist.nranks:
            return None
        return self.dist.coords_of(self.ctx.rank)

    # -- local access -----------------------------------------------------------
    def local(self) -> np.ndarray:
        """This rank's own block (a live reference)."""
        return self.ctx.armci.local(self._key)

    def local_slices(self) -> Optional[tuple[slice, slice]]:
        """Global-index slices of this rank's block."""
        coords = self.my_coords()
        if coords is None:
            return None
        return self.dist.block_slices(*coords)

    def load(self, global_matrix: np.ndarray) -> None:
        """Fill the local block from a full global matrix (test/init helper)."""
        if global_matrix.shape != self.shape:
            raise ValueError(
                f"global matrix shape {global_matrix.shape} != {self.shape}")
        sl = self.local_slices()
        if sl is not None:
            self.local()[...] = global_matrix[sl]

    def fenced_write_block(self, rank: int, data: np.ndarray,
                           stamp: int) -> bool:
        """Epoch-fenced wholesale write-back of ``rank``'s block.

        The landing half of a completed C-block put: applies ``data`` to
        ``rank``'s segment *iff* the membership epoch fence admits the
        stamp.  A stale stamp — the writer's ownership generation predates
        a recovery claim on this block — is rejected here at the distarray
        layer and counted (``fault:stale_epoch_rejected``), which is what
        makes duplicate work from false suspicions harmless: the
        presumed-dead owner's late commit cannot clobber the recovered
        block.  Without a membership subsystem every write is admitted.

        Wholesale (not ``+=``) so a retried put is idempotent: re-applying
        the same staged array yields the same segment contents.
        """
        membership = self.ctx.machine.membership
        if membership is not None and not membership.admit_write(rank, stamp):
            return False
        seg = self.ctx.armci._rt.segment(rank, self._key)
        if seg.shape != data.shape:
            raise CommError(
                f"fenced write shape mismatch: {data.shape} vs {seg.shape}")
        seg[...] = data
        return True

    # -- patch addressing ---------------------------------------------------------
    def patch_owner(self, rows: tuple[int, int], cols: tuple[int, int]) -> int:
        """Rank owning the patch ``[r0,r1) x [c0,c1)``; must be one block."""
        return self.dist.patch_owner(rows, cols)

    def _local_index(self, owner: int, rows: tuple[int, int],
                     cols: tuple[int, int]) -> tuple[slice, slice]:
        return self.dist.local_index(owner, rows, cols)

    # -- owner-relative access (the task loop already knows owners/indices) ---------
    def nb_get_owner_patch(self, owner: int, index: tuple[slice, slice],
                           out: np.ndarray, reliable: bool = False) -> Request:
        """Nonblocking get of ``owner``'s block section ``index`` into ``out``.

        ``reliable=True`` requests the guaranteed-delivery blocking-copy
        protocol (the fault-injection retry fallback)."""
        return self.ctx.armci.nb_get(owner, self._key, out, src_index=index,
                                     reliable=reliable)

    def view_owner_patch(self, owner: int,
                         index: tuple[slice, slice]) -> np.ndarray:
        """Direct load/store reference to ``owner``'s block section."""
        return self.ctx.shmem.view(owner, self._key, index=index)

    def owner_patch_checksums(self, owner: int, index: tuple[slice, slice]):
        """Owner-side ABFT reference sums for a block section.

        Models the checksum vectors the owner maintains alongside its
        block and ships with every panel; read outside simulated time
        (the wire/compute overhead is charged by the verifier, see
        :mod:`repro.distarray.abft`).
        """
        from .abft import panel_checksums

        src = self.ctx.armci._rt.segment(owner, self._key)
        return panel_checksums(src[index])

    def copy_owner_patch(self, owner: int, index: tuple[slice, slice],
                         out: np.ndarray):
        """Explicit shared-memory copy of an owner's block section (generator)."""
        yield from self.ctx.shmem.copy(owner, self._key, out, src_index=index)

    # -- one-sided access -----------------------------------------------------------
    def nb_get_patch(self, rows: tuple[int, int], cols: tuple[int, int],
                     out: np.ndarray, out_index=None) -> Request:
        """Nonblocking ARMCI get of a patch into ``out[out_index]``."""
        owner = self.patch_owner(rows, cols)
        src_index = self._local_index(owner, rows, cols)
        return self.ctx.armci.nb_get(owner, self._key, out,
                                     src_index=src_index, out_index=out_index)

    def get_patch(self, rows: tuple[int, int], cols: tuple[int, int],
                  out: np.ndarray, out_index=None):
        """Blocking get of a patch (generator)."""
        req = self.nb_get_patch(rows, cols, out, out_index)
        yield from self.ctx.wait(req)
        return req

    def put_patch(self, rows: tuple[int, int], cols: tuple[int, int],
                  data: np.ndarray):
        """Blocking put of ``data`` into a patch (generator)."""
        owner = self.patch_owner(rows, cols)
        dst_index = self._local_index(owner, rows, cols)
        yield from self.ctx.armci.put(owner, self._key, data, dst_index=dst_index)

    # -- multi-owner regions (the GA_Get / GA_Put user-level semantics) -----------
    def _region_patches(self, rows: tuple[int, int], cols: tuple[int, int]):
        """Split an arbitrary rectangle at ownership boundaries."""
        r0, r1 = rows
        c0, c1 = cols
        if not (0 <= r0 < r1 <= self.dist.m and 0 <= c0 < c1 <= self.dist.n):
            raise IndexError(
                f"region [{r0}:{r1}, {c0}:{c1}] outside or empty in "
                f"{self.dist.m}x{self.dist.n}")
        r_edges = [r0] + [p for p in self.dist.row_breakpoints()
                          if r0 < p < r1] + [r1]
        c_edges = [c0] + [p for p in self.dist.col_breakpoints()
                          if c0 < p < c1] + [c1]
        for pr0, pr1 in zip(r_edges[:-1], r_edges[1:]):
            for pc0, pc1 in zip(c_edges[:-1], c_edges[1:]):
                yield (pr0, pr1), (pc0, pc1)

    def get_region(self, rows: tuple[int, int], cols: tuple[int, int],
                   out: np.ndarray):
        """Blocking get of an arbitrary rectangle, possibly spanning many
        owners (generator; the ``GA_Get`` semantics).  All patch gets are
        issued nonblocking and completed together."""
        if out.shape != (rows[1] - rows[0], cols[1] - cols[0]):
            raise ValueError(
                f"out shape {out.shape} != region "
                f"({rows[1] - rows[0]}, {cols[1] - cols[0]})")
        reqs = []
        for prows, pcols in self._region_patches(rows, cols):
            oidx = (slice(prows[0] - rows[0], prows[1] - rows[0]),
                    slice(pcols[0] - cols[0], pcols[1] - cols[0]))
            reqs.append(self.nb_get_patch(prows, pcols, out, out_index=oidx))
        yield from self.ctx.wait_all(reqs)

    def put_region(self, rows: tuple[int, int], cols: tuple[int, int],
                   data: np.ndarray):
        """Blocking put of an arbitrary rectangle spanning many owners
        (generator; the ``GA_Put`` semantics)."""
        if data.shape != (rows[1] - rows[0], cols[1] - cols[0]):
            raise ValueError(
                f"data shape {data.shape} != region "
                f"({rows[1] - rows[0]}, {cols[1] - cols[0]})")
        reqs = []
        for prows, pcols in self._region_patches(rows, cols):
            owner = self.patch_owner(prows, pcols)
            dst_index = self._local_index(owner, prows, pcols)
            piece = data[prows[0] - rows[0]:prows[1] - rows[0],
                         pcols[0] - cols[0]:pcols[1] - cols[0]]
            reqs.append(self.ctx.armci.nb_put(owner, self._key, piece,
                                              dst_index=dst_index))
        yield from self.ctx.wait_all(reqs)

    # -- direct shared-memory access ---------------------------------------------------
    def can_view_patch(self, rows: tuple[int, int], cols: tuple[int, int]) -> bool:
        """True when the patch owner is in this rank's shared-memory domain."""
        return self.ctx.shmem.can_access(self.patch_owner(rows, cols))

    def view_patch(self, rows: tuple[int, int],
                   cols: tuple[int, int]) -> np.ndarray:
        """Direct load/store reference to a patch (zero simulated cost).

        Raises :class:`CommError` when the owner is outside this rank's
        shared-memory domain.
        """
        owner = self.patch_owner(rows, cols)
        index = self._local_index(owner, rows, cols)
        return self.ctx.shmem.view(owner, self._key, index=index)

    def patch_access_penalty(self, rows: tuple[int, int],
                             cols: tuple[int, int]) -> bool:
        """Whether a direct view of this patch pays the remote-kernel penalty."""
        return self.ctx.shmem.direct_access_penalty(self.patch_owner(rows, cols))

    # -- verification helpers (outside simulated time) ------------------------------------
    @staticmethod
    def assemble(runtime: ArmciRuntime, name: str, dist: Block2D,
                 dtype: Any = np.float64) -> np.ndarray:
        """Gather the full matrix from the segment registry (test helper)."""
        out = np.zeros((dist.m, dist.n), dtype=dtype)
        key = f"ga:{name}"
        for pi in range(dist.p):
            for pj in range(dist.q):
                rank = dist.rank_of(pi, pj)
                if not runtime.has_segment(rank, key):
                    raise CommError(f"rank {rank} never created array {name!r}")
                out[dist.block_slices(pi, pj)] = runtime.segment(rank, key)
        return out
