"""Algorithm-based fault tolerance: checksums over fetched panels.

Huang–Abraham style ABFT keeps row/column sums alongside a matrix so
silent data corruption is detectable by O(r + c) comparisons after an
O(r * c) summation pass.  Here the scheme guards the *communication*
layer: every remote A/B panel a SRUMMA rank fetches is summed on arrival
and compared against the owner-side reference sums; a mismatch means the
wire delivered flipped bits, and the robust wait re-fetches (counted as
``corruptions_detected`` / ``corruptions_repaired`` in ``RankStats``).

Overhead model: verification charges ``2 * elements / flops`` CPU seconds
on the receiving rank — one pass computing row sums and one computing
column sums.  The wire overhead of shipping the reference sums themselves
((r + c) / (r * c) relative, well under 1% for the panel sizes SRUMMA
moves) is folded into the same charge rather than modelled as separate
messages, keeping the healthy event sequence untouched when
``corruption_rate == 0``.

Synthetic-payload runs carry no data, so "verification" there checks the
request's injected-corruption flag under the identical cost model —
timing is bit-identical between real and synthetic modes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["panel_checksums", "checksums_match", "verify_cost"]

# Relative tolerance for checksum comparison.  The delivered buffer is a
# contiguous copy while the reference sums come from (a contiguous copy
# of) the source section, so summation order matches and only benign
# rounding differs; an injected exponent-bit flip changes one element by
# a factor of 2, far above this.
_RTOL = 1e-9


def panel_checksums(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row and column sums of a 2-D panel (the ABFT check vectors)."""
    a = np.ascontiguousarray(arr)
    if a.ndim != 2:
        a = a.reshape(a.shape[0], -1) if a.ndim > 2 else a.reshape(1, -1)
    return a.sum(axis=1), a.sum(axis=0)


def checksums_match(buf: np.ndarray,
                    reference: tuple[np.ndarray, np.ndarray]) -> bool:
    """True when ``buf``'s sums agree with the owner-side reference."""
    rows, cols = panel_checksums(buf)
    ref_rows, ref_cols = reference
    if rows.shape != ref_rows.shape or cols.shape != ref_cols.shape:
        return False
    scale = max(1.0, float(np.max(np.abs(ref_rows), initial=0.0)),
                float(np.max(np.abs(ref_cols), initial=0.0)))
    tol = _RTOL * scale
    return (bool(np.all(np.abs(rows - ref_rows) <= tol))
            and bool(np.all(np.abs(cols - ref_cols) <= tol)))


def verify_cost(n_elements: int, flops: float) -> float:
    """CPU seconds to checksum a fetched panel (one row + one col pass)."""
    if n_elements <= 0:
        return 0.0
    return 2.0 * n_elements / flops
