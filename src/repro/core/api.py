"""Front-door API: one call multiplies two distributed matrices with SRUMMA.

:func:`srumma_multiply` builds the machine, creates the distributed
matrices, runs one simulated process per rank, verifies the numerical result
against numpy, and reports virtual-time performance::

    from repro import srumma_multiply
    from repro.machines import LINUX_MYRINET

    res = srumma_multiply(LINUX_MYRINET, nranks=16, m=512, n=512, k=512)
    print(res.gflops, res.max_error)

``payload="synthetic"`` runs the identical communication/compute schedule
without real numpy data — used by the large-N benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..comm.base import ParallelRun, run_parallel
from ..distarray.distribution import Block2D, choose_grid
from ..distarray.global_array import GlobalArray
from ..machines.spec import MachineSpec
from .srumma import RankStats, SrummaOptions, srumma_rank

__all__ = ["MultiplyResult", "srumma_multiply", "make_operands",
           "measured_omega"]


def measured_omega(result: "MultiplyResult") -> float:
    """The paper's overlap degree omega, measured from a run.

    omega = (non-overlapped communication) / (total communication time) —
    the fraction of transfer time the CPUs actually sat blocked on
    (§2.1: 'the degree of overlapping'; §4.1: 'we were able to overlap
    more than 90% of the communication ... thus omega is less than 10%').
    Returns 0 when the run had no communication.
    """
    comm_total = sum(s.comm_time for s in result.stats)
    if comm_total <= 0:
        return 0.0
    blocked = result.run.tracer.total("comm_wait")
    return min(1.0, max(0.0, blocked / comm_total))


@dataclass
class MultiplyResult:
    """Outcome of one distributed multiplication."""

    elapsed: float
    """Virtual seconds from the post-setup barrier to the last rank's finish."""

    gflops: float
    """Aggregate 2*m*n*k / elapsed, in GFLOP/s."""

    m: int
    n: int
    k: int
    nranks: int
    grid: tuple[int, int]
    run: ParallelRun
    stats: list[RankStats]
    c: Optional[np.ndarray] = None
    """The assembled result matrix (real payload only)."""

    max_error: Optional[float] = None
    """Max abs deviation from the numpy reference (real payload + verify)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MultiplyResult {self.m}x{self.n}x{self.k} P={self.nranks} "
                f"{self.gflops:.2f} GFLOP/s>")


def make_operands(m: int, n: int, k: int, transa: bool, transb: bool,
                  seed: int = 0, dtype=np.float64):
    """Reference operands in *stored* orientation.

    Returns ``(a_stored, b_stored, expected_c)`` where ``a_stored`` is
    ``k x m`` when ``transa`` else ``m x k`` (likewise for B), and
    ``expected_c = op(a) @ op(b)``.
    """
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((k, m) if transa else (m, k)).astype(dtype)
    b = rng.standard_normal((n, k) if transb else (k, n)).astype(dtype)
    expected = (a.T if transa else a) @ (b.T if transb else b)
    return a, b, expected


def srumma_multiply(spec: MachineSpec, nranks: int, m: int, n: int, k: int,
                    transa: bool = False, transb: bool = False,
                    p: Optional[int] = None, q: Optional[int] = None,
                    options: Optional[SrummaOptions] = None,
                    payload: str = "real", verify: bool = True,
                    seed: int = 0, dtype=np.float64,
                    alpha: float = 1.0, beta: float = 0.0,
                    interference=None, faults=None,
                    tuning: Optional[dict] = None) -> MultiplyResult:
    """Run ``C = alpha * op(A) @ op(B) + beta * C`` with SRUMMA.

    With ``beta != 0`` the initial C is a seeded random matrix (so the
    accumulate path is actually exercised and verified).

    Parameters
    ----------
    spec, nranks:
        Machine model and process count.
    m, n, k:
        Global dimensions of ``op(A) (m x k)``, ``op(B) (k x n)``, ``C (m x n)``.
    transa, transb:
        Transpose flags; the stored matrices then have swapped dims.
    p, q:
        Process grid (default: most-square factorisation of ``nranks``).
    options:
        :class:`SrummaOptions` switches; default is the paper's best config.
    payload:
        ``"real"`` moves numpy data and can verify; ``"synthetic"`` runs the
        identical schedule timing-only.
    verify:
        Compare the assembled C against numpy (real payload only).
    """
    if payload not in ("real", "synthetic"):
        raise ValueError(f"payload must be 'real' or 'synthetic', not {payload!r}")
    if p is None or q is None:
        p, q = choose_grid(nranks)
    if p * q > nranks:
        raise ValueError(f"grid {p}x{q} needs more than {nranks} ranks")

    dist_a = Block2D(k if transa else m, m if transa else k, p, q)
    dist_b = Block2D(n if transb else k, k if transb else n, p, q)
    dist_c = Block2D(m, n, p, q)

    real = payload == "real"
    if real:
        a_ref, b_ref, prod = make_operands(m, n, k, transa, transb,
                                           seed=seed, dtype=dtype)
        if beta != 0.0:
            rng = np.random.default_rng(seed + 1)
            c0 = rng.standard_normal((m, n)).astype(dtype)
        else:
            c0 = None
        c_expected = alpha * prod + (beta * c0 if c0 is not None else 0.0)

    spans: dict[int, tuple[float, float]] = {}

    def rank_fn(ctx):
        if real:
            ga_a = GlobalArray.create(ctx, "A", *a_ref.shape, p=p, q=q, dtype=dtype)
            ga_b = GlobalArray.create(ctx, "B", *b_ref.shape, p=p, q=q, dtype=dtype)
            ga_c = GlobalArray.create(ctx, "C", m, n, p=p, q=q, dtype=dtype)
            ga_a.load(a_ref)
            ga_b.load(b_ref)
            if c0 is not None:
                ga_c.load(c0)
            args = (ga_a, ga_b, ga_c)
        else:
            args = (dist_a, dist_b, dist_c)
        yield from ctx.mpi.barrier()
        t0 = ctx.now
        stats = yield from srumma_rank(ctx, *args, transa=transa,
                                       transb=transb, options=options,
                                       alpha=alpha, beta=beta)
        spans[ctx.rank] = (t0, ctx.now)
        return stats

    run = run_parallel(spec, nranks, rank_fn, interference=interference,
                       faults=faults, tuning=tuning)
    t_start = min(s[0] for s in spans.values())
    t_end = max(s[1] for s in spans.values())
    elapsed = t_end - t_start
    flops = 2.0 * m * n * k
    gflops = flops / elapsed / 1e9 if elapsed > 0 else float("inf")

    result = MultiplyResult(
        elapsed=elapsed, gflops=gflops, m=m, n=n, k=k, nranks=nranks,
        grid=(p, q), run=run, stats=list(run.results),
    )
    if real:
        result.c = GlobalArray.assemble(run.armci, "C", dist_c, dtype=dtype)
        if verify:
            result.max_error = float(np.max(np.abs(result.c - c_expected)))
            tol = 1e-8 * max(1, k)
            if result.max_error > tol:
                raise AssertionError(
                    f"SRUMMA result wrong: max|err|={result.max_error:.3e} "
                    f"> tol={tol:.3e} (m={m}, n={n}, k={k}, grid={p}x{q}, "
                    f"transa={transa}, transb={transb})")
    return result
