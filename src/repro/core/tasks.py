"""Task-list construction for SRUMMA (paper §3.1, step 1).

Each rank owns one block of C ("owner computes") and builds the list of
block products

    C_ij = sum_k  op(A)_ik  op(B)_kj                        (paper eq. 4)

A :class:`BlockTask` names one such product: a global ``k`` interval plus the
``m``/``n`` sub-ranges of the C block, and for each operand the owning rank
and the index of the patch inside that owner's stored block.

The construction is fully general over the four transpose variants and
rectangular shapes.  The inner (``k``) dimension is cut at the union of both
operands' ownership breakpoints, so every patch lies inside a single owner
block; on a square grid with untransposed operands this degenerates to the
paper's picture — exactly ``q`` gets of A row-blocks and ``p`` gets of B
column-blocks per process (§2.1).  For transposed operands on non-square
grids the C-block row/column ranges are additionally segmented so that each
fetched patch still has a single owner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..distarray.distribution import Block2D

__all__ = ["BlockTask", "build_tasks", "k_dimension"]

Range = tuple[int, int]


@dataclass(frozen=True)
class BlockTask:
    """One block product contributing to this rank's C block.

    ``m_range``/``n_range`` index the *global* C matrix; ``k_range`` the
    global inner dimension.  ``a_owner``/``b_owner`` are ranks;
    ``a_index``/``b_index`` are slices into those owners' stored local
    blocks (already transposed-aware: apply ``transa/transb`` in dgemm).
    """

    m_range: Range
    n_range: Range
    k_range: Range
    a_owner: int
    a_index: tuple[slice, slice]
    b_owner: int
    b_index: tuple[slice, slice]

    @property
    def a_shape(self) -> tuple[int, int]:
        return (self.a_index[0].stop - self.a_index[0].start,
                self.a_index[1].stop - self.a_index[1].start)

    @property
    def b_shape(self) -> tuple[int, int]:
        return (self.b_index[0].stop - self.b_index[0].start,
                self.b_index[1].stop - self.b_index[1].start)

    @property
    def flops(self) -> int:
        m = self.m_range[1] - self.m_range[0]
        n = self.n_range[1] - self.n_range[0]
        k = self.k_range[1] - self.k_range[0]
        return 2 * m * n * k


def k_dimension(dist_a: Block2D, transa: bool) -> int:
    """The inner dimension contributed by stored A."""
    return dist_a.m if transa else dist_a.n


def _k_breakpoints(dist: Block2D, along_rows: bool) -> list[int]:
    return dist.row_breakpoints() if along_rows else dist.col_breakpoints()


def _segments(lo: int, hi: int, breakpoints: list[int]) -> list[Range]:
    """Split [lo, hi) at the given sorted breakpoints."""
    pts = [lo] + [b for b in breakpoints if lo < b < hi] + [hi]
    return [(pts[i], pts[i + 1]) for i in range(len(pts) - 1)]


# Bounded memo for task-list construction.  The distribution dataclasses
# are frozen/hashable, so (distributions, transposes, coords) is a complete
# key; repeated multiplications over the same layout — benchmark reps,
# iterative dgemm loops — skip the breakpoint/segment construction.  Only
# successful builds are cached (invalid shapes re-raise every call), stored
# as tuples and handed out as fresh lists so callers may reorder freely.
_BUILD_CACHE: dict = {}
_BUILD_CACHE_MAX = 4096


def build_tasks(dist_a: Block2D, dist_b: Block2D, dist_c: Block2D,
                transa: bool = False, transb: bool = False,
                coords: Optional[tuple[int, int]] = None) -> list[BlockTask]:
    """Tasks computing the C block at grid position ``coords``, ascending k.

    ``coords=None`` (a rank outside the C grid) yields an empty list.
    """
    key = (dist_a, dist_b, dist_c, transa, transb, coords)
    try:
        hit = _BUILD_CACHE.get(key)
    except TypeError:  # unhashable distribution flavour: build uncached
        return _build_tasks_uncached(dist_a, dist_b, dist_c, transa, transb,
                                     coords)
    if hit is None:
        hit = tuple(_build_tasks_uncached(dist_a, dist_b, dist_c, transa,
                                          transb, coords))
        if len(_BUILD_CACHE) >= _BUILD_CACHE_MAX:
            _BUILD_CACHE.pop(next(iter(_BUILD_CACHE)))
        _BUILD_CACHE[key] = hit
    return list(hit)


def _build_tasks_uncached(dist_a: Block2D, dist_b: Block2D, dist_c: Block2D,
                          transa: bool, transb: bool,
                          coords: Optional[tuple[int, int]]) -> list[BlockTask]:
    da, db, dc = dist_a, dist_b, dist_c

    # Shape consistency: op(A) is m x k, op(B) is k x n, C is m x n.
    am = da.n if transa else da.m
    ak = da.m if transa else da.n
    bk = db.n if transb else db.m
    bn = db.m if transb else db.n
    if am != dc.m or bn != dc.n:
        raise ValueError(
            f"outer dims disagree: op(A) {am}x{ak}, op(B) {bk}x{bn}, "
            f"C {dc.m}x{dc.n}")
    if ak != bk:
        raise ValueError(f"inner dims disagree: op(A) k={ak}, op(B) k={bk}")

    if coords is None:
        return []
    pi, pj = coords
    r0, r1 = dc.row_range(pi)
    c0, c1 = dc.col_range(pj)
    if r0 == r1 or c0 == c1 or ak == 0:
        return []

    # k cut at the union of both operands' ownership boundaries.
    a_kpts = _k_breakpoints(da, along_rows=transa)
    b_kpts = _k_breakpoints(db, along_rows=not transb)
    k_cuts = sorted(set(a_kpts) | set(b_kpts))
    k_ivs = _segments(0, ak, k_cuts)

    # C row range segmented by stored-A's m-partition (non-trivial only for
    # transposed A on a non-square grid); likewise columns by stored-B's.
    a_mpts = _k_breakpoints(da, along_rows=not transa)
    b_npts = _k_breakpoints(db, along_rows=transb)
    m_segs = _segments(r0, r1, a_mpts)
    n_segs = _segments(c0, c1, b_npts)

    tasks: list[BlockTask] = []
    for k_lo, k_hi in k_ivs:
        for mr in m_segs:
            # A patch: stored A[mr, k] (N) or A[k, mr] (T).
            a_rows, a_cols = ((k_lo, k_hi), mr) if transa else (mr, (k_lo, k_hi))
            a_owner = da.patch_owner(a_rows, a_cols)
            a_index = da.local_index(a_owner, a_rows, a_cols)
            for nr in n_segs:
                b_rows, b_cols = (nr, (k_lo, k_hi)) if transb else ((k_lo, k_hi), nr)
                b_owner = db.patch_owner(b_rows, b_cols)
                b_index = db.local_index(b_owner, b_rows, b_cols)
                tasks.append(BlockTask(
                    m_range=mr, n_range=nr, k_range=(k_lo, k_hi),
                    a_owner=a_owner, a_index=a_index,
                    b_owner=b_owner, b_index=b_index,
                ))
    return tasks
