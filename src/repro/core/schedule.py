"""Task-list ordering (paper §3.1, step 2).

Three reorderings, each individually switchable (the ablation benchmarks
exercise them):

1. **Diagonal shift** — rotate the k-sequence so that grid position
   ``(i, j)`` starts at interval ``(i + j) mod ntasks`` (Cannon's skew).
   On an SMP cluster this spreads the *first* round of remote gets across
   distinct nodes instead of stampeding one NIC (paper Fig. 4): without it,
   all CPUs of a node fetch from the same remote node simultaneously and
   share that node's link bandwidth 1/k-each.

2. **Local-first** — stable-partition the list so tasks whose operands are
   all inside the caller's shared-memory domain run first.  They need no
   network transfer, so they fill the pipeline-priming slot: while the CPU
   multiplies local blocks, the first nonblocking gets are already in
   flight ("we do not have to wait to start the pipeline", §3.1).

3. **Locality reuse** — within the rotated order, keep tasks sharing the
   same A patch adjacent (ascending k does this naturally; the sort is kept
   stable everywhere so adjacency survives the other reorderings).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..sim.cluster import Machine
from .tasks import BlockTask

__all__ = ["ScheduleOptions", "order_tasks", "task_is_domain_local",
           "defer_suspected"]


@dataclass(frozen=True)
class ScheduleOptions:
    """Switches for the §3.1 step-2 reorderings."""

    diagonal_shift: bool = True
    local_first: bool = True

    def describe(self) -> str:
        parts = []
        parts.append("diag" if self.diagonal_shift else "nodiag")
        parts.append("localfirst" if self.local_first else "listorder")
        return "+".join(parts)


def task_is_domain_local(machine: Machine, rank: int, task: BlockTask) -> bool:
    """True when both operand patches live in ``rank``'s shared-memory domain."""
    return (machine.same_domain(rank, task.a_owner)
            and machine.same_domain(rank, task.b_owner))


def defer_suspected(tasks: Sequence[BlockTask], machine: Machine,
                    rank: int) -> list[BlockTask]:
    """Stable-partition a recovery task list so tasks with an operand on a
    *suspected* node run last.

    While the detector is still making up its mind about a peer, fetching
    from it risks riding the full retry ladder; work whose operands live
    on unsuspected nodes fills the pipeline instead.  Suspicion is judged
    from ``rank``'s own (possibly stale) membership view; without a
    detector this is the identity ordering.
    """
    out = list(tasks)
    membership = machine.membership
    if membership is None or not out:
        return out
    node = machine.node_of(rank)
    clear: list[BlockTask] = []
    deferred: list[BlockTask] = []
    for t in out:
        if (membership.sees_suspected(node, machine.node_of(t.a_owner))
                or membership.sees_suspected(node, machine.node_of(t.b_owner))):
            deferred.append(t)
        else:
            clear.append(t)
    return clear + deferred


def order_tasks(tasks: Sequence[BlockTask], machine: Machine, rank: int,
                coords: tuple[int, int],
                options: ScheduleOptions = ScheduleOptions()) -> list[BlockTask]:
    """Apply the §3.1 step-2 reorderings and return the execution order."""
    out = list(tasks)
    if not out:
        return out

    if options.diagonal_shift:
        pi, pj = coords
        start = (pi + pj) % len(out)
        out = out[start:] + out[:start]

    if options.local_first:
        # Single-pass stable partition: the locality test walks the machine
        # topology, so run it once per task, not twice.
        local: list[BlockTask] = []
        remote: list[BlockTask] = []
        for t in out:
            (local if task_is_domain_local(machine, rank, t) else remote).append(t)
        out = local + remote

    return out
